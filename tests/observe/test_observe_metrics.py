"""MetricsRegistry: instruments, percentiles, concurrent updates."""

import json
import threading

import pytest

from repro.observe import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_concurrent_inc_is_exact(self):
        c = Counter()
        n_threads, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert c.value == n_threads * per_thread


class TestGauge:
    def test_set_and_peak(self):
        g = Gauge()
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2.0
        assert g.peak == 7.0


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.percentile(50) == 0.0
        assert h.summary() == {"count": 0, "sum": 0.0}

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100
        assert h.percentile(50) == 51  # round(0.5 * 99) = 50 -> ordered[50]
        assert h.count == 100
        assert h.sum == 5050

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_summary_fields(self):
        h = Histogram()
        for v in (2.0, 1.0, 3.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["p50"] == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h") is m.histogram("h")

    def test_snapshot_is_json_able_and_sorted(self):
        m = MetricsRegistry()
        m.counter("b.items").inc(3)
        m.counter("a.items").inc()
        m.gauge("depth").set(4)
        m.histogram("lat").observe(0.25)
        snap = m.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a.items", "b.items"]
        assert snap["counters"]["b.items"] == 3
        assert snap["gauges"]["depth"] == {"value": 4.0, "peak": 4.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_empty_snapshot(self):
        snap = MetricsRegistry().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
