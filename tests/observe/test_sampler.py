"""QueueDepthSampler: guaranteed samples, background polling, idempotent stop."""

import time

import pytest

from repro.observe import MetricsRegistry, QueueDepthSampler, Tracer
from repro.pipeline.queues import MonitorQueue


def test_sample_once_emits_counter_and_gauge():
    q = MonitorQueue(maxsize=4, name="work")
    q.put(1)
    q.put(2)
    tracer, metrics = Tracer(), MetricsRegistry()
    s = QueueDepthSampler([q], tracer=tracer, metrics=metrics)
    s.sample_once()
    assert tracer.counter_names() == ["queue:work"]
    assert tracer.counters[0].value == 2.0
    assert metrics.gauge("queue:work.depth").value == 2.0


def test_every_queue_gets_a_sample_even_for_instant_runs():
    queues = [MonitorQueue(name=f"q{i}") for i in range(3)]
    tracer = Tracer()
    s = QueueDepthSampler(queues, tracer=tracer, interval=60.0)
    s.start()  # interval far longer than the run: only sync samples
    s.stop()
    # One sample in start() and one in stop(), for every queue.
    assert sorted(tracer.counter_names()) == ["queue:q0", "queue:q1", "queue:q2"]
    assert len(tracer.counters) == 2 * len(queues)


def test_background_thread_samples_periodically():
    q = MonitorQueue(name="busy")
    tracer = Tracer()
    with QueueDepthSampler([q], tracer=tracer, interval=0.001) as s:
        time.sleep(0.05)
    assert s.samples_taken > 3
    assert all(c.name == "queue:busy" for c in tracer.counters)


def test_stop_is_idempotent_and_start_twice_raises():
    s = QueueDepthSampler([MonitorQueue(name="q")], tracer=Tracer())
    s.start()
    with pytest.raises(RuntimeError):
        s.start()
    s.stop()
    taken = s.samples_taken
    s.stop()  # no-op
    assert s.samples_taken == taken


def test_metrics_gauge_tracks_peak_depth():
    q = MonitorQueue(name="w")
    metrics = MetricsRegistry()
    s = QueueDepthSampler([q], metrics=metrics)
    q.put(1)
    q.put(2)
    s.sample_once()
    q.get()
    q.get()
    s.sample_once()
    g = metrics.gauge("queue:w.depth")
    assert g.value == 0.0
    assert g.peak == 2.0


def test_bad_interval_rejected():
    with pytest.raises(ValueError):
        QueueDepthSampler([], interval=0.0)
