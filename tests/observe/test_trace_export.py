"""End-to-end: traced runs export a valid unified Chrome trace.

The acceptance check of the observability layer: run the pipelined
implementations with a tracer attached, merge the pipeline spans, queue
counter tracks, and (for GPU impls) virtual-GPU engine rows into one
trace-event JSON, and validate it against the schema -- the same check
the CI smoke step performs on the CLI output.
"""

import json

import pytest

from repro.analysis.tracefmt import (
    GPU_PID_BASE,
    PIPELINE_PID,
    merged_trace_events,
    tracer_trace_events,
    validate_trace_events,
    write_chrome_trace,
)
from repro.core.stitcher import Stitcher
from repro.impls import PipelinedCpu, PipelinedGpu
from repro.observe import MetricsRegistry, Tracer


class TestPipelinedCpuTrace:
    @pytest.fixture(scope="class")
    def traced_run(self, dataset_4x4):
        tracer, metrics = Tracer(), MetricsRegistry()
        impl = PipelinedCpu(workers=2, tracer=tracer, metrics=metrics)
        run = impl.run(dataset_4x4)
        return tracer, metrics, run

    def test_events_validate(self, traced_run):
        tracer, _, _ = traced_run
        events = merged_trace_events(tracer=tracer)
        validate_trace_events(events, require_counters=True)

    def test_stage_tracks_present(self, traced_run):
        tracer, _, _ = traced_run
        tracks = set(tracer.tracks())
        assert any(t.startswith("pipelined-cpu/reader") for t in tracks)
        assert any(t.startswith("pipelined-cpu/compute") for t in tracks)
        assert any(t.startswith("pipelined-cpu/bookkeeping") for t in tracks)

    def test_every_queue_has_a_counter_track(self, traced_run):
        tracer, _, _ = traced_run
        names = set(tracer.counter_names())
        assert "queue:pipelined-cpu:work" in names
        assert "queue:pipelined-cpu:events" in names

    def test_spans_cover_all_pairs(self, traced_run):
        tracer, _, run = traced_run
        assert tracer.span_count("compute") >= run.stats["pairs"]

    def test_metrics_counted_all_items(self, traced_run):
        _, metrics, run = traced_run
        snap = metrics.snapshot()
        # Items >= reads: the reader handles every tile plus any control
        # items the pipeline routes through it.
        assert snap["counters"]["stage.reader.items"] >= run.stats["reads"]
        assert snap["histograms"]["stage.compute.seconds"]["count"] > 0

    def test_write_and_reload(self, traced_run, tmp_path):
        tracer, _, _ = traced_run
        out = tmp_path / "trace.json"
        write_chrome_trace(out, merged_trace_events(tracer=tracer))
        events = json.loads(out.read_text())
        validate_trace_events(events, require_counters=True)


class TestPipelinedGpuTrace:
    def test_merged_trace_has_gpu_process_rows(self, dataset_4x4):
        tracer = Tracer()
        impl = PipelinedGpu(devices=2, tracer=tracer)
        impl.run(dataset_4x4)
        events = merged_trace_events(
            tracer=tracer, gpu_profilers=[d.profiler for d in impl.devices]
        )
        validate_trace_events(events, require_counters=True)
        pids = {e["pid"] for e in events}
        assert PIPELINE_PID in pids
        assert {GPU_PID_BASE, GPU_PID_BASE + 1} <= pids
        procs = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert procs == {"pipeline", "virtual-gpu-0", "virtual-gpu-1"}


class TestStitcherFacade:
    def test_trace_true_round_trip(self, dataset_4x4, tmp_path):
        result = Stitcher(trace=True).stitch(dataset_4x4)
        assert result.tracer is not None
        assert result.metrics is not None  # trace implies metrics
        out = tmp_path / "seq.json"
        n = result.write_trace(out)
        events = json.loads(out.read_text())
        assert len(events) == n
        validate_trace_events(events)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"phase1:displacements", "phase2:global-opt"} <= names

    def test_untraced_result_refuses_export(self, dataset_4x4):
        result = Stitcher().stitch(dataset_4x4)
        assert result.tracer is None
        with pytest.raises(ValueError, match="not traced"):
            result.trace_events()


class TestValidator:
    def test_rejects_non_list(self):
        with pytest.raises(ValueError, match="JSON array"):
            validate_trace_events({"not": "a list"})

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            validate_trace_events([])

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing 'pid'"):
            validate_trace_events([{"name": "x", "ph": "X", "ts": 0, "tid": 0}])

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_trace_events(
                [{"name": "x", "ph": "Z", "ts": 0, "pid": 0, "tid": 0}]
            )

    def test_rejects_complete_event_without_dur(self):
        with pytest.raises(ValueError, match="bad dur"):
            validate_trace_events(
                [{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]
            )

    def test_rejects_counter_without_numeric_args(self):
        with pytest.raises(ValueError, match="non-numeric args"):
            validate_trace_events(
                [{"name": "q", "ph": "C", "ts": 0, "pid": 0, "tid": 0,
                  "args": {"depth": "three"}}]
            )

    def test_require_counters(self):
        tracer = Tracer()
        with tracer.span("op", "w0"):
            pass
        events = tracer_trace_events(tracer)
        validate_trace_events(events)
        with pytest.raises(ValueError, match="no counter"):
            validate_trace_events(events, require_counters=True)
