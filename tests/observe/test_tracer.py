"""Tracer: span recording, disabled no-op path, thread safety."""

import threading

from repro.observe import NULL_TRACER, Span, Tracer


class TestSpanRecording:
    def test_context_manager_records_one_span(self):
        t = Tracer()
        with t.span("fft", "worker-0", key="(1,2)"):
            pass
        assert len(t.spans) == 1
        s = t.spans[0]
        assert s.name == "fft"
        assert s.track == "worker-0"
        assert s.key == "(1,2)"
        assert s.duration >= 0.0
        assert s.end >= s.start >= 0.0

    def test_span_records_even_when_body_raises(self):
        t = Tracer()
        try:
            with t.span("fft", "worker-0"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert t.span_count("fft") == 1

    def test_record_span_manual(self):
        t = Tracer()
        t.record_span("read", "io", 0.1, 0.3, args={"queue": "work"})
        assert t.spans == [Span("read", "io", 0.1, 0.3, None, {"queue": "work"})]

    def test_now_is_monotonic_from_creation(self):
        t = Tracer()
        a, b = t.now(), t.now()
        assert 0.0 <= a <= b

    def test_counter_samples(self):
        t = Tracer()
        t.counter("queue:work", 3, t=0.5)
        t.counter("queue:work", 1)
        t.counter("queue:events", 0, t=0.7)
        assert t.counter_names() == ["queue:work", "queue:events"]
        assert t.counters[0].value == 3.0
        assert t.counters[0].t == 0.5

    def test_tracks_first_appearance_order(self):
        t = Tracer()
        t.record_span("a", "t2", 0, 1)
        t.record_span("b", "t1", 0, 1)
        t.record_span("c", "t2", 1, 2)
        assert t.tracks() == ["t2", "t1"]

    def test_busy_seconds_excludes_wait_by_default(self):
        t = Tracer()
        t.record_span("fft", "w0", 0.0, 1.0)
        t.record_span("fft:wait", "w0", 1.0, 3.0)
        assert t.busy_seconds("w0") == 1.0
        assert t.busy_seconds("w0", include_wait=True) == 3.0
        assert t.busy_seconds("elsewhere") == 0.0

    def test_span_count_prefix(self):
        t = Tracer()
        t.record_span("fft", "w0", 0, 1)
        t.record_span("fft:wait", "w0", 1, 2)
        t.record_span("read", "w0", 2, 3)
        assert t.span_count() == 3
        assert t.span_count("fft") == 2
        assert t.span_count("read") == 1


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("fft", "w0"):
            pass
        t.record_span("read", "w0", 0, 1)
        t.counter("queue", 5)
        assert t.spans == []
        assert t.counters == []

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("x", "y"):
            pass
        assert NULL_TRACER.spans == []


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        t = Tracer()
        n_threads, per_thread = 8, 500

        def worker(wid):
            for i in range(per_thread):
                t.record_span("op", f"w{wid}", i, i + 1, key=str(i))
                t.counter(f"c{wid}", i)

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=10)
        assert len(t.spans) == n_threads * per_thread
        assert len(t.counters) == n_threads * per_thread
        assert sorted(t.tracks()) == [f"w{w}" for w in range(n_threads)]
