"""Tile dataset layout: patterns, metadata, lazy access, error paths."""

import numpy as np
import pytest

from repro.io.dataset import DatasetMetadata, FilePattern, TileDataset


class TestFilePattern:
    def test_default_format_and_parse(self):
        fp = FilePattern()
        assert fp.filename(3, 17) == "img_r003_c017.tif"
        assert fp.parse("img_r003_c017.tif") == (3, 17)

    def test_custom_pattern(self):
        fp = FilePattern("tile_{col:d}_{row:d}.tif")
        assert fp.filename(2, 9) == "tile_9_2.tif"
        assert fp.parse("tile_9_2.tif") == (2, 9)

    def test_parse_rejects_foreign_names(self):
        assert FilePattern().parse("notes.txt") is None

    def test_rejects_pattern_without_fields(self):
        with pytest.raises(ValueError):
            FilePattern("static_name.tif")

    def test_rejects_positional_pattern(self):
        with pytest.raises(ValueError):
            FilePattern("img_{}.tif")


class TestTileDataset:
    def make(self, tmp_path, rows=2, cols=3, h=8, w=9):
        rng = np.random.default_rng(0)
        tiles = rng.integers(0, 65535, (rows, cols, h, w)).astype(np.uint16)
        ds = TileDataset.create(tmp_path / "ds", tiles, overlap=0.1)
        return ds, tiles

    def test_create_and_reload_from_metadata(self, tmp_path):
        ds, tiles = self.make(tmp_path)
        again = TileDataset(tmp_path / "ds")  # reads dataset.json
        assert again.rows == 2 and again.cols == 3
        assert again.tile_shape == (8, 9)
        assert np.array_equal(again.load(1, 2, dtype=None), tiles[1, 2])

    def test_load_converts_dtype(self, tmp_path):
        ds, _ = self.make(tmp_path)
        assert ds.load(0, 0).dtype == np.float64

    def test_len(self, tmp_path):
        ds, _ = self.make(tmp_path)
        assert len(ds) == 6

    def test_out_of_range_indexing(self, tmp_path):
        ds, _ = self.make(tmp_path)
        with pytest.raises(IndexError):
            ds.load(2, 0)
        with pytest.raises(IndexError):
            ds.path(0, 3)

    def test_missing_tile_file(self, tmp_path):
        ds, _ = self.make(tmp_path)
        ds.path(1, 1).unlink()
        with pytest.raises(FileNotFoundError):
            ds.load(1, 1)

    def test_shape_mismatch_detected(self, tmp_path):
        from repro.io.tiff import write_tiff

        ds, _ = self.make(tmp_path)
        write_tiff(ds.path(0, 1), np.zeros((4, 4), dtype=np.uint16))
        with pytest.raises(ValueError, match="shape"):
            ds.load(0, 1)

    def test_missing_metadata_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            TileDataset(tmp_path / "empty")

    def test_true_positions_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        tiles = rng.integers(0, 255, (2, 2, 8, 8)).astype(np.uint8)
        pos = np.array([[[0, 0], [0, 6]], [[5, 1], [6, 7]]])
        ds = TileDataset.create(tmp_path / "ds", tiles, overlap=0.2, true_positions=pos)
        again = TileDataset(tmp_path / "ds")
        assert again.true_position(1, 0) == (5, 1)
        assert again.metadata.bit_depth == 8

    def test_true_position_none_when_unknown(self, tmp_path):
        ds, _ = self.make(tmp_path)
        assert ds.true_position(0, 0) is None

    def test_create_rejects_bad_stack(self, tmp_path):
        with pytest.raises(ValueError):
            TileDataset.create(tmp_path / "x", np.zeros((4, 4)), overlap=0.1)
        with pytest.raises(ValueError):
            TileDataset.create(
                tmp_path / "y", np.zeros((2, 2, 4, 4), dtype=np.float32), overlap=0.1
            )


class TestMetadataJson:
    def test_roundtrip(self):
        m = DatasetMetadata(rows=2, cols=3, tile_height=8, tile_width=9, overlap=0.15)
        again = DatasetMetadata.from_json(m.to_json())
        assert again == m
