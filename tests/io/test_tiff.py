"""TIFF codec: roundtrip, structure, and malformed-input rejection."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.io.tiff import TiffError, read_tiff, write_tiff


class TestRoundtrip:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16])
    def test_exact_roundtrip(self, tmp_path, dtype):
        rng = np.random.default_rng(0)
        a = rng.integers(0, np.iinfo(dtype).max, (33, 47)).astype(dtype)
        p = tmp_path / "t.tif"
        write_tiff(p, a)
        b = read_tiff(p)
        assert b.dtype == dtype
        assert np.array_equal(a, b)

    def test_description_roundtrip(self, tmp_path):
        a = np.zeros((4, 4), dtype=np.uint16)
        p = tmp_path / "t.tif"
        write_tiff(p, a, description="r=3 c=7 overlap=0.1")
        _, desc = read_tiff(p, return_description=True)
        assert desc == "r=3 c=7 overlap=0.1"

    def test_no_description_reads_empty(self, tmp_path):
        p = tmp_path / "t.tif"
        write_tiff(p, np.zeros((4, 4), dtype=np.uint8))
        _, desc = read_tiff(p, return_description=True)
        assert desc == ""

    def test_multi_strip_layout(self, tmp_path):
        # Force many small strips; data must reassemble exactly.
        a = np.arange(64 * 64, dtype=np.uint16).reshape(64, 64)
        p = tmp_path / "t.tif"
        write_tiff(p, a, rows_per_strip=3)
        assert np.array_equal(read_tiff(p), a)

    def test_single_row_image(self, tmp_path):
        a = np.arange(100, dtype=np.uint16).reshape(1, 100)
        p = tmp_path / "t.tif"
        write_tiff(p, a)
        assert np.array_equal(read_tiff(p), a)

    @settings(max_examples=30, deadline=None)
    @given(
        h=st.integers(min_value=1, max_value=40),
        w=st.integers(min_value=1, max_value=40),
        bits=st.sampled_from([8, 16]),
        rps=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_roundtrip_property(self, tmp_path_factory, h, w, bits, rps, seed):
        dtype = np.uint8 if bits == 8 else np.uint16
        rng = np.random.default_rng(seed)
        a = rng.integers(0, np.iinfo(dtype).max + 1, (h, w)).astype(dtype)
        p = tmp_path_factory.mktemp("prop") / "t.tif"
        write_tiff(p, a, rows_per_strip=rps)
        assert np.array_equal(read_tiff(p), a)


class TestBigEndianRead:
    def test_reads_motorola_order(self, tmp_path):
        """Hand-built big-endian file (as MM-order microscopes emit)."""
        h, w = 2, 3
        pixels = np.array([[1, 2, 3], [4, 500, 60000]], dtype=np.uint16)
        data = pixels.astype(">u2").tobytes()
        entries = [
            (256, 3, 1, w), (257, 3, 1, h), (258, 3, 1, 16),
            (259, 3, 1, 1), (262, 3, 1, 1),
            (273, 4, 1, None),  # strip offset patched below
            (277, 3, 1, 1), (278, 4, 1, h), (279, 4, 1, len(data)),
        ]
        ifd_off = 8
        data_off = ifd_off + 2 + 12 * len(entries) + 4
        blob = struct.pack(">2sHI", b"MM", 42, ifd_off)
        blob += struct.pack(">H", len(entries))
        for tag, typ, cnt, val in entries:
            if val is None:
                val = data_off
            if typ == 3:
                blob += struct.pack(">HHIHH", tag, typ, cnt, val, 0)
            else:
                blob += struct.pack(">HHII", tag, typ, cnt, val)
        blob += struct.pack(">I", 0) + data
        p = tmp_path / "mm.tif"
        p.write_bytes(blob)
        assert np.array_equal(read_tiff(p), pixels)


class TestWriterValidation:
    def test_rejects_3d(self, tmp_path):
        with pytest.raises(ValueError):
            write_tiff(tmp_path / "t.tif", np.zeros((2, 2, 3), dtype=np.uint8))

    def test_rejects_float(self, tmp_path):
        with pytest.raises(ValueError):
            write_tiff(tmp_path / "t.tif", np.zeros((2, 2), dtype=np.float32))


class TestMalformedInputs:
    def write_valid(self, tmp_path):
        p = tmp_path / "t.tif"
        write_tiff(p, np.arange(16, dtype=np.uint16).reshape(4, 4))
        return p

    def test_truncated_header(self, tmp_path):
        p = tmp_path / "t.tif"
        p.write_bytes(b"II\x2a\x00")
        with pytest.raises(TiffError, match="too small"):
            read_tiff(p)

    def test_bad_byte_order(self, tmp_path):
        p = tmp_path / "t.tif"
        p.write_bytes(b"XX" + b"\x00" * 20)
        with pytest.raises(TiffError, match="byte-order"):
            read_tiff(p)

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "t.tif"
        p.write_bytes(struct.pack("<2sHI", b"II", 44, 8) + b"\x00" * 16)
        with pytest.raises(TiffError, match="magic"):
            read_tiff(p)

    def test_bad_bigtiff_header(self, tmp_path):
        p = tmp_path / "t.tif"
        # Magic 43 is BigTIFF, but the offset size must be 8.
        p.write_bytes(struct.pack("<2sHHH", b"II", 43, 4, 0) + b"\x00" * 16)
        with pytest.raises(TiffError, match="BigTIFF"):
            read_tiff(p)

    def test_truncated_pixel_data(self, tmp_path):
        p = self.write_valid(tmp_path)
        blob = p.read_bytes()
        p.write_bytes(blob[:-8])  # chop the last strip bytes
        with pytest.raises(TiffError, match="truncated"):
            read_tiff(p)

    def test_unsupported_compression(self, tmp_path):
        p = self.write_valid(tmp_path)
        blob = bytearray(p.read_bytes())
        # Patch the Compression tag value (find tag 259 in the IFD).
        n = struct.unpack_from("<H", blob, 8)[0]
        for i in range(n):
            off = 10 + 12 * i
            tag = struct.unpack_from("<H", blob, off)[0]
            if tag == 259:
                struct.pack_into("<H", blob, off + 8, 5)  # LZW
        p.write_bytes(bytes(blob))
        with pytest.raises(TiffError, match="compression"):
            read_tiff(p)

    def test_strip_size_mismatch_detected(self, tmp_path):
        p = self.write_valid(tmp_path)
        blob = bytearray(p.read_bytes())
        n = struct.unpack_from("<H", blob, 8)[0]
        for i in range(n):
            off = 10 + 12 * i
            tag = struct.unpack_from("<H", blob, off)[0]
            if tag == 257:  # claim more rows than the strips hold
                struct.pack_into("<I", blob, off + 8, 400)
        p.write_bytes(bytes(blob))
        with pytest.raises(TiffError):
            read_tiff(p)
