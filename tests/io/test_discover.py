"""Foreign-dataset adoption via TileDataset.discover."""

import numpy as np
import pytest

from repro.core.stitcher import Stitcher
from repro.io.dataset import TileDataset
from repro.io.tiff import write_tiff
from repro.synth import make_synthetic_dataset


class TestDiscover:
    @pytest.fixture
    def foreign_dir(self, tmp_path):
        """A tile directory with NO dataset.json (as a real scope emits)."""
        src = make_synthetic_dataset(
            tmp_path / "src", rows=3, cols=4, tile_height=64, tile_width=64,
            overlap=0.25, seed=55,
        )
        (tmp_path / "src" / "dataset.json").unlink()
        return tmp_path / "src", src

    def test_infers_grid_and_tile_shape(self, foreign_dir):
        d, _ = foreign_dir
        ds = TileDataset.discover(d, overlap=0.25)
        assert (ds.rows, ds.cols) == (3, 4)
        assert ds.tile_shape == (64, 64)
        assert ds.metadata.bit_depth == 16
        assert ds.metadata.true_positions is None

    def test_discovered_dataset_stitches(self, foreign_dir):
        d, src = foreign_dir
        ds = TileDataset.discover(d, overlap=0.25)
        res = Stitcher().stitch(ds)
        # Score against the original ground truth.
        true = np.asarray(src.metadata.true_positions)
        true0 = true - true.reshape(-1, 2).min(axis=0)
        assert np.array_equal(res.positions.positions, true0)

    def test_ignores_unrelated_files(self, foreign_dir):
        d, _ = foreign_dir
        (d / "notes.txt").write_text("lab notebook")
        ds = TileDataset.discover(d, overlap=0.25)
        assert (ds.rows, ds.cols) == (3, 4)

    def test_hole_detected(self, foreign_dir):
        d, src = foreign_dir
        src.path(1, 2).unlink()
        with pytest.raises(ValueError, match="holes"):
            TileDataset.discover(d, overlap=0.25)

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            TileDataset.discover(tmp_path / "empty")

    def test_sequential_pattern_needs_dims(self, tmp_path):
        d = tmp_path / "seq"
        d.mkdir()
        for i in range(4):
            write_tiff(d / f"img_{i:04d}.tif", np.zeros((8, 8), dtype=np.uint16))
        with pytest.raises(ValueError, match="grid dimensions"):
            TileDataset.discover(d, pattern="img_{seq:04d}.tif")
