"""BigTIFF round-trips, windowed reads, and >4 GiB offsets without the GiBs.

The >4 GiB fixture relies on :meth:`TiffStripWriter.skip_rows`: skipped
rows are seeked over, not written, so the file is logically huge but
sparse on disk (a few KiB of actual blocks) -- strip offsets past the
classic 32-bit limit get exercised without a multi-GB artifact.
"""

import struct

import numpy as np
import pytest

from repro.io.tiff import (
    TiffError,
    TiffReader,
    TiffStripWriter,
    read_tiff,
    write_tiff,
)


class TestBigTiffRoundTrip:
    def test_forced_bigtiff_roundtrips(self, tmp_path):
        rng = np.random.default_rng(3)
        img = rng.integers(0, 65536, (41, 29)).astype(np.uint16)
        p = tmp_path / "big.tif"
        with TiffStripWriter(p, 41, 29, np.uint16, bigtiff=True) as w:
            w.write_rows(img[:17])
            w.write_rows(img[17:])
        assert p.read_bytes()[:4] == struct.pack("<2sH", b"II", 43)
        assert np.array_equal(read_tiff(p), img)

    def test_forced_bigtiff_uint8(self, tmp_path):
        img = np.arange(77, dtype=np.uint8).reshape(7, 11)
        p = tmp_path / "big8.tif"
        with TiffStripWriter(p, 7, 11, np.uint8, bigtiff=True) as w:
            w.write_rows(img)
        assert np.array_equal(read_tiff(p), img)

    def test_auto_stays_classic_for_small_images(self, tmp_path):
        p = tmp_path / "small.tif"
        with TiffStripWriter(p, 4, 4, np.uint16) as w:
            w.write_rows(np.zeros((4, 4), dtype=np.uint16))
        assert p.read_bytes()[:4] == struct.pack("<2sH", b"II", 42)

    def test_multi_strip_layout_roundtrips(self, tmp_path):
        rng = np.random.default_rng(5)
        img = rng.integers(0, 65536, (23, 9)).astype(np.uint16)
        for big in (False, True):
            p = tmp_path / f"strips-{big}.tif"
            with TiffStripWriter(p, 23, 9, np.uint16,
                                 rows_per_strip=4, bigtiff=big) as w:
                w.write_rows(img[:10])  # bands need not align to strips
                w.write_rows(img[10:])
            assert np.array_equal(read_tiff(p), img)

    def test_classic_writer_rejects_huge_image(self, tmp_path):
        # 70k x 35k u16 = ~4.9 GB of pixels: classic offsets cannot
        # address it, and the error should say to use BigTIFF.
        with pytest.raises(TiffError, match="BigTIFF"):
            TiffStripWriter(tmp_path / "too-big.tif", 70_000, 35_000,
                            np.uint16, bigtiff=False)

    def test_auto_promotes_huge_image_to_bigtiff(self, tmp_path):
        p = tmp_path / "auto.tif"
        w = TiffStripWriter(p, 70_000, 35_000, np.uint16)  # bigtiff="auto"
        try:
            assert w.bigtiff
        finally:
            w._closed = True
            w._file.close()


class TestSparseHugeOffsets:
    def test_offsets_past_4gib_roundtrip_sparse(self, tmp_path):
        """Strip offsets beyond 2**32 read back, with no multi-GB artifact.

        100k rows x 25k u16 columns = ~5 GB logical pixel data.  All rows
        but the first and last bands are skip_rows()-sparse, so the file
        consumes only a few data blocks on disk while its last strip
        offset sits past the classic 32-bit limit.
        """
        height, width = 100_000, 25_000
        rows_per_strip = 1000
        rng = np.random.default_rng(9)
        first = rng.integers(0, 65536, (8, width)).astype(np.uint16)
        last = rng.integers(0, 65536, (8, width)).astype(np.uint16)
        p = tmp_path / "huge.tif"
        with TiffStripWriter(p, height, width, np.uint16,
                             rows_per_strip=rows_per_strip) as w:
            assert w.bigtiff  # auto-promoted
            w.write_rows(first)
            w.skip_rows(height - 16)
            w.write_rows(last)

        logical = p.stat().st_size
        assert logical > 2**32  # the offsets really are past 4 GiB
        physical = p.stat().st_blocks * 512
        assert physical < 64 * 1024 * 1024  # sparse: no multi-GB artifact

        with TiffReader(p) as r:
            assert r.bigtiff
            assert (r.height, r.width) == (height, width)
            assert r.offsets[-1] > 2**32
            assert np.array_equal(r.read_rows(0, 8), first)
            assert np.array_equal(r.read_rows(height - 8, height), last)
            # Skipped region reads back as zeros.
            mid = r.read_rows(height // 2, height // 2 + 2)
            assert not mid.any()

    def test_skip_rows_validation(self, tmp_path):
        w = TiffStripWriter(tmp_path / "s.tif", 10, 4, np.uint16)
        with pytest.raises(ValueError, match="overruns"):
            w.skip_rows(11)
        with pytest.raises(ValueError):
            w.skip_rows(-1)
        w.skip_rows(10)
        w.close()
        assert not read_tiff(tmp_path / "s.tif").any()


class TestTiffReaderWindowed:
    def make(self, tmp_path, h=37, w=23, rows_per_strip=None,
             compression="none", seed=0):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 65536, (h, w)).astype(np.uint16)
        p = tmp_path / "img.tif"
        write_tiff(p, img, rows_per_strip=rows_per_strip,
                   compression=compression)
        return p, img

    @pytest.mark.parametrize("rows_per_strip", [None, 1, 5, 37, 100])
    @pytest.mark.parametrize("compression", ["none", "packbits"])
    def test_read_rows_any_window(self, tmp_path, rows_per_strip, compression):
        p, img = self.make(tmp_path, rows_per_strip=rows_per_strip,
                           compression=compression)
        with TiffReader(p) as r:
            for y0, y1 in [(0, 37), (0, 1), (36, 37), (3, 18), (17, 23)]:
                assert np.array_equal(r.read_rows(y0, y1), img[y0:y1])

    def test_read_region(self, tmp_path):
        p, img = self.make(tmp_path)
        with TiffReader(p) as r:
            got = r.read_region(5, 7, 11, 13)
            assert np.array_equal(got, img[5:16, 7:20])

    def test_window_validation(self, tmp_path):
        p, _ = self.make(tmp_path)
        with TiffReader(p) as r:
            with pytest.raises(ValueError):
                r.read_rows(5, 5)
            with pytest.raises(ValueError):
                r.read_rows(0, 38)
            with pytest.raises(ValueError):
                r.read_region(0, 20, 2, 10)

    def test_matches_read_tiff(self, tmp_path):
        p, img = self.make(tmp_path, compression="packbits")
        with TiffReader(p) as r:
            assert np.array_equal(r.read(), read_tiff(p))
            assert np.array_equal(r.read(), img)

    def test_big_endian_input(self, tmp_path):
        """MM files (big-endian) decode to native-endian arrays."""
        img = np.arange(12, dtype=np.uint16).reshape(3, 4)
        p = tmp_path / "mm.tif"
        entries = [
            (256, 4, 1, (4,)), (257, 4, 1, (3,)), (258, 3, 1, (16,)),
            (259, 3, 1, (1,)), (262, 3, 1, (1,)), (273, 4, 1, (None,)),
            (277, 3, 1, (1,)), (278, 4, 1, (3,)), (279, 4, 1, (24,)),
        ]
        data_off = 8 + 2 + 12 * len(entries) + 4
        blob = struct.pack(">2sHI", b"MM", 42, 8)
        blob += struct.pack(">H", len(entries))
        for tag, typ, count, (val,) in entries:
            v = data_off if val is None else val
            if typ == 3:
                blob += struct.pack(">HHIHH", tag, typ, count, v, 0)
            else:
                blob += struct.pack(">HHII", tag, typ, count, v)
        blob += struct.pack(">I", 0)
        blob += img.astype(">u2").tobytes()
        p.write_bytes(blob)
        got = read_tiff(p)
        assert got.dtype == np.uint16
        assert np.array_equal(got, img)
