"""Sequence-numbered tile addressing (acquisition-order file names)."""

import numpy as np
import pytest

from repro.core.stitcher import Stitcher
from repro.io.dataset import FilePattern, TileDataset
from repro.synth import make_synthetic_dataset


class TestSequentialFilePattern:
    def test_format_and_parse(self):
        fp = FilePattern("img_{seq:04d}.tif")
        assert fp.is_sequential
        assert fp.filename(0, 0, seq=17) == "img_0017.tif"
        assert fp.parse("img_0017.tif") == ("seq", 17)

    def test_seq_required(self):
        fp = FilePattern("img_{seq:04d}.tif")
        with pytest.raises(ValueError, match="sequence"):
            fp.filename(1, 2)

    def test_grid_pattern_not_sequential(self):
        assert not FilePattern().is_sequential

    def test_bad_sequential_pattern(self):
        with pytest.raises(ValueError):
            FilePattern("static_{seq_broken.tif")


class TestSequentialDataset:
    def make(self, tmp_path, numbering="row-serpentine", origin="ul"):
        rng = np.random.default_rng(0)
        tiles = rng.integers(0, 65535, (3, 4, 16, 16)).astype(np.uint16)
        ds = TileDataset.create(
            tmp_path / "ds", tiles, overlap=0.1,
            pattern="img_{seq:04d}.tif",
            numbering=numbering, origin=origin,
        )
        return ds, tiles

    def test_serpentine_layout_on_disk(self, tmp_path):
        ds, tiles = self.make(tmp_path)
        # Row 0 left-to-right: (0,0)=0000 ... (0,3)=0003.
        assert ds.path(0, 0).name == "img_0000.tif"
        assert ds.path(0, 3).name == "img_0003.tif"
        # Row 1 reverses: (1,3)=0004, (1,0)=0007.
        assert ds.path(1, 3).name == "img_0004.tif"
        assert ds.path(1, 0).name == "img_0007.tif"

    def test_pixels_round_trip_through_sequence_mapping(self, tmp_path):
        ds, tiles = self.make(tmp_path)
        for r in range(3):
            for c in range(4):
                assert np.array_equal(ds.load(r, c, dtype=None), tiles[r, c])

    def test_reload_from_metadata(self, tmp_path):
        ds, tiles = self.make(tmp_path, numbering="column", origin="lr")
        again = TileDataset(tmp_path / "ds")
        assert np.array_equal(again.load(2, 1, dtype=None), tiles[2, 1])

    def test_all_files_distinct(self, tmp_path):
        ds, _ = self.make(tmp_path)
        names = {ds.path(r, c).name for r in range(3) for c in range(4)}
        assert len(names) == 12

    def test_stitching_sequential_dataset(self, tmp_path):
        """End-to-end: rewrite a synthetic dataset under sequence naming
        and stitch it; positions must still be exact."""
        src = make_synthetic_dataset(
            tmp_path / "src", rows=3, cols=3, tile_height=64, tile_width=64,
            overlap=0.25, seed=12,
        )
        tiles = np.stack([
            np.stack([src.load(r, c, dtype=None) for c in range(3)])
            for r in range(3)
        ])
        seq_ds = TileDataset.create(
            tmp_path / "seq", tiles, overlap=0.25,
            pattern="tile_{seq:03d}.tif", numbering="row-serpentine",
            true_positions=src.metadata.true_positions,
        )
        res = Stitcher().stitch(seq_ds)
        assert res.position_errors().max() == 0.0
