"""PackBits compression: codec-level and TIFF-level."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.io.tiff import (
    TiffError,
    packbits_decode,
    packbits_encode,
    read_tiff,
    write_tiff,
)


class TestPackbitsCodec:
    @pytest.mark.parametrize("blob", [
        b"", b"a", b"ab", b"aaa", b"aaaa" * 100, bytes(range(256)),
        b"ab" + b"c" * 10 + b"de", b"x" * 128, b"x" * 129, b"x" * 1000,
    ])
    def test_roundtrip_cases(self, blob):
        assert packbits_decode(packbits_encode(blob), len(blob)) == blob

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=600))
    def test_roundtrip_property(self, blob):
        assert packbits_decode(packbits_encode(blob), len(blob)) == blob

    def test_runs_compress(self):
        blob = b"\x00" * 1000
        assert len(packbits_encode(blob)) < 20

    def test_literals_bounded_expansion(self):
        blob = bytes(range(256)) * 4
        # Worst case adds one control byte per 128 literals.
        assert len(packbits_encode(blob)) <= len(blob) + len(blob) // 128 + 2

    def test_decode_truncated_stream(self):
        with pytest.raises(TiffError, match="exhausted"):
            packbits_decode(b"", 4)

    def test_decode_overrun_literal(self):
        with pytest.raises(TiffError, match="overruns"):
            packbits_decode(b"\x05ab", 6)

    def test_decode_missing_repeat_byte(self):
        with pytest.raises(TiffError, match="missing"):
            packbits_decode(b"\xfe", 3)

    def test_noop_byte_skipped(self):
        # 0x80 is a no-op per the spec.
        assert packbits_decode(b"\x80\x00a", 1) == b"a"


class TestPackbitsTiff:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16])
    def test_roundtrip(self, tmp_path, dtype):
        rng = np.random.default_rng(0)
        a = rng.integers(0, np.iinfo(dtype).max, (40, 33)).astype(dtype)
        p = tmp_path / "t.tif"
        write_tiff(p, a, compression="packbits")
        assert np.array_equal(read_tiff(p), a)

    def test_multi_strip_roundtrip(self, tmp_path):
        a = np.tile(np.arange(64, dtype=np.uint16), (50, 1))
        p = tmp_path / "t.tif"
        write_tiff(p, a, compression="packbits", rows_per_strip=7)
        assert np.array_equal(read_tiff(p), a)

    def test_flat_uint8_compresses(self, tmp_path):
        a = np.zeros((128, 128), dtype=np.uint8)
        p1, p2 = tmp_path / "a.tif", tmp_path / "b.tif"
        write_tiff(p1, a)
        write_tiff(p2, a, compression="packbits")
        assert p2.stat().st_size < p1.stat().st_size / 10

    def test_unknown_compression_name(self, tmp_path):
        with pytest.raises(ValueError, match="compression"):
            write_tiff(tmp_path / "t.tif", np.zeros((2, 2), dtype=np.uint8),
                       compression="lzw")

    def test_dataset_pipeline_with_packbits_tiles(self, tmp_path):
        """A dataset whose tiles were rewritten PackBits still stitches."""
        from repro.core.stitcher import Stitcher
        from repro.io.dataset import TileDataset
        from repro.synth import make_synthetic_dataset

        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=3, cols=3, tile_height=64, tile_width=64,
            overlap=0.25, seed=6,
        )
        for r in range(3):
            for c in range(3):
                tile = ds.load(r, c, dtype=None)
                write_tiff(ds.path(r, c), tile, compression="packbits")
        res = Stitcher().stitch(TileDataset(ds.directory))
        assert res.position_errors().max() == 0.0
