"""Byte-budgeted LRU tile cache: bounds, eviction order, counters."""

import numpy as np
import pytest

from repro.io.dataset import TileCache


def make_loader(nbytes_per_tile=128):
    calls = []

    def load(r, c):
        calls.append((r, c))
        return np.full(nbytes_per_tile, r * 16 + c, dtype=np.uint8)

    return load, calls


class TestTileCache:
    def test_hit_avoids_reload(self):
        load, calls = make_loader()
        cache = TileCache(load, 1024)
        a = cache.load(0, 0)
        b = cache.load(0, 0)
        assert calls == [(0, 0)]
        assert a is b
        assert (cache.hits, cache.misses) == (1, 1)

    def test_byte_budget_is_hard(self):
        load, _ = make_loader(128)
        cache = TileCache(load, 300)  # fits two 128-B tiles, not three
        for c in range(5):
            cache.load(0, c)
            assert cache.current_bytes <= 300
        assert cache.evictions == 3
        assert cache.peak_bytes <= 300

    def test_lru_eviction_order(self):
        load, calls = make_loader(128)
        cache = TileCache(load, 256)  # exactly two tiles
        cache.load(0, 0)
        cache.load(0, 1)
        cache.load(0, 0)  # refresh (0,0): now (0,1) is LRU
        cache.load(0, 2)  # evicts (0,1)
        calls.clear()
        cache.load(0, 0)
        assert calls == []  # still cached
        cache.load(0, 1)
        assert calls == [(0, 1)]  # was evicted, reloaded

    def test_oversized_tile_served_load_through(self):
        load, calls = make_loader(512)
        cache = TileCache(load, 300)
        cache.load(0, 0)
        cache.load(0, 0)
        assert len(calls) == 2  # never cached
        assert cache.current_bytes == 0
        assert len(cache) == 0

    def test_cached_arrays_are_read_only(self):
        load, _ = make_loader()
        cache = TileCache(load, 1024)
        arr = cache.load(0, 0)
        with pytest.raises(ValueError):
            arr[0] = 99

    def test_stats_snapshot(self):
        load, _ = make_loader(128)
        cache = TileCache(load, 256)
        cache.load(0, 0)
        cache.load(0, 0)
        cache.load(0, 1)
        cache.load(0, 2)
        s = cache.stats()
        assert s["hits"] == 1
        assert s["misses"] == 3
        assert s["evictions"] == 1
        assert s["entries"] == 2
        assert s["current_bytes"] == 256
        assert s["peak_bytes"] == 256
        assert s["capacity_bytes"] == 256

    def test_clear(self):
        load, _ = make_loader()
        cache = TileCache(load, 1024)
        cache.load(0, 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TileCache(lambda r, c: None, -1)

    def test_zero_capacity_is_pure_passthrough(self):
        load, calls = make_loader()
        cache = TileCache(load, 0)
        cache.load(0, 0)
        cache.load(0, 0)
        assert len(calls) == 2
