"""Shared fixtures: session-scoped synthetic datasets.

Dataset generation (plate synthesis + TIFF encode) costs ~1 s per call, so
the common configurations are generated once per session and shared
read-only across test modules.
"""

from __future__ import annotations

import pytest

from repro.synth import make_synthetic_dataset


@pytest.fixture(scope="session")
def dataset_4x4(tmp_path_factory):
    """4x4 grid, 64 px tiles, 25 % overlap -- the workhorse fixture."""
    d = tmp_path_factory.mktemp("ds4x4")
    return make_synthetic_dataset(
        d, rows=4, cols=4, tile_height=64, tile_width=64, overlap=0.25, seed=11
    )


@pytest.fixture(scope="session")
def dataset_3x5(tmp_path_factory):
    """Non-square grid to catch row/col transposition bugs."""
    d = tmp_path_factory.mktemp("ds3x5")
    return make_synthetic_dataset(
        d, rows=3, cols=5, tile_height=48, tile_width=72, overlap=0.25, seed=23
    )


@pytest.fixture(scope="session")
def reference_displacements(dataset_4x4):
    """Simple-CPU phase-1 output for the 4x4 dataset (the ground line)."""
    from repro.impls import SimpleCpu

    return SimpleCpu().run(dataset_4x4)
