"""Monitor-queue stress: N producers x M consumers under contention.

The pipeline's correctness rests on the queue's monitor semantics; these
tests hammer one queue from many threads with randomized timing jitter
and assert the invariants that matter to the stitcher: nothing lost,
nothing duplicated, per-producer FIFO, truthful telemetry, and a
``close()`` that wakes every blocked thread promptly.
"""

import random
import threading

import pytest

from repro.pipeline.queues import MonitorQueue, QueueClosed

JOIN_TIMEOUT = 20.0


def _run_stress(n_producers, n_consumers, items_each, maxsize, seed):
    q = MonitorQueue(maxsize=maxsize, name="stress")
    per_consumer = [[] for _ in range(n_consumers)]
    errors = []

    def producer(pid):
        rng = random.Random(f"{seed}-p{pid}")
        try:
            for i in range(items_each):
                q.put((pid, i))
                if rng.random() < 0.05:
                    threading.Event().wait(rng.random() * 0.001)
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    def consumer(cid):
        rng = random.Random(f"{seed}-c{cid}")
        out = per_consumer[cid]
        while True:
            try:
                out.append(q.get())
            except QueueClosed:
                return
            if rng.random() < 0.05:
                threading.Event().wait(rng.random() * 0.001)

    producers = [
        threading.Thread(target=producer, args=(p,)) for p in range(n_producers)
    ]
    consumers = [
        threading.Thread(target=consumer, args=(c,)) for c in range(n_consumers)
    ]
    for t in producers + consumers:
        t.start()
    for t in producers:
        t.join(timeout=JOIN_TIMEOUT)
        assert not t.is_alive(), "producer failed to finish (lost wakeup?)"
    q.close()
    for t in consumers:
        t.join(timeout=JOIN_TIMEOUT)
        assert not t.is_alive(), "consumer failed to drain after close()"
    assert not errors, errors
    return q, per_consumer


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize(
    "n_producers,n_consumers,maxsize",
    [(1, 1, 2), (4, 1, 3), (1, 4, 3), (4, 4, 2), (8, 3, 5)],
)
def test_no_loss_no_duplication(n_producers, n_consumers, maxsize, seed):
    items_each = 200
    q, per_consumer = _run_stress(
        n_producers, n_consumers, items_each, maxsize, seed
    )
    consumed = [item for out in per_consumer for item in out]
    expected = {(p, i) for p in range(n_producers) for i in range(items_each)}
    assert len(consumed) == len(expected), "items lost or duplicated"
    assert set(consumed) == expected


@pytest.mark.parametrize("seed", [3, 4])
@pytest.mark.parametrize("n_producers,n_consumers", [(4, 1), (4, 4)])
def test_fifo_per_producer(n_producers, n_consumers, seed):
    """Each consumer sees any one producer's items in send order.

    The queue dequeues in global FIFO order and every consumer's gets are
    a subsequence of that order, so within a single consumer's stream the
    per-producer sequence numbers must be strictly increasing.
    """
    _, per_consumer = _run_stress(n_producers, n_consumers, 300, 4, seed)
    for out in per_consumer:
        last = {}
        for pid, i in out:
            assert i > last.get(pid, -1), (
                f"producer {pid} item {i} out of order after {last.get(pid)}"
            )
            last[pid] = i


@pytest.mark.parametrize("seed", [5, 6])
def test_telemetry_exact_under_contention(seed):
    n_producers, n_consumers, items_each, maxsize = 4, 4, 250, 3
    q, _ = _run_stress(n_producers, n_consumers, items_each, maxsize, seed)
    total = n_producers * items_each
    assert q.total_put == total
    assert q.total_get == total
    assert 1 <= q.peak_depth <= maxsize
    assert len(q) == 0


def test_close_wakes_every_blocked_producer_and_consumer():
    full = MonitorQueue(maxsize=1, name="full")
    full.put("plug")
    empty = MonitorQueue(name="empty")
    raised = []
    lock = threading.Lock()

    def blocked_put():
        try:
            full.put("never fits")
        except QueueClosed:
            with lock:
                raised.append("put")

    def blocked_get():
        try:
            empty.get()
        except QueueClosed:
            with lock:
                raised.append("get")

    threads = [threading.Thread(target=blocked_put) for _ in range(3)]
    threads += [threading.Thread(target=blocked_get) for _ in range(3)]
    for t in threads:
        t.start()
    # Let them all reach their condition wait, then close.
    threading.Event().wait(0.1)
    full.close()
    empty.close()
    for t in threads:
        t.join(timeout=5.0)
        assert not t.is_alive(), "close() left a thread blocked"
    assert sorted(raised) == ["get"] * 3 + ["put"] * 3


@pytest.mark.parametrize("seed", [7, 8, 9])
def test_abort_storm_close_while_puts_blocked(seed):
    """Watchdog-abort teardown: close() fired from a third thread while
    producers are blocked mid-``put`` on a full queue and consumers have
    stopped draining.  Nobody deadlocks, every producer sees
    :class:`QueueClosed`, and telemetry stays consistent.
    """
    rng = random.Random(seed)
    q = MonitorQueue(maxsize=2, name="abort-storm")
    n_producers = 6
    outcomes = []
    lock = threading.Lock()

    def producer(pid):
        sent = 0
        try:
            for i in range(100):
                q.put((pid, i))
                sent += 1
        except QueueClosed:
            pass
        with lock:
            outcomes.append(sent)

    consumed = []

    def lazy_consumer():
        # Drains a few items then wedges (a stalled downstream stage),
        # guaranteeing producers are parked in put() when close() lands.
        for _ in range(rng.randint(0, 4)):
            try:
                consumed.append(q.get(timeout=1.0))
            except QueueClosed:
                return

    producers = [
        threading.Thread(target=producer, args=(p,)) for p in range(n_producers)
    ]
    consumer = threading.Thread(target=lazy_consumer)
    for t in [*producers, consumer]:
        t.start()
    threading.Event().wait(0.05 + rng.random() * 0.05)
    assert q.depth() == len(q)  # lock-free depth agrees while contended
    q.close()  # the watchdog's abort path
    for t in [*producers, consumer]:
        t.join(timeout=JOIN_TIMEOUT)
        assert not t.is_alive(), "abort-close left a thread blocked in put()"
    assert len(outcomes) == n_producers
    # Whatever was accepted is accounted for: consumed + still queued.
    assert q.total_put == sum(outcomes)
    assert q.total_get == len(consumed)
    assert q.total_put - q.total_get == q.depth()


def test_depth_is_lock_free_and_truthful():
    q = MonitorQueue(maxsize=0, name="depth")
    assert q.depth() == 0
    for i in range(5):
        q.put(i)
    assert q.depth() == 5 == len(q)
    q.get()
    assert q.depth() == 4
