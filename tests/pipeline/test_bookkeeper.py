"""Bookkeeper state machine: pair readiness, refcounts, partitions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.neighbors import grid_pairs
from repro.grid.tile_grid import GridPosition, TileGrid
from repro.grid.traversal import Traversal, traverse
from repro.pipeline.bookkeeper import PairBookkeeper


class TestTransformReady:
    def test_pair_emitted_once_both_ready(self):
        bk = PairBookkeeper(TileGrid(1, 2))
        assert bk.transform_ready(GridPosition(0, 0)) == []
        pairs = bk.transform_ready(GridPosition(0, 1))
        assert len(pairs) == 1

    def test_duplicate_ready_rejected(self):
        bk = PairBookkeeper(TileGrid(2, 2))
        bk.transform_ready(GridPosition(0, 0))
        with pytest.raises(ValueError):
            bk.transform_ready(GridPosition(0, 0))

    def test_outside_grid_rejected(self):
        bk = PairBookkeeper(TileGrid(2, 2))
        with pytest.raises(ValueError):
            bk.transform_ready(GridPosition(5, 5))

    @given(
        rows=st.integers(1, 5), cols=st.integers(1, 5),
        order=st.sampled_from(list(Traversal)),
    )
    def test_every_pair_emitted_exactly_once(self, rows, cols, order):
        grid = TileGrid(rows, cols)
        bk = PairBookkeeper(grid)
        emitted = []
        for pos in traverse(grid, order):
            emitted.extend(bk.transform_ready(pos))
        assert len(emitted) == bk.total_pairs
        assert len(set(emitted)) == len(emitted)


class TestPairCompleted:
    def run_grid(self, rows, cols):
        grid = TileGrid(rows, cols)
        bk = PairBookkeeper(grid)
        freed_all = []
        for pos in traverse(grid, Traversal.CHAINED_DIAGONAL):
            for pair in bk.transform_ready(pos):
                freed_all.extend(bk.pair_completed(pair))
        return bk, freed_all

    def test_all_tiles_eventually_freed(self):
        bk, freed = self.run_grid(3, 4)
        assert bk.all_pairs_completed()
        assert len(freed) == 12
        assert len(set(freed)) == 12

    def test_double_completion_rejected(self):
        grid = TileGrid(1, 2)
        bk = PairBookkeeper(grid)
        bk.transform_ready(GridPosition(0, 0))
        (pair,) = bk.transform_ready(GridPosition(0, 1))
        bk.pair_completed(pair)
        with pytest.raises(ValueError):
            bk.pair_completed(pair)

    def test_unemitted_completion_rejected(self):
        grid = TileGrid(1, 2)
        bk = PairBookkeeper(grid)
        pair = next(iter(grid_pairs(grid)))
        with pytest.raises(ValueError):
            bk.pair_completed(pair)

    def test_pending_count(self):
        grid = TileGrid(2, 2)
        bk = PairBookkeeper(grid)
        assert bk.pending_pairs() == 4

    @given(rows=st.integers(1, 5), cols=st.integers(1, 5))
    def test_freed_tile_count_matches_grid(self, rows, cols):
        bk, freed = self.run_grid(rows, cols)
        if bk.total_pairs:
            assert len(freed) == rows * cols


class TestPartitions:
    def test_partition_refcounts_are_local(self):
        grid = TileGrid(2, 4)
        pairs = {p for p in grid_pairs(grid) if p.second.col >= 2 and p.first.col >= 1}
        bk = PairBookkeeper(grid, pairs=frozenset(pairs))
        # Ghost column 1 tiles carry only their in-partition pair count.
        assert bk._refcount[GridPosition(0, 1)] == 1  # west pair to (0,2) only
        assert GridPosition(0, 0) not in bk._refcount

    def test_partition_total_pairs(self):
        grid = TileGrid(2, 4)
        pairs = frozenset(p for p in grid_pairs(grid) if p.second.col >= 2)
        bk = PairBookkeeper(grid, pairs=pairs)
        assert bk.total_pairs == len(pairs)

    def test_partition_completion(self):
        grid = TileGrid(2, 3)
        pairs = frozenset(p for p in grid_pairs(grid) if p.second.col >= 1 and p.first.col >= 0)
        bk = PairBookkeeper(grid, pairs=pairs)
        freed = []
        for pos in sorted(bk.tiles):
            for pair in bk.transform_ready(pos):
                freed.extend(bk.pair_completed(pair))
        assert bk.all_pairs_completed()
        assert set(freed) == bk.tiles
