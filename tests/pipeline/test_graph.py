"""Pipeline wiring, execution, error surfacing."""

import pytest

from repro.pipeline.graph import Pipeline, PipelineError
from repro.pipeline.stage import END_OF_STREAM


def make_counter_source(n):
    it = iter(range(n))

    def handler(_item, _ctx):
        try:
            return next(it)
        except StopIteration:
            return END_OF_STREAM

    return handler


class TestChain:
    def test_three_stage_chain(self):
        pipe = Pipeline("test")
        results = []

        def sink(x, _ctx):
            results.append(x)
            return None

        pipe.add_chain(
            [
                ("src", make_counter_source(20), 1),
                ("square", lambda x, _ctx: x * x, 3),
                ("sink", sink, 1),
            ],
            queue_size=4,
        )
        pipe.run()
        assert sorted(results) == [i * i for i in range(20)]

    def test_stats(self):
        pipe = Pipeline("stats")
        pipe.add_chain(
            [("src", make_counter_source(5), 1), ("sink", lambda x, c: None, 2)]
        )
        pipe.run()
        s = pipe.stats()
        assert s["stages"]["sink"]["items"] == 5
        assert s["queues"]["src-out"]["total_put"] == 5

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline().run()


class TestErrorPropagation:
    def test_error_in_middle_stage_raises_pipeline_error(self):
        pipe = Pipeline("err")

        def bad(x, _ctx):
            if x == 7:
                raise ValueError("seven is right out")
            return x

        pipe.add_chain(
            [
                ("src", make_counter_source(20), 1),
                ("bad", bad, 2),
                ("sink", lambda x, c: None, 1),
            ]
        )
        with pytest.raises(PipelineError) as exc_info:
            pipe.run()
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_error_does_not_deadlock_bounded_queues(self):
        """A failing sink must unblock a producer stuck on a full queue."""
        pipe = Pipeline("deadlock")

        def bad_sink(x, _ctx):
            raise RuntimeError("sink dead on arrival")

        pipe.add_chain(
            [("src", make_counter_source(1000), 1), ("sink", bad_sink, 1)],
            queue_size=2,
        )
        with pytest.raises(PipelineError):
            pipe.run()  # must return, not hang

    def test_abort_closes_all_queues(self):
        pipe = Pipeline("abort")
        q1 = pipe.queue()
        q2 = pipe.queue()
        pipe.abort()
        assert q1.closed and q2.closed


class TestTelemetry:
    def test_busy_seconds_accumulates(self):
        import time

        pipe = Pipeline("busy")
        pipe.add_chain(
            [("src", make_counter_source(5), 1),
             ("work", lambda x, c: time.sleep(0.001) or x, 1),
             ("sink", lambda x, c: None, 1)]
        )
        pipe.run()
        stats = pipe.stats()
        assert stats["stages"]["work"]["busy_seconds"] >= 0.005
        assert stats["stages"]["work"]["items"] == 5

    def test_utilization_validation(self):
        pipe = Pipeline("u")
        pipe.add_chain([("src", make_counter_source(1), 1),
                        ("sink", lambda x, c: None, 1)])
        pipe.run()
        with pytest.raises(ValueError):
            pipe.utilization(0.0)
        util = pipe.utilization(1.0)
        assert set(util) == {"src", "sink"}
        assert all(v >= 0 for v in util.values())
