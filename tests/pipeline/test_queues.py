"""Monitor queues: FIFO, bounding, close semantics, concurrency."""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline.queues import MonitorQueue, QueueClosed


class TestBasics:
    def test_fifo_order(self):
        q = MonitorQueue()
        for i in range(10):
            q.put(i)
        assert [q.get() for _ in range(10)] == list(range(10))

    def test_len(self):
        q = MonitorQueue()
        q.put("a")
        q.put("b")
        assert len(q) == 2
        q.get()
        assert len(q) == 1

    def test_bounded_put_blocks_until_get(self):
        q = MonitorQueue(maxsize=1)
        q.put(1)
        done = threading.Event()

        def producer():
            q.put(2)
            done.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not done.is_set()  # blocked while full
        assert q.get() == 1
        t.join(timeout=2)
        assert done.is_set()

    def test_put_timeout(self):
        q = MonitorQueue(maxsize=1)
        q.put(1)
        with pytest.raises(TimeoutError):
            q.put(2, timeout=0.05)

    def test_get_timeout(self):
        q = MonitorQueue()
        with pytest.raises(TimeoutError):
            q.get(timeout=0.05)

    def test_telemetry(self):
        q = MonitorQueue(maxsize=4, name="telemetry")
        for i in range(3):
            q.put(i)
        q.get()
        q.put(99)
        assert q.peak_depth == 3
        assert q.total_put == 4


class TestClose:
    def test_put_after_close_raises(self):
        q = MonitorQueue()
        q.close()
        with pytest.raises(QueueClosed):
            q.put(1)

    def test_get_drains_then_raises(self):
        q = MonitorQueue()
        q.put(1)
        q.put(2)
        q.close()
        assert q.get() == 1
        assert q.get() == 2
        with pytest.raises(QueueClosed):
            q.get()

    def test_close_unblocks_waiting_consumers(self):
        q = MonitorQueue()
        results = []

        def consumer():
            try:
                q.get()
            except QueueClosed:
                results.append("closed")

        threads = [threading.Thread(target=consumer, daemon=True) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        q.close()
        for t in threads:
            t.join(timeout=2)
        assert results == ["closed"] * 3

    def test_close_unblocks_waiting_producer(self):
        q = MonitorQueue(maxsize=1)
        q.put(1)
        result = []

        def producer():
            try:
                q.put(2)
            except QueueClosed:
                result.append("closed")

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2)
        assert result == ["closed"]

    def test_close_idempotent(self):
        q = MonitorQueue()
        q.close()
        q.close()
        assert q.closed


class TestConcurrency:
    @settings(max_examples=5, deadline=None)
    @given(
        n_producers=st.integers(1, 4),
        n_consumers=st.integers(1, 4),
        items_each=st.integers(1, 50),
        maxsize=st.sampled_from([0, 1, 3, 16]),
    )
    def test_no_loss_no_duplication(self, n_producers, n_consumers, items_each, maxsize):
        """Every produced item is consumed exactly once under contention."""
        q = MonitorQueue(maxsize=maxsize)
        consumed: list = []
        lock = threading.Lock()

        def producer(pid):
            for i in range(items_each):
                q.put((pid, i))

        def consumer():
            while True:
                try:
                    item = q.get()
                except QueueClosed:
                    return
                with lock:
                    consumed.append(item)

        producers = [threading.Thread(target=producer, args=(p,)) for p in range(n_producers)]
        consumers = [threading.Thread(target=consumer) for _ in range(n_consumers)]
        for t in producers + consumers:
            t.start()
        for t in producers:
            t.join()
        q.close()
        for t in consumers:
            t.join()
        expected = {(p, i) for p in range(n_producers) for i in range(items_each)}
        assert set(consumed) == expected
        assert len(consumed) == len(expected)

    def test_per_producer_order_preserved(self):
        q = MonitorQueue(maxsize=2)
        out = []

        def producer():
            for i in range(100):
                q.put(i)

        def consumer():
            while True:
                try:
                    out.append(q.get())
                except QueueClosed:
                    return

        tp = threading.Thread(target=producer)
        tc = threading.Thread(target=consumer)
        tp.start(); tc.start()
        tp.join(); q.close(); tc.join()
        assert out == list(range(100))


class TestTimeoutDeadline:
    """Regression: ``timeout`` is a total budget, not a per-wakeup budget.

    The original ``put``/``get`` re-armed ``Condition.wait(timeout)`` with
    the caller's *full* timeout after every wakeup, so any wakeup churn
    (notify traffic that does not free capacity, or spurious wakeups)
    reset the clock and a "0.2 s" timeout could block forever.  These
    tests generate exactly that churn and bound the wall-clock.
    """

    @staticmethod
    def _churn(q, condition_name, stop, period=0.02):
        cond = getattr(q, condition_name)
        while not stop.is_set():
            with q._lock:
                cond.notify_all()
            time.sleep(period)

    def test_contended_put_times_out_within_budget(self):
        q = MonitorQueue(maxsize=1)
        q.put("occupies the only slot")
        stop = threading.Event()
        churn = threading.Thread(
            target=self._churn, args=(q, "_not_full", stop), daemon=True
        )
        churn.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(TimeoutError):
                q.put("never fits", timeout=0.2)
            elapsed = time.monotonic() - t0
        finally:
            stop.set()
            churn.join(timeout=2)
        assert 0.15 <= elapsed < 1.0, f"put blocked {elapsed:.2f}s for a 0.2s timeout"

    def test_contended_get_times_out_within_budget(self):
        q = MonitorQueue()
        stop = threading.Event()
        churn = threading.Thread(
            target=self._churn, args=(q, "_not_empty", stop), daemon=True
        )
        churn.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(TimeoutError):
                q.get(timeout=0.2)
            elapsed = time.monotonic() - t0
        finally:
            stop.set()
            churn.join(timeout=2)
        assert 0.15 <= elapsed < 1.0, f"get blocked {elapsed:.2f}s for a 0.2s timeout"

    def test_put_succeeds_if_capacity_frees_before_deadline(self):
        q = MonitorQueue(maxsize=1)
        q.put(1)
        threading.Timer(0.05, q.get).start()
        q.put(2, timeout=2.0)  # must not raise
        assert q.get() == 2
