"""ErrorPolicy / run_with_retries / stage retry-and-drop semantics,
Pipeline.result() aggregation, and queue-close races under failure.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.pipeline.graph import Pipeline, PipelineError, aggregate_failures
from repro.pipeline.queues import MonitorQueue, QueueClosed
from repro.pipeline.stage import (
    END_OF_STREAM,
    DroppedItem,
    ErrorPolicy,
    Stage,
    StageItemTimeout,
    run_with_retries,
)


class TestErrorPolicy:
    def test_defaults_are_strict(self):
        p = ErrorPolicy()
        assert p.max_retries == 0
        assert p.on_exhausted == "abort"

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            ErrorPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="on_exhausted"):
            ErrorPolicy(on_exhausted="explode")

    def test_delay_exponential(self):
        p = ErrorPolicy(max_retries=3, backoff=0.1, backoff_factor=2.0)
        assert p.delay(0) == pytest.approx(0.1)
        assert p.delay(1) == pytest.approx(0.2)
        assert p.delay(2) == pytest.approx(0.4)

    def test_delay_jitter_is_deterministic_and_bounded(self):
        p = ErrorPolicy(max_retries=3, backoff=0.1, jitter=0.5, seed=7)
        d1 = p.delay(1, key=("read", 3))
        d2 = p.delay(1, key=("read", 3))
        assert d1 == d2  # same (seed, attempt, key) -> same delay
        base = 0.1 * 2.0
        assert base <= d1 <= base * 1.5
        # A different key perturbs the jitter.
        assert p.delay(1, key=("read", 4)) != d1

    def test_zero_backoff_means_no_delay(self):
        assert ErrorPolicy(max_retries=2).delay(5) == 0.0


class TestRunWithRetries:
    def test_success_first_try(self):
        value, attempts = run_with_retries(lambda: 42, ErrorPolicy())
        assert (value, attempts) == (42, 0)

    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise IOError("transient")
            return "ok"

        retried = []
        value, attempts = run_with_retries(
            flaky,
            ErrorPolicy(max_retries=3),
            on_retry=lambda a, e: retried.append((a, type(e).__name__)),
            sleep=lambda s: None,
        )
        assert value == "ok"
        assert attempts == 2
        assert retried == [(0, "OSError"), (1, "OSError")]

    def test_exhaustion_raises_last_error(self):
        def always():
            raise ValueError("permanent")

        with pytest.raises(ValueError, match="permanent"):
            run_with_retries(always, ErrorPolicy(max_retries=2),
                             sleep=lambda s: None)

    def test_queue_closed_never_retried(self):
        calls = []

        def touch_closed_queue():
            calls.append(1)
            raise QueueClosed("q")

        with pytest.raises(QueueClosed):
            run_with_retries(touch_closed_queue, ErrorPolicy(max_retries=5))
        assert len(calls) == 1

    def test_non_retryable_fails_immediately(self):
        calls = []

        def bad():
            calls.append(1)
            raise TypeError("not retryable")

        with pytest.raises(TypeError):
            run_with_retries(
                bad, ErrorPolicy(max_retries=5, retryable=(IOError,))
            )
        assert len(calls) == 1

    def test_cooperative_timeout_counts_as_failed_attempt(self):
        calls = []

        def slow_then_fast():
            calls.append(1)
            if len(calls) == 1:
                time.sleep(0.05)
            return "done"

        value, attempts = run_with_retries(
            slow_then_fast,
            ErrorPolicy(max_retries=1, item_timeout=0.01),
            sleep=lambda s: None,
        )
        assert value == "done"
        assert attempts == 1

    def test_cooperative_timeout_exhausts(self):
        def always_slow():
            time.sleep(0.03)
            return "late"

        with pytest.raises(StageItemTimeout):
            run_with_retries(
                always_slow,
                ErrorPolicy(max_retries=1, item_timeout=0.001),
                sleep=lambda s: None,
            )

    def test_sleep_receives_backoff_delays(self):
        slept = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise IOError("x")
            return 1

        run_with_retries(
            flaky,
            ErrorPolicy(max_retries=2, backoff=0.1, backoff_factor=2.0),
            sleep=slept.append,
        )
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]


class TestStageWithPolicy:
    def _run_stage(self, handler, policy, items):
        q_in = MonitorQueue(name="in")
        q_out = MonitorQueue(name="out")
        stage = Stage("work", handler, workers=1, input=q_in, output=q_out,
                      policy=policy)
        for item in items:
            q_in.put(item)
        q_in.close()
        stage.start()
        stage.join()
        out = []
        while True:
            try:
                out.append(q_out.get(timeout=0.1))
            except QueueClosed:
                break
        return stage, out

    def test_skip_policy_drops_and_continues(self):
        def handler(item, ctx):
            if item == 2:
                raise IOError("bad item")
            return item * 10

        stage, out = self._run_stage(
            handler, ErrorPolicy(max_retries=1, on_exhausted="skip"),
            [1, 2, 3],
        )
        assert out == [10, 30]
        assert stage.errors == []
        assert len(stage.dropped) == 1
        d = stage.dropped[0]
        assert isinstance(d, DroppedItem)
        assert d.stage == "work"
        assert "2" in d.item
        assert isinstance(d.error, IOError)
        assert d.attempts == 2  # initial + 1 retry
        assert stage.items_retried == 1

    def test_abort_policy_propagates_after_retries(self):
        calls = []

        def handler(item, ctx):
            calls.append(item)
            raise IOError("always")

        stage, out = self._run_stage(
            handler, ErrorPolicy(max_retries=2, on_exhausted="abort"), [7]
        )
        assert out == []
        assert len(calls) == 3
        assert len(stage.errors) == 1
        assert isinstance(stage.errors[0], IOError)

    def test_transient_failure_recovers_without_drop(self):
        attempts = {}

        def handler(item, ctx):
            attempts[item] = attempts.get(item, 0) + 1
            if attempts[item] == 1:
                raise IOError("transient")
            return item

        stage, out = self._run_stage(
            handler, ErrorPolicy(max_retries=1, on_exhausted="skip"), [1, 2]
        )
        assert sorted(out) == [1, 2]
        assert stage.dropped == []
        assert stage.items_retried == 2


class TestPipelineResult:
    def test_result_returns_stats_on_success(self):
        pipe = Pipeline("ok")
        count = iter(range(3))

        def src(_item, _ctx):
            try:
                return next(count)
            except StopIteration:
                return END_OF_STREAM

        seen = []
        pipe.add_chain([("src", src, 1), ("sink", lambda i, c: seen.append(i), 1)])
        for s in pipe.stages:
            s.start()
        stats = pipe.result()
        assert sorted(seen) == [0, 1, 2]
        assert stats["stages"]["src"]["items"] >= 3
        assert stats["stages"]["sink"]["retried"] == 0
        assert stats["stages"]["sink"]["dropped"] == 0

    def test_result_raises_single_error_naming_all_stages(self):
        pipe = Pipeline("doomed")
        q1 = pipe.queue(name="a")

        sink_failed = threading.Event()

        def src(_item, _ctx):
            # The reader only dies after the sink has already failed, so
            # both failures are guaranteed to be present in the aggregate.
            sink_failed.wait(timeout=5)
            raise IOError("reader died")

        def sink(item, _ctx):
            try:
                raise ValueError("sink died")
            finally:
                sink_failed.set()

        pipe.stage("reader", src, workers=1, input=None, output=None)
        pipe.stage("sink", sink, workers=1, input=q1, output=None)
        for s in pipe.stages:
            s.start()
        q1.put("x")
        with pytest.raises(PipelineError) as exc_info:
            pipe.result()
        err = exc_info.value
        stages = {name for name, _ in err.failures}
        assert stages == {"reader", "sink"}
        assert len(err.failures) == 2
        # Message names both failing stages and both exception types.
        assert "reader" in str(err) and "sink" in str(err)
        assert "OSError" in str(err) and "ValueError" in str(err)
        # First failure chained for raise-from consumers.
        assert err.__cause__ is err.failures[0][1]

    def test_aggregate_failures_helper(self):
        e1, e2 = IOError("a"), ValueError("b")
        err = aggregate_failures("p", [("read", e1), ("read", e2)])
        assert isinstance(err, PipelineError)
        assert err.failures == [("read", e1), ("read", e2)]
        assert "2 worker errors" in str(err)
        assert err.__cause__ is e1


class TestQueueCloseRaces:
    """A stage erroring while peers block on queue ops must not hang."""

    JOIN_TIMEOUT = 10.0

    def _join_all(self, pipe: Pipeline) -> None:
        deadline = time.monotonic() + self.JOIN_TIMEOUT
        for s in pipe.stages:
            for t in s.threads:
                t.join(timeout=max(0.0, deadline - time.monotonic()))
                assert not t.is_alive(), (
                    f"worker {t.name} still alive after stage failure -- "
                    f"queue-close race left it blocked"
                )

    def test_consumer_blocked_on_get_unblocks_when_peer_stage_dies(self):
        pipe = Pipeline("race-get")
        q_dead = pipe.queue(name="never-fed")
        started = threading.Event()

        def blocked_sink(item, _ctx):  # pragma: no cover - never receives
            return None

        def doomed_src(_item, _ctx):
            started.wait(timeout=5)
            raise RuntimeError("boom")

        pipe.stage("sink", blocked_sink, workers=2, input=q_dead, output=None)
        pipe.stage("src", doomed_src, workers=1, input=None, output=None)
        for s in pipe.stages:
            s.start()
        started.set()
        self._join_all(pipe)
        with pytest.raises(PipelineError, match="src"):
            pipe.result()

    def test_producer_blocked_on_put_unblocks_when_peer_stage_dies(self):
        pipe = Pipeline("race-put")
        q_full = pipe.queue(maxsize=1, name="tiny")
        q_full.put("pre-filled")  # next put blocks

        def producer(_item, _ctx):
            q_full.put("overflow")  # blocks until the abort closes q_full
            return END_OF_STREAM

        def doomed(_item, _ctx):
            time.sleep(0.05)  # let the producer reach the blocking put
            raise RuntimeError("boom")

        pipe.stage("producer", producer, workers=1, input=None, output=None)
        pipe.stage("doomed", doomed, workers=1, input=None, output=None)
        for s in pipe.stages:
            s.start()
        self._join_all(pipe)
        with pytest.raises(PipelineError, match="doomed"):
            pipe.result()

    def test_multiworker_stage_one_worker_dies_all_terminate(self):
        pipe = Pipeline("race-multi")
        q_in = pipe.queue(name="work")

        def handler(item, _ctx):
            if item == "poison":
                raise RuntimeError("worker down")
            # Healthy workers block on the next get after this.
            return None

        pipe.stage("workers", handler, workers=4, input=q_in, output=None)
        for s in pipe.stages:
            s.start()
        for _ in range(8):
            q_in.put("ok")
        q_in.put("poison")
        self._join_all(pipe)
        with pytest.raises(PipelineError, match="workers"):
            pipe.result()

    def test_downstream_of_failed_stage_sees_end_of_stream(self):
        pipe = Pipeline("race-downstream")
        q_mid = pipe.queue(name="mid")
        received = []

        def src(_item, _ctx):
            raise RuntimeError("source exploded immediately")

        def sink(item, _ctx):
            received.append(item)
            return None

        pipe.stage("src", src, workers=1, input=None, output=q_mid)
        pipe.stage("sink", sink, workers=2, input=q_mid, output=None)
        for s in pipe.stages:
            s.start()
        self._join_all(pipe)
        assert received == []
        with pytest.raises(PipelineError, match="src"):
            pipe.result()
