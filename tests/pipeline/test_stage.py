"""Stage semantics: sources, consumers, shutdown, error propagation."""

import threading

import pytest

from repro.pipeline.queues import MonitorQueue, QueueClosed
from repro.pipeline.stage import END_OF_STREAM, Stage


def run_stage(stage):
    stage.start()
    stage.join()


class TestSourceStage:
    def test_emits_until_end_of_stream(self):
        out = MonitorQueue()
        data = iter(range(5))

        def handler(_item, _ctx):
            try:
                return next(data)
            except StopIteration:
                return END_OF_STREAM

        run_stage(Stage("src", handler, output=out))
        assert out.closed
        assert [out.get() for _ in range(5)] == list(range(5))

    def test_none_results_are_skipped(self):
        out = MonitorQueue()
        calls = []

        def handler(_item, ctx):
            calls.append(1)
            if len(calls) == 3:
                return END_OF_STREAM
            if len(calls) == 2:
                return None
            return "x"

        run_stage(Stage("src", handler, output=out))
        assert len(out) == 1


class TestConsumerStage:
    def test_processes_all_then_closes_output(self):
        q_in, q_out = MonitorQueue(), MonitorQueue()
        for i in range(10):
            q_in.put(i)
        q_in.close()
        run_stage(Stage("double", lambda x, _ctx: 2 * x, input=q_in, output=q_out))
        assert q_out.closed
        assert sorted(q_out.get() for _ in range(10)) == [2 * i for i in range(10)]

    def test_multiple_workers_consume_everything(self):
        q_in, q_out = MonitorQueue(), MonitorQueue()
        for i in range(100):
            q_in.put(i)
        q_in.close()
        run_stage(Stage("w", lambda x, _ctx: x, workers=4, input=q_in, output=q_out))
        got = sorted(q_out.get() for _ in range(100))
        assert got == list(range(100))

    def test_output_closed_only_after_last_worker(self):
        q_in, q_out = MonitorQueue(), MonitorQueue()
        barrier = threading.Barrier(2)

        def slow(x, _ctx):
            barrier.wait(timeout=5)
            return x

        for i in range(2):
            q_in.put(i)
        q_in.close()
        run_stage(Stage("slow", slow, workers=2, input=q_in, output=q_out))
        assert len(q_out) == 2

    def test_ctx_emit_fan_out(self):
        q_in, q_out = MonitorQueue(), MonitorQueue()
        q_in.put(3)
        q_in.close()

        def explode(n, ctx):
            for i in range(n):
                ctx.emit(i)
            return None

        run_stage(Stage("explode", explode, input=q_in, output=q_out))
        assert [q_out.get() for _ in range(3)] == [0, 1, 2]

    def test_items_processed_counter(self):
        q_in = MonitorQueue()
        for i in range(7):
            q_in.put(i)
        q_in.close()
        s = Stage("count", lambda x, _ctx: None, input=q_in)
        run_stage(s)
        assert s.items_processed == 7


class TestErrors:
    def test_worker_exception_recorded_and_queues_poisoned(self):
        q_in, q_out = MonitorQueue(), MonitorQueue()
        q_in.put("boom")

        def handler(x, _ctx):
            raise RuntimeError("kaboom")

        s = Stage("bad", handler, input=q_in, output=q_out)
        run_stage(s)
        assert len(s.errors) == 1
        assert q_out.closed
        assert q_in.closed

    def test_on_error_callback_invoked(self):
        q_in = MonitorQueue()
        q_in.put(1)
        called = []
        s = Stage(
            "bad",
            lambda x, _ctx: 1 / 0,
            input=q_in,
            on_error=lambda: called.append(True),
        )
        run_stage(s)
        assert called == [True]

    def test_downstream_close_exits_quietly(self):
        q_in, q_out = MonitorQueue(), MonitorQueue()
        q_out.close()  # downstream gone
        q_in.put(1)
        q_in.close()
        s = Stage("s", lambda x, _ctx: x, input=q_in, output=q_out)
        run_stage(s)
        assert s.errors == []  # QueueClosed is not an error

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            Stage("s", lambda x, c: x, workers=0)

    def test_double_start_rejected(self):
        q = MonitorQueue()
        q.close()
        s = Stage("s", lambda x, c: x, input=q)
        s.start()
        with pytest.raises(RuntimeError):
            s.start()
        s.join()
