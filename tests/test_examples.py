"""Smoke tests: every shipped example runs to completion.

Examples are the documentation users actually execute; a broken example is
a broken promise.  Each is run as a subprocess exactly as the README says.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


def test_quickstart(tmp_path):
    out = run_example("quickstart.py", str(tmp_path))
    assert "position error vs ground truth: max 0.0 px" in out
    assert (tmp_path / "mosaic.tif").exists()


def test_cell_colony_timeseries():
    out = run_example("cell_colony_timeseries.py")
    assert out.count("steerable: True") == 4
    assert "pos err max 0.0 px" in out


def test_sparse_early_experiment():
    out = run_example("sparse_early_experiment.py")
    assert "nearly empty" in out
    # The robust scheme's column must be all ~0 errors.
    for line in out.splitlines():
        if "|" in line and "err" not in line and "-" not in line[:3]:
            robust = line.rsplit("|", 1)[-1].strip()
            assert float(robust) <= 2.0


def test_implementation_comparison():
    out = run_example("implementation_comparison.py")
    assert out.count("yes") >= 6           # all impls match the reference
    assert "pipelined-gpu-2" in out


@pytest.mark.slow
def test_paper_figures():
    out = run_example("paper_figures.py", timeout=480.0)
    for marker in ("Table I", "Table II", "Fig. 5", "Fig. 10", "Fig. 11", "Fig. 12"):
        assert marker in out


def test_viewer_and_traces(tmp_path):
    out = run_example("viewer_and_traces.py", str(tmp_path))
    assert "kernel density" in out
    assert (tmp_path / "trace_simple_gpu.json").exists()
    assert (tmp_path / "overview_level3.tif").exists()
