"""End-to-end degraded stitching.

Two flavours of damage are exercised:

- physical: tile files deleted or truncated on disk (satellite test);
- injected: a seeded :class:`FaultPlan` wrapping the dataset (the
  ISSUE acceptance scenario, >= 3 fault kinds on a 6x6 grid).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stitcher import Stitcher
from repro.faults import FaultKind, FaultPlan
from repro.io.dataset import TileDataset
from repro.pipeline.graph import PipelineError
from repro.synth import make_synthetic_dataset


@pytest.fixture(scope="module")
def grid_6x6(tmp_path_factory):
    return make_synthetic_dataset(
        tmp_path_factory.mktemp("deg6"), rows=6, cols=6,
        tile_height=64, tile_width=64, overlap=0.25, seed=23,
    )


@pytest.fixture(scope="module")
def clean_result(grid_6x6):
    return Stitcher().stitch(grid_6x6)


class TestPhysicalDamage:
    """Delete one tile and truncate another on disk, then stitch."""

    @pytest.fixture(scope="class")
    def damaged(self, tmp_path_factory):
        ds = make_synthetic_dataset(
            tmp_path_factory.mktemp("damage"), rows=4, cols=4,
            tile_height=64, tile_width=64, overlap=0.25, seed=31,
        )
        clean = Stitcher().stitch(ds)
        ds.path(1, 2).unlink()                     # missing tile
        ds.path(3, 0).write_bytes(b"II*\x00junk")  # truncated/corrupt tile
        return TileDataset(ds.directory), clean

    def test_skip_policy_completes_with_report(self, damaged):
        ds, clean = damaged
        result = Stitcher(max_retries=1, on_tile_error="skip").stitch(ds)
        report = result.stats["fault_report"]
        # The report lists exactly the tiles damaged on disk.
        assert report.skipped_tiles == [(1, 2), (3, 0)]
        assert result.skipped_tiles() == [(1, 2), (3, 0)]
        errs = report.to_dict()["skipped_tile_errors"]
        assert "FileNotFoundError" in errs["1,2"]
        # Surviving tiles land where the clean run put them.
        survivors = np.ones((ds.rows, ds.cols), dtype=bool)
        for r, c in report.skipped_tiles:
            survivors[r, c] = False
        delta = np.abs(
            result.positions.positions - clean.positions.positions
        )[survivors]
        assert float(delta.max()) <= 1.0

    def test_partial_mosaic_has_holes_and_mask(self, damaged):
        ds, _clean = damaged
        result = Stitcher(max_retries=1, on_tile_error="skip").stitch(ds)
        mosaic, mask = result.compose(return_mask=True)
        assert mask.shape == (ds.rows, ds.cols)
        assert not mask[1, 2] and not mask[3, 0]
        assert int(mask.sum()) == ds.rows * ds.cols - 2
        assert mosaic.shape[0] > 0

    def test_abort_policy_still_fails_fast(self, damaged):
        ds, _clean = damaged
        with pytest.raises(PipelineError, match="read"):
            Stitcher(max_retries=1, on_tile_error="abort").stitch(ds)


class TestInjectedFaultsAcceptance:
    """The ISSUE acceptance scenario on a 6x6 grid."""

    SEED = 42

    def _plan(self):
        # >= 3 distinct fault kinds: missing + corrupt are permanent,
        # transient succeeds on retry, slow only adds latency.
        return FaultPlan.random(
            6, 6, seed=self.SEED, missing=1, corrupt=1, transient=2,
            slow=1, latency=0.0,
        )

    def test_plan_has_three_plus_kinds(self):
        kinds = {f.kind for f in self._plan().faults}
        assert kinds >= {FaultKind.MISSING, FaultKind.CORRUPT,
                         FaultKind.TRANSIENT_IO}

    def test_skip_run_completes_and_accounts_for_every_fault(self, grid_6x6,
                                                             clean_result):
        plan = self._plan()
        faulty = plan.wrap_dataset(grid_6x6)
        result = Stitcher(max_retries=2, on_tile_error="skip").stitch(faulty)
        report = result.stats["fault_report"]

        by_kind = {k: [f for f in plan.faults if f.kind == k]
                   for k in FaultKind}
        permanent = sorted(
            f.tile for f in by_kind[FaultKind.MISSING]
            + by_kind[FaultKind.CORRUPT]
        )
        # Permanent faults -> skipped tiles, exactly.
        assert report.skipped_tiles == permanent
        # Transient faults -> retried reads, recovered (never skipped).
        retried_tiles = {r["item"] for r in report.retries}
        for f in by_kind[FaultKind.TRANSIENT_IO]:
            assert str(f.tile) in retried_tiles
            assert f.tile not in report.skipped_tiles
        # Every planned fault actually fired at least once (permanent
        # faults fire once per retry attempt, so compare as sets).
        assert {(e.kind, e.tile) for e in plan.events} == {
            (f.kind, f.tile) for f in plan.faults
        }
        # The plan summary is folded into the report.
        assert report.injected == plan.summary()

        # Partial mosaic: holes only at the permanently damaged tiles.
        _mosaic, mask = result.compose(return_mask=True)
        assert sorted(zip(*np.nonzero(~mask))) == [
            (int(r), int(c)) for r, c in permanent
        ]

        # Surviving tiles match the clean run.
        survivors = np.ones((6, 6), dtype=bool)
        for r, c in permanent:
            survivors[r, c] = False
        delta = np.abs(
            result.positions.positions - clean_result.positions.positions
        )[survivors]
        assert float(delta.max()) <= 1.0

    def test_same_plan_abort_raises_naming_stage(self, grid_6x6):
        faulty = self._plan().wrap_dataset(grid_6x6)
        with pytest.raises(PipelineError) as exc_info:
            Stitcher(max_retries=1, on_tile_error="abort").stitch(faulty)
        err = exc_info.value
        assert [name for name, _ in err.failures] == ["read"]
        assert "read" in str(err) and "displacement" in str(err)

    def test_ground_truth_error_excluding_degraded(self, grid_6x6):
        faulty = self._plan().wrap_dataset(grid_6x6)
        result = Stitcher(max_retries=2, on_tile_error="skip").stitch(faulty)
        errors = result.position_errors(exclude_degraded=True)
        assert errors is not None
        # Degraded tiles are NaN; connected survivors stay accurate.
        assert np.isnan(errors).sum() == result.positions.degraded_count
        assert float(np.nanmax(errors)) <= 1.0
