"""FaultReport: recording, de-duplication, serialization."""

from __future__ import annotations

import threading

from repro.faults import FaultReport


def test_empty_report_is_falsy():
    rep = FaultReport()
    assert not rep
    d = rep.to_dict()
    assert d["retries"] == 0
    assert d["skipped_tiles"] == []
    assert "injected" not in d


def test_records_make_report_truthy():
    rep = FaultReport()
    rep.record_retry("read", (1, 2), 0, IOError("flaky"))
    assert rep
    assert rep.retries[0]["stage"] == "read"
    assert "OSError" in rep.retries[0]["error"]


def test_skipped_tiles_deduplicate():
    rep = FaultReport()
    rep.record_skipped_tile((2, 3), FileNotFoundError("gone"))
    # Ghost tiles in partitioned impls can fail in two pipelines -- the
    # second record must not double-count, and the first error wins.
    rep.record_skipped_tile((2, 3), IOError("other"))
    assert rep.skipped_tiles == [(2, 3)]
    assert "FileNotFoundError" in rep.to_dict()["skipped_tile_errors"]["2,3"]


def test_skipped_pairs_deduplicate():
    rep = FaultReport()
    rep.record_skipped_pair("west", 1, 1, "tile gone")
    rep.record_skipped_pair("west", 1, 1, "tile gone again")
    rep.record_skipped_pair("north", 1, 1, "tile gone")
    assert rep.skipped_pairs == [("north", 1, 1), ("west", 1, 1)]


def test_degraded_tiles_sorted_and_unique():
    rep = FaultReport()
    rep.record_degraded_tile((3, 0))
    rep.record_degraded_tile((1, 2))
    rep.record_degraded_tile((3, 0))
    assert rep.degraded_tiles == [(1, 2), (3, 0)]


def test_to_dict_includes_injected_summary():
    rep = FaultReport()
    rep.injected = {"missing": 1, "corrupt": 2}
    assert rep.to_dict()["injected"] == {"missing": 1, "corrupt": 2}


def test_summary_is_one_line():
    rep = FaultReport()
    rep.record_retry("read", (0, 1), 0, IOError("x"))
    rep.record_skipped_tile((0, 1), IOError("x"))
    text = rep.summary()
    assert "\n" not in text
    assert "1 retried read(s)" in text
    assert "1 skipped tile(s)" in text


def test_concurrent_recording_is_safe():
    rep = FaultReport()

    def worker(k: int) -> None:
        for i in range(100):
            rep.record_retry("read", (k, i), 0, IOError("x"))
            rep.record_skipped_pair("west", k, i % 7)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(rep.retries) == 400
    assert len(rep.skipped_pairs) == 4 * 7
