"""FaultPlan: determinism, wrapping surfaces, trigger bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultyDataset,
    FaultyPool,
)
from repro.io.tiff import TiffError
from repro.memmodel.pool import BufferPool, PoolExhausted


class FakeDataset:
    rows = 3
    cols = 3

    def __init__(self):
        self.loads = []

    def path(self, row, col):
        return f"tile_{row}_{col}.tif"

    def load(self, row, col, dtype=np.float64):
        self.loads.append((row, col))
        return np.zeros((4, 4), dtype=dtype)


class TestRandomPlan:
    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.random(6, 6, seed=17)
        b = FaultPlan.random(6, 6, seed=17)
        assert [(f.kind, f.tile) for f in a.faults] == [
            (f.kind, f.tile) for f in b.faults
        ]

    def test_different_seeds_differ(self):
        a = FaultPlan.random(6, 6, seed=1)
        b = FaultPlan.random(6, 6, seed=2)
        assert [f.tile for f in a.faults] != [f.tile for f in b.faults]

    def test_never_damages_anchor_tile(self):
        for seed in range(25):
            plan = FaultPlan.random(3, 3, seed=seed, missing=2, corrupt=2,
                                    transient=2, slow=2)
            assert (0, 0) not in [f.tile for f in plan.faults]

    def test_distinct_tiles(self):
        plan = FaultPlan.random(6, 6, seed=5, missing=3, corrupt=3,
                                transient=3, slow=3)
        tiles = [f.tile for f in plan.faults]
        assert len(tiles) == len(set(tiles)) == 12

    def test_too_many_faults_rejected(self):
        with pytest.raises(ValueError, match="faults requested"):
            FaultPlan.random(2, 2, seed=0, missing=2, corrupt=1,
                             transient=1, slow=0)

    def test_summary_counts_by_kind(self):
        plan = FaultPlan.random(6, 6, seed=0, missing=1, corrupt=2,
                                transient=3, slow=1)
        assert plan.summary() == {
            "missing": 1, "corrupt": 2, "transient_io": 3, "slow_read": 1
        }


class TestDatasetWrapping:
    def test_missing_tile_raises_file_not_found(self):
        plan = FaultPlan().add(Fault(FaultKind.MISSING, tile=(1, 2)))
        ds = plan.wrap_dataset(FakeDataset())
        assert isinstance(ds, FaultyDataset)
        with pytest.raises(FileNotFoundError):
            ds.load(1, 2)
        # Every attempt keeps failing (permanent fault).
        with pytest.raises(FileNotFoundError):
            ds.load(1, 2)

    def test_corrupt_tile_raises_tiff_error(self):
        plan = FaultPlan().add(Fault(FaultKind.CORRUPT, tile=(0, 1)))
        ds = plan.wrap_dataset(FakeDataset())
        with pytest.raises(TiffError):
            ds.load(0, 1)

    def test_transient_io_succeeds_after_configured_failures(self):
        plan = FaultPlan().add(
            Fault(FaultKind.TRANSIENT_IO, tile=(2, 2), failures=2)
        )
        ds = plan.wrap_dataset(FakeDataset())
        with pytest.raises(IOError):
            ds.load(2, 2)
        with pytest.raises(IOError):
            ds.load(2, 2)
        out = ds.load(2, 2)  # third attempt succeeds
        assert out.shape == (4, 4)

    def test_undamaged_tiles_pass_through(self):
        inner = FakeDataset()
        plan = FaultPlan().add(Fault(FaultKind.MISSING, tile=(1, 1)))
        ds = plan.wrap_dataset(inner)
        ds.load(0, 0)
        assert inner.loads == [(0, 0)]
        # Attribute delegation works too.
        assert ds.rows == 3 and ds.cols == 3

    def test_events_record_each_trigger(self):
        plan = FaultPlan().add(
            Fault(FaultKind.TRANSIENT_IO, tile=(1, 0), failures=1)
        )
        ds = plan.wrap_dataset(FakeDataset())
        with pytest.raises(IOError):
            ds.load(1, 0)
        ds.load(1, 0)
        assert plan.triggered_summary() == {"transient_io": 1}
        assert plan.events[0].tile == (1, 0)
        assert plan.events[0].attempt == 0

    def test_reset_replays_identically(self):
        plan = FaultPlan().add(
            Fault(FaultKind.TRANSIENT_IO, tile=(1, 0), failures=1)
        )
        ds = plan.wrap_dataset(FakeDataset())
        with pytest.raises(IOError):
            ds.load(1, 0)
        ds.load(1, 0)
        plan.reset()
        assert plan.events == []
        with pytest.raises(IOError):
            ds.load(1, 0)  # fails again after reset

    def test_slow_read_records_but_returns(self):
        plan = FaultPlan().add(
            Fault(FaultKind.SLOW_READ, tile=(0, 1), latency=0.0)
        )
        ds = plan.wrap_dataset(FakeDataset())
        out = ds.load(0, 1)
        assert out.shape == (4, 4)
        assert plan.triggered_summary() == {"slow_read": 1}


class TestHandlerAndPoolWrapping:
    def test_wrap_handler_injects_stage_errors(self):
        plan = FaultPlan().add(
            Fault(FaultKind.STAGE_ERROR, stage="fft", failures=2)
        )
        calls = []

        def handler(item, ctx):
            calls.append(item)
            return item

        wrapped = plan.wrap_handler("fft", handler)
        with pytest.raises(RuntimeError, match="injected stage fault"):
            wrapped(1, None)
        with pytest.raises(RuntimeError):
            wrapped(2, None)
        assert wrapped(3, None) == 3
        assert calls == [3]

    def test_wrap_handler_no_faults_returns_original(self):
        plan = FaultPlan()
        handler = lambda item, ctx: item  # noqa: E731
        assert plan.wrap_handler("fft", handler) is handler

    def test_wrap_pool_injects_exhaustion(self):
        plan = FaultPlan().add(Fault(FaultKind.POOL_EXHAUSTED, failures=1))
        pool = plan.wrap_pool(BufferPool(2, (4, 4)))
        assert isinstance(pool, FaultyPool)
        with pytest.raises(PoolExhausted, match="injected"):
            pool.acquire(blocking=False)
        slot = pool.acquire(blocking=False)  # second acquire succeeds
        assert pool.array(slot).shape == (4, 4)
        pool.release(slot)
