"""Data-level fault kinds: dust, saturation, content shift.

Unlike the I/O kinds, these reads *succeed* -- the damage is in the
pixels, which is the class of dirty data the phase-2 quality gate
(docs/ROBUSTNESS.md) exists to survive.
"""

import numpy as np
import pytest

from repro.faults.plan import Fault, FaultKind, FaultPlan
from repro.synth import make_synthetic_dataset
from repro.synth.noise import apply_content_shift, apply_dust, apply_saturation


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    d = tmp_path_factory.mktemp("data-faults")
    return make_synthetic_dataset(
        d, rows=3, cols=3, tile_height=64, tile_width=64, overlap=0.25, seed=3
    )


class TestDamageFunctions:
    def test_dust_darkens_and_preserves_dtype(self):
        rng = np.random.default_rng(0)
        tile = np.full((64, 64), 1000, dtype=np.uint16)
        out = apply_dust(tile, rng)
        assert out.dtype == np.uint16
        assert out.shape == tile.shape
        assert out.sum() < tile.sum()
        assert (out <= tile).all()

    def test_saturation_clips_to_level(self):
        rng = np.random.default_rng(1)
        tile = rng.integers(0, 1000, size=(32, 32)).astype(np.uint16)
        out = apply_saturation(tile, level=65535, fraction=0.5)
        assert out.dtype == np.uint16
        assert (out == 65535).mean() >= 0.5

    def test_shift_is_a_permutation(self):
        rng = np.random.default_rng(2)
        tile = np.arange(64 * 64, dtype=np.uint16).reshape(64, 64)
        out = apply_content_shift(tile, rng)
        assert out.dtype == tile.dtype
        assert sorted(out.ravel()) == sorted(tile.ravel())
        assert not np.array_equal(out, tile)

    @pytest.mark.parametrize(
        "fn", [apply_dust, apply_content_shift],
    )
    def test_rejects_non_2d(self, fn):
        with pytest.raises(ValueError):
            fn(np.zeros((2, 2, 2), dtype=np.uint8), np.random.default_rng(0))


class TestPlanIntegration:
    def test_damage_is_deterministic_across_reads(self, dataset):
        plan = FaultPlan(seed=9)
        plan.add(Fault(FaultKind.DUST, tile=(1, 1)))
        plan.add(Fault(FaultKind.SHIFT, tile=(2, 2)))
        wrapped = plan.wrap_dataset(dataset)
        first = {rc: wrapped.load(*rc) for rc in [(1, 1), (2, 2)]}
        second = {rc: wrapped.load(*rc) for rc in [(1, 1), (2, 2)]}
        for rc in first:
            assert np.array_equal(first[rc], second[rc])

    def test_damage_differs_from_clean(self, dataset):
        plan = FaultPlan(seed=9)
        for kind, rc in [
            (FaultKind.DUST, (1, 1)),
            (FaultKind.SATURATE, (1, 2)),
            (FaultKind.SHIFT, (2, 2)),
        ]:
            plan.add(Fault(kind, tile=rc))
        wrapped = plan.wrap_dataset(dataset)
        for rc in [(1, 1), (1, 2), (2, 2)]:
            assert not np.array_equal(wrapped.load(*rc), dataset.load(*rc))

    def test_undamaged_tiles_untouched(self, dataset):
        plan = FaultPlan(seed=9)
        plan.add(Fault(FaultKind.DUST, tile=(1, 1)))
        wrapped = plan.wrap_dataset(dataset)
        assert np.array_equal(wrapped.load(0, 0), dataset.load(0, 0))

    def test_events_recorded(self, dataset):
        plan = FaultPlan(seed=9)
        plan.add(Fault(FaultKind.SATURATE, tile=(1, 1)))
        wrapped = plan.wrap_dataset(dataset)
        wrapped.load(1, 1)
        assert plan.triggered_summary() == {"saturate": 1}
        assert plan.summary() == {"saturate": 1}

    def test_from_spec_parses_data_kinds(self):
        plan = FaultPlan.from_spec("7:dust=2,saturate=1,shift=1", 4, 4)
        assert plan.summary() == {"dust": 2, "saturate": 1, "shift": 1}
        # Tile (0, 0) is never damaged and every target is distinct.
        tiles = [f.tile for f in plan.faults]
        assert (0, 0) not in tiles
        assert len(set(tiles)) == len(tiles)

    def test_seeded_plan_replays_identically(self, dataset):
        loads = []
        for _ in range(2):
            plan = FaultPlan.from_spec("11:dust=1,shift=1", 3, 3)
            wrapped = plan.wrap_dataset(dataset)
            loads.append(
                [wrapped.load(r, c) for r in range(3) for c in range(3)]
            )
        for a, b in zip(*loads):
            assert np.array_equal(a, b)
