"""Fault injection on the *reference* channel of a multi-channel stitch.

``Stitcher.stitch_channels`` registers once and reuses positions, so any
damage during the reference registration must flow -- positions, skip
provenance, error policy -- to every dependent channel.  These tests
drive the two damage flavours the fault layer models (dirty data via an
injected :class:`FaultPlan`, physical deletion on disk) and assert the
dependent channels stay consistent with the reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stitcher import Stitcher
from repro.faults import FaultPlan
from repro.io.dataset import TileDataset
from repro.pipeline.graph import PipelineError
from repro.synth import make_synthetic_dataset


def _same_scan(tmp_path_factory, name, seed=61):
    """Two channels of one scan: same generator, same stage positions."""
    root = tmp_path_factory.mktemp(name)
    kwargs = dict(rows=4, cols=4, tile_height=64, tile_width=64,
                  overlap=0.25, seed=seed)
    ch0 = make_synthetic_dataset(root / "ch0", **kwargs)
    ch1 = make_synthetic_dataset(root / "ch1", **kwargs)
    return ch0, ch1


@pytest.fixture(scope="module")
def channels(tmp_path_factory):
    return _same_scan(tmp_path_factory, "mcf")


@pytest.fixture(scope="module")
def clean_results(channels):
    ch0, ch1 = channels
    return Stitcher().stitch_channels([ch0, ch1])


class TestDirtyReference:
    """Seeded dirty-data injection on the reference channel only."""

    def _plan(self):
        return FaultPlan.random(4, 4, seed=17, missing=1, corrupt=1,
                                transient=2, slow=0)

    def test_dependent_channel_tracks_degraded_reference(
        self, channels, clean_results
    ):
        ch0, ch1 = channels
        plan = self._plan()
        res_a, res_b = Stitcher(
            max_retries=2, on_tile_error="skip"
        ).stitch_channels([plan.wrap_dataset(ch0), ch1])

        permanent = sorted(
            f.tile for f in plan.faults if f.kind.name in ("MISSING", "CORRUPT")
        )
        # Identical positions, including the nominal fallbacks for
        # degraded tiles.
        assert np.array_equal(res_a.positions.positions,
                              res_b.positions.positions)
        # Provenance: the dependent channel reports the same skipped
        # tiles although its own files are pristine.
        assert res_a.skipped_tiles() == permanent
        assert res_b.skipped_tiles() == permanent
        assert res_b.on_tile_error == "skip"
        assert res_b.stats["fault_report"].injected == plan.summary()

        # Both mosaics hole the same tiles.
        _, mask_a = res_a.compose(return_mask=True)
        _, mask_b = res_b.compose(return_mask=True)
        assert np.array_equal(mask_a, mask_b)
        assert sorted(zip(*np.nonzero(~mask_b))) == [
            (int(r), int(c)) for r, c in permanent
        ]

        # Survivors agree with the clean two-channel run.
        clean_a, _ = clean_results
        survivors = np.ones((4, 4), dtype=bool)
        for r, c in permanent:
            survivors[r, c] = False
        delta = np.abs(
            res_b.positions.positions - clean_a.positions.positions
        )[survivors]
        assert float(delta.max()) <= 1.0

    def test_transients_recover_without_skips(self, channels):
        """Retry-recoverable faults leave no holes in any channel."""
        ch0, ch1 = channels
        plan = FaultPlan.random(4, 4, seed=23, missing=0, corrupt=0,
                                transient=3, slow=0)
        res_a, res_b = Stitcher(
            max_retries=2, on_tile_error="skip"
        ).stitch_channels([plan.wrap_dataset(ch0), ch1])
        assert res_a.skipped_tiles() == []
        assert res_b.skipped_tiles() == []
        assert len(res_a.stats["fault_report"].retries) >= 3
        _, mask_b = res_b.compose(return_mask=True)
        assert mask_b.all()

    def test_abort_policy_fails_before_any_dependent_result(self, channels):
        ch0, ch1 = channels
        plan = FaultPlan.random(4, 4, seed=17, missing=1, corrupt=0,
                                transient=0, slow=0)
        with pytest.raises(PipelineError):
            Stitcher(max_retries=1, on_tile_error="abort").stitch_channels(
                [plan.wrap_dataset(ch0), ch1]
            )


class TestPhysicallyDamagedReference:
    """Reference tiles deleted/corrupted on disk (not injected)."""

    @pytest.fixture()
    def damaged(self, tmp_path_factory):
        ch0, ch1 = _same_scan(tmp_path_factory, "mcf-disk", seed=67)
        ch0.path(0, 3).unlink()
        ch0.path(2, 1).write_bytes(b"II*\x00junk")
        return TileDataset(ch0.directory), ch1

    def test_skip_tiles_propagate_across_channels(self, damaged):
        ch0, ch1 = damaged
        res_a, res_b = Stitcher(
            max_retries=1, on_tile_error="skip"
        ).stitch_channels([ch0, ch1])
        assert res_a.skipped_tiles() == [(0, 3), (2, 1)]
        assert res_b.skipped_tiles() == [(0, 3), (2, 1)]
        assert np.array_equal(res_a.positions.positions,
                              res_b.positions.positions)
        _, mask_b = res_b.compose(return_mask=True)
        assert not mask_b[0, 3] and not mask_b[2, 1]
        assert int(mask_b.sum()) == 16 - 2

    def test_reference_choice_controls_exposure(self, damaged):
        """Registering on the undamaged channel sees no faults at all --
        the knob `reference=` exists exactly for this."""
        ch0, ch1 = damaged
        res_a, res_b = Stitcher(
            max_retries=1, on_tile_error="skip"
        ).stitch_channels([ch0, ch1], reference=1)
        # Channel 1 is clean, so nothing is skipped anywhere...
        assert res_b.skipped_tiles() == []
        assert res_a.skipped_tiles() == []
        assert res_a.stats["positions_from_channel"] == 1
        # ...but composing the damaged channel 0 still needs its policy:
        # the shared on_tile_error="skip" drops the two dead tiles at
        # render time instead of raising.
        _, mask_a = res_a.compose(return_mask=True)
        assert not mask_a[0, 3] and not mask_a[2, 1]
        assert int(mask_a.sum()) == 16 - 2
