"""Kill-at-any-point resume: SIGKILL mid-phase-1, resume, identical output.

The acceptance scenario for the run journal: a subprocess stitches with
``--checkpoint``, the harness SIGKILLs it once a threshold of journal
records is durable (SIGKILL is uncatchable -- no atexit, no flush -- so
this is exactly the crash the fsync'd journal must survive), and an
in-process resume must

- recompute only the un-journaled pairs (asserted via the
  ``resumed_pairs`` / ``pairs`` counters), and
- produce translations and absolute positions **bit-identical** to an
  uninterrupted run,

across the sequential, multithreaded and pipelined CPU implementations.
"""

import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.global_opt import resolve_absolute_positions
from repro.core.stitcher import Stitcher
from repro.grid.neighbors import grid_pairs
from repro.grid.tile_grid import TileGrid
from repro.impls import ALL_IMPLEMENTATIONS
from repro.recovery.harness import (
    count_journal_records,
    run_until_killed,
    stitch_argv,
    subprocess_env,
)
from repro.recovery.journal import checkpoint_journal_path, load_journal

SRC_DIR = Path(repro.__file__).resolve().parents[1]

#: Slow-read injection so the child is still mid-phase-1 when the record
#: threshold lands; SLOW_READ only delays, it never changes a value.
SLOW = "3:slow=10,latency=0.05"

#: proc-cpu drains pairs from multiple processes at once, so it needs
#: heavier injected latency to still be mid-phase-1 when the harness's
#: poll-then-SIGKILL lands.
SLOW_PROC = "3:slow=15,latency=0.3"

IMPLS = ["simple-cpu", "mt-cpu", "proc-cpu", "pipelined-cpu"]


def slow_spec(impl_name: str) -> str:
    return SLOW_PROC if impl_name == "proc-cpu" else SLOW


def resume_in_process(dataset, checkpoint, impl_name):
    stitcher = Stitcher(checkpoint=str(checkpoint), resume="require")
    journal = stitcher.open_journal(dataset)
    try:
        impl = ALL_IMPLEMENTATIONS[impl_name](journal=journal)
        return impl.run(dataset), journal
    finally:
        journal.close()


@pytest.mark.parametrize("impl_name", IMPLS)
def test_sigkill_then_resume_is_bit_identical(
    impl_name, dataset_4x4, reference_displacements, tmp_path
):
    ckpt = tmp_path / "ckpt"
    journal_path = checkpoint_journal_path(ckpt)
    result = run_until_killed(
        stitch_argv(
            dataset_4x4.directory, ckpt, impl=impl_name,
            extra=["--inject-faults", slow_spec(impl_name)],
        ),
        journal_path,
        kill_after_records=6,  # header + >= 5 durable pairs
        env=subprocess_env(SRC_DIR),
        timeout=120.0,
    )
    assert result.killed, (
        f"child finished before the kill threshold "
        f"({result.journal_records} records)\n{result.stdout}"
    )
    assert result.journal_records >= 6

    state = load_journal(journal_path)
    journaled = len(state.pairs)
    assert 1 <= journaled < 24, "kill did not land mid-phase-1"

    run, journal = resume_in_process(dataset_4x4, ckpt, impl_name)
    # Recompute-only-unjournaled, by the counters.
    assert run.stats["resumed_pairs"] == journaled
    assert run.stats["pairs"] == 24 - journaled
    assert journal.resumed_pairs == journaled

    # Bit-identical translations pair by pair ...
    ref = reference_displacements.displacements
    grid = TileGrid(dataset_4x4.rows, dataset_4x4.cols)
    for pair in grid_pairs(grid):
        a = ref.get(pair.direction, pair.second.row, pair.second.col)
        b = run.displacements.get(
            pair.direction, pair.second.row, pair.second.col
        )
        assert a == b, f"{pair} diverged after resume"

    # ... and bit-identical absolute positions.
    pos_ref = resolve_absolute_positions(ref, method="mst")
    pos_res = resolve_absolute_positions(run.displacements, method="mst")
    assert np.array_equal(pos_ref.positions, pos_res.positions)


def test_coarse_sigkill_then_resume_is_bit_identical(dataset_4x4, tmp_path):
    """Coarse-to-fine mode survives a SIGKILL the same way: the journal
    carries each pair's coarse/fallback provenance, the coarse config is
    bound into the fingerprint, and the resumed output is bit-identical
    to an uninterrupted coarse run."""
    from repro.impls import SimpleCpu

    ckpt = tmp_path / "ckpt"
    journal_path = checkpoint_journal_path(ckpt)
    result = run_until_killed(
        stitch_argv(
            dataset_4x4.directory, ckpt, impl="mt-cpu",
            extra=["--inject-faults", SLOW, "--coarse-registration"],
        ),
        journal_path,
        kill_after_records=6,
        env=subprocess_env(SRC_DIR),
        timeout=120.0,
    )
    assert result.killed, (
        f"child finished before the kill threshold "
        f"({result.journal_records} records)\n{result.stdout}"
    )
    state = load_journal(journal_path)
    assert 1 <= len(state.pairs) < 24, "kill did not land mid-phase-1"
    # Every journaled pair carries its provenance stamp.
    raw = [json.loads(l) for l in journal_path.read_text().splitlines()[:-1]]
    provs = {r.get("prov") for r in raw if "d" in r}
    assert provs <= {"coarse", "fallback"} and provs

    stitcher = Stitcher(
        checkpoint=str(ckpt), resume="require", coarse=True
    )
    journal = stitcher.open_journal(dataset_4x4)
    try:
        run = ALL_IMPLEMENTATIONS["mt-cpu"](
            journal=journal, coarse=stitcher.coarse
        ).run(dataset_4x4)
    finally:
        journal.close()
    assert run.stats["resumed_pairs"] == len(state.pairs)

    ref = SimpleCpu(coarse=stitcher.coarse).run(dataset_4x4)
    grid = TileGrid(dataset_4x4.rows, dataset_4x4.cols)
    for pair in grid_pairs(grid):
        a = ref.displacements.get(
            pair.direction, pair.second.row, pair.second.col
        )
        b = run.displacements.get(
            pair.direction, pair.second.row, pair.second.col
        )
        assert a == b, f"{pair} diverged after coarse resume"


def test_coarse_off_refuses_coarse_journal(dataset_4x4, tmp_path):
    """Resuming a coarse-mode journal without coarse mode must refuse:
    the gate changes which answers get recorded."""
    from repro.recovery.journal import JournalMismatch

    ckpt = tmp_path / "ckpt"
    stitcher = Stitcher(checkpoint=str(ckpt), coarse=True)
    stitcher.open_journal(dataset_4x4).close()
    with pytest.raises(JournalMismatch):
        Stitcher(checkpoint=str(ckpt), resume="require").open_journal(
            dataset_4x4
        )


def test_cross_impl_resume(dataset_4x4, reference_displacements, tmp_path):
    """A journal written by one implementation resumes under another:
    the fingerprint deliberately excludes the impl name."""
    ckpt = tmp_path / "ckpt"
    result = run_until_killed(
        stitch_argv(
            dataset_4x4.directory, ckpt, impl="pipelined-cpu",
            extra=["--inject-faults", SLOW],
        ),
        checkpoint_journal_path(ckpt),
        kill_after_records=6,
        env=subprocess_env(SRC_DIR),
        timeout=120.0,
    )
    assert result.killed
    run, _ = resume_in_process(dataset_4x4, ckpt, "simple-cpu")
    pos_ref = resolve_absolute_positions(
        reference_displacements.displacements, method="mst"
    )
    pos_res = resolve_absolute_positions(run.displacements, method="mst")
    assert np.array_equal(pos_ref.positions, pos_res.positions)


def test_full_journal_resume_recomputes_nothing(dataset_4x4, tmp_path):
    """Uninterrupted checkpointed run, then resume: zero recomputation."""
    ckpt = tmp_path / "ckpt"
    stitcher = Stitcher(checkpoint=str(ckpt))
    first = stitcher.stitch(dataset_4x4)
    assert first.stats["journal"]["recorded_pairs"] == 24
    resumed = Stitcher(checkpoint=str(ckpt), resume="require").stitch(dataset_4x4)
    assert resumed.stats["journal"]["resumed_pairs"] == 24
    assert resumed.stats["journal"]["recorded_pairs"] == 0
    assert np.array_equal(
        first.positions.positions, resumed.positions.positions
    )


def test_count_journal_records(tmp_path):
    p = tmp_path / "j.jsonl"
    assert count_journal_records(p) == 0
    p.write_bytes(b'{"a":1}\n{"b":2}\n{"torn')
    assert count_journal_records(p) == 2  # torn tail is not durable
