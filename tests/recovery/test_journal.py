"""Run journal: durability, replay, torn tails, fingerprint binding."""

import json
import zlib

import pytest

from repro.core.displacement import Translation
from repro.recovery.journal import (
    JournalError,
    JournalMismatch,
    RunJournal,
    checkpoint_journal_path,
    fingerprint_diff,
    load_journal,
    options_fingerprint,
)

FP = {"dataset": {"rows": 2, "cols": 2}, "options": options_fingerprint()}


def make_journal(path, pairs=(), fsync=False):
    j = RunJournal.create(path, FP, fsync=fsync)
    for d, r, c, t in pairs:
        j.record_pair(d, r, c, t)
    return j


T1 = Translation(0.91, 3, -17)
T2 = Translation(0.55, -2, 40, tx_f=-1.75, ty_f=40.25)


class TestRoundTrip:
    def test_pairs_survive_reopen_bit_identical(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with make_journal(path, [("west", 0, 1, T1), ("north", 1, 0, T2)]):
            pass
        j = RunJournal.resume(path, FP)
        assert j.lookup("west", 0, 1) == T1
        assert j.lookup("north", 1, 0) == T2
        assert j.lookup("west", 1, 1) is None
        assert j.resumed_pairs == 2
        j.close()

    def test_milestones_and_skipped_tiles(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with make_journal(path, [("west", 0, 1, T1)]) as j:
            j.record_skipped_tile(1, 1, "boom")
            j.record_milestone("phase1_complete", pairs=1)
        state = load_journal(path)
        assert state.milestones["phase1_complete"] == {"pairs": 1}
        assert state.skipped_tiles[(1, 1)] == "boom"
        # Forensic records never replay as work.
        assert set(state.pairs) == {("west", 0, 1)}

    def test_closed_journal_rejects_appends(self, tmp_path):
        j = make_journal(tmp_path / "journal.jsonl")
        j.close()
        j.close()  # idempotent
        with pytest.raises(JournalError):
            j.record_pair("west", 0, 1, T1)

    def test_peak_ratio_round_trips(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        finite = Translation(0.9, 3, -17, peak_ratio=2.5)
        absent = Translation(0.9, 3, -17)
        # inf means "no second peak at all": not representable in JSON,
        # journalled as null and replayed gate-neutral.
        unbounded = Translation(0.9, 3, -17, peak_ratio=float("inf"))
        with make_journal(
            path,
            [("west", 0, 1, finite), ("west", 1, 1, absent), ("north", 1, 0, unbounded)],
        ):
            pass
        j = RunJournal.resume(path, FP)
        assert j.lookup("west", 0, 1).peak_ratio == 2.5
        assert j.lookup("west", 1, 1).peak_ratio is None
        assert j.lookup("north", 1, 0).peak_ratio is None
        j.close()

    def test_pre_gate_journal_replays_without_peak_ratio(self, tmp_path):
        # Journals written before the quality gate carry no peak_ratio
        # key; replay must default it to None rather than KeyError.
        path = tmp_path / "journal.jsonl"
        with make_journal(path, [("west", 0, 1, T1)]):
            pass
        raw = path.read_text().splitlines()
        rewritten = []
        for line in raw:
            rec = json.loads(line)
            if rec.get("kind") == "pair":
                rec.pop("peak_ratio", None)
                rec.pop("crc", None)
                rec["crc"] = zlib.crc32(
                    json.dumps(rec, sort_keys=True, separators=(",", ":")).encode()
                )
            rewritten.append(json.dumps(rec, sort_keys=True, separators=(",", ":")))
        path.write_text("\n".join(rewritten) + "\n")
        j = RunJournal.resume(path, FP)
        t = j.lookup("west", 0, 1)
        assert t is not None
        assert t.peak_ratio is None
        j.close()


class TestCoarseProvenance:
    def test_provenance_round_trips(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        hit = Translation(0.99, 3, -17, provenance="coarse")
        fell = Translation(0.41, -2, 40, provenance="fallback")
        with make_journal(path, [("west", 0, 1, hit), ("north", 1, 0, fell)]):
            pass
        j = RunJournal.resume(path, FP)
        assert j.lookup("west", 0, 1).provenance == "coarse"
        assert j.lookup("north", 1, 0).provenance == "fallback"
        j.close()

    def test_single_pass_records_carry_no_prov_key(self, tmp_path):
        """Coarse-off journals must stay byte-compatible with pre-coarse
        writers: no ``prov`` key is ever emitted for provenance None."""
        path = tmp_path / "journal.jsonl"
        with make_journal(path, [("west", 0, 1, T1)]):
            pass
        recs = [json.loads(l) for l in path.read_text().splitlines()]
        (pair,) = [r for r in recs if "d" in r]
        assert "prov" not in pair
        j = RunJournal.resume(path, FP)
        assert j.lookup("west", 0, 1).provenance is None
        j.close()

    def test_coarse_config_binds_the_fingerprint(self, tmp_path):
        from repro.core.coarse import CoarseConfig

        path = tmp_path / "journal.jsonl"
        coarse_fp = {
            "dataset": FP["dataset"],
            "options": options_fingerprint(coarse=CoarseConfig()),
        }
        RunJournal.create(path, coarse_fp).close()
        # Same coarse config resumes; coarse-off (or a different factor)
        # refuses -- the two-pass gate changes which answers are recorded.
        RunJournal.resume(path, coarse_fp).close()
        with pytest.raises(JournalMismatch) as ei:
            RunJournal.resume(path, FP)
        assert "options.coarse" in {p for p, _, _ in ei.value.differences}
        other = {
            "dataset": FP["dataset"],
            "options": options_fingerprint(coarse=CoarseConfig(factor=4)),
        }
        with pytest.raises(JournalMismatch):
            RunJournal.resume(path, other)

    def test_pre_coarse_journal_resumes_coarse_off(self, tmp_path):
        """Journals written before coarse mode existed (no ``coarse`` key
        in the fingerprint) must resume under a coarse-off run."""
        path = tmp_path / "journal.jsonl"
        with make_journal(path, [("west", 0, 1, T1)]):
            pass
        raw = path.read_text().splitlines()
        rewritten = []
        for line in raw:
            rec = json.loads(line)
            if "fingerprint" in rec:
                del rec["fingerprint"]["options"]["coarse"]
                rec.pop("crc", None)
                rec["crc"] = zlib.crc32(
                    json.dumps(rec, sort_keys=True, separators=(",", ":")).encode()
                )
            rewritten.append(json.dumps(rec, sort_keys=True, separators=(",", ":")))
        path.write_text("\n".join(rewritten) + "\n")
        j = RunJournal.resume(path, FP)
        assert j.lookup("west", 0, 1) == T1
        j.close()


class TestTornTail:
    def test_truncated_final_line_is_dropped_and_counted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        make_journal(path, [("west", 0, 1, T1), ("north", 1, 0, T2)]).close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])  # SIGKILL mid-write of the last record
        state = load_journal(path)
        assert state.stats.torn_tail == 1
        assert set(state.pairs) == {("west", 0, 1)}
        # The torn pair is simply recomputed by the resumed run.
        j = RunJournal.resume(path, FP)
        assert j.lookup("north", 1, 0) is None
        j.close()

    def test_complete_record_missing_only_newline_is_kept(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        make_journal(path, [("west", 0, 1, T1)]).close()
        path.write_bytes(path.read_bytes()[:-1])  # strip just the \n
        state = load_journal(path)
        assert state.stats.torn_tail == 0
        assert ("west", 0, 1) in state.pairs

    def test_interior_corruption_is_crc_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        make_journal(path, [("west", 0, 1, T1), ("north", 1, 0, T2)]).close()
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]  # flip a byte
        path.write_bytes(b"".join(lines))
        state = load_journal(path)
        assert state.stats.crc_rejected == 1
        assert set(state.pairs) == {("north", 1, 0)}

    def test_unknown_record_kind_with_valid_crc_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        make_journal(path, [("west", 0, 1, T1)]).close()
        payload = {"t": "from_the_future", "x": 1}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        rec = dict(payload, crc=zlib.crc32(canonical.encode()))
        with open(path, "a") as fh:
            fh.write(json.dumps(rec, sort_keys=True, separators=(",", ":")) + "\n")
        state = load_journal(path)
        assert state.stats.crc_rejected == 0
        assert ("west", 0, 1) in state.pairs


class TestDuplicates:
    def test_last_write_wins_and_is_counted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        make_journal(
            path, [("west", 0, 1, T1), ("west", 0, 1, T2)]
        ).close()
        state = load_journal(path)
        assert state.stats.duplicates == 1
        assert state.stats.pairs == 1
        j = RunJournal.resume(path, FP)
        assert j.lookup("west", 0, 1) == T2
        j.close()


class TestFingerprint:
    def test_mismatched_fingerprint_refuses_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        make_journal(path).close()
        other = {
            "dataset": {"rows": 2, "cols": 3},
            "options": options_fingerprint(n_peaks=5),
        }
        with pytest.raises(JournalMismatch) as ei:
            RunJournal.resume(path, other)
        paths = {p for p, _, _ in ei.value.differences}
        assert "dataset.cols" in paths
        assert "options.n_peaks" in paths

    def test_fingerprint_diff_is_recursive_and_symmetric_keys(self):
        a = {"x": {"y": 1, "z": 2}}
        b = {"x": {"y": 1, "z": 3}, "w": 4}
        assert fingerprint_diff(a, b) == [("w", None, 4), ("x.z", 2, 3)]


class TestOpenModes:
    def test_require_without_journal_is_an_error(self, tmp_path):
        with pytest.raises(JournalError):
            RunJournal.open(tmp_path / "journal.jsonl", FP, resume="require")

    def test_auto_without_journal_starts_fresh(self, tmp_path):
        path = tmp_path / "ckpt" / "journal.jsonl"  # parent created on demand
        j = RunJournal.open(path, FP, fsync=False, resume="auto")
        assert j.journaled_pair_count == 0
        j.close()

    def test_auto_with_matching_journal_resumes(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        make_journal(path, [("west", 0, 1, T1)]).close()
        j = RunJournal.open(path, FP, fsync=False, resume="auto")
        assert j.journaled_pair_count == 1
        j.close()

    def test_auto_still_refuses_a_mismatched_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        make_journal(path).close()
        other = dict(FP, options=options_fingerprint(subpixel=True))
        with pytest.raises(JournalMismatch):
            RunJournal.open(path, other, resume="auto")

    def test_auto_with_headerless_file_starts_fresh(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(b'{"t": "hea')  # killed during the very first write
        j = RunJournal.open(path, FP, fsync=False, resume="auto")
        assert j.state.header is None and j.journaled_pair_count == 0
        j.close()
        assert load_journal(path).header is not None  # truncated + rewritten

    def test_never_truncates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        make_journal(path, [("west", 0, 1, T1)]).close()
        j = RunJournal.open(path, FP, fsync=False, resume="never")
        assert j.journaled_pair_count == 0
        j.close()

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunJournal.open(tmp_path / "j", FP, resume="sometimes")

    def test_checkpoint_journal_path(self, tmp_path):
        assert checkpoint_journal_path(tmp_path) == tmp_path / "journal.jsonl"
