"""Watchdog supervision: deadlines, cancellation, escalation, stalls."""

import time

import pytest

from repro.faults import ErrorPolicy, Fault, FaultKind, FaultPlan
from repro.pipeline.graph import Pipeline, PipelineStallError
from repro.pipeline.stage import END_OF_STREAM
from repro.recovery.cancel import CancelToken, ItemCancelled, current_token
from repro.recovery.watchdog import WatchdogConfig


def make_source(n):
    it = iter(range(n))

    def handler(_item, _ctx):
        try:
            return next(it)
        except StopIteration:
            return END_OF_STREAM

    return handler


class TestCancelToken:
    def test_cancel_is_idempotent_first_reason_wins(self):
        t = CancelToken()
        assert not t.cancelled
        t.cancel("first")
        t.cancel("second")
        assert t.cancelled and t.reason == "first"
        with pytest.raises(ItemCancelled, match="first"):
            t.raise_if_cancelled()

    def test_cooperative_sleep_wakes_on_cancel(self):
        t = CancelToken()
        t.cancel("now")
        t0 = time.monotonic()
        with pytest.raises(ItemCancelled):
            t.sleep(30.0)
        assert time.monotonic() - t0 < 1.0

    def test_no_token_installed_is_a_noop(self):
        assert current_token() is None


class TestCooperativeCancellation:
    def test_hung_item_is_cancelled_and_skipped(self):
        """A handler that honors its token is cancelled within the
        deadline; under skip the pipeline completes and join() returns
        normally with a non-escalated report."""
        pipe = Pipeline(
            "coop", watchdog=WatchdogConfig(item_deadline=0.2, stall_timeout=10)
        )
        results = []

        def work(x, _ctx):
            if x == 1:
                tok = current_token()
                while True:  # cooperative hang: polls its token
                    tok.raise_if_cancelled()
                    time.sleep(0.005)
            results.append(x)
            return None

        q = pipe.queue(maxsize=0, name="work")
        pipe.stage("src", make_source(5), workers=1, output=q)
        pipe.stage("work", work, workers=2, input=q,
                   policy=ErrorPolicy(on_exhausted="skip"))
        t0 = time.monotonic()
        pipe.run()  # must NOT raise and must NOT hang
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0
        assert sorted(results) == [0, 2, 3, 4]
        report = pipe.watchdog_report()
        assert report is not None and not report.escalated
        assert report.kind == "item_hang"
        assert [i.action for i in report.interventions] == ["cancelled"]
        assert pipe.stats()["watchdog"]["escalated"] is False
        drops = pipe.dropped()
        assert len(drops) == 1 and "watchdog" in str(drops[0].error)

    def test_cancellation_is_never_retried(self):
        """ItemCancelled must not burn retry attempts: the token stays
        cancelled, so retries could never succeed."""
        attempts = []
        pipe = Pipeline(
            "noretry", watchdog=WatchdogConfig(item_deadline=0.15, stall_timeout=10)
        )

        def work(x, _ctx):
            attempts.append(x)
            if x == 0:
                current_token().sleep(30.0)
            return None

        q = pipe.queue(maxsize=0, name="work")
        pipe.stage("src", make_source(2), workers=1, output=q)
        pipe.stage("work", work, workers=1, input=q,
                   policy=ErrorPolicy(max_retries=3, backoff=0.0,
                                      on_exhausted="skip"))
        pipe.run()
        assert attempts.count(0) == 1  # one attempt, no retries


class TestEscalation:
    def test_noncooperative_hang_raises_stall_error(self):
        """A handler that ignores its cancelled token past the grace gets
        the whole pipeline aborted; join() raises instead of hanging."""
        pipe = Pipeline(
            "hard",
            watchdog=WatchdogConfig(
                item_deadline=0.1, stall_timeout=10,
                escalation_grace=0.5, poll_interval=0.02,
            ),
        )

        def work(x, _ctx):
            if x == 0:
                time.sleep(1.0)  # ignores cancellation entirely
            return None

        q = pipe.queue(maxsize=0, name="work")
        pipe.stage("src", make_source(3), workers=1, output=q)
        pipe.stage("work", work, workers=1, input=q,
                   policy=ErrorPolicy(on_exhausted="skip"))
        with pytest.raises(PipelineStallError) as ei:
            pipe.run()
        report = ei.value.report
        assert report.kind == "item_hang" and report.escalated
        assert any(i.action == "escalated" for i in report.interventions)
        assert report.to_dict()["kind"] == "item_hang"

    def test_pipeline_stall_detected_without_item_deadline(self):
        """No per-item deadline: a silently wedged worker with work still
        queued is caught by the whole-pipeline progress monitor."""
        pipe = Pipeline(
            "stall",
            watchdog=WatchdogConfig(
                item_deadline=None, stall_timeout=0.3, poll_interval=0.02
            ),
        )

        def work(x, _ctx):
            if x == 0:
                time.sleep(1.5)  # wedges the only worker; queue backs up
            return None

        q = pipe.queue(maxsize=0, name="work")
        pipe.stage("src", make_source(4), workers=1, output=q)
        pipe.stage("work", work, workers=1, input=q)
        t0 = time.monotonic()
        with pytest.raises(PipelineStallError) as ei:
            pipe.run()
        assert time.monotonic() - t0 < 10.0
        report = ei.value.report
        assert report.kind == "pipeline_stall" and report.escalated
        assert report.progress["queues"]["work"]["depth"] > 0


class TestIdleOverhead:
    def test_enabled_but_idle_watchdog_changes_nothing(self):
        results = []
        pipe = Pipeline(
            "idle", watchdog=WatchdogConfig(item_deadline=5.0, stall_timeout=30)
        )
        q = pipe.queue(maxsize=4, name="q")
        pipe.stage("src", make_source(50), workers=1, output=q)
        pipe.stage("sink", lambda x, _ctx: results.append(x), workers=2, input=q)
        pipe.run()
        assert sorted(results) == list(range(50))
        assert pipe.watchdog_report() is None
        assert "watchdog" not in pipe.stats()


class TestInjectedHangEndToEnd:
    def test_hang_fault_in_pipelined_cpu_degrades_not_deadlocks(
        self, dataset_4x4
    ):
        """ISSUE acceptance: FaultKind.HANG + watchdog + skip policy ->
        the hung tile is cancelled and dropped per PR 1 degradation
        semantics, and the run completes."""
        from repro.faults import FaultReport
        from repro.impls import ALL_IMPLEMENTATIONS

        plan = FaultPlan().add(
            Fault(FaultKind.HANG, tile=(2, 1), latency=0.0)  # until cancelled
        )
        report = FaultReport()
        impl = ALL_IMPLEMENTATIONS["pipelined-cpu"](
            error_policy=ErrorPolicy(on_exhausted="skip"),
            fault_report=report,
            watchdog=WatchdogConfig(item_deadline=0.3, stall_timeout=30),
        )
        t0 = time.monotonic()
        run = impl.run(plan.wrap_dataset(dataset_4x4))
        assert time.monotonic() - t0 < 30.0
        assert report.skipped_tiles == [(2, 1)]
        assert "ItemCancelled" in report.to_dict()["skipped_tile_errors"]["2,1"]
        # Every pair not touching the hung tile was still computed.
        assert run.stats["pairs"] == 24 - 4

    def test_bounded_hang_just_delays(self, dataset_4x4):
        """latency > 0 bounds the hang: no watchdog needed, the read is
        merely slow and the run is complete and undamaged."""
        plan = FaultPlan().add(
            Fault(FaultKind.HANG, tile=(1, 1), latency=0.05)
        )
        from repro.impls import ALL_IMPLEMENTATIONS

        impl = ALL_IMPLEMENTATIONS["simple-cpu"]()
        run = impl.run(plan.wrap_dataset(dataset_4x4))
        assert run.stats["pairs"] == 24
        assert plan.triggered_summary() == {"hang": 1}
