"""Property test: journal replay under torn tails, truncation, duplicates.

CI installs only pytest, so the hypothesis-driven cases skip there; the
exhaustive truncation sweep below runs everywhere and covers the same
invariant deterministically.
"""

import pytest

from repro.core.displacement import Translation
from repro.recovery.journal import RunJournal, load_journal, options_fingerprint

FP = {"dataset": {"rows": 8, "cols": 8}, "options": options_fingerprint()}


def write_journal(path, records):
    j = RunJournal.create(path, FP, fsync=False)
    for d, r, c, t in records:
        j.record_pair(d, r, c, t)
    j.close()
    return path.read_bytes()


def expected_pairs(records, n_durable):
    """Last-write-wins fold over the first ``n_durable`` records."""
    out = {}
    for d, r, c, t in records[:n_durable]:
        out[(d, r, c)] = t
    return out


SOME_RECORDS = [
    ("west", 0, 1, Translation(0.5, 1, 2)),
    ("north", 1, 0, Translation(0.25, -3, 4, tx_f=0.5, ty_f=-4.125)),
    ("west", 0, 1, Translation(0.75, 9, 9)),  # duplicate: last wins
    ("north", 2, 2, Translation(-0.125, 30, -30)),
]


class TestTruncationSweep:
    def test_every_byte_prefix_replays_to_the_durable_prefix(self, tmp_path):
        """The core crash-safety invariant, byte by byte.

        For *every* truncation point: no exception, pairs == last-write-
        wins fold of the complete lines, and a partial final line is
        either torn (counted) or absent -- never a wrong value.
        """
        path = tmp_path / "journal.jsonl"
        raw = write_journal(path, SOME_RECORDS)
        for cut in range(len(raw) + 1):
            prefix = raw[:cut]
            path.write_bytes(prefix)
            state = load_journal(path)
            tail = prefix.split(b"\n")[-1]
            # A tail that is a whole record minus its newline still
            # validates and is kept; anything else non-empty is torn.
            tail_kept = tail != b"" and raw[cut:cut + 1] == b"\n"
            n_durable = max(0, prefix.count(b"\n") + int(tail_kept) - 1)
            want = expected_pairs(SOME_RECORDS, n_durable)
            got = {
                k: Translation(**v) for k, v in state.pairs.items()
            }
            assert got == want, f"cut={cut}"
            torn = tail != b"" and not tail_kept
            assert state.stats.torn_tail == (1 if torn else 0), f"cut={cut}"
            assert state.stats.crc_rejected == 0, f"cut={cut}"


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

translations = st.builds(
    Translation,
    correlation=st.floats(-1, 1, allow_nan=False),
    tx=st.integers(-512, 512),
    ty=st.integers(-512, 512),
    tx_f=st.none() | st.floats(-512, 512, allow_nan=False),
    ty_f=st.none() | st.floats(-512, 512, allow_nan=False),
)
records_strategy = st.lists(
    st.tuples(
        st.sampled_from(["west", "north"]),
        st.integers(0, 7),
        st.integers(0, 7),
        translations,
    ),
    max_size=12,
)


class TestJournalProperties:
    @settings(max_examples=60, deadline=None)
    @given(records=records_strategy, data=st.data())
    def test_random_truncation_never_yields_wrong_values(
        self, tmp_path_factory, records, data
    ):
        path = tmp_path_factory.mktemp("jp") / "journal.jsonl"
        raw = write_journal(path, records)
        cut = data.draw(st.integers(0, len(raw)), label="cut")
        path.write_bytes(raw[:cut])
        state = load_journal(path)
        n_durable = max(0, raw[:cut].count(b"\n") - 1)
        want = expected_pairs(records, n_durable)
        got = {k: Translation(**v) for k, v in state.pairs.items()}
        # A torn tail that still validates is kept (lost only its
        # newline), which can surface exactly one extra durable record.
        if got != want and n_durable < len(records):
            want_plus = expected_pairs(records, n_durable + 1)
            assert got == want_plus
        else:
            assert got == want
        # Exact round-trip: every replayed value is bit-identical.
        for key, t in got.items():
            if key in want:
                assert t == want[key]

    @settings(max_examples=40, deadline=None)
    @given(records=records_strategy, data=st.data())
    def test_interior_corruption_is_skipped_with_counted_warning(
        self, tmp_path_factory, records, data
    ):
        hypothesis.assume(len(records) >= 2)
        path = tmp_path_factory.mktemp("jc") / "journal.jsonl"
        raw = write_journal(path, records)
        lines = raw.splitlines(keepends=True)
        # Corrupt one pair line (never the header: index >= 1).
        idx = data.draw(st.integers(1, len(lines) - 1), label="line")
        pos = data.draw(st.integers(0, len(lines[idx]) - 2), label="byte")
        line = lines[idx]
        flipped = line[:pos] + bytes([line[pos] ^ 0x5A]) + line[pos + 1:]
        hypothesis.assume(flipped != line)
        lines[idx] = flipped
        path.write_bytes(b"".join(lines))
        state = load_journal(path)
        # The damaged line is rejected (or, vanishingly rarely, still
        # parses as a different-but-valid record -- a byte flip cannot
        # satisfy the CRC, so it must be rejected).
        assert state.stats.crc_rejected == 1
        survivors = {
            k: Translation(**v) for k, v in state.pairs.items()
        }
        full = expected_pairs(records, len(records))
        # Every surviving value matches some write for that key.
        for key, t in survivors.items():
            wrote = [
                tr for d, r, c, tr in records if (d, r, c) == key
            ]
            assert t in wrote
        assert set(survivors) <= set(full)
