"""Disk-full (ENOSPC) behaviour of the run journal.

The failure is injected by wrapping the journal's file object, not by
actually filling a disk: after a configured number of successful writes
every further write raises ``OSError(ENOSPC)``.  The contract under
test: the append raises a clean, typed :class:`JournalWriteError`
(never a raw ``OSError`` escaping the stitcher), the journal file stays
loadable, and a resume recovers exactly the records that were durable
before the disk filled.
"""

from __future__ import annotations

import errno

import pytest

from repro.core.displacement import Translation
from repro.recovery.journal import (
    JournalWriteError,
    RunJournal,
    load_journal,
)

FINGERPRINT = {"dataset": {"rows": 2}, "options": {"n_peaks": 2}}


class FullDiskFile:
    """File-object proxy whose writes start failing after a quota."""

    def __init__(self, fh, writes_allowed: int):
        self._fh = fh
        self.writes_allowed = writes_allowed
        self.writes = 0

    def write(self, data):
        if self.writes >= self.writes_allowed:
            raise OSError(errno.ENOSPC, "No space left on device")
        self.writes += 1
        return self._fh.write(data)

    def __getattr__(self, name):
        return getattr(self._fh, name)


def translation(tx: int, ty: int) -> Translation:
    return Translation(correlation=0.9, tx=tx, ty=ty,
                       tx_f=float(tx), ty_f=float(ty), peak_ratio=2.0)


def journal_with_quota(path, writes_after_header: int) -> RunJournal:
    journal = RunJournal.create(path, FINGERPRINT)
    journal._fh = FullDiskFile(journal._fh, writes_after_header)
    return journal


class TestAppendOnFullDisk:
    def test_append_raises_typed_error_with_errno(self, tmp_path):
        journal = journal_with_quota(tmp_path / "j.jsonl", 2)
        journal.record_pair("west", 0, 1, translation(1, 2))
        journal.record_pair("north", 1, 0, translation(3, 4))
        with pytest.raises(JournalWriteError) as exc_info:
            journal.record_pair("west", 1, 1, translation(5, 6))
        assert exc_info.value.errno == errno.ENOSPC
        assert "No space left" in str(exc_info.value)
        assert isinstance(exc_info.value.__cause__, OSError)

    def test_milestone_append_also_typed(self, tmp_path):
        journal = journal_with_quota(tmp_path / "j.jsonl", 0)
        with pytest.raises(JournalWriteError):
            journal.record_milestone("phase1_complete")

    def test_journal_stays_loadable_after_enospc(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = journal_with_quota(path, 2)
        journal.record_pair("west", 0, 1, translation(1, 2))
        journal.record_pair("north", 1, 0, translation(3, 4))
        with pytest.raises(JournalWriteError):
            journal.record_pair("west", 1, 1, translation(5, 6))
        state = load_journal(path)
        assert state.header is not None
        assert set(state.pairs) == {("west", 0, 1), ("north", 1, 0)}
        assert state.stats.crc_rejected == 0
        assert state.stats.torn_tail == 0

    def test_resume_recovers_durable_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = journal_with_quota(path, 1)
        journal.record_pair("west", 0, 1, translation(7, 8))
        with pytest.raises(JournalWriteError):
            journal.record_pair("north", 1, 0, translation(9, 10))

        resumed = RunJournal.resume(path, FINGERPRINT)
        hit = resumed.lookup("west", 0, 1)
        assert hit is not None and (hit.tx, hit.ty) == (7, 8)
        assert resumed.lookup("north", 1, 0) is None  # never durable
        # The freed-disk run continues appending where the durable
        # record stream left off.
        resumed.record_pair("north", 1, 0, translation(9, 10))
        resumed.close()
        assert set(load_journal(path).pairs) == {
            ("west", 0, 1), ("north", 1, 0)
        }

    def test_torn_partial_write_is_dropped_on_load(self, tmp_path):
        """A write that lands only part of a line (true torn tail) is
        skipped by replay and does not poison earlier records."""
        path = tmp_path / "j.jsonl"
        journal = RunJournal.create(path, FINGERPRINT)
        journal.record_pair("west", 0, 1, translation(1, 2))
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t":"pair","d":"north","r":1,')  # interrupted
        state = load_journal(path)
        assert set(state.pairs) == {("west", 0, 1)}
        assert state.stats.torn_tail == 1


class TestAppenderOnFullDisk:
    def test_worker_appender_raises_typed_error(self, tmp_path):
        from repro.recovery.journal import JournalAppender

        path = tmp_path / "j.jsonl"
        RunJournal.create(path, FINGERPRINT).close()
        appender = JournalAppender(path)
        appender._fh = FullDiskFile(appender._fh, 0)
        with pytest.raises(JournalWriteError) as exc_info:
            appender.record_pair("west", 0, 1, translation(1, 2))
        assert exc_info.value.errno == errno.ENOSPC
