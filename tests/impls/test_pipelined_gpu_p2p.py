"""Real peer-to-peer ghost exchange in the multi-GPU pipeline (§VI)."""

import numpy as np
import pytest

from repro.analysis.metrics import displacement_agreement
from repro.gpu.device import VirtualGpu
from repro.impls import PipelinedGpu, SimpleCpu
from repro.synth import make_synthetic_dataset


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    return make_synthetic_dataset(
        tmp_path_factory.mktemp("p2p"), rows=4, cols=6,
        tile_height=64, tile_width=64, overlap=0.25, seed=9,
    )


@pytest.fixture(scope="module")
def reference(dataset):
    return SimpleCpu().run(dataset)


class TestP2pEquivalence:
    @pytest.mark.parametrize("n_gpus", [1, 2, 3])
    def test_matches_reference(self, n_gpus, dataset, reference):
        res = PipelinedGpu(devices=n_gpus, p2p=True).run(dataset)
        assert displacement_agreement(
            res.displacements, reference.displacements
        ) == 1.0


class TestP2pStructure:
    def test_no_redundant_reads(self, dataset):
        ghost = PipelinedGpu(devices=3).run(dataset)
        p2p = PipelinedGpu(devices=3, p2p=True).run(dataset)
        assert p2p.stats["reads"] == 24           # one per tile
        assert ghost.stats["reads"] == 24 + 2 * 4  # two duplicated columns
        assert p2p.stats["p2p_copies"] == 2 * 4

    def test_no_redundant_ffts(self, dataset):
        p2p = PipelinedGpu(devices=2, p2p=True).run(dataset)
        assert p2p.stats["ffts"] == 24

    def test_p2p_traffic_traced_on_receiver(self, dataset):
        devs = [VirtualGpu(device_id=i) for i in range(2)]
        PipelinedGpu(devices=devs, p2p=True).run(dataset)
        names1 = {e.name for e in devs[1].profiler.events}
        assert "memcpy-p2p-from-gpu0" in names1
        names0 = {e.name for e in devs[0].profiler.events}
        assert not any(n.startswith("memcpy-p2p") for n in names0)

    def test_ghost_buffers_freed(self, dataset):
        devs = [VirtualGpu(device_id=i) for i in range(2)]
        PipelinedGpu(devices=devs, p2p=True).run(dataset)
        # Only the pools' reservations + scratch remain until destroy;
        # every per-ghost allocation was freed by the bookkeeper.
        for dev in devs:
            # pool reservation (1) + NCC scratch (1) + c2r inverse
            # scratch (1) per pipeline
            assert dev.allocator.live_buffers == 3

    def test_causality_ghost_nccs_after_p2p(self, dataset):
        devs = [VirtualGpu(device_id=i) for i in range(2)]
        PipelinedGpu(devices=devs, p2p=True).run(dataset)
        ev1 = devs[1].profiler.events
        copies = [e for e in ev1 if e.name.startswith("memcpy-p2p")]
        first_ncc = min(e.start for e in ev1 if e.name == "ncc")
        # dev1's west-boundary pairs cannot have been the first NCCs unless
        # a p2p copy completed; at least one copy precedes some NCC work.
        assert copies
        assert min(e.end for e in copies) <= max(
            e.start for e in ev1 if e.name == "ncc"
        )


class TestP2pValidation:
    def test_degenerate_grid_rejected(self, tmp_path):
        ds = make_synthetic_dataset(
            tmp_path / "strip", rows=1, cols=4, tile_height=64, tile_width=64,
            overlap=0.3, seed=2,
        )
        with pytest.raises(ValueError, match="p2p"):
            PipelinedGpu(devices=4, p2p=True).run(ds)

    def test_single_gpu_p2p_is_noop(self, dataset, reference):
        res = PipelinedGpu(devices=1, p2p=True).run(dataset)
        assert displacement_agreement(
            res.displacements, reference.displacements
        ) == 1.0
        assert "p2p_copies" not in res.stats
