"""Per-socket pipelined CPU: equivalence, partition structure, failures."""

import pytest

from repro.analysis.metrics import displacement_agreement
from repro.impls import PipelinedCpuNuma, SimpleCpu
from repro.pipeline.graph import PipelineError
from repro.synth import make_synthetic_dataset


class TestEquivalence:
    @pytest.mark.parametrize("sockets", [1, 2, 3])
    def test_matches_reference(self, sockets, dataset_4x4, reference_displacements):
        res = PipelinedCpuNuma(sockets=sockets, workers_per_socket=2).run(dataset_4x4)
        assert res.displacements.is_complete()
        assert displacement_agreement(
            res.displacements, reference_displacements.displacements
        ) == 1.0

    def test_nonsquare(self, dataset_3x5):
        ref = SimpleCpu().run(dataset_3x5)
        res = PipelinedCpuNuma(sockets=2).run(dataset_3x5)
        assert displacement_agreement(res.displacements, ref.displacements) == 1.0


class TestStructure:
    def test_ghost_column_duplication(self, dataset_4x4):
        """2 sockets on a 4x4 grid: the boundary column is read twice."""
        res = PipelinedCpuNuma(sockets=2).run(dataset_4x4)
        assert res.stats["reads"] == 16 + 4
        assert res.stats["sockets"] == 2

    def test_single_socket_no_duplication(self, dataset_4x4):
        res = PipelinedCpuNuma(sockets=1).run(dataset_4x4)
        assert res.stats["reads"] == 16

    def test_more_sockets_than_columns(self, dataset_3x5):
        res = PipelinedCpuNuma(sockets=10).run(dataset_3x5)
        assert res.displacements.is_complete()
        assert res.stats["sockets"] <= 5


class TestFailures:
    def test_corrupt_tile_fails_fast(self, tmp_path):
        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=3, cols=4, tile_height=48, tile_width=48,
            overlap=0.25, seed=8,
        )
        blob = ds.path(1, 2).read_bytes()
        ds.path(1, 2).write_bytes(blob[: len(blob) // 3])
        with pytest.raises(PipelineError):
            PipelinedCpuNuma(sockets=2, pool_timeout=5.0).run(ds)

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelinedCpuNuma(sockets=0)
        with pytest.raises(ValueError):
            PipelinedCpuNuma(workers_per_socket=0)
