"""Coarse-to-fine mode across implementations.

Two guarantees: with ``coarse`` unset every implementation is
bit-identical to its pre-coarse self (the two-pass code must be
invisible when off), and with ``coarse`` set all implementations agree
with coarse-mode Simple-CPU -- including which pairs were coarse hits
versus full-resolution fallbacks (the shared
:func:`~repro.core.coarse.resolve_coarse_peaks` gate is what makes the
GPU paths land on the same answers as the CPU ones).
"""

import pytest

from repro.core.coarse import CoarseConfig
from repro.impls import (
    FijiBaseline,
    MtCpu,
    PipelinedCpu,
    PipelinedGpu,
    ProcCpu,
    SimpleCpu,
    SimpleGpu,
)

COARSE = CoarseConfig()

IMPLS = [
    ("fiji-baseline", lambda **kw: FijiBaseline(**kw)),
    ("mt-cpu", lambda **kw: MtCpu(workers=3, **kw)),
    ("proc-cpu", lambda **kw: ProcCpu(workers=2, **kw)),
    ("pipelined-cpu", lambda **kw: PipelinedCpu(workers=2, **kw)),
    ("simple-gpu", lambda **kw: SimpleGpu(**kw)),
    ("pipelined-gpu", lambda **kw: PipelinedGpu(devices=2, ccf_workers=2, **kw)),
]


def signatures(result):
    """Per-pair (corr, tx, ty, provenance) map keyed by (direction, r, c)."""
    sig = {}
    d = result.displacements
    for direction, grid in (("west", d.west), ("north", d.north)):
        for r, row in enumerate(grid):
            for c, t in enumerate(row):
                if t is not None:
                    sig[(direction, r, c)] = (
                        t.correlation, t.tx, t.ty,
                        getattr(t, "provenance", None),
                    )
    return sig


@pytest.fixture(scope="module")
def coarse_reference(dataset_4x4):
    return SimpleCpu(coarse=COARSE).run(dataset_4x4)


def test_reference_coarse_mode_has_provenance(coarse_reference):
    sig = signatures(coarse_reference)
    provs = {v[3] for v in sig.values()}
    assert provs <= {"coarse", "fallback"}
    assert "coarse" in provs  # the shortcut must actually fire
    stats = coarse_reference.stats
    hits = sum(1 for v in sig.values() if v[3] == "coarse")
    falls = sum(1 for v in sig.values() if v[3] == "fallback")
    assert stats.get("coarse_hits", 0) == hits
    assert stats.get("full_fallbacks", 0) == falls


def test_coarse_off_is_bit_identical_to_reference(
    dataset_4x4, reference_displacements
):
    res = SimpleCpu(coarse=None).run(dataset_4x4)
    assert signatures(res) == signatures(reference_displacements)
    assert all(v[3] is None for v in signatures(res).values())


@pytest.mark.parametrize("name,factory", IMPLS)
def test_coarse_mode_matches_reference(
    name, factory, dataset_4x4, coarse_reference
):
    res = factory(coarse=COARSE).run(dataset_4x4)
    assert signatures(res) == signatures(coarse_reference), (
        f"{name} diverged from coarse-mode Simple-CPU"
    )


@pytest.mark.parametrize("name,factory", [
    ("mt-cpu", lambda **kw: MtCpu(workers=2, **kw)),
    ("pipelined-gpu", lambda **kw: PipelinedGpu(devices=2, **kw)),
])
def test_coarse_nonsquare_grid(name, factory, dataset_3x5):
    ref = SimpleCpu(coarse=COARSE).run(dataset_3x5)
    res = factory(coarse=COARSE).run(dataset_3x5)
    assert signatures(res) == signatures(ref), f"{name} diverged on 3x5"


def test_coarse_counters_exposed_in_stats(dataset_4x4):
    res = MtCpu(workers=2, coarse=COARSE).run(dataset_4x4)
    assert res.stats.get("coarse_hits", 0) + res.stats.get(
        "full_fallbacks", 0
    ) == 24  # 4x4 grid: 12 west + 12 north pairs
