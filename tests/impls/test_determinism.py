"""Determinism: repeated runs of every implementation agree exactly.

The pipelined implementations are heavily threaded; this pins that thread
scheduling can never change *answers* (only timing).
"""

import pytest

from repro.analysis.metrics import displacement_agreement
from repro.impls import ALL_IMPLEMENTATIONS


@pytest.mark.parametrize("name", sorted(ALL_IMPLEMENTATIONS))
def test_two_runs_identical(name, dataset_3x5):
    cls = ALL_IMPLEMENTATIONS[name]
    kwargs = {}
    if name == "mt-cpu":
        kwargs = {"workers": 3}
    elif name == "pipelined-cpu":
        kwargs = {"workers": 3}
    elif name == "pipelined-cpu-numa":
        kwargs = {"sockets": 2, "workers_per_socket": 2}
    elif name == "pipelined-gpu":
        kwargs = {"devices": 2, "ccf_workers": 3}
    a = cls(**kwargs).run(dataset_3x5)
    b = cls(**kwargs).run(dataset_3x5)
    assert displacement_agreement(a.displacements, b.displacements) == 1.0


def test_des_deterministic():
    from repro.simulate.costmodel import PAPER_MACHINE
    from repro.simulate.schedules import simulate_pipelined_gpu

    a = simulate_pipelined_gpu(PAPER_MACHINE, 8, 8, 2, tile=(64, 64))
    b = simulate_pipelined_gpu(PAPER_MACHINE, 8, 8, 2, tile=(64, 64))
    assert a.makespan_seconds == b.makespan_seconds
    assert [(o.start, o.end) for o in a.sim.ops] == [
        (o.start, o.end) for o in b.sim.ops
    ]
