"""Proc-CPU specifics: batching knobs, arena hygiene, checkpoint/resume.

Cross-implementation equivalence, determinism and degenerate grids are
covered by the shared matrices (proc-cpu is registered in
``ALL_IMPLEMENTATIONS``); SIGKILL-then-resume rides the shared
kill-harness matrix in ``tests/recovery/test_kill_resume.py``.  This file
pins what is unique to the process backend.
"""

import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.analysis.metrics import displacement_agreement
from repro.core.stitcher import Stitcher
from repro.impls import ProcCpu
from repro.memmodel.shm import SHM_NAME_PREFIX, leaked_segments
from repro.recovery.harness import (
    run_until_killed,
    stitch_argv,
    subprocess_env,
)
from repro.recovery.journal import checkpoint_journal_path

SRC_DIR = Path(repro.__file__).resolve().parents[1]


class TestConstruction:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ProcCpu(workers=0)

    def test_rejects_bad_fft_batch(self):
        with pytest.raises(ValueError):
            ProcCpu(fft_batch=0)


class TestBatching:
    @pytest.mark.parametrize("fft_batch", [1, 2, 8])
    def test_fft_batch_is_throughput_only(self, fft_batch, dataset_4x4,
                                          reference_displacements):
        res = ProcCpu(workers=2, fft_batch=fft_batch).run(dataset_4x4)
        assert displacement_agreement(
            res.displacements, reference_displacements.displacements
        ) == 1.0

    def test_batch_counters(self, dataset_4x4):
        res = ProcCpu(workers=2, fft_batch=4).run(dataset_4x4)
        # Every multi-tile forward transform goes through the batch path.
        assert res.stats.get("fft_batches", 0) > 0
        assert res.stats.get("fft_batched_tiles", 0) > 1
        assert res.stats["ffts"] == 16

    def test_single_worker_runs_inline(self, dataset_4x4,
                                       reference_displacements):
        """One band needs no pool, no arena -- and still matches."""
        res = ProcCpu(workers=1).run(dataset_4x4)
        assert res.stats["process_workers"] == 0
        assert res.stats["bands"] == 1
        assert displacement_agreement(
            res.displacements, reference_displacements.displacements
        ) == 1.0


class TestCheckpointRoundTrip:
    def test_uninterrupted_checkpoint_then_full_resume(self, dataset_4x4,
                                                       tmp_path):
        """Journaled proc-cpu run, then resume: zero recomputation, with
        every worker-appended record durable and readable."""
        ckpt = tmp_path / "ckpt"

        def run_with_journal():
            stitcher = Stitcher(checkpoint=str(ckpt))
            journal = stitcher.open_journal(dataset_4x4)
            try:
                return ProcCpu(workers=2, journal=journal).run(dataset_4x4)
            finally:
                journal.close()

        first = run_with_journal()
        assert first.stats["pairs"] == 24
        assert first.stats.get("resumed_pairs", 0) == 0

        resumed = run_with_journal()
        assert resumed.stats["resumed_pairs"] == 24
        assert resumed.stats["pairs"] == 0
        for arr_a, arr_b in (
            (first.displacements.west, resumed.displacements.west),
            (first.displacements.north, resumed.displacements.north),
        ):
            for row_a, row_b in zip(arr_a, arr_b):
                for a, b in zip(row_a, row_b):
                    assert a == b


class TestArenaHygiene:
    def test_sigkilled_cli_run_leaves_no_segments(self, dataset_4x4,
                                                  tmp_path):
        """SIGKILL a proc-cpu CLI run mid-phase-1: the dying process's
        resource tracker must sweep the arena and the orphaned workers
        must notice the dead parent and exit."""
        before = set(leaked_segments(SHM_NAME_PREFIX))
        ckpt = tmp_path / "ckpt"
        result = run_until_killed(
            stitch_argv(
                dataset_4x4.directory, ckpt, impl="proc-cpu",
                extra=["--inject-faults", "3:slow=15,latency=0.3"],
            ),
            checkpoint_journal_path(ckpt),
            kill_after_records=4,
            env=subprocess_env(SRC_DIR),
            timeout=120.0,
        )
        assert result.killed, result.stdout
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if set(leaked_segments(SHM_NAME_PREFIX)) <= before:
                break
            time.sleep(0.1)
        assert set(leaked_segments(SHM_NAME_PREFIX)) <= before, (
            "proc-cpu SIGKILL leaked shared-memory segments"
        )

    def test_failing_run_cleans_up(self, dataset_4x4):
        """An exception inside a worker unwinds through _run's finally:
        the arena is gone and the error propagates."""
        class Broken:
            def __getattr__(self, name):
                return getattr(dataset_4x4, name)

            def load(self, r, c):
                raise OSError(f"boom ({r},{c})")

        before = set(leaked_segments(SHM_NAME_PREFIX))
        with pytest.raises(Exception):
            ProcCpu(workers=2).run(Broken())
        assert set(leaked_segments(SHM_NAME_PREFIX)) <= before
