"""Option-matrix coverage: paper options across the parallel implementations.

The equivalence suite runs defaults; this crosses the paper-relevant
options (padded FFT shapes, planning modes, partition helpers) with the
parallel implementations to ensure no option silently only works on the
sequential path.
"""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.metrics import displacement_agreement
from repro.fftlib.plans import PlanningMode
from repro.fftlib.smooth import next_smooth_shape
from repro.impls import MtCpu, PipelinedCpu, PipelinedGpu, SimpleCpu
from repro.impls.mt_cpu import row_bands
from repro.impls.pipelined_gpu import column_partitions


class TestPaddedFftAcrossImpls:
    @pytest.fixture(scope="class")
    def padded_reference(self, dataset_4x4):
        shape = next_smooth_shape((70, 70))  # (72, 72): padded beyond tiles
        ref = SimpleCpu(fft_shape=shape).run(dataset_4x4)
        return shape, ref

    @pytest.mark.parametrize("factory", [
        lambda shape: MtCpu(workers=2, fft_shape=shape),
        lambda shape: PipelinedCpu(workers=2, fft_shape=shape),
        lambda shape: PipelinedGpu(devices=2, fft_shape=shape),
    ])
    def test_padded_equivalence(self, factory, dataset_4x4, padded_reference):
        shape, ref = padded_reference
        res = factory(shape).run(dataset_4x4)
        assert displacement_agreement(res.displacements, ref.displacements) == 1.0

    def test_padded_matches_unpadded_answers(self, dataset_4x4, padded_reference):
        _, padded = padded_reference
        plain = SimpleCpu().run(dataset_4x4)
        assert displacement_agreement(padded.displacements, plain.displacements) == 1.0


class TestPlanningModes:
    def test_patient_planning_end_to_end(self, dataset_4x4):
        from repro.core.stitcher import Stitcher
        from repro.fftlib.plans import PlanCache

        cache = PlanCache()
        res = Stitcher(planning=PlanningMode.MEASURE, cache=cache).stitch(dataset_4x4)
        assert res.position_errors().max() == 0.0
        assert len(cache) >= 1  # plans actually went through the cache


class TestPartitionHelpers:
    @given(rows=st.integers(1, 40), workers=st.integers(1, 20))
    def test_row_bands_cover_exactly(self, rows, workers):
        bands = row_bands(rows, workers)
        assert bands[0][0] == 0
        assert bands[-1][1] == rows
        for (a0, a1), (b0, b1) in zip(bands, bands[1:]):
            assert a1 == b0          # contiguous
            assert a1 > a0 and b1 > b0  # non-empty
        assert len(bands) == min(workers, rows)
        sizes = [b1 - b0 for b0, b1 in bands]
        assert max(sizes) - min(sizes) <= 1  # balanced

    @given(cols=st.integers(1, 60), n=st.integers(1, 8))
    def test_column_partitions_cover_exactly(self, cols, n):
        parts = column_partitions(cols, n)
        assert parts[0][0] == 0
        assert parts[-1][1] == cols
        for (a0, a1), (b0, b1) in zip(parts, parts[1:]):
            assert a1 == b0
        sizes = [c1 - c0 for c0, c1 in parts]
        assert all(s >= 1 for s in sizes)
        assert max(sizes) - min(sizes) <= 1
