"""Cross-implementation equivalence: all six produce the same phase 1.

This is the reproduction's analogue of the paper's validation that its
parallel implementations match the sequential reference.
"""

import pytest

from repro.analysis.metrics import displacement_agreement
from repro.impls import (
    FijiBaseline,
    MtCpu,
    PipelinedCpu,
    PipelinedGpu,
    ProcCpu,
    SimpleCpu,
    SimpleGpu,
)

PARALLEL_IMPLS = [
    ("fiji-baseline", lambda: FijiBaseline()),
    ("mt-cpu-1", lambda: MtCpu(workers=1)),
    ("mt-cpu-3", lambda: MtCpu(workers=3)),
    ("mt-cpu-3-legacy", lambda: MtCpu(workers=3, share_boundaries=False)),
    ("proc-cpu-1", lambda: ProcCpu(workers=1)),
    ("proc-cpu-3", lambda: ProcCpu(workers=3)),
    ("proc-cpu-3-nobatch", lambda: ProcCpu(workers=3, fft_batch=1)),
    ("pipelined-cpu-1", lambda: PipelinedCpu(workers=1)),
    ("pipelined-cpu-3", lambda: PipelinedCpu(workers=3)),
    ("simple-gpu", lambda: SimpleGpu()),
    ("pipelined-gpu-1", lambda: PipelinedGpu(devices=1)),
    ("pipelined-gpu-2", lambda: PipelinedGpu(devices=2, ccf_workers=2)),
    ("pipelined-gpu-3", lambda: PipelinedGpu(devices=3, ccf_workers=1)),
]


@pytest.mark.parametrize("name,factory", PARALLEL_IMPLS)
def test_matches_reference(name, factory, dataset_4x4, reference_displacements):
    res = factory().run(dataset_4x4)
    assert res.displacements.is_complete()
    agreement = displacement_agreement(
        res.displacements, reference_displacements.displacements
    )
    assert agreement == 1.0, f"{name} diverged from Simple-CPU"


@pytest.mark.parametrize("name,factory", [
    ("mt-cpu", lambda: MtCpu(workers=2)),
    ("proc-cpu", lambda: ProcCpu(workers=2)),
    ("pipelined-cpu", lambda: PipelinedCpu(workers=2)),
    ("pipelined-cpu-batched", lambda: PipelinedCpu(workers=2, fft_batch=3)),
    ("pipelined-gpu", lambda: PipelinedGpu(devices=2, ccf_workers=2)),
])
def test_nonsquare_grid(name, factory, dataset_3x5):
    ref = SimpleCpu().run(dataset_3x5)
    res = factory().run(dataset_3x5)
    assert displacement_agreement(res.displacements, ref.displacements) == 1.0


def test_correlations_match_too(dataset_4x4, reference_displacements):
    """Not just (tx, ty): the winning CCF values agree across impls."""
    res = PipelinedGpu(devices=2).run(dataset_4x4)
    ref = reference_displacements.displacements
    got = res.displacements
    for arr_ref, arr_got in ((ref.west, got.west), (ref.north, got.north)):
        for row_ref, row_got in zip(arr_ref, arr_got):
            for tr, tg in zip(row_ref, row_got):
                if tr is None:
                    assert tg is None
                else:
                    assert tg.correlation == pytest.approx(tr.correlation, abs=1e-9)
