"""Architectural claims from the paper, verified by instrumentation.

The paper's performance story rests on structural properties (transform
reuse, O(1) D2H traffic, stream counts, bounded pools).  These tests pin
them on the real implementations -- if a refactor silently reintroduces,
say, per-pair FFT recomputation, these fail even though outputs stay right.
"""

import numpy as np
import pytest

from repro.analysis.opcounts import OperationCounts
from repro.impls import FijiBaseline, MtCpu, PipelinedCpu, PipelinedGpu, SimpleCpu, SimpleGpu


class TestTransformReuse:
    def test_simple_cpu_one_fft_per_tile(self, dataset_4x4):
        res = SimpleCpu().run(dataset_4x4)
        assert res.stats["ffts"] == 16
        assert res.stats["reads"] == 16

    def test_fiji_recomputes_per_pair(self, dataset_4x4):
        """The baseline's defining flaw: 2 FFTs and 2 reads per pair."""
        res = FijiBaseline().run(dataset_4x4)
        counts = OperationCounts(4, 4, 64, 64)
        assert res.stats["ffts"] == 2 * counts.pairs == 48
        assert res.stats["reads"] == 48

    def test_mt_cpu_redundancy_limited_to_band_boundaries(self, dataset_4x4):
        """Legacy SPMD mode: each band re-reads the boundary row above."""
        res = MtCpu(workers=2, share_boundaries=False).run(dataset_4x4)
        # 2 bands of a 4-row grid: exactly one duplicated boundary row.
        assert res.stats["reads"] == 16 + 4
        assert res.stats["boundary_refts"] == 4
        assert res.stats["duplicated_boundary_reads"] == 4

    def test_mt_cpu_shared_boundaries_no_redundancy(self, dataset_4x4):
        """Default mode: boundary products are computed once and shared."""
        res = MtCpu(workers=2).run(dataset_4x4)
        assert res.stats["reads"] == 16
        assert res.stats["ffts"] == 16
        assert res.stats["boundary_refts"] == 0
        assert res.stats["duplicated_boundary_reads"] == 0

    def test_proc_cpu_no_redundancy(self, dataset_4x4):
        """Process bands exchange boundary products through the arena."""
        from repro.impls import ProcCpu

        res = ProcCpu(workers=2).run(dataset_4x4)
        assert res.stats["reads"] == 16
        assert res.stats["ffts"] == 16
        assert res.stats["duplicated_boundary_reads"] == 0
        assert res.stats["process_workers"] == 2

    def test_pipelined_cpu_no_redundancy(self, dataset_4x4):
        res = PipelinedCpu(workers=3).run(dataset_4x4)
        assert res.stats["ffts"] == 16
        assert res.stats["reads"] == 16


class TestGpuClaims:
    def test_simple_gpu_single_stream(self, dataset_4x4):
        impl = SimpleGpu()
        res = impl.run(dataset_4x4)
        assert res.stats["streams_used"] == 1  # default stream only

    def test_simple_gpu_d2h_is_scalars_only(self, dataset_4x4):
        """Paper: "minimizes transfers ... by only copying the result of
        the parallel reduction"."""
        res = SimpleGpu(n_peaks=1).run(dataset_4x4)
        pairs = 24
        # 2 doubles per pair (mag, index) = 16 B; allow small slack.
        assert res.stats["d2h_bytes"] == pairs * 16

    def test_simple_gpu_kernel_gaps(self, dataset_4x4):
        """Fig. 7: compute engine mostly idle under synchronous dispatch."""
        impl = SimpleGpu()
        impl.run(dataset_4x4)
        assert impl.last_device.profiler.density("compute") < 0.6

    def test_pipelined_gpu_three_streams_per_device(self, dataset_4x4):
        from repro.gpu.device import VirtualGpu

        dev = VirtualGpu()
        PipelinedGpu(devices=[dev]).run(dataset_4x4)
        # default stream + copy + fft + displacement = ids {1, 2, 3} used.
        used = dev.profiler.streams_used()
        assert len(used) == 3

    def test_pipelined_gpu_device_memory_bounded_by_pool(self, dataset_4x4):
        from repro.gpu.device import VirtualGpu

        dev = VirtualGpu()
        PipelinedGpu(devices=[dev], pool_size=12).run(dataset_4x4)
        # Half-spectrum transforms: pool (12) + NCC scratch are (64, 33)
        # complex, plus one float64 spatial surface for the c2r inverse;
        # nothing else allocated.
        spec = 64 * 33 * 16
        assert dev.allocator.peak_bytes == 13 * spec + 64 * 64 * 8

    def test_pipelined_gpu_complex_memory_bounded_by_pool(self, dataset_4x4):
        from repro.gpu.device import VirtualGpu

        dev = VirtualGpu()
        PipelinedGpu(devices=[dev], pool_size=12, real_transforms=False).run(
            dataset_4x4
        )
        hw = 64 * 64 * 16
        # pool (12 transforms) + 1 scratch surface; nothing else allocated.
        assert dev.allocator.peak_bytes == 13 * hw

    def test_pipelined_gpu_pool_exceeds_min_grid_dim(self, dataset_4x4):
        """Paper: "minimum pool size must exceed the smallest dimension"."""
        res = PipelinedGpu(devices=1).run(dataset_4x4)  # default sizing
        assert res.displacements.is_complete()

    def test_device_capacity_respected(self, dataset_4x4):
        """A pool larger than the card must fail like the card would."""
        from repro.gpu.device import VirtualGpu
        from repro.gpu.memory import OutOfDeviceMemory

        tiny = VirtualGpu(memory_bytes=100_000)
        with pytest.raises(OutOfDeviceMemory):
            PipelinedGpu(devices=[tiny], pool_size=4).run(dataset_4x4)


class TestMemoryBounds:
    def test_pipelined_cpu_pool_peak_recorded(self, dataset_4x4):
        res = PipelinedCpu(workers=2, pool_size=10).run(dataset_4x4)
        assert 0 < res.stats["pool_peak_in_use"] <= 10

    def test_simple_cpu_live_transforms_bounded(self, dataset_4x4):
        res = SimpleCpu().run(dataset_4x4)
        assert res.stats["peak_live_transforms"] < 16


class TestVirtualTimelineCausality:
    def test_pipelined_gpu_kernels_never_precede_their_copies(self, dataset_4x4):
        """The virtual timeline is causally ordered even though stage
        threads interleave: every forward FFT starts at or after some H2D
        copy completed, and no compute op starts before the first copy."""
        from repro.gpu.device import VirtualGpu

        dev = VirtualGpu()
        PipelinedGpu(devices=[dev]).run(dataset_4x4)
        events = dev.profiler.events
        copies = [e for e in events if e.name == "memcpy-h2d"]
        ffts = [e for e in events if e.name in ("cufft-fwd", "cufft-fwd-r2c")]
        assert ffts and copies
        first_copy_end = min(e.end for e in copies)
        for f in ffts:
            assert f.start >= first_copy_end - 1e-12
        # NCCs never precede two completed forward transforms.
        nccs = sorted(e.start for e in events if e.name == "ncc")
        fft_ends = sorted(e.end for e in ffts)
        assert nccs[0] >= fft_ends[1] - 1e-12
