"""Degenerate grid shapes through every implementation.

1xN strips (common in slide scanning), single columns, and 1x1 grids are
the classic off-by-one killers for partitioned/pipelined code.
"""

import numpy as np
import pytest

from repro.analysis.metrics import displacement_agreement
from repro.impls import ALL_IMPLEMENTATIONS, SimpleCpu
from repro.io.dataset import TileDataset
from repro.synth import make_synthetic_dataset


@pytest.fixture(scope="module")
def strip_1x6(tmp_path_factory):
    # A 1xN strip has no redundant graph paths (every west edge is a
    # bridge), so each pair must register on its own: use a realistic
    # tile size/overlap rather than the minimal test geometry.
    return make_synthetic_dataset(
        tmp_path_factory.mktemp("strip"), rows=1, cols=6,
        tile_height=72, tile_width=72, overlap=0.3, seed=31,
    )


@pytest.fixture(scope="module")
def column_5x1(tmp_path_factory):
    return make_synthetic_dataset(
        tmp_path_factory.mktemp("col"), rows=5, cols=1,
        tile_height=48, tile_width=48, overlap=0.25, seed=32,
    )


@pytest.fixture(scope="module")
def single_1x1(tmp_path_factory):
    return make_synthetic_dataset(
        tmp_path_factory.mktemp("one"), rows=1, cols=1,
        tile_height=48, tile_width=48, overlap=0.25, seed=33,
    )


def impl_kwargs(name):
    return {
        "mt-cpu": {"workers": 3},
        "pipelined-cpu": {"workers": 2},
        "pipelined-cpu-numa": {"sockets": 2},
        "pipelined-gpu": {"devices": 2, "ccf_workers": 2},
    }.get(name, {})


@pytest.mark.parametrize("name", sorted(ALL_IMPLEMENTATIONS))
def test_horizontal_strip(name, strip_1x6):
    ref = SimpleCpu().run(strip_1x6)
    res = ALL_IMPLEMENTATIONS[name](**impl_kwargs(name)).run(strip_1x6)
    assert res.displacements.pair_count() == 5
    assert displacement_agreement(res.displacements, ref.displacements) == 1.0


@pytest.mark.parametrize("name", sorted(ALL_IMPLEMENTATIONS))
def test_vertical_column(name, column_5x1):
    ref = SimpleCpu().run(column_5x1)
    res = ALL_IMPLEMENTATIONS[name](**impl_kwargs(name)).run(column_5x1)
    assert res.displacements.pair_count() == 4
    assert displacement_agreement(res.displacements, ref.displacements) == 1.0


@pytest.mark.parametrize("name", sorted(ALL_IMPLEMENTATIONS))
def test_single_tile(name, single_1x1):
    res = ALL_IMPLEMENTATIONS[name](**impl_kwargs(name)).run(single_1x1)
    assert res.displacements.pair_count() == 0
    assert res.displacements.is_complete()


def test_strip_stitches_end_to_end(strip_1x6):
    from repro.core.stitcher import Stitcher

    res = Stitcher().stitch(strip_1x6)
    assert res.position_errors().max() == 0.0
