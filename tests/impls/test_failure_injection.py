"""Failure injection: errors must surface promptly, never deadlock."""

import numpy as np
import pytest

from repro.impls import MtCpu, PipelinedCpu, PipelinedGpu, SimpleCpu
from repro.io.dataset import TileDataset
from repro.io.tiff import TiffError, write_tiff
from repro.pipeline.graph import PipelineError
from repro.synth import make_synthetic_dataset


@pytest.fixture
def broken_dataset(tmp_path):
    """4x4 dataset with tile (2,1) truncated on disk."""
    ds = make_synthetic_dataset(
        tmp_path / "ds", rows=4, cols=4, tile_height=48, tile_width=48,
        overlap=0.25, seed=3,
    )
    path = ds.path(2, 1)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    return ds


@pytest.fixture
def missing_tile_dataset(tmp_path):
    ds = make_synthetic_dataset(
        tmp_path / "ds", rows=3, cols=3, tile_height=48, tile_width=48,
        overlap=0.25, seed=4,
    )
    ds.path(1, 1).unlink()
    return ds


class TestCorruptTile:
    def test_simple_cpu_surfaces_tiff_error(self, broken_dataset):
        with pytest.raises(TiffError):
            SimpleCpu().run(broken_dataset)

    def test_mt_cpu_surfaces_error(self, broken_dataset):
        with pytest.raises(TiffError):
            MtCpu(workers=2).run(broken_dataset)

    def test_pipelined_cpu_fails_fast_no_deadlock(self, broken_dataset):
        with pytest.raises(PipelineError) as exc_info:
            PipelinedCpu(workers=2, pool_timeout=5.0).run(broken_dataset)
        assert isinstance(exc_info.value.__cause__, TiffError)

    def test_pipelined_gpu_fails_fast_no_deadlock(self, broken_dataset):
        with pytest.raises(PipelineError):
            PipelinedGpu(devices=2, pool_timeout=5.0).run(broken_dataset)


class TestMissingTile:
    def test_pipelined_cpu(self, missing_tile_dataset):
        with pytest.raises(PipelineError) as exc_info:
            PipelinedCpu(workers=2, pool_timeout=5.0).run(missing_tile_dataset)
        assert isinstance(exc_info.value.__cause__, FileNotFoundError)

    def test_simple_cpu(self, missing_tile_dataset):
        with pytest.raises(FileNotFoundError):
            SimpleCpu().run(missing_tile_dataset)


class TestUndersizedPool:
    def test_pipelined_cpu_times_out_instead_of_hanging(self, tmp_path):
        """A pool below the wavefront requirement must raise, not hang."""
        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=4, cols=4, tile_height=32, tile_width=32,
            overlap=0.25, seed=5,
        )
        with pytest.raises(PipelineError) as exc_info:
            PipelinedCpu(workers=2, pool_size=1, pool_timeout=0.5).run(ds)
        assert isinstance(exc_info.value.__cause__, TimeoutError)

    def test_adequate_pool_succeeds(self, tmp_path):
        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=4, cols=4, tile_height=32, tile_width=32,
            overlap=0.25, seed=5,
        )
        res = PipelinedCpu(workers=2, pool_size=12, pool_timeout=30.0).run(ds)
        assert res.displacements.is_complete()


class TestValidation:
    def test_worker_counts(self):
        with pytest.raises(ValueError):
            MtCpu(workers=0)
        with pytest.raises(ValueError):
            PipelinedCpu(workers=0)
        with pytest.raises(ValueError):
            PipelinedGpu(devices=0)
