"""Adjacency structure: pair counts, directions, incident pairs."""

import pytest
from hypothesis import given, strategies as st

from repro.grid.neighbors import (
    Direction,
    Pair,
    grid_pairs,
    pair_count,
    pairs_for_tile,
)
from repro.grid.tile_grid import GridPosition, TileGrid


class TestPair:
    def test_valid_west_pair(self):
        Pair(GridPosition(1, 2), GridPosition(1, 3), Direction.WEST)

    def test_invalid_west_pair_rejected(self):
        with pytest.raises(ValueError):
            Pair(GridPosition(1, 2), GridPosition(1, 1), Direction.WEST)
        with pytest.raises(ValueError):
            Pair(GridPosition(0, 2), GridPosition(1, 3), Direction.WEST)

    def test_invalid_north_pair_rejected(self):
        with pytest.raises(ValueError):
            Pair(GridPosition(2, 0), GridPosition(1, 0), Direction.NORTH)


class TestGridPairs:
    @given(rows=st.integers(1, 12), cols=st.integers(1, 12))
    def test_count_matches_table1_formula(self, rows, cols):
        g = TileGrid(rows, cols)
        pairs = list(grid_pairs(g))
        assert len(pairs) == pair_count(g) == 2 * rows * cols - rows - cols
        assert len(set(pairs)) == len(pairs)

    def test_direction_split(self):
        g = TileGrid(3, 4)
        pairs = list(grid_pairs(g))
        west = [p for p in pairs if p.direction is Direction.WEST]
        north = [p for p in pairs if p.direction is Direction.NORTH]
        assert len(west) == 3 * 3   # n * (m-1)
        assert len(north) == 2 * 4  # (n-1) * m

    def test_single_tile_grid_has_no_pairs(self):
        assert list(grid_pairs(TileGrid(1, 1))) == []

    def test_single_row(self):
        pairs = list(grid_pairs(TileGrid(1, 4)))
        assert all(p.direction is Direction.WEST for p in pairs)
        assert len(pairs) == 3


class TestPairsForTile:
    def test_interior_tile_has_four(self):
        g = TileGrid(3, 3)
        assert len(pairs_for_tile(g, 1, 1)) == 4

    def test_corner_has_two(self):
        g = TileGrid(3, 3)
        assert len(pairs_for_tile(g, 0, 0)) == 2
        assert len(pairs_for_tile(g, 2, 2)) == 2

    def test_edge_has_three(self):
        g = TileGrid(3, 3)
        assert len(pairs_for_tile(g, 0, 1)) == 3

    @given(rows=st.integers(1, 8), cols=st.integers(1, 8))
    def test_every_pair_incident_to_exactly_two_tiles(self, rows, cols):
        g = TileGrid(rows, cols)
        incidence: dict = {}
        for pos in g.positions():
            for p in pairs_for_tile(g, pos.row, pos.col):
                incidence[p] = incidence.get(p, 0) + 1
        assert set(incidence.values()) <= {2}
        assert len(incidence) == pair_count(g)
