"""Grid geometry: indexing, acquisition numbering, origin handling."""

import pytest
from hypothesis import given, strategies as st

from repro.grid.tile_grid import GridPosition, Numbering, Origin, TileGrid


class TestBasics:
    def test_len_and_contains(self):
        g = TileGrid(3, 5)
        assert len(g) == 15
        assert (2, 4) in g
        assert (3, 0) not in g
        assert (0, -1) not in g

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            TileGrid(0, 5)

    def test_index_roundtrip(self):
        g = TileGrid(4, 7)
        for pos in g.positions():
            assert g.position(g.index(pos.row, pos.col)) == pos

    def test_index_bounds(self):
        g = TileGrid(2, 2)
        with pytest.raises(IndexError):
            g.index(2, 0)
        with pytest.raises(IndexError):
            g.position(4)

    def test_positions_row_major(self):
        g = TileGrid(2, 2)
        assert list(g.positions()) == [
            GridPosition(0, 0), GridPosition(0, 1),
            GridPosition(1, 0), GridPosition(1, 1),
        ]


class TestNumbering:
    def test_row_serpentine_path(self):
        g = TileGrid(2, 3, numbering=Numbering.ROW_SERPENTINE)
        path = [tuple(g.position_of_sequence(i)) for i in range(6)]
        assert path == [(0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)]

    def test_column_major_path(self):
        g = TileGrid(2, 3, numbering=Numbering.COLUMN_MAJOR)
        path = [tuple(g.position_of_sequence(i)) for i in range(6)]
        assert path == [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]

    def test_lower_right_origin(self):
        g = TileGrid(2, 2, origin=Origin.LOWER_RIGHT)
        assert tuple(g.position_of_sequence(0)) == (1, 1)

    def test_sequence_bounds(self):
        g = TileGrid(2, 2)
        with pytest.raises(IndexError):
            g.position_of_sequence(4)
        with pytest.raises(IndexError):
            g.sequence_of(0, 5)

    @given(
        rows=st.integers(1, 8),
        cols=st.integers(1, 8),
        origin=st.sampled_from(list(Origin)),
        numbering=st.sampled_from(list(Numbering)),
    )
    def test_sequence_is_a_bijection(self, rows, cols, origin, numbering):
        g = TileGrid(rows, cols, origin=origin, numbering=numbering)
        seqs = {g.sequence_of(p.row, p.col) for p in g.positions()}
        assert seqs == set(range(len(g)))
        for s in range(len(g)):
            p = g.position_of_sequence(s)
            assert g.sequence_of(p.row, p.col) == s

    @given(
        rows=st.integers(2, 8),
        cols=st.integers(2, 8),
        origin=st.sampled_from(list(Origin)),
        numbering=st.sampled_from(
            [Numbering.ROW_SERPENTINE, Numbering.COLUMN_SERPENTINE]
        ),
    )
    def test_serpentine_consecutive_positions_adjacent(self, rows, cols, origin, numbering):
        """A serpentine stage path only ever moves to a 4-neighbour."""
        g = TileGrid(rows, cols, origin=origin, numbering=numbering)
        prev = g.position_of_sequence(0)
        for s in range(1, len(g)):
            cur = g.position_of_sequence(s)
            assert abs(cur.row - prev.row) + abs(cur.col - prev.col) == 1
            prev = cur
