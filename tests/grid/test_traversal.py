"""Traversal orders and their memory consequences (Section IV.A)."""

import pytest
from hypothesis import given, strategies as st

from repro.grid.tile_grid import GridPosition, TileGrid
from repro.grid.traversal import (
    Traversal,
    peak_live_transforms,
    release_schedule,
    traverse,
)


@given(
    rows=st.integers(1, 10),
    cols=st.integers(1, 10),
    order=st.sampled_from(list(Traversal)),
)
def test_every_order_is_a_permutation(rows, cols, order):
    g = TileGrid(rows, cols)
    seq = list(traverse(g, order))
    assert len(seq) == len(g)
    assert len(set(seq)) == len(g)


class TestSpecificOrders:
    def test_row_order(self):
        g = TileGrid(2, 3)
        assert [tuple(p) for p in traverse(g, Traversal.ROW)] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)
        ]

    def test_chained_row_is_boustrophedon(self):
        g = TileGrid(2, 3)
        assert [tuple(p) for p in traverse(g, Traversal.CHAINED_ROW)] == [
            (0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)
        ]

    def test_diagonal_wavefront(self):
        g = TileGrid(3, 3)
        seq = [tuple(p) for p in traverse(g, Traversal.DIAGONAL)]
        assert seq[0] == (0, 0)
        assert set(seq[1:3]) == {(0, 1), (1, 0)}
        assert set(seq[3:6]) == {(0, 2), (1, 1), (2, 0)}

    def test_chained_diagonal_alternates_direction(self):
        g = TileGrid(3, 3)
        seq = [tuple(p) for p in traverse(g, Traversal.CHAINED_DIAGONAL)]
        # Second anti-diagonal is traversed high-row-first.
        assert seq[1] == (1, 0)
        assert seq[2] == (0, 1)


class TestReleaseSchedule:
    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        order=st.sampled_from(list(Traversal)),
    )
    def test_everything_eventually_released(self, rows, cols, order):
        g = TileGrid(rows, cols)
        sched = release_schedule(g, order)
        released = [p for _, freed in sched for p in freed]
        assert len(released) == len(g)
        assert len(set(released)) == len(g)

    def test_release_never_precedes_visit(self):
        g = TileGrid(4, 4)
        visited = set()
        for pos, freed in release_schedule(g, Traversal.CHAINED_DIAGONAL):
            visited.add(pos)
            for f in freed:
                assert f in visited


class TestPeakLiveTransforms:
    def test_diagonal_orders_beat_row_order_on_wide_grids(self):
        """The paper's rationale for the chained-diagonal default."""
        g = TileGrid(8, 16)
        row_peak = peak_live_transforms(g, Traversal.ROW)
        diag_peak = peak_live_transforms(g, Traversal.CHAINED_DIAGONAL)
        assert diag_peak < row_peak

    def test_diagonal_peak_tracks_small_dimension(self):
        """Pool sizing rule: "must exceed the smallest grid dimension"."""
        g = TileGrid(6, 30)
        peak = peak_live_transforms(g, Traversal.CHAINED_DIAGONAL)
        assert min(6, 30) < peak <= 2 * min(6, 30) + 2

    def test_row_order_peak_spans_two_rows(self):
        g = TileGrid(5, 9)
        # Row order must keep the previous row live for north pairs.
        assert peak_live_transforms(g, Traversal.ROW) >= 9

    @given(rows=st.integers(1, 6), cols=st.integers(1, 6))
    def test_peak_bounds(self, rows, cols):
        g = TileGrid(rows, cols)
        for order in Traversal:
            peak = peak_live_transforms(g, order)
            assert 1 <= peak <= rows * cols

    def test_1x1(self):
        g = TileGrid(1, 1)
        assert peak_live_transforms(g, Traversal.CHAINED_DIAGONAL) == 1
