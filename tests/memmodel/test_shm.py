"""Shared-memory arena lifecycle: no segment survives any exit path.

POSIX shared memory outlives processes by design, so every exit path of
the arena -- normal close, context manager, worker crash, even SIGKILL of
the creating process -- must leave ``/dev/shm`` clean.  These tests assert
that by name prefix via :func:`repro.memmodel.shm.leaked_segments`, the
same check the chaos-smoke CI job runs.
"""

import os
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.memmodel.shm import (
    SHM_NAME_PREFIX,
    SharedTileSlab,
    ShmArena,
    cleanup_stale,
    leaked_segments,
)

SRC_DIR = Path(repro.__file__).resolve().parents[1]

pytestmark = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="needs a /dev/shm view"
)


class TestSlab:
    def test_roundtrip_and_views(self):
        arena = ShmArena()
        try:
            slab = arena.slab("tiles", 3, (4, 5), np.float64)
            slab.slot(1)[...] = 7.0
            assert slab.array.shape == (3, 4, 5)
            assert np.all(slab.slot(1) == 7.0)
            assert np.all(slab.slot(0) == 0.0)  # POSIX shm zero-fill
            # slot() is a view, not a copy.
            slab.slot(2)[0, 0] = 1.5
            assert slab.array[2, 0, 0] == 1.5
        finally:
            arena.close()

    def test_attach_sees_creator_writes(self):
        arena = ShmArena()
        try:
            slab = arena.slab("t", 2, (8,), np.complex128)
            slab.slot(0)[...] = 3 + 4j
            other = SharedTileSlab.attach(arena.spec()["t"])
            try:
                assert other.dtype == np.complex128
                assert np.array_equal(other.slot(0), slab.slot(0))
                other.slot(1)[...] = 9.0
                assert np.all(slab.slot(1) == 9.0)
            finally:
                other.close()
        finally:
            arena.close()

    def test_attacher_close_does_not_destroy_segment(self):
        arena = ShmArena()
        try:
            slab = arena.slab("t", 1, (4,), np.float64)
            attached = SharedTileSlab.attach(arena.spec()["t"])
            attached.close()
            # The creator's mapping must still be live and the segment
            # still present under the prefix.
            slab.slot(0)[...] = 2.0
            assert leaked_segments(arena.prefix)
        finally:
            arena.close()

    def test_slab_is_memoized_by_key(self):
        with ShmArena() as arena:
            a = arena.slab("x", 1, (2,), np.float64)
            b = arena.slab("x", 1, (2,), np.float64)
            assert a is b
            assert arena.total_bytes == a.nbytes


class TestArenaLifecycle:
    def test_close_unlinks_everything(self):
        arena = ShmArena()
        arena.slab("a", 2, (16, 16), np.float64)
        arena.slab("b", 1, (4,), np.int8)
        assert len(leaked_segments(arena.prefix)) == 2
        arena.close()
        assert leaked_segments(arena.prefix) == []
        arena.close()  # idempotent

    def test_context_manager_unlinks_on_error(self):
        prefix = None
        with pytest.raises(RuntimeError):
            with ShmArena() as arena:
                prefix = arena.prefix
                arena.slab("a", 1, (8,), np.float64)
                raise RuntimeError("worker blew up")
        assert leaked_segments(prefix) == []

    def test_closed_arena_rejects_new_slabs(self):
        arena = ShmArena()
        arena.close()
        with pytest.raises(RuntimeError):
            arena.slab("late", 1, (1,), np.float64)

    def test_worker_crash_leaves_parent_arena_usable(self):
        """A forked worker dying must not unlink the parent's segments --
        the attach-side resource-tracker deregistration in action."""
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork")
        arena = ShmArena()
        try:
            slab = arena.slab("t", 1, (8,), np.float64)

            def crash(spec):
                s = SharedTileSlab.attach(spec)
                s.slot(0)[...] = 5.0
                os._exit(3)  # crash: no cleanup, no atexit

            proc = mp.get_context("fork").Process(
                target=crash, args=(slab.spec(),)
            )
            proc.start()
            proc.join(timeout=30)
            assert proc.exitcode == 3
            # Parent still sees the segment and the worker's write.
            assert leaked_segments(arena.prefix)
            assert np.all(slab.slot(0) == 5.0)
        finally:
            arena.close()
        assert leaked_segments(arena.prefix) == []

    def test_sigkill_creator_segments_swept(self, tmp_path):
        """SIGKILL the creating process: its resource tracker survives the
        kill and sweeps the segments; nothing stays in /dev/shm."""
        script = (
            "import sys, time\n"
            "from repro.memmodel.shm import ShmArena\n"
            "import numpy as np\n"
            "arena = ShmArena()\n"
            "arena.slab('tiles', 4, (64, 64), np.float64)\n"
            "print(arena.prefix, flush=True)\n"
            "time.sleep(120)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            prefix = proc.stdout.readline().strip()
            assert prefix.startswith(SHM_NAME_PREFIX)
            assert leaked_segments(prefix), "child did not create its slab"
            proc.kill()  # SIGKILL: no atexit, no finally
            proc.wait(timeout=30)
            # The tracker notices the dead creator asynchronously.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if not leaked_segments(prefix):
                    break
                time.sleep(0.1)
            leftover = leaked_segments(prefix)
            # Defensive sweep must also report/remove anything the tracker
            # missed -- and either way the prefix ends up clean.
            cleanup_stale(prefix)
            assert leaked_segments(prefix) == [], (
                f"segments survived SIGKILL + tracker sweep: {leftover}"
            )
            assert leftover == [], (
                "resource tracker failed to sweep after SIGKILL "
                f"(cleanup_stale had to remove {leftover})"
            )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_cleanup_stale_removes_orphans(self):
        """Last-resort sweep for a tracker that died with its process."""
        prefix = f"{SHM_NAME_PREFIX}-test-{os.getpid()}"
        seg = shared_memory.SharedMemory(name=f"{prefix}-orphan", create=True,
                                         size=64)
        seg.close()
        assert leaked_segments(prefix) == [f"{prefix}-orphan"]
        removed = cleanup_stale(prefix)
        assert removed == [f"{prefix}-orphan"]
        assert leaked_segments(prefix) == []


def test_proc_cpu_run_leaves_no_segments(dataset_4x4):
    """End-to-end: a proc-cpu run cleans up its whole arena."""
    from repro.impls import ProcCpu

    before = leaked_segments()
    res = ProcCpu(workers=2).run(dataset_4x4)
    assert res.stats["pairs"] == 24
    assert leaked_segments() == before


def test_striped_compose_leaves_no_segments(dataset_4x4, reference_displacements):
    from repro.core.compose import BlendMode, compose
    from repro.core.global_opt import resolve_absolute_positions

    pos = resolve_absolute_positions(
        reference_displacements.displacements, method="mst"
    )
    before = leaked_segments()
    compose(dataset_4x4.load, pos, dataset_4x4.tile_shape,
            blend=BlendMode.AVERAGE, workers=3)
    assert leaked_segments() == before
