"""Buffer pool: fixed allocation, blocking acquire, misuse detection."""

import threading
import time

import numpy as np
import pytest

from repro.memmodel.pool import BufferPool, PoolExhausted


class TestBufferPool:
    def test_acquire_release_cycle(self):
        pool = BufferPool(2, (4, 4))
        a = pool.acquire()
        b = pool.acquire()
        assert {a, b} == {0, 1}
        assert pool.free_count == 0
        pool.release(a)
        assert pool.free_count == 1

    def test_arrays_are_distinct_and_stable(self):
        pool = BufferPool(3, (8, 8))
        arrays = [pool.array(i) for i in range(3)]
        arrays[0][...] = 7
        assert arrays[1].sum() != arrays[0].sum() or not np.shares_memory(arrays[0], arrays[1])
        assert pool.array(0) is arrays[0]

    def test_nonblocking_exhaustion(self):
        pool = BufferPool(1, (2, 2))
        pool.acquire()
        with pytest.raises(PoolExhausted):
            pool.acquire(blocking=False)

    def test_blocking_acquire_waits_for_release(self):
        pool = BufferPool(1, (2, 2))
        idx = pool.acquire()
        got = []

        def waiter():
            got.append(pool.acquire())

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not got
        pool.release(idx)
        t.join(timeout=2)
        assert got == [idx]

    def test_acquire_timeout(self):
        pool = BufferPool(1, (2, 2))
        pool.acquire()
        with pytest.raises(TimeoutError, match="pool exhausted"):
            pool.acquire(timeout=0.05)

    def test_double_release_rejected(self):
        pool = BufferPool(2, (2, 2))
        idx = pool.acquire()
        pool.release(idx)
        with pytest.raises(ValueError, match="double release"):
            pool.release(idx)

    def test_bad_index_rejected(self):
        pool = BufferPool(2, (2, 2))
        with pytest.raises(ValueError):
            pool.release(5)
        with pytest.raises(ValueError):
            pool.array(-1)

    def test_telemetry(self):
        pool = BufferPool(4, (2, 2))
        a = pool.acquire()
        b = pool.acquire()
        pool.release(a)
        pool.acquire()
        assert pool.peak_in_use == 2
        assert pool.total_acquires == 3

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(0, (2, 2))

    def test_never_allocates_after_init(self):
        """The paper's one-time-allocation rule: the backing arrays are
        identity-stable across acquire/release cycles."""
        pool = BufferPool(2, (4, 4))
        before = {i: id(pool.array(i)) for i in range(2)}
        for _ in range(10):
            i = pool.acquire()
            pool.release(i)
        after = {i: id(pool.array(i)) for i in range(2)}
        assert before == after
