"""Tile reference counting against grid adjacency."""

import pytest
from hypothesis import given, strategies as st

from repro.grid.neighbors import pairs_for_tile
from repro.grid.tile_grid import GridPosition, TileGrid
from repro.memmodel.refcount import RefCounter


class TestRefCounter:
    def test_initial_counts_match_adjacency(self):
        g = TileGrid(3, 3)
        rc = RefCounter(g)
        assert rc.count(GridPosition(1, 1)) == 4  # interior
        assert rc.count(GridPosition(0, 0)) == 2  # corner
        assert rc.count(GridPosition(0, 1)) == 3  # edge

    def test_degenerate_grids(self):
        rc = RefCounter(TileGrid(1, 3))
        assert rc.count(GridPosition(0, 0)) == 1
        assert rc.count(GridPosition(0, 1)) == 2
        rc1 = RefCounter(TileGrid(1, 1))
        assert rc1.count(GridPosition(0, 0)) == 0

    def test_decrement_to_zero_signals_release(self):
        g = TileGrid(2, 2)
        rc = RefCounter(g)
        pos = GridPosition(0, 0)
        assert rc.decrement(pos) is False
        assert rc.decrement(pos) is True

    def test_underflow_rejected(self):
        g = TileGrid(2, 2)
        rc = RefCounter(g)
        pos = GridPosition(0, 0)
        rc.decrement(pos)
        rc.decrement(pos)
        with pytest.raises(ValueError, match="underflow"):
            rc.decrement(pos)

    @given(rows=st.integers(1, 6), cols=st.integers(1, 6))
    def test_full_drain_via_pair_completions(self, rows, cols):
        """Completing every pair exactly once drains every tile to zero."""
        g = TileGrid(rows, cols)
        rc = RefCounter(g)
        from repro.grid.neighbors import grid_pairs

        releases = 0
        for pair in grid_pairs(g):
            for pos in (pair.first, pair.second):
                if rc.decrement(pos):
                    releases += 1
        zero_start = sum(
            1 for p in g.positions() if not pairs_for_tile(g, p.row, p.col)
        )
        assert releases + zero_start == rows * cols
        assert rc.live_count() == 0
