"""Virtual-memory model: cliff location and slowdown shape."""

import pytest
from hypothesis import given, strategies as st

from repro.memmodel.vm import VirtualMemoryModel

GIB = 1024**3


class TestSlowdown:
    def test_under_ram_is_free(self):
        vm = VirtualMemoryModel(ram_bytes=24 * GIB)
        assert vm.slowdown(0) == 1.0
        assert vm.slowdown(24 * GIB) == 1.0

    def test_over_ram_pays(self):
        vm = VirtualMemoryModel(ram_bytes=24 * GIB)
        assert vm.slowdown(25 * GIB) > 1.0

    def test_monotone_in_working_set(self):
        vm = VirtualMemoryModel(ram_bytes=GIB)
        prev = 0.0
        for ws in [0.5 * GIB, GIB, 1.1 * GIB, 2 * GIB, 10 * GIB, 100 * GIB]:
            cur = vm.slowdown(ws)
            assert cur >= prev
            prev = cur

    def test_thrash_ceiling_from_resident_floor(self):
        vm = VirtualMemoryModel(ram_bytes=GIB, page_fault_penalty=50.0,
                                resident_fraction_floor=0.05)
        worst = vm.slowdown(1e18)
        assert worst == pytest.approx(1.0 + 50.0 * 0.95)

    def test_penalty_scales_depth(self):
        mild = VirtualMemoryModel(ram_bytes=GIB, page_fault_penalty=5.0)
        harsh = VirtualMemoryModel(ram_bytes=GIB, page_fault_penalty=500.0)
        assert harsh.slowdown(2 * GIB) > mild.slowdown(2 * GIB)

    @given(ws=st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_slowdown_at_least_one(self, ws):
        vm = VirtualMemoryModel(ram_bytes=24 * GIB)
        assert vm.slowdown(ws) >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualMemoryModel(ram_bytes=0)
        with pytest.raises(ValueError):
            VirtualMemoryModel(ram_bytes=1, page_fault_penalty=-1)
        with pytest.raises(ValueError):
            VirtualMemoryModel(ram_bytes=GIB).slowdown(-5)


class TestCliffLocation:
    def test_paper_configuration(self):
        """24 GiB RAM / ~30 MB per tile puts the cliff in the paper's
        832-864 tile window (Fig. 5)."""
        vm = VirtualMemoryModel(ram_bytes=24 * GIB)
        hw = 1040 * 1392
        cliff = vm.cliff_tile_count(21.0 * hw)
        assert 832 < cliff <= 864

    def test_validation(self):
        vm = VirtualMemoryModel(ram_bytes=GIB)
        with pytest.raises(ValueError):
            vm.cliff_tile_count(0)
