"""End-to-end out-of-core composition: budgets hold, pixels don't change.

The over-budget case stitches a synthetic grid whose full-resolution
float64 canvas is several times the compose budget, asserts the tracked
peak stays under it, and cross-checks the streamed file bit-for-bit
against the in-memory reference on the same (control-sized) grid -- the
same shape the CI memory-budget smoke job runs at larger scale with an
RSS assertion on top.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.compose import BlendMode
from repro.core.pyramid import DiskPyramid
from repro.core.stitcher import Stitcher
from repro.core.streamcompose import pyramid_level_path
from repro.io.tiff import TiffReader, read_tiff


@pytest.fixture(scope="module")
def stitched(dataset_4x4):
    return Stitcher().stitch(dataset_4x4)


class TestBudgetedStitchCompose:
    def test_over_budget_canvas_stays_bounded(self, stitched, tmp_path):
        h, w = stitched.positions.mosaic_shape(stitched.dataset.tile_shape)
        full_canvas = h * w * 8
        budget = full_canvas // 4  # canvas cannot fit: must stream
        res = stitched.compose_to_tiff(tmp_path / "m.tif",
                                       memory_budget=budget)
        assert res.peak_bytes <= budget
        assert res.stripes > 1
        assert (tmp_path / "m.tif").exists()

    @pytest.mark.parametrize(
        "blend", [BlendMode.OVERLAY, BlendMode.AVERAGE,
                  BlendMode.MAXIMUM, BlendMode.LINEAR])
    def test_streamed_equals_in_memory_reference(self, stitched, tmp_path,
                                                 blend):
        h, w = stitched.positions.mosaic_shape(stitched.dataset.tile_shape)
        budget = (h * w * 8) // 4
        stitched.compose_to_tiff(tmp_path / "m.tif", blend=blend,
                                 memory_budget=budget)
        ref = stitched.compose(blend, dtype=np.float64)
        expected = np.clip(ref, 0, 65535).astype(np.uint16)
        assert np.array_equal(read_tiff(tmp_path / "m.tif"), expected)

    def test_pyramid_viewport_from_disk(self, stitched, tmp_path):
        res = stitched.compose_to_tiff(tmp_path / "m.tif",
                                       memory_budget=256 * 1024,
                                       pyramid_levels=2)
        assert len(res.pyramid_paths) == 2
        with DiskPyramid(tmp_path / "m.tif") as pyr:
            assert pyr.levels == 3
            win = pyr.render_region(5, 5, 20, 20, level=1)
            ref = read_tiff(pyramid_level_path(tmp_path / "m.tif", 1))
            assert np.array_equal(win, ref[5:25, 5:25])

    def test_native_dtype_loader_used(self, dataset_4x4):
        """The compose loader must not promote uint16 tiles to float64."""
        res = Stitcher().stitch(dataset_4x4)
        tile = res._load_native(0, 0)
        assert tile.dtype == np.uint16


class TestCliMemoryBudget:
    @pytest.fixture
    def dataset_dir(self, tmp_path):
        main(["synth", str(tmp_path / "ds"), "--rows", "3", "--cols", "3",
              "--tile-size", "48", "--overlap", "0.25", "--seed", "7"])
        return tmp_path / "ds"

    def test_memory_budget_flag(self, dataset_dir, tmp_path, capsys):
        out = tmp_path / "m.tif"
        rc = main(["stitch", str(dataset_dir), "-o", str(out),
                   "--memory-budget", "256K"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "streamed" in text
        assert out.exists()

    def test_pyramid_flag(self, dataset_dir, tmp_path, capsys):
        out = tmp_path / "m.tif"
        rc = main(["stitch", str(dataset_dir), "-o", str(out),
                   "--memory-budget", "256K", "--pyramid", "2"])
        assert rc == 0
        assert "pyramid L1..L2" in capsys.readouterr().out
        for k in (1, 2):
            with TiffReader(pyramid_level_path(out, k)) as r:
                assert r.height > 0

    def test_pyramid_alone_streams(self, dataset_dir, tmp_path):
        out = tmp_path / "m.tif"
        assert main(["stitch", str(dataset_dir), "-o", str(out),
                     "--pyramid", "1"]) == 0
        assert pyramid_level_path(out, 1).exists()
