"""End-to-end equivalence across every implementation, traced and untraced.

Two invariants the observability layer must not disturb:

1. every implementation resolves the *same absolute positions* as the
   sequential reference, whether or not a tracer/metrics registry is
   attached (instrumentation must be behaviour-neutral);
2. under a skip policy with a damaged dataset, every implementation
   reports the *same skip/drop accounting* (same skipped tiles, same
   cancelled pairs), traced or not.
"""

import numpy as np
import pytest

from repro.core.global_opt import resolve_absolute_positions
from repro.faults.report import FaultReport
from repro.impls import ALL_IMPLEMENTATIONS
from repro.observe import MetricsRegistry, Tracer
from repro.pipeline.stage import ErrorPolicy
from repro.synth import make_synthetic_dataset

IMPL_NAMES = sorted(ALL_IMPLEMENTATIONS)


def _make_impl(name, **kw):
    return ALL_IMPLEMENTATIONS[name](**kw)


@pytest.fixture(scope="module")
def reference_positions(dataset_4x4):
    run = _make_impl("simple-cpu").run(dataset_4x4)
    return resolve_absolute_positions(run.displacements, method="mst")


@pytest.fixture(scope="module")
def damaged_dataset(tmp_path_factory):
    """4x4 grid with tile (2,1) deleted: 4 pairs become uncomputable."""
    d = tmp_path_factory.mktemp("damaged")
    ds = make_synthetic_dataset(
        d, rows=4, cols=4, tile_height=64, tile_width=64, overlap=0.25, seed=7
    )
    ds.path(2, 1).unlink()
    return ds


@pytest.mark.parametrize("traced", [False, True], ids=["plain", "traced"])
@pytest.mark.parametrize("impl_name", IMPL_NAMES)
def test_identical_positions(impl_name, traced, dataset_4x4, reference_positions):
    kw = {}
    tracer = None
    if traced:
        tracer = Tracer()
        kw = {"tracer": tracer, "metrics": MetricsRegistry()}
    run = _make_impl(impl_name, **kw).run(dataset_4x4)
    pos = resolve_absolute_positions(run.displacements, method="mst")
    assert np.array_equal(pos.positions, reference_positions.positions), (
        f"{impl_name} (traced={traced}) diverged from the reference positions"
    )
    if traced:
        # Tracing must actually have observed the run, not just stayed out
        # of its way.
        assert tracer.span_count() > 0
        assert "phase1" in tracer.tracks()


@pytest.mark.parametrize("traced", [False, True], ids=["plain", "traced"])
@pytest.mark.parametrize("impl_name", IMPL_NAMES)
def test_identical_skip_accounting(impl_name, traced, damaged_dataset):
    policy = ErrorPolicy(max_retries=1, backoff=0.0, on_exhausted="skip")
    report = FaultReport()
    kw = {"error_policy": policy, "fault_report": report}
    if traced:
        kw["tracer"] = Tracer()
        kw["metrics"] = MetricsRegistry()
    run = _make_impl(impl_name, **kw).run(damaged_dataset)

    # Every implementation must drop exactly the unreadable tile and
    # exactly its four incident pairs -- nothing more, nothing less.
    assert report.skipped_tiles == [(2, 1)]
    assert report.skipped_pairs == [
        ("north", 2, 1),
        ("north", 3, 1),
        ("west", 2, 1),
        ("west", 2, 2),
    ]
    assert sorted(run.displacements.missing_pairs()) == [
        ("north", 2, 1),
        ("north", 3, 1),
        ("west", 2, 1),
        ("west", 2, 2),
    ]
    if traced:
        # Metric counters are *event* counts (a band-partitioned impl may
        # hit the bad tile once per band), so bound rather than equate;
        # the FaultReport above is the deduplicated source of truth.
        reg = kw["metrics"]
        assert reg.counter("read.skipped_tiles").value >= 1
        assert reg.counter("pairs.skipped").value >= 4


def _collect_translations(displacements):
    out = []
    for arr in (displacements.west, displacements.north):
        for row in arr:
            for t in row:
                out.append(None if t is None else (t.correlation, t.tx, t.ty))
    return out


@pytest.mark.parametrize("real", [True, False], ids=["half-spectrum", "complex"])
@pytest.mark.parametrize("impl_name", IMPL_NAMES)
def test_half_spectrum_matrix_identical(impl_name, real, dataset_4x4):
    """Every implementation, r2c on or off, agrees with the reference.

    Translations must match exactly; correlations to 1e-9 (the
    summed-area-table CCF evaluates the same Pearson r in a different
    summation order than the direct scan, and the optimization knobs must
    never change which candidate wins).
    """
    ref = _make_impl(
        "simple-cpu", real_transforms=False,
        use_tile_stats=False, use_workspace=False,
    ).run(dataset_4x4)
    ref_t = _collect_translations(ref.displacements)
    run = _make_impl(impl_name, real_transforms=real).run(dataset_4x4)
    got_t = _collect_translations(run.displacements)
    assert len(got_t) == len(ref_t)
    for got, want in zip(got_t, ref_t):
        if want is None:
            assert got is None
            continue
        assert got is not None
        assert got[1:] == want[1:], (
            f"{impl_name} (real={real}) moved a translation: {got} vs {want}"
        )
        assert got[0] == pytest.approx(want[0], abs=1e-9), (
            f"{impl_name} (real={real}) drifted a correlation"
        )


@pytest.mark.parametrize("real", [True, False], ids=["half-spectrum", "complex"])
@pytest.mark.parametrize("impl_name", IMPL_NAMES)
def test_half_spectrum_matrix_skip_accounting(impl_name, real, damaged_dataset):
    """r2c on/off must not change skip/drop accounting either."""
    policy = ErrorPolicy(max_retries=0, backoff=0.0, on_exhausted="skip")
    report = FaultReport()
    run = _make_impl(
        impl_name, real_transforms=real,
        error_policy=policy, fault_report=report,
    ).run(damaged_dataset)
    assert report.skipped_tiles == [(2, 1)]
    assert sorted(run.displacements.missing_pairs()) == [
        ("north", 2, 1),
        ("north", 3, 1),
        ("west", 2, 1),
        ("west", 2, 2),
    ]


def test_surviving_pairs_match_reference(damaged_dataset):
    """The pairs that survive a skip run agree across implementations."""
    policy = ErrorPolicy(max_retries=0, backoff=0.0, on_exhausted="skip")
    runs = {}
    for name in IMPL_NAMES:
        runs[name] = _make_impl(
            name, error_policy=policy, fault_report=FaultReport()
        ).run(damaged_dataset)
    ref = runs["simple-cpu"].displacements
    for name, run in runs.items():
        got = run.displacements
        for arr_ref, arr_got in ((ref.west, got.west), (ref.north, got.north)):
            for row_ref, row_got in zip(arr_ref, arr_got):
                for tr, tg in zip(row_ref, row_got):
                    if tr is None:
                        assert tg is None, f"{name} computed an extra pair"
                    else:
                        assert (tg.tx, tg.ty) == (tr.tx, tr.ty), (
                            f"{name} diverged on a surviving pair"
                        )
