"""End-to-end integration: acquisition -> disk -> stitch -> mosaic.

These tests exercise the full public API path a downstream user follows,
including the regimes the paper highlights (sparse features, low overlap,
serpentine acquisition with backlash).
"""

import numpy as np
import pytest

from repro.core.compose import BlendMode
from repro.core.stitcher import Stitcher
from repro.impls import PipelinedCpu, PipelinedGpu, SimpleCpu
from repro.core.global_opt import resolve_absolute_positions
from repro.analysis.metrics import position_accuracy
from repro.synth import make_synthetic_dataset
from repro.synth.noise import CameraModel
from repro.synth.specimen import SpecimenParams


class TestFullPipeline:
    def test_acquire_stitch_compose(self, tmp_path):
        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=5, cols=4, tile_height=80, tile_width=80,
            overlap=0.15, seed=77,
        )
        res = Stitcher().stitch(ds)
        assert res.position_errors().max() == 0.0
        mosaic = res.compose(BlendMode.LINEAR)
        assert mosaic.ndim == 2
        assert mosaic.max() > 0

    def test_low_overlap_regime(self, tmp_path):
        """10 % overlap, the paper's hardest nominal setting."""
        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=3, cols=3, tile_height=96, tile_width=96,
            overlap=0.10, seed=5,
        )
        res = Stitcher().stitch(ds)
        assert res.position_errors().max() <= 1.0

    def test_sparse_feature_regime(self, tmp_path):
        """Early-experiment plates: few colonies, weak texture (Section I).

        This is the regime that rules out feature-based stitching; the
        Fourier approach must still lock on via specimen granularity.
        """
        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=3, cols=3, tile_height=96, tile_width=96,
            overlap=0.25, seed=9,
            specimen=SpecimenParams(
                colony_count=2, cells_per_colony=8, background_texture=0.01,
                fine_texture=0.02, granularity=0.02,
            ),
        )
        res = Stitcher().stitch(ds)
        assert res.position_errors().mean() <= 2.0

    def test_noisy_camera_regime(self, tmp_path):
        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=3, cols=3, tile_height=96, tile_width=96,
            overlap=0.2, seed=13,
            camera=CameraModel(vignette=0.25, shot_noise=1.5, read_noise=60.0),
        )
        res = Stitcher().stitch(ds)
        assert res.position_errors().max() <= 2.0

    def test_parallel_impl_to_final_mosaic(self, tmp_path):
        """A parallel implementation's phase-1 output feeds phases 2-3."""
        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=4, cols=4, tile_height=64, tile_width=64,
            overlap=0.25, seed=21,
        )
        run = PipelinedGpu(devices=2).run(ds)
        gp = resolve_absolute_positions(run.displacements, "mst")
        acc = position_accuracy(gp, ds.metadata.true_positions)
        assert acc["max"] == 0.0

    def test_mosaic_pixels_match_plate_everywhere_covered(self, tmp_path):
        """Average-blend mosaic of a noiseless scan equals the plate region
        (strongest possible end-to-end statement)."""
        from repro.synth.noise import NOISELESS

        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=3, cols=3, tile_height=64, tile_width=64,
            overlap=0.25, seed=31, camera=NOISELESS,
        )
        res = Stitcher().stitch(ds)
        mosaic = res.compose(BlendMode.AVERAGE, dtype=np.float64)
        true = np.asarray(ds.metadata.true_positions)
        true0 = true - true.reshape(-1, 2).min(axis=0)
        for r in range(3):
            for c in range(3):
                y, x = true0[r, c]
                tile = ds.load(r, c)
                region = mosaic[y : y + 64, x : x + 64]
                # AVERAGE of identical noiseless exposures == each exposure.
                assert np.allclose(region, tile, atol=1e-6)

    def test_cpu_and_gpu_paths_identical_mosaics(self, tmp_path):
        ds = make_synthetic_dataset(
            tmp_path / "ds", rows=3, cols=4, tile_height=64, tile_width=64,
            overlap=0.2, seed=41,
        )
        cpu = PipelinedCpu(workers=2).run(ds)
        gpu = PipelinedGpu(devices=1).run(ds)
        p_cpu = resolve_absolute_positions(cpu.displacements, "mst")
        p_gpu = resolve_absolute_positions(gpu.displacements, "mst")
        assert np.array_equal(p_cpu.positions, p_gpu.positions)


class TestNegativeControls:
    def test_unrelated_tiles_flagged_untrustworthy(self, tmp_path):
        """Tiles cut from *different* plates share no overlap content: the
        stitcher must not silently produce a confident mosaic."""
        import numpy as np
        from repro.analysis.quality import quality_summary
        from repro.io.dataset import TileDataset
        from repro.synth.specimen import generate_plate
        from repro.synth.noise import CameraModel

        rng = np.random.default_rng(0)
        cam = CameraModel(vignette=0.0)
        tiles = np.empty((3, 3, 64, 64), dtype=np.uint16)
        for r in range(3):
            for c in range(3):
                plate = generate_plate(80, 80, seed=100 + 3 * r + c)
                tiles[r, c] = cam.expose(plate[:64, :64], rng)
        ds = TileDataset.create(tmp_path / "junk", tiles, overlap=0.2)
        res = Stitcher().stitch(ds)
        q = quality_summary(res.displacements)
        assert not q.trustworthy
        assert q.median_correlation < 0.5

    def test_quality_summary_trustworthy_on_real_scan(self, tmp_path):
        from repro.analysis.quality import quality_summary

        ds = make_synthetic_dataset(
            tmp_path / "good", rows=3, cols=3, tile_height=64, tile_width=64,
            overlap=0.25, seed=71,
        )
        res = Stitcher().stitch(ds)
        q = quality_summary(res.displacements)
        assert q.trustworthy
        assert q.low_confidence_pairs == 0


class TestModerateScale:
    def test_10x10_grid_full_pipeline(self, tmp_path):
        """A 100-tile acquisition through stitch + streaming compose."""
        from repro.core.compose import compose_to_tiff
        from repro.io.tiff import read_tiff

        ds = make_synthetic_dataset(
            tmp_path / "big", rows=10, cols=10, tile_height=64, tile_width=64,
            overlap=0.15, seed=99,
        )
        res = Stitcher().stitch(ds)
        assert res.position_errors().max() == 0.0
        out = tmp_path / "big.tif"
        shape = compose_to_tiff(out, ds.load, res.positions, ds.tile_shape)
        assert read_tiff(out).shape == shape
