"""Acceptance: robust registration under dirty data.

The ISSUE contract, end to end on real stitches:

- with ~10% of pairs corrupted by the data-level fault kinds, default
  confidence gating plus ``residue_mode="huber"`` recovers positions
  within 1 px RMS of the clean-run reference;
- the ungated solve on the same damaged input demonstrably exceeds that
  tolerance;
- clean-data runs with defaults (no quality gate) stay bit-identical to
  the pre-gate pipeline.
"""

import numpy as np
import pytest

from repro.core.stitcher import Stitcher
from repro.faults.plan import Fault, FaultKind, FaultPlan
from repro.synth import make_synthetic_dataset


def gauge_aligned_rms(positions: np.ndarray, reference: np.ndarray) -> float:
    """RMS position error after removing the global-translation gauge.

    Absolute positions are only defined up to a shared offset; median
    alignment keeps a handful of outlier tiles from biasing the gauge.
    """
    a = np.asarray(positions, dtype=np.float64).reshape(-1, 2)
    b = np.asarray(reference, dtype=np.float64).reshape(-1, 2)
    diff = a - b
    diff -= np.median(diff, axis=0)
    return float(np.sqrt(np.mean(np.sum(diff**2, axis=1))))


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    d = tmp_path_factory.mktemp("dirty-data")
    return make_synthetic_dataset(
        d, rows=6, cols=6, tile_height=128, tile_width=128, overlap=0.25, seed=42
    )


def dirty(dataset):
    """Three damaged tiles: each touches up to 4 pairs on a 6x6 grid
    (60 pairs), so ~10-20% of pairs see corrupted overlap content."""
    plan = FaultPlan(seed=5)
    plan.add(Fault(FaultKind.DUST, tile=(1, 3)))
    plan.add(Fault(FaultKind.SATURATE, tile=(4, 2)))
    plan.add(Fault(FaultKind.SHIFT, tile=(2, 4)))
    return plan.wrap_dataset(dataset)


@pytest.fixture(scope="module")
def clean_reference(dataset):
    return Stitcher(position_method="least_squares").stitch(dataset)


class TestDirtyDataAcceptance:
    def test_gated_huber_recovers_within_1px_rms(self, dataset, clean_reference):
        res = Stitcher(
            position_method="least_squares", quality=True, residue_mode="huber"
        ).stitch(dirty(dataset))
        rms = gauge_aligned_rms(
            res.positions.positions, clean_reference.positions.positions
        )
        assert rms <= 1.0, f"gated+huber RMS {rms:.3f} px vs clean reference"
        report = res.stats["quality_report"]
        assert report["gated_pairs"] > 0
        assert report["residue_mode"] == "huber"
        # The confidently-wrong shift tile needs the stage-model gate;
        # dust/saturation collapse correlation.
        assert set(report["gate_reasons"]) & {"low_correlation", "stage_outlier"}

    def test_ungated_solve_exceeds_tolerance(self, dataset, clean_reference):
        res = Stitcher(position_method="least_squares").stitch(dirty(dataset))
        rms = gauge_aligned_rms(
            res.positions.positions, clean_reference.positions.positions
        )
        assert rms > 1.0, f"ungated RMS {rms:.3f} px unexpectedly survived"
        assert "quality_report" not in res.stats

    def test_gating_metrics_counters_emitted(self, dataset):
        stitcher = Stitcher(
            position_method="least_squares",
            quality=True,
            residue_mode="huber",
            metrics=True,
        )
        res = stitcher.stitch(dirty(dataset))
        counters = res.metrics["counters"]
        assert counters["quality.pairs_gated"] > 0
        assert "quality.irls_iterations" in counters
        assert "quality.residue_damped_edges" in counters

    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_clean_defaults_bit_identical(self, dataset, method):
        """The pre-gate contract: a default Stitcher (quality=None) and an
        explicitly ungated one produce bit-identical positions."""
        default = Stitcher(position_method=method).stitch(dataset)
        explicit = Stitcher(position_method=method, quality=False).stitch(dataset)
        assert np.array_equal(
            default.positions.positions, explicit.positions.positions
        )
        assert "quality_report" not in default.stats

    def test_mst_gated_also_recovers(self, dataset, clean_reference):
        res = Stitcher(position_method="mst", quality=True).stitch(dirty(dataset))
        rms = gauge_aligned_rms(
            res.positions.positions, clean_reference.positions.positions
        )
        # MST cannot average residuals, so the bar is looser -- but the
        # gate must still keep the damaged pairs out of the tree's way.
        assert rms <= 2.0
        assert res.stats["quality_report"]["gated_pairs"] > 0
