"""Device memory: capacity enforcement, accounting, pool reservation."""

import numpy as np
import pytest

from repro.gpu.memory import DeviceAllocator, DevicePool, OutOfDeviceMemory


class TestDeviceAllocator:
    def test_alloc_free_accounting(self):
        alloc = DeviceAllocator(capacity_bytes=10_000)
        buf = alloc.alloc((10, 10), dtype=np.complex128)  # 1600 B
        assert alloc.used_bytes == 1600
        assert buf.nbytes == 1600
        alloc.free(buf)
        assert alloc.used_bytes == 0
        assert alloc.peak_bytes == 1600

    def test_capacity_enforced(self):
        alloc = DeviceAllocator(capacity_bytes=1000)
        with pytest.raises(OutOfDeviceMemory):
            alloc.alloc((100, 100))

    def test_capacity_recovered_after_free(self):
        alloc = DeviceAllocator(capacity_bytes=2000)
        a = alloc.alloc((10, 10))
        with pytest.raises(OutOfDeviceMemory):
            alloc.alloc((10, 10))
        alloc.free(a)
        alloc.alloc((10, 10))  # fits again

    def test_double_free_rejected(self):
        alloc = DeviceAllocator(capacity_bytes=10_000)
        buf = alloc.alloc((4, 4))
        alloc.free(buf)
        with pytest.raises(ValueError, match="double free"):
            alloc.free(buf)

    def test_use_after_free_detectable(self):
        alloc = DeviceAllocator(capacity_bytes=10_000)
        buf = alloc.alloc((4, 4))
        alloc.free(buf)
        with pytest.raises(ValueError, match="use-after-free"):
            buf.require_live()

    def test_live_buffer_count(self):
        alloc = DeviceAllocator(capacity_bytes=100_000)
        bufs = [alloc.alloc((4, 4)) for _ in range(5)]
        assert alloc.live_buffers == 5
        alloc.free(bufs[0])
        assert alloc.live_buffers == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceAllocator(0)


class TestDevicePool:
    def test_reserves_capacity_up_front(self):
        alloc = DeviceAllocator(capacity_bytes=100_000)
        pool = DevicePool(alloc, count=4, shape=(10, 10))  # 4 x 1600 B
        assert alloc.used_bytes == 4 * 1600
        pool.destroy()
        assert alloc.used_bytes == 0

    def test_pool_too_big_for_device(self):
        alloc = DeviceAllocator(capacity_bytes=1000)
        with pytest.raises(OutOfDeviceMemory):
            DevicePool(alloc, count=10, shape=(10, 10))

    def test_acquire_release(self):
        alloc = DeviceAllocator(capacity_bytes=100_000)
        pool = DevicePool(alloc, count=2, shape=(4, 4))
        a = pool.acquire()
        b = pool.acquire()
        assert pool.free_count == 0
        pool.release(a)
        c = pool.acquire()
        assert c == a
        assert pool.peak_in_use == 2
