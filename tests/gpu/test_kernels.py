"""Device kernels: numerical equivalence with the CPU path."""

import numpy as np
import pytest
import scipy.fft as sf

from repro.core.ncc import normalized_correlation
from repro.gpu.device import VirtualGpu
from repro.gpu.kernels import fft2_kernel, ifft2_kernel, ncc_kernel, reduce_max_kernel


@pytest.fixture
def dev():
    return VirtualGpu()


def upload(dev, host):
    buf = dev.alloc(host.shape)
    buf.data[...] = host
    return buf


class TestKernels:
    def test_fft_matches_scipy(self, dev):
        a = np.random.default_rng(0).random((16, 16)).astype(np.complex128)
        src, dst = upload(dev, a), dev.alloc((16, 16))
        fft2_kernel(dev, src.data, dst.data)
        assert np.allclose(dst.data, sf.fft2(a))

    def test_ifft_roundtrip(self, dev):
        a = np.random.default_rng(1).random((12, 12)).astype(np.complex128)
        src, mid, out = upload(dev, a), dev.alloc((12, 12)), dev.alloc((12, 12))
        fft2_kernel(dev, src.data, mid.data)
        ifft2_kernel(dev, mid.data, out.data)
        assert np.allclose(out.data, a)

    def test_ncc_matches_cpu(self, dev):
        rng = np.random.default_rng(2)
        fa = sf.fft2(rng.random((8, 8)))
        fb = sf.fft2(rng.random((8, 8)))
        a, b, out = upload(dev, fa), upload(dev, fb), dev.alloc((8, 8))
        ncc_kernel(dev, a.data, b.data, out.data)
        assert np.allclose(out.data, normalized_correlation(fa, fb))

    def test_ncc_in_place(self, dev):
        rng = np.random.default_rng(3)
        fa = sf.fft2(rng.random((8, 8)))
        fb = sf.fft2(rng.random((8, 8)))
        expected = normalized_correlation(fa.copy(), fb)
        a, b = upload(dev, fa), upload(dev, fb)
        ncc_kernel(dev, a.data, b.data, a.data)  # dst aliases input
        assert np.allclose(a.data, expected)

    def test_reduce_max_finds_peak(self, dev):
        a = np.zeros((8, 10), dtype=np.complex128)
        a[3, 7] = -4.0j
        buf = upload(dev, a)
        peaks, _ = reduce_max_kernel(dev, buf.data)
        (mag, idx), = peaks
        assert idx == 3 * 10 + 7
        assert mag == pytest.approx(4.0)

    def test_reduce_topk_ordering(self, dev):
        a = np.zeros((4, 4), dtype=np.complex128)
        a[0, 1], a[2, 2], a[3, 3] = 3.0, 5.0, 4.0
        buf = upload(dev, a)
        peaks, _ = reduce_max_kernel(dev, buf.data, k=3)
        assert [idx for _, idx in peaks] == [10, 15, 1]

    def test_reduce_bad_k(self, dev):
        buf = upload(dev, np.zeros((2, 2), dtype=np.complex128))
        with pytest.raises(ValueError):
            reduce_max_kernel(dev, buf.data, k=0)

    def test_kernels_trace_on_compute_engine(self, dev):
        a = np.ones((8, 8), dtype=np.complex128)
        src, dst = upload(dev, a), dev.alloc((8, 8))
        fft2_kernel(dev, src.data, dst.data)
        ncc_kernel(dev, dst.data, dst.data, dst.data)
        reduce_max_kernel(dev, dst.data)
        names = [e.name for e in dev.profiler.events]
        assert names == ["cufft-fwd", "ncc", "reduce-max"]
        assert all(e.engine == "compute" for e in dev.profiler.events)
        # One kernel at a time on the compute engine (Fermi cuFFT note).
        evs = dev.profiler.events
        for e1, e2 in zip(evs, evs[1:]):
            assert e2.start >= e1.end
