"""Virtual GPU: streams, engines, copies, virtual clock semantics."""

import numpy as np
import pytest

from repro.gpu.device import C2070_MEMORY_BYTES, VirtualGpu


class TestDataMovement:
    def test_h2d_d2h_roundtrip(self):
        dev = VirtualGpu()
        host = np.random.default_rng(0).random((8, 8)).astype(np.complex128)
        buf = dev.alloc((8, 8))
        dev.h2d(host, buf)
        back, _ = dev.d2h(buf)
        assert np.array_equal(back, host)

    def test_h2d_shape_mismatch(self):
        dev = VirtualGpu()
        buf = dev.alloc((4, 4))
        with pytest.raises(ValueError, match="shape"):
            dev.h2d(np.zeros((5, 5), dtype=np.complex128), buf)

    def test_copies_use_copy_engines(self):
        dev = VirtualGpu()
        buf = dev.alloc((8, 8))
        dev.h2d(np.zeros((8, 8), dtype=np.complex128), buf)
        dev.d2h(buf)
        engines = {e.engine for e in dev.profiler.events}
        assert engines == {"h2d", "d2h"}

    def test_byte_accounting_in_trace(self):
        dev = VirtualGpu()
        buf = dev.alloc((8, 8))
        dev.h2d(np.zeros((8, 8), dtype=np.complex128), buf)
        assert dev.profiler.bytes_copied("h2d") == 8 * 8 * 16

    def test_freed_buffer_rejected(self):
        dev = VirtualGpu()
        buf = dev.alloc((4, 4))
        dev.free(buf)
        with pytest.raises(ValueError):
            dev.h2d(np.zeros((4, 4), dtype=np.complex128), buf)


class TestVirtualClock:
    def test_stream_ordering(self):
        """Ops on one stream never overlap in virtual time."""
        dev = VirtualGpu()
        s = dev.create_stream()
        buf = dev.alloc((64, 64))
        host = np.zeros((64, 64), dtype=np.complex128)
        e1 = dev.h2d(host, buf, s)
        e2 = dev.h2d(host, buf, s)
        assert e2.start >= e1.end

    def test_engine_serialization_across_streams(self):
        """Two streams contend for the single H2D engine."""
        dev = VirtualGpu()
        s1, s2 = dev.create_stream(), dev.create_stream()
        buf = dev.alloc((64, 64))
        host = np.zeros((64, 64), dtype=np.complex128)
        e1 = dev.h2d(host, buf, s1)
        e2 = dev.h2d(host, buf, s2)
        assert e2.start >= e1.end  # same engine, must serialize

    def test_different_engines_can_overlap(self):
        dev = VirtualGpu()
        s1, s2 = dev.create_stream(), dev.create_stream()
        buf = dev.alloc((64, 64))
        host = np.zeros((64, 64), dtype=np.complex128)
        dev.h2d(host, buf, s1)
        _, e2 = dev.d2h(buf, s2)
        assert e2.start == 0.0  # d2h engine was free: true overlap

    def test_not_before_respected(self):
        dev = VirtualGpu()
        buf = dev.alloc((8, 8))
        ev = dev.h2d(np.zeros((8, 8), dtype=np.complex128), buf, not_before=5.0)
        assert ev.start >= 5.0

    def test_synchronize_returns_last_end(self):
        dev = VirtualGpu()
        buf = dev.alloc((8, 8))
        ev = dev.h2d(np.zeros((8, 8), dtype=np.complex128), buf)
        assert dev.synchronize() == ev.end

    def test_default_capacity_is_c2070(self):
        assert VirtualGpu().allocator.capacity_bytes == C2070_MEMORY_BYTES


class TestEvents:
    def test_record_event_marks_stream_progress(self):
        import numpy as np
        from repro.gpu.stream import Event

        dev = VirtualGpu()
        s = dev.create_stream()
        buf = dev.alloc((8, 8))
        ev = dev.h2d(np.zeros((8, 8), dtype=np.complex128), buf, s)
        marker = s.record_event()
        assert isinstance(marker, Event)
        assert marker.time == ev.end
        assert marker.stream_id == s.stream_id

    def test_event_orders_across_streams(self):
        import numpy as np

        dev = VirtualGpu()
        s1, s2 = dev.create_stream(), dev.create_stream()
        buf = dev.alloc((64, 64))
        dev.h2d(np.zeros((64, 64), dtype=np.complex128), buf, s1)
        marker = s1.record_event()
        # s2's copy waits on s1's event despite a free d2h engine.
        _, ev2 = dev.d2h(buf, s2, not_before=marker.time)
        assert ev2.start >= marker.time
