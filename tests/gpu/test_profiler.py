"""Profiler metrics: busy time, density, concurrency."""

import pytest

from repro.gpu.profiler import GpuProfiler, TraceEvent


def ev(engine, start, end, stream=0, nbytes=0, name="op"):
    return TraceEvent(name=name, engine=engine, stream=stream,
                      start=start, end=end, nbytes=nbytes)


class TestMetrics:
    def test_span(self):
        p = GpuProfiler()
        p.record(ev("compute", 1.0, 2.0))
        p.record(ev("h2d", 0.5, 1.5))
        assert p.span() == (0.5, 2.0)
        assert GpuProfiler().span() == (0.0, 0.0)

    def test_busy_time_merges_overlaps(self):
        p = GpuProfiler()
        p.record(ev("compute", 0.0, 1.0))
        p.record(ev("compute", 0.5, 2.0))
        p.record(ev("compute", 3.0, 4.0))
        assert p.busy_time("compute") == pytest.approx(3.0)

    def test_density(self):
        p = GpuProfiler()
        p.record(ev("compute", 0.0, 1.0))
        p.record(ev("host", 1.0, 4.0))
        # span 0-4, compute busy 1 -> density 0.25
        assert p.density("compute") == pytest.approx(0.25)

    def test_streams_and_counts(self):
        p = GpuProfiler()
        p.record(ev("compute", 0, 1, stream=0, name="cufft-fwd"))
        p.record(ev("compute", 1, 2, stream=2, name="cufft-inv"))
        p.record(ev("h2d", 0, 1, stream=1, name="memcpy-h2d", nbytes=100))
        assert p.streams_used() == {0, 1, 2}
        assert p.count("cufft") == 2
        assert p.bytes_copied("h2d") == 100

    def test_max_concurrency_ignores_host(self):
        p = GpuProfiler()
        p.record(ev("compute", 0.0, 2.0))
        p.record(ev("h2d", 1.0, 3.0))
        p.record(ev("host", 0.0, 5.0))
        assert p.max_concurrency() == 2

    def test_empty_density_zero(self):
        assert GpuProfiler().density("compute") == 0.0
