"""Steerability criterion against the paper's numbers."""

import pytest

from repro.analysis.steerability import steerability


class TestSteerability:
    def test_pipelined_gpu_is_steerable(self):
        """49.7 s of stitching + 10 min of segmentation fits a 45 min
        period comfortably -- the paper's headline claim."""
        rep = steerability(49.7, analysis_seconds=600)
        assert rep.steerable
        assert rep.scans_behind == 0
        assert rep.slack_seconds > 30 * 60

    def test_fiji_is_not_steerable(self):
        """3.6 h of stitching against a 45 min period: five scans stale."""
        rep = steerability(3.6 * 3600)
        assert not rep.steerable
        assert rep.scans_behind == 4
        assert rep.used_fraction > 4

    def test_boundary_cases(self):
        assert steerability(0.0).steerable
        half = steerability(22.5 * 60)
        assert half.used_fraction == pytest.approx(0.5)
        assert half.steerable
        assert not steerability(22.5 * 60 + 1).steerable

    def test_analysis_time_counts(self):
        assert steerability(60, analysis_seconds=44 * 60).scans_behind == 0
        assert not steerability(60, analysis_seconds=44 * 60).steerable

    def test_validation(self):
        with pytest.raises(ValueError):
            steerability(1.0, imaging_period_seconds=0)
        with pytest.raises(ValueError):
            steerability(-1.0)
