"""Phase-1 quality summary."""

import pytest

from repro.analysis.quality import quality_summary
from repro.core.displacement import DisplacementResult, Translation


def make_disp(corrs_west, corrs_north, rows=2, cols=3):
    d = DisplacementResult.empty(rows, cols)
    i = 0
    for r in range(rows):
        for c in range(1, cols):
            d.west[r][c] = Translation(corrs_west[i], 50, 0)
            i += 1
    i = 0
    for r in range(1, rows):
        for c in range(cols):
            d.north[r][c] = Translation(corrs_north[i], 0, 48)
            i += 1
    return d


class TestQualitySummary:
    def test_all_confident(self):
        d = make_disp([0.9] * 4, [0.95] * 3)
        q = quality_summary(d)
        assert q.pair_count == 7
        assert q.low_confidence_pairs == 0
        assert q.trustworthy
        assert q.direction_medians["west"] == (50.0, 0.0)
        assert q.direction_medians["north"] == (0.0, 48.0)

    def test_weak_pairs_flagged_with_tiles(self):
        d = make_disp([0.9, 0.1, 0.9, 0.9], [0.9] * 3)
        q = quality_summary(d)
        assert q.low_confidence_pairs == 1
        assert q.low_confidence_fraction == pytest.approx(1 / 7)
        # Both members of the weak pair appear in weak_tiles.
        assert len(q.weak_tiles) == 2

    def test_untrustworthy_when_many_weak(self):
        d = make_disp([0.1] * 4, [0.2] * 3)
        q = quality_summary(d)
        assert not q.trustworthy
        assert q.median_correlation < 0.5

    def test_statistics(self):
        d = make_disp([0.5, 0.7, 0.9, 1.0], [0.6, 0.8, 1.0])
        q = quality_summary(d)
        assert q.min_correlation == 0.5
        assert q.mean_correlation == pytest.approx((0.5+0.7+0.9+1.0+0.6+0.8+1.0)/7)

    def test_empty_grid(self):
        q = quality_summary(DisplacementResult.empty(1, 1))
        assert q.pair_count == 0
        assert q.low_confidence_fraction == 0.0

    def test_real_stitch_is_trustworthy(self, reference_displacements):
        q = quality_summary(reference_displacements.displacements)
        assert q.trustworthy
        assert q.median_correlation > 0.8
