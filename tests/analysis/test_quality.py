"""Phase-1 quality summary."""

import pytest

from repro.analysis.quality import quality_summary
from repro.core.displacement import DisplacementResult, Translation


def make_disp(corrs_west, corrs_north, rows=2, cols=3):
    d = DisplacementResult.empty(rows, cols)
    i = 0
    for r in range(rows):
        for c in range(1, cols):
            d.west[r][c] = Translation(corrs_west[i], 50, 0)
            i += 1
    i = 0
    for r in range(1, rows):
        for c in range(cols):
            d.north[r][c] = Translation(corrs_north[i], 0, 48)
            i += 1
    return d


class TestQualitySummary:
    def test_all_confident(self):
        d = make_disp([0.9] * 4, [0.95] * 3)
        q = quality_summary(d)
        assert q.pair_count == 7
        assert q.low_confidence_pairs == 0
        assert q.trustworthy
        assert q.direction_medians["west"] == (50.0, 0.0)
        assert q.direction_medians["north"] == (0.0, 48.0)

    def test_weak_pairs_flagged_with_tiles(self):
        d = make_disp([0.9, 0.1, 0.9, 0.9], [0.9] * 3)
        q = quality_summary(d)
        assert q.low_confidence_pairs == 1
        assert q.low_confidence_fraction == pytest.approx(1 / 7)
        # Both members of the weak pair appear in weak_tiles.
        assert len(q.weak_tiles) == 2

    def test_untrustworthy_when_many_weak(self):
        d = make_disp([0.1] * 4, [0.2] * 3)
        q = quality_summary(d)
        assert not q.trustworthy
        assert q.median_correlation < 0.5

    def test_statistics(self):
        d = make_disp([0.5, 0.7, 0.9, 1.0], [0.6, 0.8, 1.0])
        q = quality_summary(d)
        assert q.min_correlation == 0.5
        assert q.mean_correlation == pytest.approx((0.5+0.7+0.9+1.0+0.6+0.8+1.0)/7)

    def test_empty_grid(self):
        q = quality_summary(DisplacementResult.empty(1, 1))
        assert q.pair_count == 0
        assert q.low_confidence_fraction == 0.0
        assert q.weak_tiles == []
        assert q.direction_medians == {}

    def test_all_skipped_pairs(self):
        # A 3x3 grid where phase 1 dropped every pair (e.g. all tiles
        # unreadable under a skip policy): same shape as the empty grid,
        # and emphatically not trustworthy.
        q = quality_summary(DisplacementResult.empty(3, 3))
        assert q.pair_count == 0
        assert q.low_confidence_fraction == 0.0
        assert not q.trustworthy

    def test_trustworthy_boundaries(self):
        # Exactly 10% weak with a median at exactly 0.5 stays trustworthy...
        d = make_disp([0.4] + [0.5] * 3, [0.5] * 3, rows=2, cols=3)
        ten_pct = quality_summary(d, threshold=0.45)
        assert ten_pct.low_confidence_fraction == pytest.approx(1 / 7)
        # 1/7 > 0.10, so this crosses the weak-fraction line.
        assert not ten_pct.trustworthy
        # ...no weak pairs but a sub-0.5 median also fails the gate.
        low_med = quality_summary(make_disp([0.45] * 4, [0.45] * 3), threshold=0.1)
        assert low_med.low_confidence_pairs == 0
        assert low_med.median_correlation < 0.5
        assert not low_med.trustworthy
        # Clean on both axes passes.
        good = quality_summary(make_disp([0.9] * 4, [0.9] * 3))
        assert good.trustworthy

    def test_low_confidence_fraction_scales(self):
        d = make_disp([0.1, 0.1, 0.9, 0.9], [0.9] * 3)
        q = quality_summary(d)
        assert q.low_confidence_fraction == pytest.approx(2 / 7)

    def test_threshold_parameter_respected(self):
        d = make_disp([0.6] * 4, [0.6] * 3)
        assert quality_summary(d, threshold=0.5).low_confidence_pairs == 0
        assert quality_summary(d, threshold=0.7).low_confidence_pairs == 7

    def test_real_stitch_is_trustworthy(self, reference_displacements):
        q = quality_summary(reference_displacements.displacements)
        assert q.trustworthy
        assert q.median_correlation > 0.8
