"""Report formatting."""

from repro.analysis.report import format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(
            ["name", "time"], [["simple-cpu", 636.0], ["pipelined-gpu", 49.7]],
            title="Table II",
        )
        lines = out.splitlines()
        assert lines[0] == "Table II"
        assert "name" in lines[1] and "time" in lines[1]
        assert "simple-cpu" in out and "49.70" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_nan_rendered_as_dash(self):
        out = format_table(["x"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]


class TestFormatSeries:
    def test_bars_scale(self):
        out = format_series("threads", "s", [(1, 100.0), (2, 50.0)])
        l1, l2 = out.splitlines()
        assert l1.count("#") > l2.count("#")

    def test_extra_columns(self):
        out = format_series("t", "s", [(1, 10.0, 1.0)])
        assert out.endswith("1.00")
