"""Chrome trace export from GPU and DES timelines."""

import json

import pytest

from repro.analysis.tracefmt import des_trace_events, gpu_trace_events, write_chrome_trace
from repro.gpu.profiler import GpuProfiler, TraceEvent
from repro.simulate.des import TaskGraphSimulator


class TestGpuTrace:
    def make_profiler(self):
        p = GpuProfiler()
        p.record(TraceEvent("cufft-fwd", "compute", 1, 0.0, 0.005))
        p.record(TraceEvent("memcpy-h2d", "h2d", 2, 0.0, 0.006, nbytes=100))
        return p

    def test_events_and_metadata(self):
        events = gpu_trace_events(self.make_profiler())
        slices = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(slices) == 2
        assert {m["args"]["name"] for m in meta} == {"compute", "h2d"}

    def test_microsecond_timestamps(self):
        events = gpu_trace_events(self.make_profiler())
        fft = next(e for e in events if e.get("name") == "cufft-fwd")
        assert fft["ts"] == 0.0
        assert fft["dur"] == pytest.approx(5000.0)

    def test_engine_rows_stable(self):
        events = gpu_trace_events(self.make_profiler())
        slices = [e for e in events if e["ph"] == "X"]
        assert slices[0]["tid"] != slices[1]["tid"]


class TestDesTrace:
    def test_schedule_export(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        a = sim.op("a", r, 1.0)
        sim.op("b", r, 2.0, deps=[a])
        sim.run()
        events = des_trace_events(sim)
        slices = [e for e in events if e["ph"] == "X"]
        assert [s["name"] for s in slices] == ["a", "b"]
        assert slices[1]["ts"] == pytest.approx(1e6)

    def test_unscheduled_rejected(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        sim.op("a", r, 1.0)
        with pytest.raises(ValueError, match="scheduled"):
            des_trace_events(sim)


class TestWrite:
    def test_valid_json_file(self, tmp_path):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        sim.op("a", r, 1.0)
        sim.run()
        p = tmp_path / "trace.json"
        write_chrome_trace(p, des_trace_events(sim))
        data = json.loads(p.read_text())
        assert isinstance(data, list) and data

    def test_fig7_style_trace_from_real_run(self, dataset_4x4, tmp_path):
        """End-to-end: run Simple-GPU, export its nvvp-equivalent trace."""
        from repro.impls import SimpleGpu

        impl = SimpleGpu()
        impl.run(dataset_4x4)
        events = gpu_trace_events(impl.last_device.profiler)
        p = tmp_path / "fig7.json"
        write_chrome_trace(p, events)
        names = {e.get("name") for e in events}
        assert {"cufft-fwd-r2c", "cufft-inv-c2r", "ncc", "reduce-max"} <= names
