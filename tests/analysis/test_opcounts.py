"""Table I analytic counts and instrumentation verification."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.opcounts import OperationCounts, table1_counts, verify_against_run


class TestOperationCounts:
    def test_paper_grid_numbers(self):
        """The exact quantities the paper quotes for its 42x59 dataset."""
        c = OperationCounts(42, 59, 1040, 1392)
        assert c.tiles == 2478
        assert c.pairs == 2 * 42 * 59 - 42 - 59 == 4855
        assert c.total_transforms == 3 * 42 * 59 - 42 - 59 == 7333
        # Transform ~22 MiB ("nearly 22 MB" per the paper, Section III).
        assert c.transform_bytes / 2**20 == pytest.approx(22.09, abs=0.01)
        # All forward transforms: 53.5 GB (Section III).
        assert c.forward_transform_total_bytes() / 1e9 == pytest.approx(57.4, abs=0.2)

    def test_tile_file_size(self):
        c = OperationCounts(42, 59, 1040, 1392)
        assert c.read_bytes / 1e6 == pytest.approx(2.9, abs=0.1)  # ~2.76 MiB

    @given(n=st.integers(1, 50), m=st.integers(1, 50))
    def test_count_identities(self, n, m):
        c = OperationCounts(n, m, 64, 64)
        assert c.pairs == c.nccs == c.reductions == c.ccfs == c.inverse_ffts
        assert c.total_transforms == c.tiles + c.pairs

    def test_table1_rows(self):
        rows = table1_counts(4, 4, 64, 64)
        assert len(rows) == 6
        by_op = {r["operation"]: r for r in rows}
        assert by_op["Read"]["count"] == 16
        assert by_op["FFT-2D"]["count"] == 16
        assert by_op["(x)"]["count"] == 24
        assert by_op["FFT-2D^-1"]["count"] == 24
        assert by_op["Read"]["operand_bytes"] == 2 * 64 * 64
        assert by_op["(x)"]["operand_bytes"] == 16 * 64 * 64


class TestVerifyAgainstRun:
    def test_accepts_exact_run(self, reference_displacements):
        c = OperationCounts(4, 4, 64, 64)
        checks = verify_against_run(c, reference_displacements.stats)
        assert checks and all(checks.values())

    def test_rejects_wrong_pair_count(self):
        c = OperationCounts(4, 4, 64, 64)
        checks = verify_against_run(c, {"pairs": 23})
        assert not checks["pairs"]
