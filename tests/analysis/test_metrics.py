"""Speedup tables, accuracy scoring, agreement metric."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    displacement_agreement,
    position_accuracy,
    speedup_table,
)
from repro.core.displacement import DisplacementResult, Translation
from repro.core.global_opt import GlobalPositions


class TestSpeedupTable:
    def test_relative_to_baseline(self):
        sp = speedup_table({"a": 100.0, "b": 50.0, "c": 10.0}, baseline="a")
        assert sp == {"a": 1.0, "b": 2.0, "c": 10.0}

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            speedup_table({"a": 1.0}, baseline="z")


class TestPositionAccuracy:
    def test_perfect_recovery(self):
        pos = np.array([[[0, 0], [0, 50]], [[48, 1], [49, 52]]])
        gp = GlobalPositions(positions=pos.copy(), method="test")
        acc = position_accuracy(gp, pos)
        assert acc["max"] == 0.0 and acc["perfect_fraction"] == 1.0

    def test_translation_invariance(self):
        pos = np.array([[[0, 0], [0, 50]]])
        gp = GlobalPositions(positions=pos.copy(), method="test")
        acc = position_accuracy(gp, pos + 1000)  # same up to global shift
        assert acc["max"] == 0.0

    def test_error_magnitude(self):
        pos = np.array([[[0, 0], [0, 50]]])
        wrong = pos.copy()
        wrong[0, 1] = (3, 54)
        gp = GlobalPositions(positions=wrong, method="test")
        acc = position_accuracy(gp, pos)
        assert acc["max"] == pytest.approx(5.0)
        assert acc["perfect_fraction"] == 0.5


class TestDisplacementAgreement:
    def make(self, tx):
        d = DisplacementResult.empty(1, 2)
        d.west[0][1] = Translation(1.0, tx, 0)
        return d

    def test_identical(self):
        assert displacement_agreement(self.make(50), self.make(50)) == 1.0

    def test_differing(self):
        assert displacement_agreement(self.make(50), self.make(51)) == 0.0

    def test_grid_mismatch(self):
        with pytest.raises(ValueError):
            displacement_agreement(self.make(1), DisplacementResult.empty(2, 2))
