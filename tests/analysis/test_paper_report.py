"""Fidelity-report generation (the living EXPERIMENTS.md)."""

import pytest

from repro.analysis.paper_report import Check, build_checks, fidelity_report, render_report


class TestCheck:
    def test_ratio_and_ok(self):
        c = Check("x", paper=100.0, measured=110.0)
        assert c.ratio == pytest.approx(1.1)
        assert c.ok

    def test_drift_detected(self):
        c = Check("x", paper=100.0, measured=200.0)
        assert not c.ok

    def test_row_formatting(self):
        row = Check("x", 1.0, 2.0).row()
        assert row[0] == "x" and row[-1] == "DRIFT"


class TestRender:
    def test_markdown_structure(self):
        text = render_report([Check("a", 1.0, 1.0), Check("b", 1.0, 5.0)])
        assert "1/2 checks within tolerance" in text
        assert "DRIFTED: b" in text

    def test_all_ok_footer(self):
        text = render_report([Check("a", 1.0, 1.0)])
        assert "1/1 checks within tolerance." in text
        assert "DRIFTED" not in text


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        # Full paper scale: ~15 s of simulation, run once for the class.
        return fidelity_report()

    def test_all_checks_pass_at_paper_scale(self, report):
        text, all_ok = report
        assert all_ok, text

    def test_covers_every_table2_row(self, report):
        text, _ = report
        for name in ("imagej-fiji", "simple-cpu", "mt-cpu", "pipelined-cpu",
                     "simple-gpu", "pipelined-gpu-1", "pipelined-gpu-2"):
            assert name in text

    def test_check_count(self):
        assert len(build_checks()) == 17


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fidelity.md"
        rc = main(["report", "-o", str(out)])
        assert rc == 0
        assert "17/17" in out.read_text()
