"""Virtual microscope: scan plans, stage errors, ground truth."""

import numpy as np
import pytest

from repro.synth.microscope import ScanPlan, StageModel, VirtualMicroscope
from repro.synth.noise import NOISELESS
from repro.synth.specimen import generate_plate


class TestScanPlan:
    def test_steps_from_overlap(self):
        plan = ScanPlan(3, 4, tile_height=100, tile_width=80, overlap=0.1)
        assert plan.step_y == 90
        assert plan.step_x == 72

    def test_plate_shape_includes_margin(self):
        plan = ScanPlan(2, 2, tile_height=50, tile_width=50, overlap=0.2)
        h, w = plan.plate_shape(margin=10)
        assert h == 40 + 50 + 20
        assert w == 40 + 50 + 20

    def test_validation(self):
        with pytest.raises(ValueError):
            ScanPlan(0, 2, 50, 50)
        with pytest.raises(ValueError):
            ScanPlan(2, 2, 4, 50)
        with pytest.raises(ValueError):
            ScanPlan(2, 2, 50, 50, overlap=0.95)


class TestStageModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            StageModel(jitter_sigma=-1)

    def test_to_dict(self):
        d = StageModel(jitter_sigma=1.5).to_dict()
        assert d["jitter_sigma"] == 1.5


class TestScan:
    def make(self, jitter=2.0, backlash=3.0, seed=7):
        stage = StageModel(jitter_sigma=jitter, backlash_x=backlash, max_error=8.0)
        scope = VirtualMicroscope(stage=stage, camera=NOISELESS, seed=seed)
        plan = ScanPlan(3, 4, tile_height=40, tile_width=40, overlap=0.25)
        margin = 10
        plate = generate_plate(*plan.plate_shape(margin), seed=seed)
        return scope, plan, plate, margin

    def test_tiles_shape_and_truth(self):
        scope, plan, plate, margin = self.make()
        tiles, pos = scope.scan(plate, plan, margin)
        assert tiles.shape == (3, 4, 40, 40)
        assert pos.shape == (3, 4, 2)

    def test_tiles_match_plate_at_true_positions(self):
        scope, plan, plate, margin = self.make()
        tiles, pos = scope.scan(plate, plan, margin)
        cam = scope.camera
        for r in range(3):
            for c in range(4):
                y, x = pos[r, c]
                expected = cam.expose(
                    plate[y : y + 40, x : x + 40], np.random.default_rng(0)
                )
                # Noiseless camera: exposure is deterministic quantization.
                assert np.array_equal(tiles[r, c], expected)

    def test_positions_deviate_from_nominal_but_bounded(self):
        scope, plan, plate, margin = self.make()
        _, pos = scope.scan(plate, plan, margin)
        nominal = np.array(
            [[(margin + r * plan.step_y, margin + c * plan.step_x)
              for c in range(4)] for r in range(3)]
        )
        dev = np.abs(pos - nominal)
        assert dev.max() > 0           # stage error exists...
        assert dev.max() <= 8.0 + 0.5  # ...and respects max_error (+rounding)

    def test_zero_error_stage_is_exact(self):
        stage = StageModel(jitter_sigma=0.0, backlash_x=0.0, backlash_y=0.0)
        scope = VirtualMicroscope(stage=stage, camera=NOISELESS, seed=0)
        plan = ScanPlan(2, 2, tile_height=30, tile_width=30, overlap=0.2)
        plate = generate_plate(*plan.plate_shape(5), seed=0)
        _, pos = scope.scan(plate, plan, margin=5)
        assert tuple(pos[0, 0]) == (5, 5)
        assert tuple(pos[1, 1]) == (5 + plan.step_y, 5 + plan.step_x)

    def test_backlash_alternates_with_serpentine_direction(self):
        stage = StageModel(jitter_sigma=0.0, backlash_x=4.0, backlash_y=0.0)
        scope = VirtualMicroscope(stage=stage, camera=NOISELESS, seed=0)
        plan = ScanPlan(2, 3, tile_height=30, tile_width=30, overlap=0.2)
        pos = scope.true_positions(plan, margin=10)
        # Row 0 scans left-to-right: +x bias on cols 1, 2.
        assert pos[0, 1, 1] - pos[0, 0, 1] == plan.step_x + 4
        # Row 1 scans right-to-left: arriving at (1,1) from (1,2) carries a
        # -x backlash bias, while (1,2) itself arrived on a row change.
        assert pos[1, 1, 1] - pos[1, 2, 1] == -(plan.step_x + 4)

    def test_plate_too_small_raises(self):
        scope, plan, _, margin = self.make()
        with pytest.raises(ValueError, match="too small"):
            scope.scan(np.zeros((50, 50)), plan, margin)

    def test_deterministic(self):
        s1, plan, plate, m = self.make(seed=3)
        s2, _, _, _ = self.make(seed=3)
        t1, p1 = s1.scan(plate, plan, m)
        t2, p2 = s2.scan(plate, plan, m)
        assert np.array_equal(t1, t2) and np.array_equal(p1, p2)
