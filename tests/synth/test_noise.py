"""Camera model: quantization, vignette geometry, noise scaling."""

import numpy as np
import pytest

from repro.synth.noise import NOISELESS, CameraModel


class TestCameraModel:
    def test_noiseless_is_pure_quantization(self):
        rng = np.random.default_rng(0)
        radiance = np.full((16, 16), 0.5)
        counts = NOISELESS.expose(radiance, rng)
        assert counts.dtype == np.uint16
        assert np.all(counts == int(0.5 * NOISELESS.full_well))

    def test_8bit_mode(self):
        cam = CameraModel(bit_depth=8, full_well=200.0, vignette=0.0,
                          shot_noise=0.0, read_noise=0.0)
        counts = cam.expose(np.ones((4, 4)), np.random.default_rng(0))
        assert counts.dtype == np.uint8
        assert np.all(counts == 200)

    def test_clipping_at_full_scale(self):
        cam = CameraModel(full_well=1e6, vignette=0.0, shot_noise=0.0, read_noise=0.0)
        counts = cam.expose(np.ones((4, 4)), np.random.default_rng(0))
        assert np.all(counts == 65535)

    def test_vignette_darkens_corners_not_centre(self):
        cam = CameraModel(vignette=0.3, shot_noise=0.0, read_noise=0.0)
        field = cam.vignette_field((101, 101))
        assert field[50, 50] == pytest.approx(1.0, abs=1e-3)
        assert field[0, 0] == pytest.approx(0.7, abs=1e-2)
        assert field[0, 0] < field[0, 50] < field[50, 50] + 1e-9

    def test_noise_scales_with_signal(self):
        cam = CameraModel(vignette=0.0, read_noise=0.0)
        rng = np.random.default_rng(0)
        dim = cam.expose(np.full((64, 64), 0.05), rng).astype(float)
        bright = cam.expose(np.full((64, 64), 0.8), rng).astype(float)
        assert bright.std() > dim.std()

    def test_validation(self):
        with pytest.raises(ValueError):
            CameraModel(bit_depth=12)
        with pytest.raises(ValueError):
            CameraModel(vignette=1.0)
        with pytest.raises(ValueError):
            NOISELESS.expose(np.zeros((2, 2, 2)), np.random.default_rng(0))
