"""Specimen synthesis: determinism, range, texture regimes."""

import numpy as np
import pytest

from repro.synth.specimen import SpecimenParams, generate_plate, sparse_plate


class TestGeneratePlate:
    def test_shape_range_dtype(self):
        p = generate_plate(120, 150, seed=0)
        assert p.shape == (120, 150)
        assert p.dtype == np.float64
        assert p.min() >= 0.0 and p.max() <= 1.0

    def test_deterministic_for_seed(self):
        a = generate_plate(64, 64, seed=42)
        b = generate_plate(64, 64, seed=42)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        # Few colonies so the small plate cannot saturate to all-ones.
        params = SpecimenParams(colony_count=2, cells_per_colony=5)
        a = generate_plate(64, 64, params, seed=1)
        b = generate_plate(64, 64, params, seed=2)
        assert not np.array_equal(a, b)

    def test_rejects_tiny_plate(self):
        with pytest.raises(ValueError):
            generate_plate(4, 100)

    def test_has_broadband_content(self):
        """Phase correlation needs energy at high spatial frequencies."""
        p = generate_plate(128, 128, seed=3)
        spec = np.abs(np.fft.fft2(p - p.mean()))
        # Energy in the top-frequency quadrant must be non-negligible.
        hi = spec[32:96, 32:96].sum()
        assert hi > 0.01 * spec.sum()

    def test_colonies_raise_intensity_over_background(self):
        params = SpecimenParams(colony_count=40, background_level=0.1)
        p = generate_plate(256, 256, params, seed=0)
        assert p.max() > 0.3  # cells visibly brighter than background

    def test_zero_texture_plate_is_flat_except_cells(self):
        params = SpecimenParams(
            colony_count=0, background_texture=0.0, fine_texture=0.0, granularity=0.0
        )
        p = generate_plate(64, 64, params, seed=0)
        assert np.allclose(p, p[0, 0])


class TestSparsePlate:
    def test_sparse_has_fewer_bright_pixels_than_dense(self):
        sparse = sparse_plate(256, 256, seed=5)
        dense = generate_plate(256, 256, SpecimenParams(colony_count=60), seed=5)
        thresh = 0.35
        assert (sparse > thresh).sum() < (dense > thresh).sum()
