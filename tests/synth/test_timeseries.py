"""Time-series experiments: growth monotonicity, site persistence."""

import numpy as np
import pytest

from repro.core.stitcher import Stitcher
from repro.synth.microscope import ScanPlan, StageModel
from repro.synth.noise import NOISELESS
from repro.synth.specimen import SpecimenParams
from repro.synth.timeseries import GrowthModel, TimeSeriesExperiment


@pytest.fixture(scope="module")
def experiment():
    return TimeSeriesExperiment(
        plan=ScanPlan(3, 3, tile_height=64, tile_width=64, overlap=0.25),
        colony_count=3,
        growth=GrowthModel(initial_cells=4, growth_rate=0.6, initial_radius=10.0),
        specimen=SpecimenParams(cell_radius=2.0, granularity=0.025),
        stage=StageModel(jitter_sigma=1.5, backlash_x=2.0, max_error=6.0),
        camera=NOISELESS,
        seed=3,
    )


class TestGrowthModel:
    def test_cells_grow_monotonically(self):
        g = GrowthModel(initial_cells=5, growth_rate=0.3)
        counts = [g.cells_at(t) for t in range(10)]
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        assert counts[0] == 5

    def test_cap(self):
        g = GrowthModel(initial_cells=5, growth_rate=2.0, max_cells=50)
        assert g.cells_at(20) == 50

    def test_radius_spreads(self):
        g = GrowthModel()
        assert g.radius_at(5) > g.radius_at(0)


class TestPlateEvolution:
    def test_mass_increases_with_growth(self, experiment):
        m0 = experiment.plate_at(0).sum()
        m3 = experiment.plate_at(3).sum()
        m6 = experiment.plate_at(6).sum()
        assert m0 < m3 < m6

    def test_plate_deterministic(self, experiment):
        assert np.array_equal(experiment.plate_at(2), experiment.plate_at(2))

    def test_background_static_across_scans(self, experiment):
        """Where no colony reaches, the plate is identical at every scan
        (fixed specimen background)."""
        p0 = experiment.plate_at(0)
        p5 = experiment.plate_at(5)
        untouched = p5 == p0
        assert untouched.mean() > 0.3  # plenty of plate is colony-free

    def test_colonies_only_grow(self, experiment):
        """Growth never removes signal anywhere."""
        p0 = experiment.plate_at(0)
        p4 = experiment.plate_at(4)
        assert np.all(p4 >= p0 - 1e-12)

    def test_negative_scan_rejected(self, experiment):
        with pytest.raises(ValueError):
            experiment.plate_at(-1)


class TestScans:
    def test_stage_error_differs_per_scan(self, experiment):
        _, p0 = experiment.scan(0)
        _, p1 = experiment.scan(1)
        assert not np.array_equal(p0, p1)

    def test_every_scan_stitches_exactly(self, experiment, tmp_path):
        stitcher = Stitcher()
        for ds in experiment.acquire(tmp_path, scans=3):
            res = stitcher.stitch(ds)
            assert res.position_errors().max() == 0.0

    def test_acquire_writes_directories(self, experiment, tmp_path):
        datasets = list(experiment.acquire(tmp_path / "exp", scans=2))
        assert (tmp_path / "exp" / "scan_000" / "dataset.json").exists()
        assert (tmp_path / "exp" / "scan_001" / "dataset.json").exists()
        assert len(datasets) == 2

    def test_zero_scans_rejected(self, experiment, tmp_path):
        with pytest.raises(ValueError):
            list(experiment.acquire(tmp_path, scans=0))
