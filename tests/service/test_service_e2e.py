"""Full service lifecycle over HTTP: concurrency, warmth, durability.

The acceptance scenarios from the service ISSUE:

- N concurrent jobs on a multi-worker pool produce positions
  bit-identical to a single-shot direct :class:`Stitcher` run;
- a second job on a warm worker reports ``plan_cache.hits > 0`` (and
  zero misses), observable in ``/metrics``;
- a worker SIGKILLed mid-phase-1 leads to a journal-based resume: the
  job is re-queued, finishes on the second attempt, and its positions
  are still bit-identical;
- backpressure (429 + Retry-After) never loses an accepted job.
"""

from __future__ import annotations

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.core.stitcher import Stitcher
from repro.recovery.harness import count_journal_records
from repro.service import BackpressureError, ServiceClient, StitchService
from repro.synth import make_synthetic_dataset


@pytest.fixture(scope="module")
def e2e_ds(tmp_path_factory):
    return make_synthetic_dataset(
        tmp_path_factory.mktemp("e2e-ds"), rows=3, cols=3,
        tile_height=48, tile_width=48, overlap=0.25, seed=7,
    )


@pytest.fixture(scope="module")
def direct_positions(e2e_ds):
    """The single-shot ground line every service run must reproduce."""
    return Stitcher().stitch(e2e_ds).positions.positions


def start_service(tmp_path, **kwargs):
    svc = StitchService(tmp_path / "spool", **kwargs)
    svc.start()
    host, port = svc.start_http()
    return svc, ServiceClient(host, port)


class TestConcurrentBitIdentity:
    def test_eight_jobs_on_four_workers_match_direct_run(
        self, tmp_path, e2e_ds, direct_positions
    ):
        svc, client = start_service(tmp_path, workers=4)
        try:
            ids = [
                client.submit({"dataset": str(e2e_ds.directory),
                               "tenant": f"tenant-{i % 3}"})["id"]
                for i in range(8)
            ]
            records = [client.wait(i, timeout=180) for i in ids]
            assert [r["state"] for r in records] == ["done"] * 8
            for jid in ids:
                got = np.asarray(client.result(jid)["positions"])
                assert np.array_equal(got, direct_positions)
            # The pool really ran them side by side: all four workers
            # served at least one job.
            pids = {r["result"]["worker_pid"] for r in records}
            assert len(pids) == 4
        finally:
            svc.stop()


class TestWarmWorkers:
    def test_second_job_hits_warm_plan_cache(self, tmp_path, e2e_ds):
        svc, client = start_service(tmp_path, workers=1)
        try:
            first = client.wait(
                client.submit({"dataset": str(e2e_ds.directory)})["id"],
                timeout=120,
            )
            second = client.wait(
                client.submit({"dataset": str(e2e_ds.directory)})["id"],
                timeout=120,
            )
            assert first["result"]["plan_cache"]["misses"] > 0
            pc = second["result"]["plan_cache"]
            assert pc["hits"] > 0 and pc["misses"] == 0
            assert second["result"]["worker_jobs_served"] == 2

            # Observable in both metrics endpoints.
            snap = client.metrics()
            assert snap["counters"]["service.plan_cache_hits"] > 0
            text = client.metrics_text()
            hits = next(
                float(line.split()[1])
                for line in text.splitlines()
                if line.startswith("repro_service_plan_cache_hits ")
            )
            assert hits > 0
        finally:
            svc.stop()

    def test_reuse_job_skips_registration(self, tmp_path, e2e_ds,
                                          direct_positions):
        svc, client = start_service(tmp_path, workers=1)
        try:
            src = client.wait(
                client.submit({"dataset": str(e2e_ds.directory)})["id"],
                timeout=120,
            )
            reuse = client.wait(
                client.submit({
                    "dataset": str(e2e_ds.directory),
                    "reuse_positions_from": src["id"],
                })["id"],
                timeout=60,
            )
            assert reuse["result"]["kind"] == "reuse"
            assert reuse["result"]["pairs"] == 0
            got = np.asarray(client.result(reuse["id"])["positions"])
            assert np.array_equal(got, direct_positions)
        finally:
            svc.stop()


class TestKillResume:
    def test_sigkill_mid_phase1_resumes_bit_identical(
        self, tmp_path, e2e_ds, direct_positions
    ):
        """SIGKILL the (only) worker once the job's journal shows durable
        phase-1 progress; the service must requeue, resume from the
        journal, and converge to the same positions."""
        svc, client = start_service(tmp_path, workers=1)
        try:
            jid = client.submit({
                "dataset": str(e2e_ds.directory),
                # Slow every readable tile so phase 1 outlives the kill
                # window (faults only add latency, never change pixels).
                "inject_faults": "3:slow=8,latency=0.08",
                "retry_budget": 1,
            })["id"]
            journal = svc.pool.journal_path(jid)
            deadline = time.monotonic() + 60
            while count_journal_records(journal) < 3:  # header + 2 pairs
                assert time.monotonic() < deadline, "no journal progress"
                time.sleep(0.02)
            os.kill(svc.pool.worker_pids()[0], signal.SIGKILL)

            final = client.wait(jid, timeout=180)
            assert final["state"] == "done"
            assert final["attempts"] == 2
            assert final["result"]["journal"]["resumed_pairs"] >= 2

            got = np.asarray(client.result(jid)["positions"])
            assert np.array_equal(got, direct_positions)

            snap = client.metrics()
            assert snap["counters"]["service.worker_deaths"] == 1
            assert snap["counters"]["service.jobs_requeued"] == 1
            assert snap["counters"]["service.pairs_resumed"] >= 2
        finally:
            svc.stop()


class TestBackpressureLifecycle:
    def test_no_accepted_job_lost_under_backpressure(self, tmp_path, e2e_ds):
        """Flood a tiny queue; every 202 must end in `done`, every
        overflow must be a clean 429, and the books must balance."""
        svc, client = start_service(tmp_path, workers=2, max_depth=3,
                                    per_tenant_limit=3)
        try:
            accepted, rejected = [], 0
            # First job warms the EWMA so Retry-After hints are honest.
            accepted.append(
                client.submit({"dataset": str(e2e_ds.directory)})["id"]
            )
            client.wait(accepted[0], timeout=120)
            for _ in range(12):
                try:
                    rec = client.submit({
                        "dataset": str(e2e_ds.directory),
                        "reuse_positions_from": accepted[0],
                    })
                    accepted.append(rec["id"])
                except BackpressureError as exc:
                    rejected += 1
                    assert exc.retry_after > 0
                    time.sleep(min(exc.retry_after, 0.5))
            finals = [client.wait(jid, timeout=120) for jid in accepted]
            assert all(r["state"] == "done" for r in finals)

            snap = client.metrics()
            counters = snap["counters"]
            assert counters["service.jobs_submitted"] == len(accepted)
            assert counters["service.jobs_done"] == len(accepted)
            assert counters["service.queue_accepted"] == len(accepted)
            assert (
                counters.get("service.queue_rejected_full", 0)
                + counters.get("service.queue_rejected_tenant", 0)
            ) == rejected
        finally:
            svc.stop()

    def test_cancel_queued_job_while_pool_busy(self, tmp_path, e2e_ds):
        svc, client = start_service(tmp_path, workers=1)
        try:
            slow = client.submit({
                "dataset": str(e2e_ds.directory),
                "inject_faults": "3:slow=8,latency=0.05",
            })["id"]
            victim = client.submit({"dataset": str(e2e_ds.directory)})["id"]
            cancelled = client.cancel(victim)
            assert cancelled["state"] == "cancelled"
            assert client.wait(slow, timeout=120)["state"] == "done"
            jobs = client.metrics()["jobs"]
            assert jobs["cancelled"] == 1 and jobs["done"] == 1
        finally:
            svc.stop()


class TestOutOfCoreJobOptions:
    def test_budgeted_compose_job_reports_stats(self, tmp_path, e2e_ds):
        svc, client = start_service(tmp_path, workers=1)
        try:
            out = tmp_path / "job-mosaic.tif"
            rec = client.wait(
                client.submit({
                    "dataset": str(e2e_ds.directory),
                    "output": str(out),
                    "options": {"memory_budget": 512 * 1024,
                                "pyramid_levels": 1},
                })["id"],
                timeout=120,
            )
            assert rec["state"] == "done"
            stats = rec["result"]["compose"]
            assert stats["memory_budget"] == 512 * 1024
            assert stats["peak_bytes"] <= 512 * 1024
            assert stats["cache"]["capacity_bytes"] > 0
            assert out.exists()
            assert len(stats["pyramid"]) == 1
            from repro.core.streamcompose import pyramid_level_path

            assert pyramid_level_path(out, 1).exists()
        finally:
            svc.stop()

    def test_linear_blend_job_accepted(self, tmp_path, e2e_ds):
        svc, client = start_service(tmp_path, workers=1)
        try:
            out = tmp_path / "feathered.tif"
            rec = client.wait(
                client.submit({
                    "dataset": str(e2e_ds.directory),
                    "output": str(out),
                    "blend": "linear",
                })["id"],
                timeout=120,
            )
            assert rec["state"] == "done"
            assert out.exists()
        finally:
            svc.stop()
