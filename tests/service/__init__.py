"""Service layer tests: queue, pool, HTTP server, e2e lifecycle."""
