"""Job model: spec validation, record state machine, serialization."""

import json

import pytest

from repro.service.jobs import (
    ALLOWED_OPTIONS,
    JobRecord,
    JobSpec,
    JobState,
    new_job_id,
)


class TestJobSpec:
    def test_minimal_spec(self):
        spec = JobSpec(dataset="/data/scan1")
        assert spec.tenant == "default"
        assert spec.priority == 0
        assert spec.retry_budget == 1

    def test_round_trips_through_dict(self):
        spec = JobSpec(dataset="/d", tenant="lab-a", priority=3,
                       options={"subpixel": True}, blend="average",
                       retry_budget=2)
        again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    @pytest.mark.parametrize("payload,match", [
        ({}, "dataset"),
        ({"dataset": "/d", "tenant": "bad tenant!"}, "tenant"),
        ({"dataset": "/d", "priority": 11}, "priority"),
        ({"dataset": "/d", "options": {"checkpoint": "/x"}}, "unknown job options"),
        ({"dataset": "/d", "blend": "feather-max"}, "blend"),
        ({"dataset": "/d", "reuse_positions_from": "../etc"}, "job id"),
        ({"dataset": "/d", "deadline_seconds": -1}, "deadline"),
        ({"dataset": "/d", "retry_budget": -1}, "retry_budget"),
        ({"dataset": "/d", "surprise": 1}, "unknown job spec keys"),
    ])
    def test_invalid_specs_rejected(self, payload, match):
        with pytest.raises((ValueError, TypeError), match=match):
            JobSpec.from_dict(payload)

    def test_checkpoint_is_not_client_controllable(self):
        """The per-job journal is the durability story; a client must
        not be able to point it elsewhere."""
        assert "checkpoint" not in ALLOWED_OPTIONS
        assert "resume" not in ALLOWED_OPTIONS
        assert "cache" not in ALLOWED_OPTIONS

    def test_reuse_accepts_generated_ids(self):
        jid = new_job_id()
        spec = JobSpec(dataset="/d", reuse_positions_from=jid)
        assert spec.reuse_positions_from == jid


class TestJobRecord:
    def test_lifecycle_happy_path(self):
        rec = JobRecord(spec=JobSpec(dataset="/d"))
        assert rec.state is JobState.QUEUED
        rec.transition(JobState.RUNNING)
        rec.transition(JobState.DONE)
        assert rec.state.terminal

    def test_requeue_cycle_allowed(self):
        rec = JobRecord(spec=JobSpec(dataset="/d"))
        rec.transition(JobState.RUNNING)
        rec.transition(JobState.QUEUED)   # worker died, retry
        rec.transition(JobState.RUNNING)
        rec.transition(JobState.FAILED)

    @pytest.mark.parametrize("start,bad", [
        (JobState.QUEUED, JobState.DONE),      # must run first
        (JobState.QUEUED, JobState.FAILED),
        (JobState.DONE, JobState.RUNNING),     # terminal states are final
        (JobState.FAILED, JobState.QUEUED),
        (JobState.CANCELLED, JobState.RUNNING),
    ])
    def test_illegal_transitions_rejected(self, start, bad):
        rec = JobRecord(spec=JobSpec(dataset="/d"), state=start)
        with pytest.raises(ValueError, match="illegal job transition"):
            rec.transition(bad)

    def test_to_dict_is_json_able(self):
        rec = JobRecord(spec=JobSpec(dataset="/d"))
        payload = json.loads(json.dumps(rec.to_dict()))
        assert payload["state"] == "queued"
        assert payload["spec"]["dataset"] == "/d"
