"""Unit tests for the resilience layer, all on injected fake clocks.

The circuit breaker, poison tracker, load shedder and spool budget are
pure policy objects -- no threads of their own, no wall time -- so every
transition here is driven deterministically: the clock advances only
when a test says so, and jitter comes from a seeded stream.
"""

from __future__ import annotations

import pytest

from repro.observe import MetricsRegistry
from repro.observe.tracer import Tracer
from repro.service.queue import AdmissionRejected
from repro.service.resilience import (
    BreakerConfig,
    BreakerState,
    BrownoutPolicy,
    CircuitBreaker,
    HealthReport,
    LoadShedder,
    PoisonTracker,
    SpoolBudget,
    SpoolBudgetExceeded,
    describe_exit,
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_breaker(**cfg) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    cfg.setdefault("death_threshold", 3)
    cfg.setdefault("window_seconds", 10.0)
    cfg.setdefault("cooldown_seconds", 1.0)
    cfg.setdefault("max_cooldown_seconds", 4.0)
    cfg.setdefault("jitter", 0.0)
    return CircuitBreaker(BreakerConfig(**cfg), clock=clock), clock


class TestBreakerStateMachine:
    def test_closed_grants_normal_permits(self):
        b, _ = make_breaker()
        assert b.state is BreakerState.CLOSED
        assert b.acquire() == "normal"
        assert b.acquire() == "normal"  # no limit while closed

    def test_trips_open_after_threshold_deaths_in_window(self):
        b, clock = make_breaker()
        for _ in range(2):
            b.record_death()
            clock.advance(0.1)
        assert b.state is BreakerState.CLOSED
        b.record_death()
        assert b.state is BreakerState.OPEN
        assert b.acquire() is None
        assert b.trips == 1

    def test_window_slides_old_deaths_out(self):
        b, clock = make_breaker()
        b.record_death()
        b.record_death()
        clock.advance(11.0)  # both deaths age out of the 10 s window
        b.record_death()
        assert b.state is BreakerState.CLOSED

    def test_half_open_grants_exactly_one_canary(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record_death()
        clock.advance(1.0)  # cooldown elapses
        assert b.state is BreakerState.HALF_OPEN
        assert b.acquire() == "canary"
        assert b.acquire() is None  # only one canary at a time

    def test_surviving_canary_closes_breaker(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record_death()
        clock.advance(1.0)
        permit = b.acquire()
        b.release(permit, died=False)
        assert b.state is BreakerState.CLOSED
        assert b.canary_successes == 1
        assert b.acquire() == "normal"

    def test_canary_death_reopens_with_doubled_cooldown(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record_death()
        clock.advance(1.0)
        assert b.acquire() == "canary"
        b.record_death()  # the canary's worker died
        assert b.state is BreakerState.OPEN
        assert b.snapshot()["cooldown_seconds"] == 2.0
        clock.advance(1.0)
        assert b.state is BreakerState.OPEN  # doubled: 1 s is not enough
        clock.advance(1.0)
        assert b.state is BreakerState.HALF_OPEN

    def test_cooldown_doubling_is_capped(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record_death()
        for _ in range(5):  # kill every canary
            clock.advance(b.snapshot()["cooldown_seconds"])
            assert b.acquire() == "canary"
            b.record_death()
        assert b.snapshot()["cooldown_seconds"] == 4.0  # max_cooldown
        assert b.canary_failures == 5

    def test_abandon_frees_the_canary_slot(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record_death()
        clock.advance(1.0)
        permit = b.acquire()
        assert b.acquire() is None
        b.abandon(permit)  # queue was empty; nothing probed
        assert b.acquire() == "canary"

    def test_success_after_close_resets_cooldown(self):
        b, clock = make_breaker()
        for _ in range(3):
            b.record_death()
        clock.advance(1.0)
        b.record_death()  # canary-less death in half-open state: no reopen
        assert b.acquire() == "canary"
        b.release("canary", died=False)
        assert b.snapshot()["cooldown_seconds"] == 1.0

    def test_state_gauge_and_tracer_events_published(self):
        metrics = MetricsRegistry()
        tracer = Tracer(enabled=True)
        clock = FakeClock()
        b = CircuitBreaker(
            BreakerConfig(death_threshold=2, window_seconds=10.0,
                          cooldown_seconds=1.0, jitter=0.0),
            clock=clock, metrics=metrics, tracer=tracer,
        )
        b.record_death()
        b.record_death()
        assert metrics.gauge("service.breaker_state").value == 2  # open
        clock.advance(1.0)
        assert b.state is BreakerState.HALF_OPEN
        assert metrics.gauge("service.breaker_state").value == 1
        names = [s.name for s in tracer.spans]
        assert "breaker:open" in names
        assert "breaker:half_open" in names
        assert metrics.counter("service.breaker_trips").value == 1


class TestRespawnBackoff:
    def test_deterministic_exponential_when_jitter_zero(self):
        b, _ = make_breaker(respawn_base=0.1, respawn_cap=1.0, jitter=0.0)
        assert b.respawn_backoff(1) == pytest.approx(0.1)
        assert b.respawn_backoff(2) == pytest.approx(0.2)
        assert b.respawn_backoff(3) == pytest.approx(0.4)
        assert b.respawn_backoff(10) == pytest.approx(1.0)  # capped

    def test_jitter_bounded_and_seed_replayable(self):
        cfg = dict(respawn_base=0.1, respawn_cap=5.0, jitter=0.5, seed=7)
        b1, _ = make_breaker(**cfg)
        b2, _ = make_breaker(**cfg)
        seq1 = [b1.respawn_backoff(n) for n in (1, 2, 3, 4)]
        seq2 = [b2.respawn_backoff(n) for n in (1, 2, 3, 4)]
        assert seq1 == seq2  # same seed -> identical jitter stream
        for n, delay in zip((1, 2, 3, 4), seq1):
            full = 0.1 * 2 ** (n - 1)
            assert full * 0.5 <= delay <= full


class TestPoisonTracker:
    def test_quarantine_at_threshold(self):
        t = PoisonTracker(threshold=3, clock=FakeClock())
        assert t.record_death("job-1", 1, "SIGKILL") is False
        assert t.record_death("job-1", 2, "SIGKILL") is False
        assert t.record_death("job-1", 3, "SIGSEGV") is True

    def test_deaths_attributed_per_job(self):
        t = PoisonTracker(threshold=2, clock=FakeClock())
        t.record_death("a", 1, "SIGKILL")
        assert t.record_death("b", 1, "SIGKILL") is False  # separate jobs
        assert t.record_death("a", 2, "SIGKILL") is True

    def test_forget_resets_attribution(self):
        t = PoisonTracker(threshold=2, clock=FakeClock())
        t.record_death("a", 1, "SIGKILL")
        t.forget("a")
        assert t.record_death("a", 1, "SIGKILL") is False

    def test_post_mortem_structure(self, tmp_path):
        from repro.recovery.journal import RunJournal

        clock = FakeClock()
        t = PoisonTracker(threshold=2, clock=clock)
        t.record_death("j", 1, "SIGKILL", cause="worker_death")
        clock.advance(5.0)
        t.record_death("j", 2, "deadline-kill", cause="deadline")
        journal = tmp_path / "journal.jsonl"
        with RunJournal.create(journal, {"dataset": {}, "options": {}}) as j:
            j.record_milestone("phase1_complete", pairs=12)
        pm = t.post_mortem("j", journal_path=journal)
        assert pm["worker_deaths"] == 2
        assert pm["threshold"] == 2
        assert pm["death_signals"] == ["SIGKILL", "deadline-kill"]
        assert pm["deaths"][1]["cause"] == "deadline"
        assert pm["deaths"][1]["at"] == 5.0
        assert pm["last_milestone"] == "phase1_complete"

    def test_post_mortem_without_journal(self):
        t = PoisonTracker(threshold=1, clock=FakeClock())
        t.record_death("j", 1, "SIGKILL")
        pm = t.post_mortem("j")
        assert pm["last_milestone"] is None
        assert pm["journaled_pairs"] == 0


class TestDescribeExit:
    @pytest.mark.parametrize("code,name", [
        (-9, "SIGKILL"), (-11, "SIGSEGV"), (0, "exit(0)"),
        (1, "exit(1)"), (None, "unknown"),
    ])
    def test_names(self, code, name):
        assert describe_exit(code) == name


class TestBrownoutPolicy:
    def test_parse_bare_mode(self):
        assert BrownoutPolicy.parse("off").mode == "off"
        assert BrownoutPolicy.parse("degrade").mode == "degrade"

    def test_parse_with_knobs(self):
        p = BrownoutPolicy.parse(
            "degrade:depth=0.9,degraded-depth=0.5,shed-priority=4,ewma-high=20"
        )
        assert p.brownout_depth == 0.9
        assert p.degraded_depth == 0.5
        assert p.shed_priority_brownout == 4
        assert p.ewma_high == 20.0

    @pytest.mark.parametrize("bad", [
        "loud", "shed:depth=2.0", "shed:wat=1", "shed:depth"
    ])
    def test_parse_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            BrownoutPolicy.parse(bad)


def assess(shedder: LoadShedder, **kw) -> HealthReport:
    kw.setdefault("depth", 0)
    kw.setdefault("max_depth", 10)
    kw.setdefault("workers_alive", 2)
    kw.setdefault("workers_total", 2)
    return shedder.assess(**kw)


class TestLoadShedder:
    def test_ok_when_idle(self):
        s = LoadShedder(BrownoutPolicy(mode="shed"))
        report = assess(s)
        assert report.ok and report.status == "ok" and report.reasons == ()

    def test_degraded_then_browned_out_by_depth(self):
        s = LoadShedder(BrownoutPolicy(mode="shed", degraded_depth=0.6,
                                       brownout_depth=0.9))
        assert assess(s, depth=6).status == "degraded"
        assert assess(s, depth=9).status == "browned_out"

    def test_no_live_workers_is_brownout(self):
        s = LoadShedder(BrownoutPolicy(mode="off"))
        report = assess(s, workers_alive=0)
        assert report.status == "browned_out"
        assert any("no live workers" in r for r in report.reasons)

    def test_partial_worker_loss_is_reason_not_brownout(self):
        s = LoadShedder(BrownoutPolicy(mode="shed"))
        report = assess(s, workers_alive=1, workers_total=2)
        assert report.status == "degraded"

    def test_open_breaker_is_brownout(self):
        s = LoadShedder(BrownoutPolicy(mode="shed"))
        report = assess(s, breaker_state=BreakerState.OPEN)
        assert report.status == "browned_out"

    def test_ewma_threshold(self):
        s = LoadShedder(BrownoutPolicy(mode="shed", ewma_high=30.0))
        assert assess(s, service_ewma=10.0).ok
        assert assess(s, service_ewma=35.0).status == "degraded"

    def test_shed_floor_by_mode_and_status(self):
        degraded = HealthReport("degraded", ("q",))
        browned = HealthReport("browned_out", ("q",))
        off = LoadShedder(BrownoutPolicy(mode="off"))
        assert off.shed_floor(browned) is None
        shed = LoadShedder(BrownoutPolicy(
            mode="shed", shed_priority_degraded=2, shed_priority_brownout=5))
        assert shed.shed_floor(HealthReport("ok")) is None
        assert shed.shed_floor(degraded) == 2
        assert shed.shed_floor(browned) == 5

    def test_check_admission_sheds_lowest_priority_first(self):
        metrics = MetricsRegistry()
        s = LoadShedder(BrownoutPolicy(mode="shed"), metrics=metrics)
        browned = HealthReport("browned_out", ("queue full",))
        with pytest.raises(AdmissionRejected) as exc_info:
            s.check_admission(priority=0, report=browned, retry_after=12.0)
        assert exc_info.value.reason == "shed_load"
        assert exc_info.value.retry_after == 12.0
        # Priority at/above the floor rides through.
        s.check_admission(priority=5, report=browned, retry_after=12.0)
        assert metrics.counter("service.shed_requests").value == 1
        assert s.shed_requests == 1

    def test_degrade_options_only_in_degrade_mode(self):
        browned = HealthReport("browned_out", ("q",))
        degraded = HealthReport("degraded", ("q",))
        ok = HealthReport("ok")
        assert LoadShedder(BrownoutPolicy(mode="shed")).degrade_options(
            browned) is None
        d = LoadShedder(BrownoutPolicy(mode="degrade"))
        assert d.degrade_options(ok) is None
        # Middle tier: degraded keeps the output but caps compose memory.
        assert d.degrade_options(degraded) == [
            f"compose_budget:{64 * 1024 * 1024}"
        ]
        assert d.degrade_options(browned) == ["coarse", "skip_compose"]

    def test_degraded_compose_budget_configurable(self):
        d = LoadShedder(BrownoutPolicy.parse(
            "degrade:compose-budget=1048576"))
        assert d.degrade_options(HealthReport("degraded", ("q",))) == [
            "compose_budget:1048576"
        ]
        with pytest.raises(ValueError, match="compose_budget"):
            BrownoutPolicy(mode="degrade", degraded_compose_budget=0)


class TestSpoolBudget:
    def make(self, tmp_path, max_bytes, **kw):
        clock = FakeClock()
        kw.setdefault("ttl", 1.0)
        return SpoolBudget(tmp_path, max_bytes, clock=clock, **kw), clock

    def test_usage_counts_spool_bytes(self, tmp_path):
        budget, _ = self.make(tmp_path, 1000)
        (tmp_path / "a").write_bytes(b"x" * 100)
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b").write_bytes(b"y" * 50)
        assert budget.usage() == 150

    def test_admit_rejects_over_budget(self, tmp_path):
        metrics = MetricsRegistry()
        budget, _ = self.make(tmp_path, 200, per_job_estimate=100,
                              metrics=metrics)
        (tmp_path / "a").write_bytes(b"x" * 150)
        with pytest.raises(SpoolBudgetExceeded) as exc_info:
            budget.admit()
        assert exc_info.value.reason == "spool_budget"
        assert exc_info.value.used == 150
        assert metrics.counter("service.spool_budget_rejected").value == 1
        budget.admit(estimate=50)  # exactly fits

    def test_usage_cached_within_ttl(self, tmp_path):
        budget, clock = self.make(tmp_path, 1000)
        (tmp_path / "a").write_bytes(b"x" * 10)
        assert budget.usage() == 10
        (tmp_path / "b").write_bytes(b"y" * 90)
        assert budget.usage() == 10  # stale but cheap
        clock.advance(2.0)
        assert budget.usage() == 100

    def test_admit_rewalks_before_rejecting(self, tmp_path):
        """A stale over-budget cache must not 429 a fresh disk."""
        budget, _ = self.make(tmp_path, 200, per_job_estimate=100)
        big = tmp_path / "old-job"
        big.write_bytes(b"x" * 180)
        assert budget.usage() == 180
        big.unlink()  # cleanup freed the space; cache still says 180
        budget.admit()  # re-walk sees 0 -> admitted

    def test_refresh_publishes_gauge(self, tmp_path):
        metrics = MetricsRegistry()
        budget, _ = self.make(tmp_path, 1000, metrics=metrics)
        (tmp_path / "a").write_bytes(b"x" * 42)
        budget.refresh()
        assert metrics.gauge("service.spool_bytes").value == 42


class TestDegradeSpec:
    """Server-side application of brownout degradations to job specs."""

    def make_spec(self, **kw):
        from repro.service.jobs import JobSpec

        kw.setdefault("dataset", "/d")
        return JobSpec(**kw)

    def degrade(self, spec, degradations):
        from repro.service.server import StitchService

        return StitchService._degrade_spec(spec, degradations)

    def test_compose_budget_caps_output_jobs(self):
        spec = self.make_spec(output="/out/m.tif")
        new, applied = self.degrade(spec, ["compose_budget:1048576"])
        assert applied == ["compose_budget:1048576"]
        assert new.output == "/out/m.tif"  # output kept: middle tier
        assert new.options["memory_budget"] == 1048576

    def test_compose_budget_never_raises_client_budget(self):
        spec = self.make_spec(output="/out/m.tif",
                              options={"memory_budget": 1000})
        new, applied = self.degrade(spec, ["compose_budget:1048576"])
        assert applied == []
        assert new.options["memory_budget"] == 1000

    def test_compose_budget_tightens_looser_client_budget(self):
        spec = self.make_spec(output="/out/m.tif",
                              options={"memory_budget": 10**9})
        new, applied = self.degrade(spec, ["compose_budget:1048576"])
        assert applied == ["compose_budget:1048576"]
        assert new.options["memory_budget"] == 1048576

    def test_compose_budget_noop_without_output(self):
        spec = self.make_spec()
        new, applied = self.degrade(spec, ["compose_budget:1048576"])
        assert applied == []
        assert new is spec

    def test_brownout_tier_still_skips_compose(self):
        spec = self.make_spec(output="/out/m.tif")
        new, applied = self.degrade(spec, ["coarse", "skip_compose"])
        assert applied == ["coarse", "skip_compose"]
        assert new.output is None
        assert new.options["coarse"] is True
