"""Queue policy under deterministic stress: fairness, FIFO, conservation.

Everything here runs against an injected fake clock -- no sleeps, no
wall-time dependence.  The load tests drive randomized submit / take /
cancel schedules (seeded, plus a hypothesis sweep) and assert the
invariant the service's no-job-loss guarantee rests on::

    accepted == taken + cancelled + depth
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.jobs import JobRecord, JobSpec
from repro.service.queue import AdmissionRejected, JobQueue


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_queue(**kwargs) -> tuple[JobQueue, FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("max_depth", 64)
    kwargs.setdefault("per_tenant_limit", 16)
    return JobQueue(clock=clock, **kwargs), clock


def job(tenant="default", priority=0, **kw) -> JobRecord:
    return JobRecord(spec=JobSpec(dataset="/d", tenant=tenant,
                                  priority=priority, **kw))


class TestOrdering:
    def test_fifo_within_one_tenant(self):
        q, _ = make_queue()
        jobs = [q.submit(job()) for _ in range(5)]
        assert [q.take(0).id for _ in range(5)] == [j.id for j in jobs]

    def test_priority_beats_arrival_order(self):
        q, _ = make_queue()
        low = q.submit(job(priority=1))
        high = q.submit(job(priority=8))
        mid = q.submit(job(priority=5))
        assert [q.take(0).id for _ in range(3)] == [high.id, mid.id, low.id]

    def test_round_robin_across_tenants(self):
        """Three tenants, one flooding: service alternates fairly."""
        q, _ = make_queue()
        for _ in range(6):
            q.submit(job(tenant="noisy"))
        q.submit(job(tenant="quiet-a"))
        q.submit(job(tenant="quiet-b"))
        served = [q.take(0).spec.tenant for _ in range(4)]
        # Both quiet tenants are served within the first three takes --
        # the noisy tenant cannot monopolize the pool.
        assert "quiet-a" in served[:3]
        assert "quiet-b" in served[:3]
        assert served.count("noisy") <= 2

    def test_round_robin_is_least_recently_served(self):
        q, _ = make_queue()
        for tenant in ("a", "b"):
            for _ in range(3):
                q.submit(job(tenant=tenant))
        order = [q.take(0).spec.tenant for _ in range(6)]
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_fifo_within_priority_across_requeue(self):
        """A requeued job re-enters at the front of its lane."""
        q, _ = make_queue()
        first = q.submit(job())
        second = q.submit(job())
        taken = q.take(0)
        assert taken.id == first.id
        q.requeue(taken)
        assert q.take(0).id == first.id  # still ahead of `second`
        assert q.take(0).id == second.id

    def test_wait_seconds_use_injected_clock(self):
        from repro.observe import MetricsRegistry

        metrics = MetricsRegistry()
        clock = FakeClock()
        q = JobQueue(clock=clock, metrics=metrics)
        q.submit(job())
        clock.advance(7.5)
        q.take(0)
        h = metrics.histogram("service.queue_wait_seconds")
        assert h.percentile(50) == 7.5


class TestBackpressure:
    def test_depth_limit_rejects_with_retry_after(self):
        q, _ = make_queue(max_depth=3, per_tenant_limit=16)
        for _ in range(3):
            q.submit(job())
        with pytest.raises(AdmissionRejected) as exc_info:
            q.submit(job())
        assert exc_info.value.reason == "queue_full"
        assert 0.1 <= exc_info.value.retry_after <= 60.0

    def test_tenant_limit_spares_other_tenants(self):
        q, _ = make_queue(max_depth=64, per_tenant_limit=2)
        q.submit(job(tenant="greedy"))
        q.submit(job(tenant="greedy"))
        with pytest.raises(AdmissionRejected) as exc_info:
            q.submit(job(tenant="greedy"))
        assert exc_info.value.reason == "tenant_limit"
        q.submit(job(tenant="polite"))  # unaffected

    def test_retry_after_tracks_service_rate(self):
        q, _ = make_queue(max_depth=4, workers=2)
        q.note_job_seconds(10.0)
        for _ in range(4):
            q.submit(job())
        with pytest.raises(AdmissionRejected) as exc_info:
            q.submit(job())
        # 10 s/job EWMA, depth 4 + 1, 2 workers -> ~25 s.
        assert exc_info.value.retry_after == pytest.approx(25.0)

    def test_requeue_bypasses_admission(self):
        """A full queue must still accept a requeue -- the job was
        already accepted and must not be lost."""
        q, _ = make_queue(max_depth=1)
        first = q.submit(job())
        taken = q.take(0)
        q.submit(job())  # queue full again
        q.requeue(taken)  # no exception
        assert q.depth() == 2
        assert q.take(0).id == first.id

    def test_closed_queue_rejects(self):
        q, _ = make_queue()
        q.close()
        with pytest.raises(AdmissionRejected, match="shut down"):
            q.submit(job())


class TestConservation:
    """accepted == taken + cancelled + depth, under randomized load."""

    def _drive(self, seed: int, n_ops: int, q: JobQueue) -> int:
        """Randomized submit/take/requeue/cancel; returns requeue count."""
        rng = random.Random(seed)
        queued_ids: list[str] = []
        requeues = 0
        for _ in range(n_ops):
            op = rng.random()
            if op < 0.55:
                try:
                    rec = q.submit(job(
                        tenant=rng.choice(["a", "b", "c"]),
                        priority=rng.randrange(0, 10),
                    ))
                    queued_ids.append(rec.id)
                except AdmissionRejected:
                    pass
            elif op < 0.85:
                rec = q.take(0)
                if rec is not None:
                    queued_ids.remove(rec.id)
                    if rng.random() < 0.2:  # simulated worker death
                        q.requeue(rec)
                        queued_ids.append(rec.id)
                        requeues += 1
            elif queued_ids:
                victim = rng.choice(queued_ids)
                if q.cancel(victim) is not None:
                    queued_ids.remove(victim)
        return requeues

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_randomized_load_conserves_jobs(self, seed):
        q, _ = make_queue(max_depth=8, per_tenant_limit=4)
        requeues = self._drive(seed, 400, q)
        s = q.stats()
        # Each requeue recycles an already-accepted job back into the
        # queue, so `taken` over-counts acceptances by the requeue count;
        # the net flow must balance exactly.
        assert s["accepted"] + requeues == (
            s["taken"] + s["cancelled"] + s["depth"]
        )
        # And nothing invented: live depth agrees with the counter.
        assert s["depth"] == q.depth()

    @pytest.mark.parametrize("seed", [0, 3, 99])
    def test_no_accepted_job_lost(self, seed):
        """Every accepted job is eventually taken or cancelled -- none
        vanish, even with interleaved requeues and rejections."""
        q, _ = make_queue(max_depth=8, per_tenant_limit=4)
        rng = random.Random(seed)
        accepted: set[str] = set()
        finished: set[str] = set()
        for _ in range(300):
            if rng.random() < 0.5:
                try:
                    rec = q.submit(job(tenant=rng.choice(["a", "b"]),
                                       priority=rng.randrange(3)))
                    accepted.add(rec.id)
                except AdmissionRejected:
                    pass
            else:
                rec = q.take(0)
                if rec is not None:
                    if rng.random() < 0.15:
                        q.requeue(rec)
                    else:
                        finished.add(rec.id)
        # Drain the remainder deterministically.
        while (rec := q.take(0)) is not None:
            finished.add(rec.id)
        assert finished == accepted
        assert q.depth() == 0

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        max_depth=st.integers(1, 12),
        per_tenant=st.integers(1, 6),
        n_ops=st.integers(10, 250),
    )
    def test_conservation_property(self, seed, max_depth, per_tenant, n_ops):
        clock = FakeClock()
        q = JobQueue(max_depth=max_depth, per_tenant_limit=per_tenant,
                     clock=clock)
        rng = random.Random(seed)
        live: list[str] = []
        taken_net = 0
        for _ in range(n_ops):
            roll = rng.random()
            clock.advance(rng.random())
            if roll < 0.6:
                try:
                    rec = q.submit(job(tenant=rng.choice("abcd"),
                                       priority=rng.randrange(10)))
                    live.append(rec.id)
                except AdmissionRejected:
                    pass
            elif roll < 0.9:
                rec = q.take(0)
                if rec is not None:
                    live.remove(rec.id)
                    if rng.random() < 0.25:
                        q.requeue(rec)
                        live.append(rec.id)
                        taken_net -= 1
                    taken_net += 1
            elif live:
                victim = rng.choice(live)
                if q.cancel(victim) is not None:
                    live.remove(victim)
        s = q.stats()
        assert s["accepted"] == taken_net + s["cancelled"] + s["depth"]
        assert s["depth"] == len(live)
        # Tenant book-keeping agrees with the global depth.
        assert sum(q.depth_by_tenant().values()) == s["depth"]


class TestFairnessUnderRequeueStorms:
    """Round-robin must survive worker-death requeue storms: a tenant
    whose jobs keep dying (and re-entering at the front of its lane)
    cannot starve the tenants whose jobs complete."""

    def test_requeue_storm_does_not_starve_other_tenants(self):
        q, _ = make_queue()
        for _ in range(4):
            q.submit(job(tenant="dying"))
            q.submit(job(tenant="healthy"))
        healthy_served = 0
        for _ in range(16):
            rec = q.take(0)
            assert rec is not None
            if rec.spec.tenant == "dying":
                q.requeue(rec)  # its worker "died" -- storm
            else:
                healthy_served += 1
            if healthy_served == 4:
                break
        # All four healthy jobs complete despite the storm, and the
        # alternation means the storm never gets two consecutive turns.
        assert healthy_served == 4

    def test_requeue_storm_alternates_strictly(self):
        q, _ = make_queue()
        for _ in range(3):
            q.submit(job(tenant="a"))
            q.submit(job(tenant="b"))
        served: list[str] = []
        for _ in range(6):
            rec = q.take(0)
            served.append(rec.spec.tenant)
            if rec.spec.tenant == "a":
                q.requeue(rec)  # tenant a's jobs always die
        assert served == ["a", "b", "a", "b", "a", "b"]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n_ops=st.integers(20, 200))
    def test_conservation_holds_under_requeue_storms(self, seed, n_ops):
        """Heavy, biased requeueing (the crash-loop regime the breaker
        exists for) still conserves every accepted job."""
        q, _ = make_queue(max_depth=16, per_tenant_limit=8)
        rng = random.Random(seed)
        requeues = 0
        for _ in range(n_ops):
            if rng.random() < 0.4:
                try:
                    q.submit(job(tenant=rng.choice(["sick", "ok"]),
                                 priority=rng.randrange(3)))
                except AdmissionRejected:
                    pass
            else:
                rec = q.take(0)
                if rec is not None and (
                    rec.spec.tenant == "sick" and rng.random() < 0.8
                ):
                    q.requeue(rec)
                    requeues += 1
        s = q.stats()
        assert s["accepted"] + requeues == (
            s["taken"] + s["cancelled"] + s["depth"]
        )


class TestRotationRebalance:
    """Quarantine removes a job from circulation with no requeue; the
    tenant's stale rotation counter must not penalize its next visit."""

    def _serve_both(self, q: JobQueue) -> None:
        """Give both tenants a take-counter entry, `quiet` older."""
        q.submit(job(tenant="quiet"))
        q.submit(job(tenant="busy"))
        q.submit(job(tenant="busy"))
        assert q.take(0).spec.tenant == "busy"    # lexicographic first turn
        assert q.take(0).spec.tenant == "quiet"
        assert q.take(0).spec.tenant == "busy"    # busy has the newest count

    def test_rebalance_forgets_empty_tenants(self):
        q, _ = make_queue()
        self._serve_both(q)
        # Without rebalance, busy's stale (newest) counter would push it
        # behind quiet forever even after its poison job is quarantined.
        q.rebalance_rotation()  # both lanes empty -> both forgotten
        q.submit(job(tenant="busy"))
        q.submit(job(tenant="quiet"))
        # Ties broken lexicographically between forgotten tenants.
        assert q.take(0).spec.tenant == "busy"

    def test_rebalance_keeps_live_tenants(self):
        q, _ = make_queue()
        self._serve_both(q)
        q.submit(job(tenant="quiet"))  # quiet still has work queued
        q.rebalance_rotation()         # only busy (drained) is forgotten
        q.submit(job(tenant="busy"))
        # The drained tenant re-enters the rotation as *new* -- served
        # first on return -- while quiet's live counter survived.
        assert q.take(0).spec.tenant == "busy"
        assert q.take(0).spec.tenant == "quiet"
        # quiet's counter was kept, not reset: a fresh pair of
        # submissions serves busy first again (its counter is now older).
        q.submit(job(tenant="quiet"))
        q.submit(job(tenant="busy"))
        assert q.take(0).spec.tenant == "busy"

    def test_rebalance_noop_on_empty_queue(self):
        q, _ = make_queue()
        q.rebalance_rotation()
        rec = q.submit(job())
        assert q.take(0).id == rec.id


class TestShutdown:
    def test_drain_returns_everything_in_seq_order(self):
        q, _ = make_queue()
        jobs = [q.submit(job(priority=p)) for p in (5, 1, 9)]
        q.close()
        drained = q.drain()
        assert [r.id for r in drained] == [j.id for j in jobs]
        assert q.depth() == 0

    def test_take_after_close_returns_none_when_empty(self):
        q, _ = make_queue()
        q.close()
        assert q.take(0) is None

    def test_close_still_serves_queued_jobs(self):
        q, _ = make_queue()
        rec = q.submit(job())
        q.close()
        assert q.take(0).id == rec.id
