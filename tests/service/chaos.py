"""Deterministic chaos harness for the stitching service.

The harness drives a real in-process :class:`StitchService` (forked
workers, journals, watchdogs -- nothing mocked) through a seeded
schedule of hostile jobs and environmental events:

- **poison jobs** whose input deterministically SIGKILLs every worker
  that touches it (:data:`FaultKind.CRASH` on a seeded tile) -- the
  quarantine path;
- **deadline jobs** whose injected read latency exceeds their declared
  ``deadline_seconds`` (a clock-skewed client lowballing its budget) --
  the watchdog deadline-kill path;
- **data-fault jobs** whose tiles are damaged (dust / saturation) but
  readable -- they must *complete*, exercising the quality gate under
  chaos rather than dying;
- **disk-full events**: a filler file pushes the spool past its byte
  budget mid-run, and submissions during the event must be rejected
  with the ``spool_budget`` reason, then accepted after cleanup;
- **clean jobs** interleaved throughout, whose results must come out
  bit-identical to each other no matter what the chaos did around them.

The schedule is a pure function of the seed (``ChaosSchedule.generate``
uses one ``random.Random(seed)`` stream and nothing else), so a run is
replayable; the *invariants* asserted by :meth:`ChaosReport.verify` are
designed to hold for every seed and every thread interleaving:

1. conservation: ``accepted == done + failed + cancelled + quarantined``
   once the queue is empty and nothing is running;
2. worker deaths are bounded by the schedule (each job's deaths are
   capped by the quarantine threshold);
3. every poison job is quarantined after exactly K worker deaths, with
   a structured post-mortem;
4. clean jobs produce bit-identical positions;
5. the breaker recovers: after a final clean probe job the pool is
   dispatching normally again (breaker CLOSED).

Usable as a pytest fixture (``test_chaos.py``) or standalone for the CI
smoke job::

    PYTHONPATH=src python tests/service/chaos.py --seed 1234 --out DIR
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from repro.service.jobs import JobState
from repro.service.queue import AdmissionRejected
from repro.service.resilience import (
    BreakerConfig,
    BreakerState,
    BrownoutPolicy,
    ResilienceConfig,
)
from repro.service.server import StitchService

#: Worker deaths one job may cause before quarantine (the K of the
#: invariant "quarantine within K deaths").
QUARANTINE_K = 3

#: Spool filler size for the disk-full event; the budget is set to half
#: of this so the filler alone overruns it.
FILLER_BYTES = 4 << 20


@dataclass(frozen=True)
class ChaosJob:
    """One scheduled submission: a job spec plus its chaos class."""

    kind: str          # "clean" | "poison" | "deadline" | "data"
    spec: dict


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, replayable mix of hostile and healthy jobs.

    ``disk_full_after`` is the submission index before which the spool
    filler lands (submissions at that index are made during the event).
    """

    seed: int
    jobs: tuple[ChaosJob, ...]
    disk_full_after: int

    @classmethod
    def generate(cls, seed: int, dataset: str, n_jobs: int = 8,
                 ) -> "ChaosSchedule":
        """Pure function of ``seed``: same seed, same schedule, always.

        The mix always contains at least one job of each fault class
        (poison / deadline / data) so a run exercises >= 3 distinct
        fault classes regardless of the draw; the remainder is a seeded
        mix weighted toward clean jobs.
        """
        if n_jobs < 4:
            raise ValueError(f"need >= 4 jobs for full coverage, got {n_jobs}")
        rng = Random(seed)
        kinds = ["poison", "deadline", "data"]
        kinds += rng.choices(
            ["clean", "clean", "clean", "data", "deadline"], k=n_jobs - 3
        )
        rng.shuffle(kinds)
        jobs = []
        for i, kind in enumerate(kinds):
            fault_seed = rng.randrange(1, 10_000)
            spec: dict = {
                "dataset": dataset,
                "tenant": rng.choice(["lab-a", "lab-b", "lab-c"]),
                "priority": rng.randrange(0, 10),
            }
            if kind == "poison":
                # The crash tile kills every fresh worker that reads it;
                # the retry budget exceeds K so quarantine (not budget
                # exhaustion) must be what stops the carnage.
                spec["inject_faults"] = f"{fault_seed}:crash=1"
                spec["retry_budget"] = QUARANTINE_K + 2
            elif kind == "deadline":
                # Injected latency far beyond the declared deadline: the
                # skewed-clock client that promised a 0.4 s job.
                spec["inject_faults"] = f"{fault_seed}:slow=8,latency=0.35"
                spec["deadline_seconds"] = 0.4
                spec["retry_budget"] = 0
            elif kind == "data":
                spec["inject_faults"] = f"{fault_seed}:dust=1,saturate=1"
            jobs.append(ChaosJob(kind, spec))
        return cls(seed=seed, jobs=tuple(jobs),
                   disk_full_after=rng.randrange(1, n_jobs - 1))


@dataclass
class ChaosReport:
    """Everything one chaos run produced, ready for invariant checks."""

    schedule: ChaosSchedule
    records: dict = field(default_factory=dict)   # job id -> record dict
    kinds: dict = field(default_factory=dict)     # job id -> chaos kind
    shed_during_disk_full: int = 0
    queue_stats: dict = field(default_factory=dict)
    state_counts: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    breaker: dict = field(default_factory=dict)
    probe_state: str = ""
    probe_positions: list | None = None

    def by_kind(self, kind: str) -> list[dict]:
        return [r for jid, r in self.records.items()
                if self.kinds[jid] == kind]

    # -- the invariants ------------------------------------------------------

    def verify(self) -> list[str]:
        """Check every invariant; returns human-readable failures."""
        failures: list[str] = []

        def check(ok: bool, label: str) -> None:
            if not ok:
                failures.append(label)

        # 1. Conservation at exit: every accepted job is accounted for
        #    in exactly one terminal state, none queued, none running.
        s, c = self.queue_stats, self.state_counts
        terminal = (c["done"] + c["failed"] + c["cancelled"]
                    + c["quarantined"])
        check(
            s["accepted"] == terminal + s["depth"] and s["depth"] == 0
            and c["queued"] == 0 and c["running"] == 0,
            f"conservation: accepted={s['accepted']} != "
            f"done+failed+cancelled+quarantined={terminal} "
            f"(depth={s['depth']}, queued={c['queued']}, "
            f"running={c['running']})",
        )

        # 2. Worker deaths bounded by the schedule: every death is
        #    attributed to a job, and no job may exceed K deaths.
        deaths = self.metrics.get("service.worker_deaths", 0)
        poison = len(self.by_kind("poison"))
        deadline = len(self.by_kind("deadline"))
        bound = poison * QUARANTINE_K + deadline * QUARANTINE_K
        check(deaths <= bound,
              f"deaths unbounded: {deaths} > schedule bound {bound}")

        # 3. Every poison job quarantined after exactly K deaths, with
        #    a structured post-mortem naming each death.
        for record in self.by_kind("poison"):
            jid = record["id"]
            check(record["state"] == "quarantined",
                  f"poison job {jid} ended {record['state']}, "
                  f"not quarantined")
            detail = record.get("error_detail") or {}
            pm = detail.get("post_mortem") or {}
            check(pm.get("worker_deaths") == QUARANTINE_K,
                  f"poison job {jid} post-mortem deaths "
                  f"{pm.get('worker_deaths')} != K={QUARANTINE_K}")
            check(len(detail.get("death_signals") or []) == QUARANTINE_K,
                  f"poison job {jid} death_signals "
                  f"{detail.get('death_signals')}")
            check(detail.get("type") == "PoisonJobQuarantined",
                  f"poison job {jid} error type {detail.get('type')}")
        check(
            self.metrics.get("service.quarantined_jobs", 0) == poison,
            f"quarantine counter {self.metrics.get('service.quarantined_jobs')}"
            f" != poison jobs {poison}",
        )

        # 4. Non-quarantined clean jobs all finish and agree bit-for-bit.
        clean = self.by_kind("clean")
        for record in clean:
            check(record["state"] == "done",
                  f"clean job {record['id']} ended {record['state']}: "
                  f"{record.get('error')}")
        positions = [r["_positions"] for r in clean
                     if r.get("_positions") is not None]
        check(len({json.dumps(p) for p in positions}) <= 1,
              "clean jobs disagree on positions (determinism broken)")
        if self.probe_positions is not None and positions:
            check(self.probe_positions == positions[0],
                  "recovery probe positions differ from in-chaos results")

        # 5. Deadline jobs died by deadline, not by luck.
        for record in self.by_kind("deadline"):
            check(record["state"] == "failed",
                  f"deadline job {record['id']} ended {record['state']}")
            signals = (record.get("error_detail") or {}).get(
                "death_signals") or []
            check("deadline-kill" in signals,
                  f"deadline job {record['id']} signals {signals}")

        # 6. Data-fault jobs complete: damaged pixels are a quality
        #    problem, not a crash.
        for record in self.by_kind("data"):
            check(record["state"] == "done",
                  f"data-fault job {record['id']} ended {record['state']}")

        # 7. Disk-full event actually rejected something, with the
        #    typed reason.
        check(self.shed_during_disk_full >= 1,
              "disk-full event rejected no submissions")

        # 8. Recovery: the post-chaos probe ran to completion and the
        #    breaker is closed again.
        check(self.probe_state == "done",
              f"recovery probe ended {self.probe_state}")
        check(self.breaker.get("state") == "closed",
              f"breaker did not recover: {self.breaker}")
        return failures

    def to_dict(self) -> dict:
        return {
            "seed": self.schedule.seed,
            "jobs": [
                {"kind": self.kinds[jid], **record}
                for jid, record in self.records.items()
            ],
            "shed_during_disk_full": self.shed_during_disk_full,
            "queue": self.queue_stats,
            "states": self.state_counts,
            "breaker": self.breaker,
            "probe_state": self.probe_state,
            "metrics": self.metrics,
        }


class ChaosHarness:
    """Owns one service instance and drives one schedule through it."""

    def __init__(self, root: Path, dataset: str, seed: int,
                 workers: int = 2, n_jobs: int = 8) -> None:
        self.root = Path(root)
        self.dataset = dataset
        self.schedule = ChaosSchedule.generate(seed, dataset, n_jobs=n_jobs)
        self.spool = self.root / "spool"
        self.service = StitchService(
            self.spool,
            workers=workers,
            max_depth=64,
            resilience=ResilienceConfig(
                quarantine_threshold=QUARANTINE_K,
                breaker=BreakerConfig(
                    death_threshold=3,
                    window_seconds=30.0,
                    cooldown_seconds=0.1,
                    max_cooldown_seconds=1.0,
                    respawn_base=0.02,
                    respawn_cap=0.2,
                    jitter=0.5,
                    seed=seed,
                ),
                brownout=BrownoutPolicy(mode="off"),
                spool_budget_bytes=FILLER_BYTES // 2,
                spool_per_job_estimate=1 << 10,
            ),
        )

    def run(self, timeout: float = 180.0) -> ChaosReport:
        report = ChaosReport(schedule=self.schedule)
        self.service.start()
        try:
            submitted: list[str] = []
            filler = self.spool / "chaos-filler.bin"
            for i, job in enumerate(self.schedule.jobs):
                if i == self.schedule.disk_full_after:
                    # Disk-full event: this submission (and only the
                    # ones made while the filler exists) must bounce.
                    filler.write_bytes(b"\0" * FILLER_BYTES)
                    # The budget's accept path trusts its ttl cache;
                    # force the walk so the event is visible *now*
                    # (deterministic), not after the ttl expires.
                    self.service.spool_budget.refresh()
                    try:
                        stray = self.service.submit(dict(job.spec))
                    except AdmissionRejected as exc:
                        if exc.reason == "spool_budget":
                            report.shed_during_disk_full += 1
                    else:
                        # Budget failed to bounce it (itself an invariant
                        # violation, reported by verify) -- but account
                        # for the job so conservation still holds.
                        submitted.append(stray.id)
                        report.kinds[stray.id] = job.kind
                    filler.unlink()
                # Normal (or post-cleanup) submission of the same job.
                record = self.service.submit(dict(job.spec))
                submitted.append(record.id)
                report.kinds[record.id] = job.kind
            for jid in submitted:
                self.service.wait(jid, timeout=timeout)

            # Recovery probe: one clean job after the dust settles must
            # run normally and leave the breaker closed.
            probe = self.service.submit({"dataset": self.dataset,
                                         "tenant": "probe"})
            report.kinds[probe.id] = "probe"
            self.service.wait(probe.id, timeout=timeout)
            report.probe_state = probe.state.value
            if probe.state is JobState.DONE:
                report.probe_positions = json.loads(
                    self.service.pool.positions_path(probe.id).read_text()
                )["positions"]

            for jid in submitted:
                record = self.service.get(jid).to_dict()
                if record["state"] == "done":
                    record["_positions"] = json.loads(
                        self.service.pool.positions_path(jid).read_text()
                    )["positions"]
                report.records[jid] = record
            report.queue_stats = self.service.queue.stats()
            # The probe is part of the run's accounting too.
            report.state_counts = self.service.job_state_counts()
            # wait() wakes on the job's terminal transition, which the
            # dispatcher performs just *before* settling its breaker
            # permit -- so give the canary-success release a bounded
            # window to land before judging recovery.
            deadline = time.monotonic() + 5.0
            while True:
                report.breaker = self.service.pool.breaker.snapshot()
                if (report.breaker["state"] == "closed"
                        or time.monotonic() >= deadline):
                    break
                time.sleep(0.01)
            report.metrics = self.service.metrics.snapshot()["counters"]
        finally:
            self.service.stop()
        return report


def run_chaos(root: Path, seed: int, rows: int = 3, cols: int = 3,
              n_jobs: int = 8, workers: int = 2) -> ChaosReport:
    """Build a synthetic dataset and run one full chaos cycle."""
    from repro.synth import make_synthetic_dataset

    ds = make_synthetic_dataset(
        Path(root) / "dataset", rows=rows, cols=cols,
        tile_height=48, tile_width=48, overlap=0.25, seed=seed % 1000,
    )
    harness = ChaosHarness(Path(root), str(ds.directory), seed,
                           workers=workers, n_jobs=n_jobs)
    return harness.run()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", type=Path, default=None,
                        help="write chaos-report.json (+ post-mortems) here")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="chaos-") as tmp:
        report = run_chaos(Path(tmp), args.seed, n_jobs=args.jobs,
                           workers=args.workers)
    failures = report.verify()
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "chaos-report.json").write_text(
            json.dumps(report.to_dict(), indent=2, default=str) + "\n"
        )
        quarantined = [r for r in report.records.values()
                       if r["state"] == "quarantined"]
        (args.out / "post-mortems.json").write_text(
            json.dumps(quarantined, indent=2, default=str) + "\n"
        )
    states = report.state_counts
    print(f"chaos seed={args.seed}: "
          f"{states.get('done', 0)} done, "
          f"{states.get('failed', 0)} failed, "
          f"{states.get('quarantined', 0)} quarantined, "
          f"{report.metrics.get('service.worker_deaths', 0)} worker deaths, "
          f"breaker={report.breaker.get('state')}")
    if failures:
        for failure in failures:
            print(f"INVARIANT VIOLATED: {failure}")
        return 1
    print("all chaos invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
