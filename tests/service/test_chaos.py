"""Chaos acceptance: the seeded harness and its invariants.

One full chaos cycle (real forked workers, real SIGKILLs, real
journals) is expensive, so the suite runs a single module-scoped cycle
and asserts every invariant class against its report, plus cheap
schedule-level determinism checks that never start a service.
"""

from __future__ import annotations

import json

import pytest

from tests.service.chaos import (
    QUARANTINE_K,
    ChaosReport,
    ChaosSchedule,
    run_chaos,
)

SEED = 1234


@pytest.fixture(scope="module")
def report(tmp_path_factory) -> ChaosReport:
    return run_chaos(tmp_path_factory.mktemp("chaos"), SEED)


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        a = ChaosSchedule.generate(SEED, "/ds")
        b = ChaosSchedule.generate(SEED, "/ds")
        assert a == b

    def test_different_seed_different_schedule(self):
        assert (ChaosSchedule.generate(1, "/ds")
                != ChaosSchedule.generate(2, "/ds"))

    def test_every_fault_class_present_for_any_seed(self):
        for seed in range(20):
            kinds = {j.kind for j in ChaosSchedule.generate(seed, "/ds").jobs}
            assert {"poison", "deadline", "data"} <= kinds

    def test_poison_jobs_outlive_the_quarantine_threshold(self):
        """Retry budgets must exceed K, so quarantine -- not budget
        exhaustion -- is what must stop a poison job."""
        for job in ChaosSchedule.generate(SEED, "/ds").jobs:
            if job.kind == "poison":
                assert job.spec["retry_budget"] >= QUARANTINE_K

    def test_schedule_rejects_tiny_runs(self):
        with pytest.raises(ValueError, match="coverage"):
            ChaosSchedule.generate(SEED, "/ds", n_jobs=3)


class TestChaosInvariants:
    def test_all_invariants_hold(self, report):
        failures = report.verify()
        assert not failures, "\n".join(failures)

    def test_conservation_explicitly(self, report):
        s, c = report.queue_stats, report.state_counts
        assert s["depth"] == 0 and c["queued"] == 0 and c["running"] == 0
        assert s["accepted"] == (c["done"] + c["failed"] + c["cancelled"]
                                 + c["quarantined"])

    def test_poison_jobs_quarantined_with_post_mortem(self, report):
        poisoned = report.by_kind("poison")
        assert poisoned, "schedule guarantees at least one poison job"
        for record in poisoned:
            assert record["state"] == "quarantined"
            detail = record["error_detail"]
            assert detail["type"] == "PoisonJobQuarantined"
            assert detail["death_signals"] == ["SIGKILL"] * QUARANTINE_K
            pm = detail["post_mortem"]
            assert pm["worker_deaths"] == QUARANTINE_K
            assert pm["threshold"] == QUARANTINE_K

    def test_clean_jobs_bit_identical(self, report):
        clean = report.by_kind("clean")
        positions = [json.dumps(r["_positions"]) for r in clean
                     if r["state"] == "done"]
        assert len(set(positions)) <= 1

    def test_deadline_jobs_killed_by_watchdog(self, report):
        for record in report.by_kind("deadline"):
            assert record["state"] == "failed"
            assert "deadline-kill" in record["error_detail"]["death_signals"]

    def test_disk_full_event_rejected_submissions(self, report):
        assert report.shed_during_disk_full >= 1
        assert report.metrics.get("service.spool_budget_rejected", 0) >= 1

    def test_breaker_recovered_after_chaos(self, report):
        assert report.probe_state == "done"
        assert report.breaker["state"] == "closed"
        # The poison job's K deaths crossed the trip threshold at least
        # once, so the run exercised the full open -> half-open -> closed
        # cycle, not just the closed steady state.
        assert report.breaker["trips"] >= 1
        assert report.metrics.get("service.worker_deaths", 0) >= QUARANTINE_K

    def test_report_serializes(self, report, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report.to_dict(), default=str))
        assert json.loads(path.read_text())["seed"] == SEED
