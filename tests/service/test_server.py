"""HTTP surface of the service: routing, validation, serialization.

The worker pool is deliberately *not* started here -- submitted jobs
stay queued, which makes every endpoint's behaviour deterministic.  The
running-pool lifecycle is covered by ``test_service_e2e.py``.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.service import (
    BackpressureError,
    ServiceClient,
    ServiceError,
    StitchService,
)
from repro.synth import make_synthetic_dataset


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    ds = make_synthetic_dataset(
        tmp_path_factory.mktemp("srv-ds"), rows=2, cols=2,
        tile_height=32, tile_width=32, overlap=0.25, seed=3,
    )
    return str(ds.directory)


@pytest.fixture()
def service(tmp_path):
    svc = StitchService(tmp_path / "spool", workers=1, max_depth=4,
                        per_tenant_limit=2)
    svc.start_http()  # HTTP only; pool stays cold so jobs stay queued
    yield svc
    svc.stop_http()


@pytest.fixture()
def client(service):
    host, port = service.address
    return ServiceClient(host, port)


class TestSubmission:
    def test_submit_returns_accepted_record(self, client, dataset_dir):
        rec = client.submit({"dataset": dataset_dir, "tenant": "lab-a"})
        assert rec["state"] == "queued"
        assert rec["tenant"] == "lab-a"
        assert len(rec["id"]) == 12

    def test_unknown_keys_rejected_400(self, client, dataset_dir):
        with pytest.raises(ServiceError) as exc_info:
            client.submit({"dataset": dataset_dir, "shell": "rm -rf /"})
        assert exc_info.value.status == 400
        assert "unknown job spec keys" in str(exc_info.value)

    def test_missing_dataset_rejected_400(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.submit({"dataset": "/no/such/place"})
        assert exc_info.value.status == 400

    def test_malformed_json_rejected_400(self, service):
        host, port = service.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("POST", "/jobs", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        payload = json.loads(resp.read())
        conn.close()
        assert resp.status == 400
        assert "bad JSON" in payload["error"]

    def test_backpressure_429_with_retry_after(self, client, dataset_dir):
        for i in range(2):
            client.submit({"dataset": dataset_dir, "tenant": f"t{i}",
                           "priority": i})
        client.submit({"dataset": dataset_dir, "tenant": "t2"})
        client.submit({"dataset": dataset_dir, "tenant": "t3"})
        with pytest.raises(BackpressureError) as exc_info:
            client.submit({"dataset": dataset_dir, "tenant": "t4"})
        assert exc_info.value.status == 429
        assert exc_info.value.reason == "queue_full"
        assert exc_info.value.retry_after > 0

    def test_tenant_limit_429(self, client, dataset_dir):
        client.submit({"dataset": dataset_dir, "tenant": "noisy"})
        client.submit({"dataset": dataset_dir, "tenant": "noisy"})
        with pytest.raises(BackpressureError) as exc_info:
            client.submit({"dataset": dataset_dir, "tenant": "noisy"})
        assert exc_info.value.reason == "tenant_limit"

    def test_dataset_root_confinement(self, tmp_path, dataset_dir):
        svc = StitchService(tmp_path / "spool", workers=1,
                            dataset_root=tmp_path / "datasets")
        (tmp_path / "datasets").mkdir()
        svc.start_http()
        try:
            host, port = svc.address
            client = ServiceClient(host, port)
            with pytest.raises(ServiceError) as exc_info:
                client.submit({"dataset": dataset_dir})  # outside the root
            assert exc_info.value.status == 400
            assert "escapes" in str(exc_info.value)
            with pytest.raises(ServiceError) as exc_info:
                client.submit({"dataset": "../../etc"})
            assert exc_info.value.status == 400
        finally:
            svc.stop_http()


class TestStatusAndLifecycle:
    def test_status_roundtrip(self, client, dataset_dir):
        rec = client.submit({"dataset": dataset_dir})
        got = client.status(rec["id"])
        assert got["id"] == rec["id"]
        assert got["state"] == "queued"
        assert got["spec"]["dataset"] == dataset_dir

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.status("0123456789ab")
        assert exc_info.value.status == 404

    def test_malformed_job_id_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.status("..%2f..%2fetc")
        assert exc_info.value.status == 404

    def test_list_jobs_with_tenant_filter(self, client, dataset_dir):
        client.submit({"dataset": dataset_dir, "tenant": "aa"})
        client.submit({"dataset": dataset_dir, "tenant": "bb"})
        assert {j["tenant"] for j in client.list_jobs()} == {"aa", "bb"}
        only = client.list_jobs(tenant="aa")
        assert len(only) == 1 and only[0]["tenant"] == "aa"

    def test_cancel_queued_job(self, client, dataset_dir):
        rec = client.submit({"dataset": dataset_dir})
        cancelled = client.cancel(rec["id"])
        assert cancelled["state"] == "cancelled"
        # Idempotent: cancelling again reports the same terminal state.
        assert client.cancel(rec["id"])["state"] == "cancelled"

    def test_result_of_unfinished_job_409(self, client, dataset_dir):
        rec = client.submit({"dataset": dataset_dir})
        with pytest.raises(ServiceError) as exc_info:
            client.result(rec["id"])
        assert exc_info.value.status == 409
        assert exc_info.value.payload["state"] == "queued"

    def test_wrong_method_405(self, service, dataset_dir):
        host, port = service.address
        client = ServiceClient(host, port)
        rec = client.submit({"dataset": dataset_dir})
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request("DELETE", f"/jobs/{rec['id']}")
        resp = conn.getresponse()
        resp.read()
        conn.close()
        assert resp.status == 405

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client._request("GET", "/api/v9/jobs")
        assert exc_info.value.status == 404


class TestMetricsEndpoints:
    def test_healthz(self, client, dataset_dir):
        client.submit({"dataset": dataset_dir})
        health = client.health()
        # The pool is deliberately cold in these tests, and /healthz is
        # honest about it: zero live workers is a brownout condition.
        assert health["ok"] is False
        assert health["status"] == "browned_out"
        assert any("no live workers" in r for r in health["reasons"])
        assert health["queue_depth"] == 1
        assert health["jobs"]["queued"] == 1
        assert health["breaker"]["state"] == "closed"

    def test_healthz_ok_with_live_workers(self, tmp_path, dataset_dir):
        svc = StitchService(tmp_path / "spool", workers=1)
        svc.start()
        svc.start_http()
        try:
            host, port = svc.address
            health = ServiceClient(host, port).health()
            assert health["ok"] is True
            assert health["status"] == "ok"
            assert health["reasons"] == []
        finally:
            svc.stop()

    def test_metrics_json_sections(self, client, dataset_dir):
        client.submit({"dataset": dataset_dir})
        snap = client.metrics()
        assert snap["counters"]["service.jobs_submitted"] == 1
        assert snap["counters"]["service.queue_accepted"] == 1
        assert snap["jobs"]["queued"] == 1
        assert snap["queue"]["accepted"] == 1

    def test_metrics_text_parses_as_prometheus(self, client, dataset_dir):
        """Every non-comment line must be `name[{labels}] value`."""
        client.submit({"dataset": dataset_dir})
        client.cancel(client.submit({"dataset": dataset_dir})["id"])
        text = client.metrics_text()
        assert text.endswith("\n")
        seen = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                parts = line.split()
                assert parts[1] == "TYPE" and parts[3] in (
                    "counter", "gauge", "summary"
                )
                continue
            name, value = line.rsplit(" ", 1)
            float(value)  # must parse
            seen[name] = float(value)
        assert seen["repro_service_jobs_submitted"] == 2.0
        assert seen['repro_service_jobs{state="queued"}'] == 1.0
        assert seen['repro_service_jobs{state="cancelled"}'] == 1.0

    def test_cancel_counts_balance(self, client, dataset_dir):
        ids = [client.submit({"dataset": dataset_dir, "tenant": f"t{i}"})["id"]
               for i in range(3)]
        client.cancel(ids[0])
        snap = client.metrics()
        jobs = snap["jobs"]
        assert snap["counters"]["service.jobs_submitted"] == (
            jobs["queued"] + jobs["cancelled"]
        )
