"""Client-side retry/backoff policy and structured failure rendering.

No HTTP here: ``submit`` / ``status`` are stubbed, ``sleep`` is a
recorder and the jitter stream is seeded, so every wait the client would
have performed is asserted exactly -- the fake-clock unit tests the
decorrelated-jitter contract calls for.
"""

from __future__ import annotations

import random

import pytest

from repro.service.client import (
    BackpressureError,
    JobFailedError,
    ServiceClient,
)


class StubClient(ServiceClient):
    """Rejects the first ``rejections`` submissions, then accepts."""

    def __init__(self, rejections: int, retry_after: float = 0.01):
        super().__init__("stub", 0)
        self.rejections = rejections
        self.retry_after = retry_after
        self.submissions = 0

    def submit(self, spec: dict) -> dict:
        self.submissions += 1
        if self.submissions <= self.rejections:
            raise BackpressureError(
                429, {"error": "full", "reason": "queue_full"},
                self.retry_after,
            )
        return {"id": "abcdefabcdef", "state": "queued", **spec}


class TestSubmitWithRetry:
    def test_success_after_rejections(self):
        client = StubClient(rejections=3)
        sleeps: list[float] = []
        record = client.submit_with_retry(
            {"dataset": "/d"}, attempts=10,
            sleep=sleeps.append, rng=random.Random(0),
        )
        assert record["state"] == "queued"
        assert client.submissions == 4
        assert len(sleeps) == 3  # one wait per rejection

    def test_gives_up_after_attempts_and_reraises(self):
        client = StubClient(rejections=100)
        sleeps: list[float] = []
        with pytest.raises(BackpressureError):
            client.submit_with_retry(
                {"dataset": "/d"}, attempts=5,
                sleep=sleeps.append, rng=random.Random(0),
            )
        assert client.submissions == 5
        assert len(sleeps) == 5

    def test_decorrelated_jitter_bounded_and_capped(self):
        client = StubClient(rejections=20, retry_after=0.0)
        sleeps: list[float] = []
        with pytest.raises(BackpressureError):
            client.submit_with_retry(
                {"dataset": "/d"}, attempts=20,
                max_wait=2.0, base_wait=0.05,
                sleep=sleeps.append, rng=random.Random(42),
            )
        # Every wait is inside [base, cap] ...
        assert all(0.05 <= s <= 2.0 for s in sleeps)
        # ... grows beyond the base early on (decorrelated expansion) ...
        assert max(sleeps) > 0.05 * 3
        # ... and the expansion saturates at the cap, not beyond it.
        assert max(sleeps) <= 2.0

    def test_jitter_stream_is_seed_replayable(self):
        waits = []
        for _ in range(2):
            client = StubClient(rejections=6, retry_after=0.0)
            sleeps: list[float] = []
            with pytest.raises(BackpressureError):
                client.submit_with_retry(
                    {"dataset": "/d"}, attempts=6,
                    sleep=sleeps.append, rng=random.Random(7),
                )
            waits.append(sleeps)
        assert waits[0] == waits[1]

    def test_honours_server_retry_after_as_floor(self):
        client = StubClient(rejections=1, retry_after=1.5)
        sleeps: list[float] = []
        client.submit_with_retry(
            {"dataset": "/d"}, attempts=3, max_wait=5.0,
            sleep=sleeps.append, rng=random.Random(0),
        )
        # The first jittered draw is tiny; the server's honest hint wins.
        assert sleeps[0] >= 1.5

    def test_retry_after_floor_respects_cap(self):
        client = StubClient(rejections=1, retry_after=60.0)
        sleeps: list[float] = []
        client.submit_with_retry(
            {"dataset": "/d"}, attempts=3, max_wait=2.0,
            sleep=sleeps.append, rng=random.Random(0),
        )
        assert sleeps[0] <= 2.0


class TestJobFailedError:
    def test_renders_structured_detail(self):
        record = {
            "id": "abcdefabcdef",
            "state": "quarantined",
            "error": "quarantined: 3 worker death(s) attributed to this job",
            "error_detail": {
                "error": "quarantined: 3 worker death(s)",
                "type": "PoisonJobQuarantined",
                "attempts": 3,
                "last_milestone": "phase1_complete",
                "death_signals": ["SIGKILL", "SIGKILL", "SIGKILL"],
            },
        }
        err = JobFailedError(record)
        text = str(err)
        assert "abcdefabcdef" in text
        assert "quarantined" in text
        assert "type=PoisonJobQuarantined" in text
        assert "attempts=3" in text
        assert "last_milestone=phase1_complete" in text
        assert "SIGKILL,SIGKILL,SIGKILL" in text
        assert err.record is record
        assert err.state == "quarantined"

    def test_renders_without_detail(self):
        err = JobFailedError({"id": "x", "state": "failed",
                              "error": "boom", "error_detail": None})
        assert "boom" in str(err)


class WaitStub(ServiceClient):
    def __init__(self, states: list[dict]):
        super().__init__("stub", 0)
        self.states = list(states)

    def status(self, job_id: str) -> dict:
        return self.states.pop(0) if len(self.states) > 1 else self.states[0]


class TestWait:
    def test_wait_returns_terminal_record_by_default(self):
        client = WaitStub([{"id": "j", "state": "failed", "error": "x"}])
        assert client.wait("j", timeout=1.0)["state"] == "failed"

    def test_wait_treats_quarantined_as_terminal(self):
        client = WaitStub([
            {"id": "j", "state": "running"},
            {"id": "j", "state": "quarantined", "error": "poison"},
        ])
        record = client.wait("j", timeout=1.0, poll=0.0)
        assert record["state"] == "quarantined"

    def test_wait_raise_on_failure(self):
        client = WaitStub([{
            "id": "j", "state": "failed", "error": "boom",
            "error_detail": {"type": "ValueError", "attempts": 1,
                             "death_signals": []},
        }])
        with pytest.raises(JobFailedError, match="type=ValueError"):
            client.wait("j", timeout=1.0, raise_on_failure=True)

    def test_wait_raise_on_failure_returns_done(self):
        client = WaitStub([{"id": "j", "state": "done"}])
        assert client.wait("j", raise_on_failure=True)["state"] == "done"
