"""Worker pool: execution, warm state, death recovery, supervision.

These tests drive :class:`WorkerPool` directly (no HTTP) against tiny
synthetic datasets; the full service lifecycle lives in
``test_service_e2e.py``.
"""

from __future__ import annotations

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.observe import MetricsRegistry
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.pool import WorkerPool
from repro.service.queue import JobQueue
from repro.synth import make_synthetic_dataset


@pytest.fixture(scope="module")
def small_ds(tmp_path_factory):
    return make_synthetic_dataset(
        tmp_path_factory.mktemp("pool-ds"), rows=3, cols=3,
        tile_height=48, tile_width=48, overlap=0.25, seed=7,
    )


class PoolHarness:
    """A pool + queue + in-memory job table with a settle() helper."""

    def __init__(self, tmp_path, workers=1, **pool_kwargs):
        self.metrics = MetricsRegistry()
        self.queue = JobQueue(metrics=self.metrics, workers=workers)
        self.records: dict[str, JobRecord] = {}
        self.pool = WorkerPool(
            self.queue, tmp_path / "spool", workers=workers,
            metrics=self.metrics,
            resolve_positions=self._resolve,
            **pool_kwargs,
        )

    def _resolve(self, job_id):
        rec = self.records[job_id]
        if rec.state is not JobState.DONE:
            raise ValueError(f"source job {job_id} not done")
        return self.pool.positions_path(job_id), job_id

    def submit(self, **spec_kwargs) -> JobRecord:
        rec = JobRecord(spec=JobSpec(**spec_kwargs))
        self.records[rec.id] = rec
        self.queue.submit(rec)
        return rec

    def settle(self, rec: JobRecord, timeout=60.0) -> JobRecord:
        deadline = time.monotonic() + timeout
        while not rec.state.terminal:
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {rec.id} stuck in {rec.state}")
            time.sleep(0.02)
        return rec


@pytest.fixture()
def harness(tmp_path):
    h = PoolHarness(tmp_path)
    h.pool.start()
    yield h
    h.pool.stop()


class TestExecution:
    def test_full_job_produces_positions(self, harness, small_ds):
        rec = harness.submit(dataset=str(small_ds.directory))
        harness.settle(rec)
        assert rec.state is JobState.DONE
        assert rec.result["kind"] == "full"
        assert rec.result["pairs"] == 12  # 3x3 grid: 2*3 + 3*2
        payload = json.loads(harness.pool.positions_path(rec.id).read_text())
        assert np.asarray(payload["positions"]).shape == (3, 3, 2)

    def test_warm_worker_reuses_plans(self, harness, small_ds):
        first = harness.settle(harness.submit(dataset=str(small_ds.directory)))
        second = harness.settle(harness.submit(dataset=str(small_ds.directory)))
        assert first.result["plan_cache"]["misses"] > 0
        # Same worker, same tile geometry: every plan is already there.
        assert second.result["plan_cache"]["misses"] == 0
        assert second.result["plan_cache"]["hits"] > 0
        assert second.result["worker_jobs_served"] == 2
        assert second.result["worker_pid"] == first.result["worker_pid"]

    def test_coarse_job_matches_full_and_reuses_coarse_plans(
        self, harness, small_ds
    ):
        full = harness.settle(harness.submit(dataset=str(small_ds.directory)))
        first = harness.settle(harness.submit(
            dataset=str(small_ds.directory), options={"coarse": True},
        ))
        second = harness.settle(harness.submit(
            dataset=str(small_ds.directory), options={"coarse": True},
        ))
        assert first.state is JobState.DONE
        # Coarse provenance counters surface in the job summary ...
        assert first.result["coarse_hits"] + first.result["full_fallbacks"] == 12
        assert "coarse_hits" not in full.result
        # ... and positions match the single-pass job bit-for-bit.
        pos_full = json.loads(harness.pool.positions_path(full.id).read_text())
        pos_coarse = json.loads(
            harness.pool.positions_path(first.id).read_text()
        )
        assert pos_full["positions"] == pos_coarse["positions"]
        # The warm worker re-serves the coarse-shape plans across jobs:
        # the per-shape delta rows of the second coarse job show zero
        # misses on every shape the first coarse job planned.
        shapes1 = {
            (tuple(r["shape"]), r["kind"])
            for r in first.result["plan_cache"]["per_shape"]
        }
        for row in second.result["plan_cache"]["per_shape"]:
            key = (tuple(row["shape"]), row["kind"])
            if key in shapes1:
                assert row["misses"] == 0, f"{key} re-planned on warm worker"
        # Service-level counters aggregate the per-job numbers.
        snap = harness.metrics.snapshot()["counters"]
        assert snap.get("service.coarse_hits", 0) == (
            first.result["coarse_hits"] + second.result["coarse_hits"]
        )

    def test_coarse_options_validated(self):
        with pytest.raises(ValueError):
            JobSpec(dataset="x", options={"coarse_factor": 2})  # not allowed
        spec = JobSpec(dataset="x", options={
            "coarse": True, "coarse_scale": 0.5, "coarse_conf_thresh": 0.9,
        })
        assert spec.options["coarse_scale"] == 0.5

    def test_reuse_job_applies_source_positions(self, harness, small_ds):
        src = harness.settle(harness.submit(dataset=str(small_ds.directory)))
        reuse = harness.settle(harness.submit(
            dataset=str(small_ds.directory), reuse_positions_from=src.id,
        ))
        assert reuse.state is JobState.DONE
        assert reuse.result["kind"] == "reuse"
        assert reuse.result["pairs"] == 0
        src_pos = json.loads(harness.pool.positions_path(src.id).read_text())
        new_pos = json.loads(harness.pool.positions_path(reuse.id).read_text())
        assert new_pos["positions"] == src_pos["positions"]
        assert new_pos["method"] == "reused"

    def test_reuse_of_unfinished_source_fails_cleanly(self, harness, small_ds):
        ghost = JobRecord(spec=JobSpec(dataset="/nowhere"))
        harness.records[ghost.id] = ghost  # queued, never run
        rec = harness.settle(harness.submit(
            dataset=str(small_ds.directory), reuse_positions_from=ghost.id,
        ))
        assert rec.state is JobState.FAILED
        assert "not done" in rec.error

    def test_bad_dataset_fails_without_killing_worker(self, harness, small_ds):
        bad = harness.settle(harness.submit(dataset="/no/such/dir"))
        assert bad.state is JobState.FAILED
        assert bad.error
        # The worker survived the failure and still serves jobs warm.
        ok = harness.settle(harness.submit(dataset=str(small_ds.directory)))
        assert ok.state is JobState.DONE

    def test_compose_output_written(self, harness, small_ds, tmp_path):
        out = tmp_path / "mosaic.tif"
        rec = harness.settle(harness.submit(
            dataset=str(small_ds.directory), output=str(out), blend="maximum",
        ))
        assert rec.state is JobState.DONE
        assert out.exists()
        from repro.io.tiff import read_tiff

        assert read_tiff(out).max() > 0


class TestDeathRecovery:
    def test_sigkill_requeues_within_budget_and_resumes(
        self, tmp_path, small_ds
    ):
        h = PoolHarness(tmp_path)
        h.pool.start()
        try:
            rec = h.submit(
                dataset=str(small_ds.directory),
                inject_faults="3:slow=8,latency=0.08",
                retry_budget=1,
            )
            journal = h.pool.journal_path(rec.id)
            deadline = time.monotonic() + 30
            from repro.recovery.harness import count_journal_records

            # First journal record is the run fingerprint; wait for the
            # header plus at least two durable pair records.
            while count_journal_records(journal) < 3:
                assert time.monotonic() < deadline, "no journal progress"
                time.sleep(0.02)
            os.kill(h.pool.worker_pids()[0], signal.SIGKILL)
            h.settle(rec, timeout=90)
            assert rec.state is JobState.DONE
            assert rec.attempts == 2
            journal_stats = rec.result["journal"]
            assert journal_stats["resumed_pairs"] >= 2
            assert h.metrics.counter("service.worker_deaths").value == 1
        finally:
            h.pool.stop()

    def test_retry_budget_zero_fails_on_death(self, tmp_path, small_ds):
        h = PoolHarness(tmp_path)
        h.pool.start()
        try:
            rec = h.submit(
                dataset=str(small_ds.directory),
                inject_faults="3:slow=8,latency=0.1",
                retry_budget=0,
            )
            deadline = time.monotonic() + 30
            while rec.state is not JobState.RUNNING:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            time.sleep(0.1)  # let it get into phase 1
            os.kill(h.pool.worker_pids()[0], signal.SIGKILL)
            h.settle(rec, timeout=30)
            assert rec.state is JobState.FAILED
            assert "retry budget" in rec.error
        finally:
            h.pool.stop()

    def test_worker_respawned_after_death(self, tmp_path, small_ds):
        h = PoolHarness(tmp_path)
        h.pool.start()
        try:
            first = h.settle(h.submit(dataset=str(small_ds.directory)))
            pid = h.pool.worker_pids()[0]
            os.kill(pid, signal.SIGKILL)
            # Next job arrives at a freshly spawned worker (cold cache).
            again = h.settle(h.submit(dataset=str(small_ds.directory)))
            assert again.state is JobState.DONE
            assert again.result["worker_pid"] != first.result["worker_pid"]
            assert again.result["worker_jobs_served"] == 1
        finally:
            h.pool.stop()


class TestDeadline:
    def test_deadline_kill_then_fail_when_budget_spent(
        self, tmp_path, small_ds
    ):
        """A job past its watchdog deadline is killed; with no retry
        budget it fails with the budget message."""
        h = PoolHarness(tmp_path)
        h.pool.start()
        try:
            rec = h.submit(
                dataset=str(small_ds.directory),
                inject_faults="3:slow=8,latency=0.4",
                deadline_seconds=0.5,
                retry_budget=0,
            )
            h.settle(rec, timeout=60)
            assert rec.state is JobState.FAILED
            assert h.metrics.counter("service.jobs_deadline_killed").value >= 1
        finally:
            h.pool.stop()
