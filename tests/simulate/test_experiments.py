"""Paper-shape assertions at full scale: every table/figure's headline claim.

These run the actual paper-scale simulations (42x59 grid), so they are the
strongest statement the reproduction makes: the published orderings,
ratios, and crossovers all hold.
"""

import pytest

from repro.simulate.costmodel import LAPTOP, PAPER_MACHINE
from repro.simulate.experiments import (
    PAPER_TABLE2,
    fig5_vm_cliff,
    fig7_fig9_profiles,
    fig10_ccf_threads,
    fig11_cpu_scaling,
    table2_runtimes,
)
from repro.simulate.schedules import simulate_pipelined_cpu, simulate_pipelined_gpu


@pytest.fixture(scope="module")
def table2():
    return {row.implementation: row for row in table2_runtimes()}


class TestTable2:
    def test_all_rows_present(self, table2):
        assert set(table2) == set(PAPER_TABLE2)

    def test_ordering_matches_paper(self, table2):
        t = {k: v.seconds for k, v in table2.items()}
        assert (
            t["pipelined-gpu-2"] < t["pipelined-gpu-1"] < t["pipelined-cpu"]
            < t["mt-cpu"] < t["simple-gpu"] < t["simple-cpu"] < t["imagej-fiji"]
        )

    @pytest.mark.parametrize("name", list(PAPER_TABLE2))
    def test_within_35_percent_of_paper(self, table2, name):
        ratio = table2[name].seconds / PAPER_TABLE2[name]
        assert 0.65 < ratio < 1.35, f"{name}: {table2[name].seconds:.1f}s"

    def test_headline_speedups(self, table2):
        # Paper: Pipelined-GPU x1 is 12.8x over Simple-CPU, x2 is 23.9x.
        assert 10 < table2["pipelined-gpu-1"].speedup_vs_simple_cpu < 17
        assert 20 < table2["pipelined-gpu-2"].speedup_vs_simple_cpu < 30
        # Paper: 261x / 487x over ImageJ (two orders of magnitude).
        assert table2["pipelined-gpu-1"].speedup_vs_imagej > 150
        assert table2["pipelined-gpu-2"].speedup_vs_imagej > 300

    def test_two_gpu_scaling_factor(self, table2):
        # Paper: adding the second GPU improves run time by 1.87x.
        ratio = table2["pipelined-gpu-1"].seconds / table2["pipelined-gpu-2"].seconds
        assert 1.6 < ratio < 2.0

    def test_simple_gpu_barely_beats_simple_cpu(self, table2):
        # Paper: "a mere 1.14x speedup".
        ratio = table2["simple-cpu"].seconds / table2["simple-gpu"].seconds
        assert 1.0 < ratio < 1.6


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self):
        return fig5_vm_cliff()

    def test_cliff_between_832_and_864(self, fig5):
        assert fig5["cliff_at"] == 864

    def test_speedup_collapses_across_all_thread_counts(self, fig5):
        sp = fig5["speedup"]
        for t in (4, 8, 16):
            before = sp[(832, t)]
            after = sp[(960, t)]
            assert after < 0.7 * before, f"no cliff at T={t}"
        # Low thread counts drop too, just less steeply (their baseline
        # pays the same fault time).
        assert sp[(896, 2)] < sp[(832, 2)]

    def test_flat_before_cliff(self, fig5):
        sp = fig5["speedup"]
        assert sp[(512, 8)] == pytest.approx(sp[(832, 8)], rel=0.05)


class TestFig7Fig9:
    @pytest.fixture(scope="class")
    def profiles(self):
        return fig7_fig9_profiles()

    def test_simple_gpu_sparse_kernels(self, profiles):
        assert profiles["simple-gpu"]["kernel_density"] < 0.3

    def test_pipelined_gpu_dense_kernels(self, profiles):
        assert profiles["pipelined-gpu"]["kernel_density"] > 0.9

    def test_speedup_near_paper_11x(self, profiles):
        # Paper: "nearly 10x" / 11.2x improvement from pipelining.
        assert 8 < profiles["speedup"] < 15

    def test_same_kernel_count_both_architectures(self, profiles):
        assert (
            profiles["simple-gpu"]["kernel_count"]
            == profiles["pipelined-gpu"]["kernel_count"]
        )


class TestFig10:
    @pytest.fixture(scope="class")
    def series(self):
        return fig10_ccf_threads(ccf_threads=(1, 2, 3, 4, 8, 16))

    def test_one_thread_is_ccf_bound(self, series):
        times = dict(series)
        assert times[1] > 1.3 * times[2]

    def test_flat_beyond_two_threads(self, series):
        """Paper: "increasing the number of CCF threads beyond 2 has a
        minimal impact ... performance is limited by GPU computations"."""
        times = dict(series)
        assert times[2] / times[16] < 1.35

    def test_monotone_nonincreasing(self, series):
        times = [s for _, s in series]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))


class TestFig11:
    @pytest.fixture(scope="class")
    def scaling(self):
        return fig11_cpu_scaling()

    def test_near_linear_to_physical_cores(self, scaling):
        by_t = {t: sp for t, _, sp in scaling}
        assert by_t[8] > 6.5  # near-linear up to 8 physical cores

    def test_slope_changes_at_hyperthreads(self, scaling):
        by_t = {t: sp for t, _, sp in scaling}
        slope_lo = (by_t[8] - by_t[4]) / 4
        slope_hi = (by_t[16] - by_t[8]) / 8
        assert slope_hi < 0.3 * slope_lo

    def test_monotone_speedup(self, scaling):
        sps = [sp for _, _, sp in scaling]
        assert all(b >= a - 1e-9 for a, b in zip(sps, sps[1:]))

    def test_final_time_matches_table2(self, scaling):
        final = scaling[-1][1]
        assert final == pytest.approx(84, rel=0.15)


class TestLaptop:
    def test_laptop_validation_times(self):
        gpu = simulate_pipelined_gpu(LAPTOP, 42, 59, 1)
        cpu = simulate_pipelined_cpu(LAPTOP, 42, 59, 8)
        assert gpu.makespan_seconds == pytest.approx(130, rel=0.2)
        assert cpu.makespan_seconds == pytest.approx(146, rel=0.2)
        # Laptop ordering matches the paper: GPU still wins, but narrowly.
        assert gpu.makespan_seconds < cpu.makespan_seconds
