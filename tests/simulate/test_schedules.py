"""Schedule builders: structure and small-scale sanity."""

import pytest

from repro.simulate.costmodel import PAPER_MACHINE
from repro.simulate.schedules import (
    serial_program,
    simulate_fiji,
    simulate_mt_cpu,
    simulate_pipelined_cpu,
    simulate_pipelined_gpu,
    simulate_simple_cpu,
    simulate_simple_gpu,
)

SMALL = dict(rows=4, cols=5)
TILE = (64, 64)


class TestSerialProgram:
    def test_covers_every_tile_and_pair(self):
        events = list(serial_program(4, 5))
        tiles = [e for k, e in events if k == "tile"]
        pairs = [e for k, e in events if k == "pair"]
        assert len(tiles) == 20 and len(set(tiles)) == 20
        assert len(pairs) == 2 * 20 - 4 - 5 and len(set(pairs)) == len(pairs)

    def test_pairs_emitted_after_both_tiles(self):
        seen = set()
        for kind, item in serial_program(3, 3):
            if kind == "tile":
                seen.add(item)
            else:
                assert item.first in seen and item.second in seen


class TestScheduleStructure:
    def test_simple_cpu_is_serial_sum(self):
        res = simulate_simple_cpu(PAPER_MACHINE, tile=TILE, **SMALL)
        total = sum(o.duration for o in res.sim.ops)
        assert res.makespan_seconds == pytest.approx(total)

    def test_simple_gpu_is_serial_sum(self):
        res = simulate_simple_gpu(PAPER_MACHINE, tile=TILE, **SMALL)
        total = sum(o.duration for o in res.sim.ops)
        assert res.makespan_seconds == pytest.approx(total)

    def test_pipelined_cpu_scales_with_threads(self):
        t1 = simulate_pipelined_cpu(PAPER_MACHINE, threads=1, tile=TILE, **SMALL)
        t4 = simulate_pipelined_cpu(PAPER_MACHINE, threads=4, tile=TILE, **SMALL)
        assert t4.makespan_seconds < t1.makespan_seconds
        speedup = t1.makespan_seconds / t4.makespan_seconds
        assert 2.0 < speedup <= 4.0

    def test_mt_cpu_has_boundary_redundancy(self):
        r1 = simulate_mt_cpu(PAPER_MACHINE, threads=1, tile=TILE, **SMALL)
        r4 = simulate_mt_cpu(PAPER_MACHINE, threads=4, tile=TILE, **SMALL)
        w1 = sum(o.duration for o in r1.sim.ops)
        w4 = sum(o.duration for o in r4.sim.ops)
        assert w4 > w1  # duplicated boundary rows add work

    def test_pipelined_beats_simple_gpu(self):
        simple = simulate_simple_gpu(PAPER_MACHINE, tile=TILE, **SMALL)
        piped = simulate_pipelined_gpu(PAPER_MACHINE, n_gpus=1, tile=TILE, **SMALL)
        assert piped.makespan_seconds < simple.makespan_seconds / 3

    def test_two_gpus_faster_than_one(self):
        one = simulate_pipelined_gpu(PAPER_MACHINE, n_gpus=1, tile=TILE, rows=8, cols=8)
        two = simulate_pipelined_gpu(PAPER_MACHINE, n_gpus=2, tile=TILE, rows=8, cols=8)
        assert 1.4 < one.makespan_seconds / two.makespan_seconds <= 2.05

    def test_pipelined_gpu_covers_all_pairs(self):
        for n_gpus in (1, 2, 3):
            res = simulate_pipelined_gpu(PAPER_MACHINE, n_gpus=n_gpus, tile=TILE, **SMALL)
            ccfs = [o for o in res.sim.ops if o.name == "ccf"]
            assert len(ccfs) == 2 * 20 - 4 - 5

    def test_fiji_slowest_of_all(self):
        fiji = simulate_fiji(PAPER_MACHINE, tile=TILE, **SMALL)
        simple = simulate_simple_cpu(PAPER_MACHINE, tile=TILE, **SMALL)
        assert fiji.makespan_seconds > simple.makespan_seconds


class TestFutureWorkVariants:
    def test_p2p_covers_all_pairs(self):
        for g in (2, 3):
            res = simulate_pipelined_gpu(
                PAPER_MACHINE, 6, 9, n_gpus=g, tile=TILE, p2p=True
            )
            ccfs = [o for o in res.sim.ops if o.name == "ccf"]
            assert len(ccfs) == 2 * 54 - 6 - 9

    def test_p2p_removes_ghost_reads(self):
        ghost = simulate_pipelined_gpu(PAPER_MACHINE, 6, 9, 3, tile=TILE)
        p2p = simulate_pipelined_gpu(PAPER_MACHINE, 6, 9, 3, tile=TILE, p2p=True)
        reads_ghost = sum(1 for o in ghost.sim.ops if o.name == "read")
        reads_p2p = sum(1 for o in p2p.sim.ops if o.name == "read")
        assert reads_p2p == 54           # exactly one read per tile
        assert reads_ghost == 54 + 2 * 6  # two duplicated ghost columns
        copies = sum(1 for o in p2p.sim.ops if o.name == "p2p-copy")
        assert copies == 2 * 6

    def test_p2p_single_gpu_noop(self):
        a = simulate_pipelined_gpu(PAPER_MACHINE, 4, 4, 1, tile=TILE)
        b = simulate_pipelined_gpu(PAPER_MACHINE, 4, 4, 1, tile=TILE, p2p=True)
        assert a.makespan_seconds == b.makespan_seconds

    def test_hyper_q_faster_never_changes_coverage(self):
        base = simulate_pipelined_gpu(PAPER_MACHINE, 6, 6, 1, tile=TILE)
        hq = simulate_pipelined_gpu(PAPER_MACHINE, 6, 6, 1, tile=TILE, hyper_q=True)
        assert hq.makespan_seconds <= base.makespan_seconds
        n_base = sum(1 for o in base.sim.ops if o.name == "ccf")
        n_hq = sum(1 for o in hq.sim.ops if o.name == "ccf")
        assert n_base == n_hq
