"""Task-graph scheduler: correctness and invariants (property-based)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulate.des import TaskGraphSimulator


class TestBasics:
    def test_single_op(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        sim.op("a", r, 2.5)
        assert sim.run() == 2.5

    def test_chain_sums(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 4)
        prev = None
        for i in range(5):
            prev = sim.op(f"op{i}", r, 1.0, deps=[prev] if prev else [])
        assert sim.run() == pytest.approx(5.0)

    def test_parallel_ops_share_capacity(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 2)
        for i in range(4):
            sim.op(f"op{i}", r, 1.0)
        assert sim.run() == pytest.approx(2.0)  # 4 ops / 2 slots

    def test_capacity_one_serializes(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        for i in range(3):
            sim.op(f"op{i}", r, 1.0)
        assert sim.run() == pytest.approx(3.0)

    def test_pipeline_overlap(self):
        """Two resources, chained per item: classic pipelining halves time."""
        sim = TaskGraphSimulator()
        a = sim.resource("a", 1)
        b = sim.resource("b", 1)
        for i in range(10):
            x = sim.op(f"a{i}", a, 1.0)
            sim.op(f"b{i}", b, 1.0, deps=[x])
        # fill (1) + 10 on the bottleneck = 11, not 20.
        assert sim.run() == pytest.approx(11.0)

    def test_fifo_dispatch_by_ready_time(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        a = sim.op("a", r, 1.0)
        b = sim.op("b", r, 1.0)
        sim.run()
        assert a.start < b.start  # submission order breaks the tie

    def test_empty_graph(self):
        sim = TaskGraphSimulator()
        sim.resource("cpu", 1)
        assert sim.run() == 0.0

    def test_zero_duration_ops(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        a = sim.op("a", r, 0.0)
        b = sim.op("b", r, 1.0, deps=[a])
        assert sim.run() == pytest.approx(1.0)


class TestValidation:
    def test_unknown_resource(self):
        sim = TaskGraphSimulator()
        with pytest.raises(ValueError):
            sim.op("a", "nope", 1.0)

    def test_negative_duration(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        with pytest.raises(ValueError):
            sim.op("a", r, -1.0)

    def test_resource_redeclaration_conflict(self):
        sim = TaskGraphSimulator()
        sim.resource("cpu", 2)
        sim.resource("cpu", 2)  # idempotent ok
        with pytest.raises(ValueError):
            sim.resource("cpu", 3)

    def test_forward_dependency_rejected(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        a = sim.op("a", r, 1.0)
        b = sim.op("b", r, 1.0)
        # Manually wire an illegal forward dep.
        a.deps = (b,)
        with pytest.raises(ValueError):
            sim.run()

    def test_double_run_rejected(self):
        sim = TaskGraphSimulator()
        sim.resource("cpu", 1)
        sim.run()
        with pytest.raises(RuntimeError):
            sim.run()


@st.composite
def random_graph(draw):
    n_res = draw(st.integers(1, 3))
    caps = [draw(st.integers(1, 3)) for _ in range(n_res)]
    n_ops = draw(st.integers(1, 30))
    specs = []
    for i in range(n_ops):
        res = draw(st.integers(0, n_res - 1))
        dur = draw(st.floats(0.0, 5.0, allow_nan=False))
        n_deps = draw(st.integers(0, min(3, i)))
        deps = draw(
            st.lists(st.integers(0, i - 1), min_size=n_deps, max_size=n_deps,
                     unique=True)
        ) if i else []
        specs.append((res, dur, deps))
    return caps, specs


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_graph())
    def test_schedule_invariants(self, graph):
        caps, specs = graph
        sim = TaskGraphSimulator()
        rs = [sim.resource(f"r{i}", c) for i, c in enumerate(caps)]
        ops = []
        for res, dur, deps in specs:
            ops.append(sim.op("op", rs[res], dur, deps=[ops[d] for d in deps]))
        makespan = sim.run()

        # 1. Every op scheduled; deps respected.
        for o in ops:
            assert o.scheduled
            for d in o.deps:
                assert o.start >= d.end - 1e-9
        # 2. Capacity never exceeded.
        for rname, cap in zip([f"r{i}" for i in range(len(caps))], caps):
            events = []
            for o in ops:
                if o.resource == rname and o.duration > 0:
                    events.append((o.start, 1))
                    events.append((o.end, -1))
            events.sort(key=lambda e: (e[0], e[1]))
            cur = 0
            for _, delta in events:
                cur += delta
                assert cur <= cap
        # 3. Makespan lower bounds: critical path and per-resource work.
        assert makespan >= sim.critical_path() - 1e-9
        for rname, cap in zip([f"r{i}" for i in range(len(caps))], caps):
            assert makespan >= sim.busy_time(rname) / cap - 1e-9


class TestMetrics:
    def test_utilization_and_density(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        sim.op("a", r, 1.0)
        b = sim.op("b", r, 1.0)
        c = sim.op("gap", r, 0.0, deps=[b])
        makespan = sim.run()
        assert sim.utilization("cpu", makespan) == pytest.approx(1.0)
        assert sim.density("cpu") == pytest.approx(1.0)

    def test_density_window(self):
        sim = TaskGraphSimulator()
        r = sim.resource("cpu", 1)
        sim.op("a", r, 1.0)
        sim.run()
        assert sim.density("cpu", 0.0, 4.0) == pytest.approx(0.25)
