"""CLI: synth / stitch / info / simulate subcommands."""

import json

import numpy as np
import pytest

from repro.cli import main


class TestSynth:
    def test_creates_dataset(self, tmp_path, capsys):
        rc = main(["synth", str(tmp_path / "ds"), "--rows", "3", "--cols", "2",
                   "--tile-size", "48", "--overlap", "0.2", "--seed", "1"])
        assert rc == 0
        assert (tmp_path / "ds" / "dataset.json").exists()
        assert "wrote 6 tiles" in capsys.readouterr().out


class TestStitch:
    @pytest.fixture
    def dataset_dir(self, tmp_path):
        main(["synth", str(tmp_path / "ds"), "--rows", "3", "--cols", "3",
              "--tile-size", "64", "--overlap", "0.25", "--seed", "2"])
        return tmp_path / "ds"

    def test_stitch_to_mosaic(self, dataset_dir, tmp_path, capsys):
        out = tmp_path / "mosaic.tif"
        rc = main(["stitch", str(dataset_dir), "-o", str(out)])
        assert rc == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "max 0.0 px" in text

    def test_positions_json(self, dataset_dir, tmp_path):
        pj = tmp_path / "pos.json"
        main(["stitch", str(dataset_dir), "--positions-json", str(pj)])
        pos = np.asarray(json.loads(pj.read_text()))
        assert pos.shape == (3, 3, 2)

    def test_flags(self, dataset_dir, tmp_path):
        rc = main(["stitch", str(dataset_dir),
                   "--pad", "--refine",
                   "--positions", "least_squares",
                   "--blend", "linear",
                   "-o", str(tmp_path / "m.tif")])
        assert rc == 0

    def test_paper_faithful_mode(self, dataset_dir):
        assert main(["stitch", str(dataset_dir), "--paper-faithful"]) == 0

    def test_coarse_registration_matches_full(self, dataset_dir, tmp_path,
                                              capsys):
        full = tmp_path / "full.json"
        coarse = tmp_path / "coarse.json"
        assert main(["stitch", str(dataset_dir),
                     "--positions-json", str(full)]) == 0
        capsys.readouterr()
        assert main(["stitch", str(dataset_dir), "--coarse-registration",
                     "--positions-json", str(coarse)]) == 0
        text = capsys.readouterr().out
        # The CI-greppable summary line: hits + fallbacks with the knobs.
        assert "coarse:" in text and "hits" in text and "fallbacks" in text
        assert json.loads(full.read_text()) == json.loads(coarse.read_text())

    def test_coarse_scale_and_thresh_imply_coarse(self, dataset_dir, capsys):
        assert main(["stitch", str(dataset_dir),
                     "--coarse-scale", "0.5",
                     "--coarse-conf-thresh", "0.9"]) == 0
        assert "conf >= 0.9" in capsys.readouterr().out

    def test_coarse_on_impl_path(self, dataset_dir, capsys):
        assert main(["stitch", str(dataset_dir), "--impl", "mt-cpu",
                     "--coarse-registration"]) == 0
        assert "coarse:" in capsys.readouterr().out

    def test_bad_coarse_scale_errors(self, dataset_dir):
        with pytest.raises(ValueError):
            main(["stitch", str(dataset_dir), "--coarse-scale", "0.7"])

    def test_outline(self, dataset_dir, tmp_path):
        out = tmp_path / "o.tif"
        assert main(["stitch", str(dataset_dir), "-o", str(out), "--outline"]) == 0


class TestInfo:
    def test_dataset_info(self, tmp_path, capsys):
        main(["synth", str(tmp_path / "ds"), "--rows", "2", "--cols", "2",
              "--tile-size", "32"])
        capsys.readouterr()
        main(["info", str(tmp_path / "ds")])
        out = capsys.readouterr().out
        assert "grid: 2 x 2" in out
        assert "ground truth: yes" in out

    def test_tiff_info(self, tmp_path, capsys):
        from repro.io.tiff import write_tiff

        p = tmp_path / "t.tif"
        write_tiff(p, np.zeros((10, 12), dtype=np.uint16), description="hi")
        main(["info", str(p)])
        out = capsys.readouterr().out
        assert "10 x 12" in out and "hi" in out


class TestSimulate:
    def test_small_projection(self, capsys):
        rc = main(["simulate", "--rows", "6", "--cols", "6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pipelined-gpu" in out and "simple-cpu" in out

    def test_laptop_machine(self, capsys):
        assert main(["simulate", "--machine", "laptop",
                     "--rows", "4", "--cols", "4"]) == 0


def test_no_command_errors():
    with pytest.raises(SystemExit):
        main([])


class TestWisdom:
    def test_wisdom_saved_and_reused(self, tmp_path, capsys):
        main(["synth", str(tmp_path / "ds"), "--rows", "2", "--cols", "2",
              "--tile-size", "48"])
        wisdom = tmp_path / "wisdom.json"
        main(["stitch", str(tmp_path / "ds"), "--planning", "measure",
              "--wisdom", str(wisdom)])
        assert wisdom.exists()
        capsys.readouterr()
        main(["stitch", str(tmp_path / "ds"), "--planning", "measure",
              "--wisdom", str(wisdom)])
        out = capsys.readouterr().out
        assert "imported" in out


class TestImplSelection:
    @pytest.fixture
    def ds_dir(self, tmp_path):
        main(["synth", str(tmp_path / "ds"), "--rows", "3", "--cols", "3",
              "--tile-size", "64", "--overlap", "0.25", "--seed", "9"])
        return tmp_path / "ds"

    @pytest.mark.parametrize("impl", ["simple-cpu", "pipelined-cpu", "pipelined-gpu"])
    def test_impl_choices(self, ds_dir, impl, capsys):
        rc = main(["stitch", str(ds_dir), "--impl", impl])
        assert rc == 0
        assert "max 0.0 px" in capsys.readouterr().out

    def test_pattern_discovery(self, ds_dir, capsys):
        (ds_dir / "dataset.json").unlink()
        rc = main(["stitch", str(ds_dir), "--pattern",
                   "img_r{row:03d}_c{col:03d}.tif", "--overlap", "0.25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "discovered 3x3 grid" in out


class TestMoreImplFlags:
    def test_numa_and_multi_gpu(self, tmp_path, capsys):
        main(["synth", str(tmp_path / "ds"), "--rows", "3", "--cols", "4",
              "--tile-size", "64", "--overlap", "0.25", "--seed", "3"])
        capsys.readouterr()
        rc = main(["stitch", str(tmp_path / "ds"),
                   "--impl", "pipelined-cpu-numa", "--workers", "2"])
        assert rc == 0
        rc = main(["stitch", str(tmp_path / "ds"),
                   "--impl", "pipelined-gpu", "--gpus", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("max 0.0 px") == 2


class TestRobustnessFlags:
    @pytest.fixture
    def ds_dir(self, tmp_path):
        main(["synth", str(tmp_path / "ds"), "--rows", "3", "--cols", "3",
              "--tile-size", "64", "--overlap", "0.25", "--seed", "5"])
        return tmp_path / "ds"

    def test_real_transforms_flag_removed(self, ds_dir, capsys):
        with pytest.raises(SystemExit):
            main(["stitch", str(ds_dir), "--real-transforms"])
        assert "--real-transforms" in capsys.readouterr().err

    def test_quality_gate_flag(self, ds_dir, capsys):
        assert main(["stitch", str(ds_dir), "--quality-gate"]) == 0
        assert "quality gate:" in capsys.readouterr().out

    def test_quality_knobs_imply_gate(self, ds_dir, capsys):
        assert main(["stitch", str(ds_dir),
                     "--positions", "least_squares",
                     "--conf-thresh", "0.2",
                     "--residue-mode", "huber",
                     "--min-peak-ratio", "1.0"]) == 0
        assert "quality gate:" in capsys.readouterr().out

    def test_quality_gate_on_impl_path(self, ds_dir, capsys):
        assert main(["stitch", str(ds_dir), "--impl", "mt-cpu",
                     "--quality-gate"]) == 0
        assert "quality gate:" in capsys.readouterr().out

    def test_checkpoint_then_resume(self, ds_dir, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["stitch", str(ds_dir), "--checkpoint", str(ckpt),
                     "--positions-json", str(pa)]) == 0
        assert (ckpt / "journal.jsonl").exists()
        capsys.readouterr()
        assert main(["stitch", str(ds_dir), "--checkpoint", str(ckpt),
                     "--resume", "--positions-json", str(pb)]) == 0
        assert "(0 pairs)" in capsys.readouterr().out  # nothing recomputed
        assert json.loads(pa.read_text()) == json.loads(pb.read_text())

    def test_resume_requires_checkpoint(self, ds_dir, capsys):
        assert main(["stitch", str(ds_dir), "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_resume_without_journal_fails(self, ds_dir, tmp_path):
        from repro.recovery.journal import JournalError

        with pytest.raises(JournalError):
            main(["stitch", str(ds_dir), "--checkpoint",
                  str(tmp_path / "empty"), "--resume"])

    def test_mismatched_options_refuse_resume(self, ds_dir, tmp_path):
        from repro.recovery.journal import JournalMismatch

        ckpt = tmp_path / "ckpt"
        assert main(["stitch", str(ds_dir), "--checkpoint", str(ckpt)]) == 0
        with pytest.raises(JournalMismatch):
            main(["stitch", str(ds_dir), "--checkpoint", str(ckpt),
                  "--peaks", "5"])

    def test_checkpointed_impl_resume(self, ds_dir, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["stitch", str(ds_dir), "--impl", "mt-cpu",
                     "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["stitch", str(ds_dir), "--impl", "pipelined-cpu",
                     "--checkpoint", str(ckpt), "--resume"]) == 0
        assert "(0 pairs)" in capsys.readouterr().out

    def test_fault_report_json(self, ds_dir, tmp_path):
        out = tmp_path / "report.json"
        rc = main(["stitch", str(ds_dir), "--inject-faults", "11:missing=1",
                   "--max-retries", "0", "--on-tile-error", "skip",
                   "--fault-report", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["injected"] == {"missing": 1}
        assert payload["triggered"]["missing"] >= 1
        assert len(payload["fault_report"]["skipped_tiles"]) == 1

    def test_inject_faults_bare_seed_compat(self, ds_dir, capsys):
        rc = main(["stitch", str(ds_dir), "--inject-faults", "42",
                   "--max-retries", "1", "--on-tile-error", "skip"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "injecting faults (seed 42)" in out

    def test_inject_faults_bad_spec_errors(self, ds_dir):
        with pytest.raises(ValueError, match="fault spec"):
            main(["stitch", str(ds_dir), "--inject-faults", "nope"])

    def test_watchdog_cancels_injected_hang(self, ds_dir, tmp_path, capsys):
        rc = main(["stitch", str(ds_dir),
                   "--impl", "pipelined-cpu",
                   "--watchdog", "0.3", "--stall-timeout", "10",
                   "--inject-faults", "7:hang=1,latency=0",
                   "--on-tile-error", "skip",
                   "--fault-report", str(tmp_path / "fr.json")])
        assert rc == 0  # completed (degraded), did not deadlock
        payload = json.loads((tmp_path / "fr.json").read_text())
        errs = payload["fault_report"]["skipped_tile_errors"]
        assert any("watchdog" in v for v in errs.values())
