"""Phase 2: MST selection and least-squares adjustment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.displacement import DisplacementResult, Translation
from repro.core.global_opt import _build_graph, resolve_absolute_positions
from repro.core.quality_gate import QualityConfig


def exact_displacements(positions: np.ndarray, corr: float = 1.0) -> DisplacementResult:
    """Build a consistent DisplacementResult from known absolute positions."""
    rows, cols = positions.shape[:2]
    d = DisplacementResult.empty(rows, cols)
    for r in range(rows):
        for c in range(cols):
            if c > 0:
                dy, dx = positions[r, c] - positions[r, c - 1]
                d.west[r][c] = Translation(corr, int(dx), int(dy))
            if r > 0:
                dy, dx = positions[r, c] - positions[r - 1, c]
                d.north[r][c] = Translation(corr, int(dx), int(dy))
    return d


def random_positions(rows, cols, seed, step=50, jitter=4):
    rng = np.random.default_rng(seed)
    pos = np.zeros((rows, cols, 2), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            pos[r, c] = (
                r * step + rng.integers(-jitter, jitter + 1),
                c * step + rng.integers(-jitter, jitter + 1),
            )
    return pos


class TestBothMethods:
    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_recovers_consistent_system_exactly(self, method):
        pos = random_positions(4, 5, seed=0)
        gp = resolve_absolute_positions(exact_displacements(pos), method)
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        assert np.array_equal(gp.positions, expected)

    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_normalized_to_origin(self, method):
        pos = random_positions(3, 3, seed=1)
        gp = resolve_absolute_positions(exact_displacements(pos), method)
        assert gp.positions.reshape(-1, 2).min(axis=0).tolist() == [0, 0]

    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.integers(1, 5), cols=st.integers(1, 5),
        seed=st.integers(0, 2**31 - 1),
        method=st.sampled_from(["mst", "least_squares"]),
    )
    def test_path_invariance_property(self, rows, cols, seed, method):
        """For any consistent system, recovered positions re-derive every
        pairwise displacement (path invariance, the phase-2 contract)."""
        pos = random_positions(rows, cols, seed)
        disp = exact_displacements(pos)
        gp = resolve_absolute_positions(disp, method)
        for r in range(rows):
            for c in range(cols):
                if c > 0:
                    d = gp.positions[r, c] - gp.positions[r, c - 1]
                    t = disp.west[r][c]
                    assert (d[0], d[1]) == (t.ty, t.tx)
                if r > 0:
                    d = gp.positions[r, c] - gp.positions[r - 1, c]
                    t = disp.north[r][c]
                    assert (d[0], d[1]) == (t.ty, t.tx)


class TestMstSelection:
    def test_bad_edge_avoided_when_alternative_exists(self):
        """A low-correlation (wrong) edge must be bypassed by the MST."""
        pos = random_positions(2, 2, seed=2)
        disp = exact_displacements(pos)
        # Corrupt one edge badly but mark it low-confidence.
        disp.west[1][1] = Translation(-0.5, 999, 999)
        gp = resolve_absolute_positions(disp, "mst")
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        assert np.array_equal(gp.positions, expected)

    def test_tree_correlation_reported(self):
        pos = random_positions(3, 3, seed=3)
        gp = resolve_absolute_positions(exact_displacements(pos, corr=0.8), "mst")
        assert gp.spanning_tree_correlation == pytest.approx(0.8 * 8)


class TestLeastSquares:
    def test_averages_inconsistent_measurements(self):
        """LS splits the disagreement of a noisy cycle instead of ignoring it."""
        pos = random_positions(2, 2, seed=4)
        disp = exact_displacements(pos)
        t = disp.west[1][1]
        disp.west[1][1] = Translation(t.correlation, t.tx + 2, t.ty)  # +2 px error
        gp = resolve_absolute_positions(disp, "least_squares")
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        err = np.abs(gp.positions - expected).max()
        assert err <= 2  # bounded by the injected inconsistency

    def test_downweights_low_confidence_edges(self):
        pos = random_positions(2, 2, seed=5)
        disp = exact_displacements(pos)
        t = disp.west[1][1]
        disp.west[1][1] = Translation(-0.99, t.tx + 40, t.ty + 40)  # garbage, low corr
        gp = resolve_absolute_positions(disp, "least_squares")
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        assert np.abs(gp.positions - expected).max() <= 2


class TestInterface:
    def test_unknown_method(self):
        with pytest.raises(ValueError):
            resolve_absolute_positions(
                exact_displacements(random_positions(2, 2, 0)), "magic"
            )

    def test_mosaic_shape(self):
        pos = random_positions(2, 3, seed=6, step=40, jitter=0)
        gp = resolve_absolute_positions(exact_displacements(pos), "mst")
        h, w = gp.mosaic_shape((48, 48))
        assert h == 40 + 48
        assert w == 80 + 48

    def test_disconnected_graph_rejected(self):
        d = DisplacementResult.empty(2, 2)  # no edges at all
        with pytest.raises(ValueError):
            resolve_absolute_positions(d, "mst")


class TestNonFiniteCorrelations:
    """Regression: NaN correlations used to poison the solvers.

    ``_build_graph`` computed ``1.0 - nan`` as an MST edge weight
    (corrupting spanning-tree selection), and the least-squares weight
    ``max(min_weight, (nan + 1) / 2)`` survived only by ``max()``'s
    argument-order behaviour with NaN.  Both now clamp to a finite floor
    first.
    """

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_mst_weight_is_finite(self, bad):
        pos = random_positions(2, 2, seed=7)
        disp = exact_displacements(pos)
        t = disp.west[1][1]
        disp.west[1][1] = Translation(bad, t.tx, t.ty)
        g = _build_graph(disp)
        assert all(
            np.isfinite(data["weight"]) for _, _, data in g.edges(data=True)
        )

    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_nan_edge_avoided_like_worst_correlation(self, method):
        # The NaN pair is garbage; clamping it to the floor means both
        # solvers treat it exactly like a correlation of -1 and the
        # redundant cycle recovers the truth.
        pos = random_positions(2, 2, seed=8)
        disp = exact_displacements(pos)
        disp.west[1][1] = Translation(float("nan"), 999, 999)
        gp = resolve_absolute_positions(disp, method)
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        assert np.abs(gp.positions - expected).max() <= 2

    def test_all_finite_positions_out(self):
        pos = random_positions(3, 3, seed=9)
        disp = exact_displacements(pos)
        disp.north[1][1] = Translation(float("nan"), 0, 50)
        for method in ("mst", "least_squares"):
            gp = resolve_absolute_positions(disp, method)
            assert np.isfinite(gp.positions).all()


def corrupted_system(seed=10, rows=4, cols=4):
    """A consistent grid with one confidently-wrong and one garbage pair."""
    pos = random_positions(rows, cols, seed)
    disp = exact_displacements(pos, corr=0.9)
    disp.west[1][1] = Translation(0.95, 999, 40)   # confident, wrong offset
    disp.north[2][2] = Translation(0.01, -30, 700)  # garbage, low confidence
    expected = pos - pos.reshape(-1, 2).min(axis=0)
    return disp, expected


class TestQualityGatedSolve:
    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_clean_data_bit_identical_with_default_gate(self, method):
        """With defaults and nothing to gate, the gated solve must build
        the identical system: positions are bit-for-bit the ungated ones."""
        pos = random_positions(4, 5, seed=11)
        disp = exact_displacements(pos, corr=0.9)
        ungated = resolve_absolute_positions(disp, method)
        gated = resolve_absolute_positions(disp, method, quality=QualityConfig())
        assert np.array_equal(ungated.positions, gated.positions)
        assert gated.quality_report["gated_pairs"] == 0

    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_demotes_corrupted_pairs(self, method):
        disp, expected = corrupted_system()
        gp = resolve_absolute_positions(disp, method, quality=QualityConfig())
        assert gp.quality_report["gated_pairs"] == 2
        reasons = gp.quality_report["gate_reasons"]
        assert reasons.get("stage_outlier", 0) >= 1
        assert reasons.get("low_correlation", 0) >= 1
        assert np.abs(gp.positions - expected).max() <= 2

    def test_gated_solve_beats_ungated(self):
        disp, expected = corrupted_system()
        ungated = resolve_absolute_positions(disp, "least_squares")
        gated = resolve_absolute_positions(
            disp, "least_squares", quality=QualityConfig(residue_mode="huber")
        )
        err_ungated = np.abs(ungated.positions - expected).max()
        err_gated = np.abs(gated.positions - expected).max()
        assert err_gated <= 2
        assert err_ungated > err_gated

    def test_huber_irls_damps_surviving_outlier(self):
        # An outlier small enough to pass the gates but large enough to
        # trip the residue damping: IRLS must iterate and improve on the
        # single-solve result.
        pos = random_positions(3, 3, seed=12, jitter=0)
        disp = exact_displacements(pos, corr=0.9)
        t = disp.west[1][1]
        disp.west[1][1] = Translation(0.9, t.tx + 6, t.ty)
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        plain = resolve_absolute_positions(
            disp, "least_squares", quality=QualityConfig(stage_radius=100.0)
        )
        huber = resolve_absolute_positions(
            disp, "least_squares",
            quality=QualityConfig(stage_radius=100.0, residue_mode="huber"),
        )
        assert huber.quality_report["irls_iterations"] >= 1
        assert huber.quality_report["residue_damped_edges"] >= 1
        err_plain = np.abs(plain.positions - expected).sum()
        err_huber = np.abs(huber.positions - expected).sum()
        assert err_huber <= err_plain

    def test_threshold_mode_hard_rejects(self):
        pos = random_positions(3, 3, seed=13, jitter=0)
        disp = exact_displacements(pos, corr=0.9)
        t = disp.west[1][1]
        disp.west[1][1] = Translation(0.9, t.tx + 6, t.ty)
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        gp = resolve_absolute_positions(
            disp, "least_squares",
            quality=QualityConfig(stage_radius=100.0, residue_mode="threshold"),
        )
        assert gp.quality_report["residue_damped_edges"] >= 1
        assert np.abs(gp.positions - expected).max() <= 1

    def test_residue_mode_none_never_iterates(self):
        disp, _ = corrupted_system()
        gp = resolve_absolute_positions(
            disp, "least_squares", quality=QualityConfig()
        )
        assert gp.quality_report["irls_iterations"] == 0
        assert gp.quality_report["residue_damped_edges"] == 0

    def test_mst_reports_gated_edges_in_tree(self):
        # Only a gated edge can reach tile (1,1): the tree is forced
        # through a demoted (nominal) edge and must say so.
        pos = random_positions(3, 3, seed=14, jitter=0)
        disp = exact_displacements(pos, corr=0.9)
        disp.west[1][1] = Translation(0.95, 999, 40)  # confident, wrong
        disp.west[1][2] = None
        disp.north[1][1] = None
        disp.north[2][1] = None
        gp = resolve_absolute_positions(disp, "mst", quality=QualityConfig())
        assert gp.quality_report["gated_edges_in_tree"] == 1
        # The demoted edge places the tile on the stage model's step, not
        # at the garbage measurement.
        assert np.abs(gp.positions).max() < 200
