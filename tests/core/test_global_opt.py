"""Phase 2: MST selection and least-squares adjustment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.displacement import DisplacementResult, Translation
from repro.core.global_opt import resolve_absolute_positions


def exact_displacements(positions: np.ndarray, corr: float = 1.0) -> DisplacementResult:
    """Build a consistent DisplacementResult from known absolute positions."""
    rows, cols = positions.shape[:2]
    d = DisplacementResult.empty(rows, cols)
    for r in range(rows):
        for c in range(cols):
            if c > 0:
                dy, dx = positions[r, c] - positions[r, c - 1]
                d.west[r][c] = Translation(corr, int(dx), int(dy))
            if r > 0:
                dy, dx = positions[r, c] - positions[r - 1, c]
                d.north[r][c] = Translation(corr, int(dx), int(dy))
    return d


def random_positions(rows, cols, seed, step=50, jitter=4):
    rng = np.random.default_rng(seed)
    pos = np.zeros((rows, cols, 2), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            pos[r, c] = (
                r * step + rng.integers(-jitter, jitter + 1),
                c * step + rng.integers(-jitter, jitter + 1),
            )
    return pos


class TestBothMethods:
    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_recovers_consistent_system_exactly(self, method):
        pos = random_positions(4, 5, seed=0)
        gp = resolve_absolute_positions(exact_displacements(pos), method)
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        assert np.array_equal(gp.positions, expected)

    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_normalized_to_origin(self, method):
        pos = random_positions(3, 3, seed=1)
        gp = resolve_absolute_positions(exact_displacements(pos), method)
        assert gp.positions.reshape(-1, 2).min(axis=0).tolist() == [0, 0]

    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.integers(1, 5), cols=st.integers(1, 5),
        seed=st.integers(0, 2**31 - 1),
        method=st.sampled_from(["mst", "least_squares"]),
    )
    def test_path_invariance_property(self, rows, cols, seed, method):
        """For any consistent system, recovered positions re-derive every
        pairwise displacement (path invariance, the phase-2 contract)."""
        pos = random_positions(rows, cols, seed)
        disp = exact_displacements(pos)
        gp = resolve_absolute_positions(disp, method)
        for r in range(rows):
            for c in range(cols):
                if c > 0:
                    d = gp.positions[r, c] - gp.positions[r, c - 1]
                    t = disp.west[r][c]
                    assert (d[0], d[1]) == (t.ty, t.tx)
                if r > 0:
                    d = gp.positions[r, c] - gp.positions[r - 1, c]
                    t = disp.north[r][c]
                    assert (d[0], d[1]) == (t.ty, t.tx)


class TestMstSelection:
    def test_bad_edge_avoided_when_alternative_exists(self):
        """A low-correlation (wrong) edge must be bypassed by the MST."""
        pos = random_positions(2, 2, seed=2)
        disp = exact_displacements(pos)
        # Corrupt one edge badly but mark it low-confidence.
        disp.west[1][1] = Translation(-0.5, 999, 999)
        gp = resolve_absolute_positions(disp, "mst")
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        assert np.array_equal(gp.positions, expected)

    def test_tree_correlation_reported(self):
        pos = random_positions(3, 3, seed=3)
        gp = resolve_absolute_positions(exact_displacements(pos, corr=0.8), "mst")
        assert gp.spanning_tree_correlation == pytest.approx(0.8 * 8)


class TestLeastSquares:
    def test_averages_inconsistent_measurements(self):
        """LS splits the disagreement of a noisy cycle instead of ignoring it."""
        pos = random_positions(2, 2, seed=4)
        disp = exact_displacements(pos)
        t = disp.west[1][1]
        disp.west[1][1] = Translation(t.correlation, t.tx + 2, t.ty)  # +2 px error
        gp = resolve_absolute_positions(disp, "least_squares")
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        err = np.abs(gp.positions - expected).max()
        assert err <= 2  # bounded by the injected inconsistency

    def test_downweights_low_confidence_edges(self):
        pos = random_positions(2, 2, seed=5)
        disp = exact_displacements(pos)
        t = disp.west[1][1]
        disp.west[1][1] = Translation(-0.99, t.tx + 40, t.ty + 40)  # garbage, low corr
        gp = resolve_absolute_positions(disp, "least_squares")
        expected = pos - pos.reshape(-1, 2).min(axis=0)
        assert np.abs(gp.positions - expected).max() <= 2


class TestInterface:
    def test_unknown_method(self):
        with pytest.raises(ValueError):
            resolve_absolute_positions(
                exact_displacements(random_positions(2, 2, 0)), "magic"
            )

    def test_mosaic_shape(self):
        pos = random_positions(2, 3, seed=6, step=40, jitter=0)
        gp = resolve_absolute_positions(exact_displacements(pos), "mst")
        h, w = gp.mosaic_shape((48, 48))
        assert h == 40 + 48
        assert w == 80 + 48

    def test_disconnected_graph_rejected(self):
        d = DisplacementResult.empty(2, 2)  # no edges at all
        with pytest.raises(ValueError):
            resolve_absolute_positions(d, "mst")
