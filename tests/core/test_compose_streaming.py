"""Streaming composition: bit-equivalence with in-memory compose."""

import numpy as np
import pytest

from repro.core.compose import BlendMode, compose, compose_to_tiff
from repro.core.global_opt import GlobalPositions
from repro.core.stitcher import Stitcher
from repro.io.tiff import TiffStripWriter, read_tiff


def grid_positions(rows, cols, step):
    pos = np.zeros((rows, cols, 2), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            pos[r, c] = (r * step, c * step)
    return GlobalPositions(positions=pos, method="test")


class TestTiffStripWriter:
    def test_banded_write_reads_back(self, tmp_path):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 65535, (37, 23)).astype(np.uint16)
        p = tmp_path / "s.tif"
        with TiffStripWriter(p, 37, 23, np.uint16) as w:
            w.write_rows(img[:10])
            w.write_rows(img[10:11])
            w.write_rows(img[11:])
        assert np.array_equal(read_tiff(p), img)

    def test_uint8(self, tmp_path):
        img = np.arange(64, dtype=np.uint8).reshape(8, 8)
        p = tmp_path / "s.tif"
        with TiffStripWriter(p, 8, 8, np.uint8) as w:
            w.write_rows(img)
        assert np.array_equal(read_tiff(p), img)

    def test_incomplete_image_rejected(self, tmp_path):
        w = TiffStripWriter(tmp_path / "s.tif", 10, 4, np.uint16)
        w.write_rows(np.zeros((3, 4), dtype=np.uint16))
        with pytest.raises(ValueError, match="incomplete"):
            w.close()

    def test_overrun_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="overruns"):
            with TiffStripWriter(tmp_path / "s.tif", 2, 4, np.uint16) as w:
                w.write_rows(np.zeros((3, 4), dtype=np.uint16))

    def test_wrong_width_and_dtype_rejected(self, tmp_path):
        w = TiffStripWriter(tmp_path / "s.tif", 4, 4, np.uint16)
        with pytest.raises(ValueError, match="width"):
            w.write_rows(np.zeros((1, 5), dtype=np.uint16))
        with pytest.raises(ValueError, match="dtype"):
            w.write_rows(np.zeros((1, 4), dtype=np.uint8))

    def test_float_dtype_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TiffStripWriter(tmp_path / "s.tif", 4, 4, np.float32)


class TestComposeToTiff:
    def make_tiles(self, rows=3, cols=3, th=16, tw=16, seed=1):
        rng = np.random.default_rng(seed)
        tiles = {
            (r, c): rng.integers(0, 60000, (th, tw)).astype(np.float64)
            for r in range(rows)
            for c in range(cols)
        }
        return lambda r, c: tiles[(r, c)]

    @pytest.mark.parametrize("blend", [BlendMode.OVERLAY, BlendMode.AVERAGE])
    @pytest.mark.parametrize("band_rows", [1, 5, 16, 1000])
    def test_matches_in_memory_compose(self, tmp_path, blend, band_rows):
        load = self.make_tiles()
        gp = grid_positions(3, 3, 12)
        p = tmp_path / "m.tif"
        shape = compose_to_tiff(p, load, gp, (16, 16), blend=blend,
                                band_rows=band_rows)
        streamed = read_tiff(p)
        ref = compose(load, gp, (16, 16), blend=blend, dtype=np.float64)
        expected = np.clip(ref, 0, 65535).astype(np.uint16)
        assert streamed.shape == shape
        assert np.array_equal(streamed, expected)

    def test_scale_parameter(self, tmp_path):
        load = lambda r, c: np.full((8, 8), 0.5)
        gp = grid_positions(1, 1, 0)
        compose_to_tiff(tmp_path / "m.tif", load, gp, (8, 8), scale=1000.0)
        assert read_tiff(tmp_path / "m.tif")[0, 0] == 500

    def test_maximum_blend_matches_in_memory(self, tmp_path):
        load = self.make_tiles()
        gp = grid_positions(3, 3, 12)
        p = tmp_path / "m.tif"
        # band_rows=5 splits every tile across bands: per-pixel max must
        # still agree with the all-in-memory reference.
        shape = compose_to_tiff(p, load, gp, (16, 16),
                                blend=BlendMode.MAXIMUM, band_rows=5)
        ref = compose(load, gp, (16, 16), blend=BlendMode.MAXIMUM,
                      dtype=np.float64)
        streamed = read_tiff(p)
        assert streamed.shape == shape
        assert np.array_equal(streamed, np.clip(ref, 0, 65535).astype(np.uint16))

    @pytest.mark.parametrize("band_rows", [1, 5, 16, 1000])
    def test_linear_blend_matches_in_memory(self, tmp_path, band_rows):
        """LINEAR feathering streams: every tile covering a pixel intersects
        that pixel's band, so per-band weighted accumulation + normalization
        is the row-restriction of the global computation."""
        load = self.make_tiles()
        gp = grid_positions(3, 3, 12)
        p = tmp_path / "m.tif"
        shape = compose_to_tiff(p, load, gp, (16, 16),
                                blend=BlendMode.LINEAR, band_rows=band_rows)
        streamed = read_tiff(p)
        ref = compose(load, gp, (16, 16), blend=BlendMode.LINEAR,
                      dtype=np.float64)
        assert streamed.shape == shape
        assert np.array_equal(streamed, np.clip(ref, 0, 65535).astype(np.uint16))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pyramid_levels": -1},
            {"on_tile_error": "retry-forever"},
            {"dtype": np.float32},
            {"blend": "no-such-blend"},
        ],
    )
    def test_rejection_leaves_no_partial_output(self, tmp_path, kwargs):
        """An up-front validation failure must not touch the filesystem."""
        gp = grid_positions(2, 2, 12)
        p = tmp_path / "m.tif"
        with pytest.raises(ValueError):
            compose_to_tiff(p, self.make_tiles(2, 2), gp, (16, 16), **kwargs)
        assert list(tmp_path.iterdir()) == []

    def test_midstream_failure_leaves_no_partial_output(self, tmp_path):
        """A bad tile under abort policy must not leave a torn mosaic."""
        tiles = self.make_tiles(3, 3)

        def load(r, c):
            if (r, c) == (2, 1):  # fails only in a late band
                raise OSError("tile rotted")
            return tiles(r, c)

        gp = grid_positions(3, 3, 12)
        p = tmp_path / "m.tif"
        with pytest.raises(OSError, match="tile rotted"):
            compose_to_tiff(p, load, gp, (16, 16), band_rows=5,
                            on_tile_error="abort")
        assert list(tmp_path.iterdir()) == []

    def test_midstream_failure_preserves_previous_mosaic(self, tmp_path):
        """Re-compose over an existing mosaic: failure keeps the old file."""
        load = self.make_tiles(2, 2)
        gp = grid_positions(2, 2, 12)
        p = tmp_path / "m.tif"
        compose_to_tiff(p, load, gp, (16, 16))
        before = read_tiff(p)

        def broken(r, c):
            raise OSError("gone")

        with pytest.raises(OSError):
            compose_to_tiff(p, broken, gp, (16, 16), on_tile_error="abort")
        assert np.array_equal(read_tiff(p), before)
        assert list(tmp_path.iterdir()) == [p]

    def test_string_blend_accepted(self, tmp_path):
        """The service layer passes blend names; coercion is up front."""
        load = self.make_tiles(1, 1)
        gp = grid_positions(1, 1, 0)
        compose_to_tiff(tmp_path / "m.tif", load, gp, (16, 16),
                        blend="average")
        assert (tmp_path / "m.tif").exists()

    def test_end_to_end_with_stitcher(self, dataset_4x4, tmp_path):
        res = Stitcher().stitch(dataset_4x4)
        p = tmp_path / "mosaic.tif"
        shape = compose_to_tiff(
            p, dataset_4x4.load, res.positions, dataset_4x4.tile_shape,
            band_rows=20,
        )
        streamed = read_tiff(p)
        ref = res.compose(BlendMode.OVERLAY, dtype=np.float64)
        assert streamed.shape == shape == ref.shape
        assert np.array_equal(streamed, np.clip(ref, 0, 65535).astype(np.uint16))


class TestStripWriterProperty:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        h=st.integers(1, 40),
        w=st.integers(1, 30),
        cuts=st.lists(st.integers(1, 10), max_size=5),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_arbitrary_banding_roundtrips(self, tmp_path_factory, h, w, cuts, seed):
        """Any partition of the rows into bands writes the same file."""
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 65536, (h, w)).astype(np.uint16)
        p = tmp_path_factory.mktemp("sw") / "t.tif"
        with TiffStripWriter(p, h, w, np.uint16) as wtr:
            r = 0
            for c in cuts:
                if r >= h:
                    break
                band = img[r : min(h, r + c)]
                wtr.write_rows(band)
                r += band.shape[0]
            if r < h:
                wtr.write_rows(img[r:])
        assert np.array_equal(read_tiff(p), img)
