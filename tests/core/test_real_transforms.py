"""Real-to-complex PCIAM path: identical answers, half-size spectra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.displacement import compute_grid_displacements
from repro.core.pciam import CcfMode, forward_fft, pciam
from repro.core.stitcher import Stitcher
from repro.synth.specimen import generate_plate

PLATE = generate_plate(300, 300, seed=5)


def cut_pair(ty, tx, size=96, base=50):
    return (
        PLATE[base : base + size, base : base + size],
        PLATE[base + ty : base + ty + size, base + tx : base + tx + size],
    )


class TestRealTransforms:
    def test_half_spectrum_shape(self):
        img, _ = cut_pair(0, 0)
        spec = forward_fft(img, real=True)
        assert spec.shape == (96, 49)

    @pytest.mark.parametrize("ty,tx", [(5, 70), (0, 80), (72, -4), (-3, 68)])
    def test_identical_to_complex_path(self, ty, tx):
        img_i, img_j = cut_pair(ty, tx)
        c = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        r = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2,
                  real_transforms=True)
        assert (c.ty, c.tx) == (r.ty, r.tx) == (ty, tx)
        assert r.correlation == pytest.approx(c.correlation, abs=1e-9)

    def test_precomputed_half_spectra(self):
        img_i, img_j = cut_pair(4, 72)
        fi = forward_fft(img_i, real=True)
        fj = forward_fft(img_j, real=True)
        r = pciam(img_i, img_j, fft_i=fi, fft_j=fj,
                  ccf_mode=CcfMode.EXTENDED, real_transforms=True)
        assert (r.ty, r.tx) == (4, 72)

    def test_full_spectrum_rejected_in_real_mode(self):
        img_i, img_j = cut_pair(0, 70)
        fi = forward_fft(img_i, real=False)
        with pytest.raises(ValueError, match="shape"):
            pciam(img_i, img_j, fft_i=fi, fft_j=fi, real_transforms=True)

    def test_with_padding(self):
        img_i, img_j = cut_pair(5, 70)
        r = pciam(img_i, img_j, fft_shape=(100, 108),
                  ccf_mode=CcfMode.EXTENDED, n_peaks=2, real_transforms=True)
        assert (r.ty, r.tx) == (5, 70)

    @settings(max_examples=15, deadline=None)
    @given(ty=st.integers(-5, 5), tx=st.integers(62, 78))
    def test_equivalence_property(self, ty, tx):
        img_i, img_j = cut_pair(ty, tx)
        c = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        r = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2,
                  real_transforms=True)
        assert (c.ty, c.tx) == (r.ty, r.tx)


class TestGridRealTransforms:
    def test_grid_displacements_match(self, dataset_4x4):
        c = compute_grid_displacements(
            dataset_4x4.load, 4, 4, ccf_mode=CcfMode.EXTENDED, n_peaks=2
        )
        r = compute_grid_displacements(
            dataset_4x4.load, 4, 4, ccf_mode=CcfMode.EXTENDED, n_peaks=2,
            real_transforms=True,
        )
        for arr_c, arr_r in ((c.west, r.west), (c.north, r.north)):
            for row_c, row_r in zip(arr_c, arr_r):
                for tc, tr in zip(row_c, row_r):
                    if tc is None:
                        assert tr is None
                    else:
                        assert (tc.tx, tc.ty) == (tr.tx, tr.ty)

    def test_stitcher_option(self, dataset_4x4):
        res = Stitcher(real_transforms=True).stitch(dataset_4x4)
        assert res.position_errors().max() == 0.0
