"""Phase 2 degraded operation: disconnected displacement graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.displacement import DisplacementResult, Translation
from repro.core.global_opt import (
    estimate_nominal_step,
    resolve_absolute_positions,
)

WX = 48  # west step (x)
NY = 48  # north step (y)


def perfect_grid(rows: int = 3, cols: int = 3) -> DisplacementResult:
    disp = DisplacementResult.empty(rows, cols)
    for r in range(rows):
        for c in range(cols):
            if c > 0:
                disp.west[r][c] = Translation(0.9, tx=WX, ty=0)
            if r > 0:
                disp.north[r][c] = Translation(0.9, tx=0, ty=NY)
    return disp


def isolate_tile(disp: DisplacementResult, r: int, c: int) -> None:
    """Drop every edge incident to tile (r, c)."""
    disp.west[r][c] = None
    disp.north[r][c] = None
    if c + 1 < disp.cols:
        disp.west[r][c + 1] = None
    if r + 1 < disp.rows:
        disp.north[r + 1][c] = None


class TestEstimateNominalStep:
    def test_median_of_surviving_edges(self):
        disp = perfect_grid()
        disp.west[1][1] = Translation(0.9, tx=WX + 10, ty=3)  # outlier
        (wy, wx), (ny, nx) = estimate_nominal_step(disp)
        assert (wy, wx) == (0.0, float(WX))  # median shrugs off one outlier
        assert (ny, nx) == (float(NY), 0.0)

    def test_direction_with_no_edges_uses_fallback(self):
        disp = perfect_grid()
        for r in range(disp.rows):
            for c in range(disp.cols):
                disp.west[r][c] = None
        step = estimate_nominal_step(disp, nominal_step=((0.0, 50.0), (50.0, 0.0)))
        assert step[0] == (0.0, 50.0)       # fallback
        assert step[1] == (float(NY), 0.0)  # still measured

    def test_no_edges_and_no_fallback_raises(self):
        disp = DisplacementResult.empty(2, 2)
        with pytest.raises(ValueError, match="nominal_step"):
            estimate_nominal_step(disp)


class TestDisconnectedGraph:
    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_default_raises(self, method):
        disp = perfect_grid()
        isolate_tile(disp, 2, 2)
        with pytest.raises(ValueError, match="disconnected"):
            resolve_absolute_positions(disp, method=method)

    def test_invalid_on_disconnected_rejected(self):
        with pytest.raises(ValueError, match="on_disconnected"):
            resolve_absolute_positions(perfect_grid(), on_disconnected="retry")

    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_nominal_places_stranded_corner(self, method):
        disp = perfect_grid()
        isolate_tile(disp, 2, 2)
        gp = resolve_absolute_positions(
            disp, method=method, on_disconnected="nominal"
        )
        # Perfect grid + nominal step from medians -> exact grid positions
        # everywhere, including the stranded tile.
        for r in range(3):
            for c in range(3):
                assert tuple(gp.positions[r, c]) == (r * NY, c * WX), (r, c)
        assert gp.degraded is not None
        assert gp.degraded_tiles() == [(2, 2)]
        assert gp.degraded_count == 1

    def test_connected_graph_has_no_degraded_mask(self):
        gp = resolve_absolute_positions(
            perfect_grid(), on_disconnected="nominal"
        )
        assert gp.degraded is None
        assert gp.degraded_count == 0
        assert gp.degraded_tiles() == []

    def test_stranded_component_keeps_internal_geometry(self):
        # Cut column 2 off from columns 0-1: its tiles stay connected to
        # each other through their north edges, so the component is placed
        # as a unit at the nominal offset of its root (0, 2).
        disp = perfect_grid()
        for r in range(3):
            disp.west[r][2] = None
        # Perturb an internal edge so we can tell measured from nominal.
        disp.north[2][2] = Translation(0.9, tx=1, ty=NY + 2)
        gp = resolve_absolute_positions(disp, on_disconnected="nominal")
        assert sorted(gp.degraded_tiles()) == [(0, 2), (1, 2), (2, 2)]
        assert tuple(gp.positions[0, 2]) == (0, 2 * WX)      # nominal root
        assert tuple(gp.positions[1, 2]) == (NY, 2 * WX)     # measured edge
        assert tuple(gp.positions[2, 2]) == (2 * NY + 2, 2 * WX + 1)

    def test_nominal_prior_does_not_perturb_least_squares(self):
        disp = perfect_grid()
        isolate_tile(disp, 2, 2)
        gp = resolve_absolute_positions(
            disp, method="least_squares", on_disconnected="nominal"
        )
        clean = resolve_absolute_positions(perfect_grid(), method="least_squares")
        survivors = np.ones((3, 3), dtype=bool)
        survivors[2, 2] = False
        delta = np.abs(gp.positions - clean.positions)[survivors]
        assert int(delta.max()) == 0


class TestZeroPairGuard:
    def test_empty_graph_default_raises(self):
        with pytest.raises(ValueError, match="no displacements"):
            resolve_absolute_positions(DisplacementResult.empty(2, 2))

    def test_empty_graph_nominal_requires_step(self):
        with pytest.raises(ValueError, match="nominal_step"):
            resolve_absolute_positions(
                DisplacementResult.empty(2, 2), on_disconnected="nominal"
            )

    def test_empty_graph_nominal_with_step_is_pure_grid(self):
        gp = resolve_absolute_positions(
            DisplacementResult.empty(2, 2),
            on_disconnected="nominal",
            nominal_step=((0.0, WX), (NY, 0.0)),
        )
        for r in range(2):
            for c in range(2):
                assert tuple(gp.positions[r, c]) == (r * NY, c * WX)
        # Everything but the anchor is a fallback placement.
        assert sorted(gp.degraded_tiles()) == [(0, 1), (1, 0), (1, 1)]
