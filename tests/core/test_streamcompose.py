"""Out-of-core composition: budget bounds, bit-identity, streamed pyramid."""

import numpy as np
import pytest

from repro.core.compose import BlendMode, compose
from repro.core.global_opt import GlobalPositions
from repro.core.pyramid import DiskPyramid, MosaicPyramid
from repro.core.streamcompose import (
    plan_stripe_rows,
    pyramid_level_path,
    stream_compose_to_tiff,
)
from repro.io.tiff import TiffReader, read_tiff
from repro.observe import MetricsRegistry, Tracer


def grid_positions(rows, cols, step):
    pos = np.zeros((rows, cols, 2), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            pos[r, c] = (r * step, c * step)
    return GlobalPositions(positions=pos, method="test")


def make_tiles(rows=4, cols=4, th=32, tw=32, seed=1, dtype=np.uint16):
    rng = np.random.default_rng(seed)
    tiles = {
        (r, c): rng.integers(0, 60000, (th, tw)).astype(dtype)
        for r in range(rows)
        for c in range(cols)
    }
    return lambda r, c: tiles[(r, c)]


ALL_BLENDS = [BlendMode.OVERLAY, BlendMode.AVERAGE,
              BlendMode.MAXIMUM, BlendMode.LINEAR]


class TestPlanStripeRows:
    def test_splits_budget(self):
        band_rows, cache = plan_stripe_rows(
            1_000_000, 1000, 10_000, BlendMode.OVERLAY, np.dtype(np.uint16))
        # 10 B/px (8 band + 2 out) * 1000 px/row = 10 kB/row; half the
        # budget funds the cache, the other half ~50 stripe rows.
        assert cache == 500_000
        assert band_rows == 50

    def test_weight_blends_cost_more_per_row(self):
        rows_overlay, _ = plan_stripe_rows(
            1_000_000, 1000, 10_000, BlendMode.OVERLAY, np.dtype(np.uint16))
        rows_linear, _ = plan_stripe_rows(
            1_000_000, 1000, 10_000, BlendMode.LINEAR, np.dtype(np.uint16))
        assert rows_linear < rows_overlay

    def test_row_tight_budget_shrinks_cache(self):
        per_row = 1000 * 10
        band_rows, cache = plan_stripe_rows(
            per_row + 100, 1000, 10_000, BlendMode.OVERLAY,
            np.dtype(np.uint16))
        assert band_rows == 1
        assert cache == 100

    def test_budget_below_one_row_rejected(self):
        with pytest.raises(ValueError, match="cannot fit one canvas row"):
            plan_stripe_rows(100, 1000, 10_000, BlendMode.OVERLAY,
                             np.dtype(np.uint16))

    def test_band_rows_capped_at_height(self):
        band_rows, _ = plan_stripe_rows(
            10**9, 100, 7, BlendMode.OVERLAY, np.dtype(np.uint16))
        assert band_rows == 7


class TestBudgetedCompose:
    @pytest.mark.parametrize("blend", ALL_BLENDS)
    def test_bit_identical_under_budget(self, tmp_path, blend):
        """Full canvas ~173 kB in float64; a 64 kB budget forces real
        striping + cache eviction, and the file must still be
        bit-identical to quantized in-memory compose."""
        load = make_tiles()
        gp = grid_positions(4, 4, 24)
        p = tmp_path / "m.tif"
        budget = 64 * 1024
        res = stream_compose_to_tiff(p, load, gp, (32, 32), blend=blend,
                                     memory_budget=budget)
        assert res.stripes > 1  # the budget actually forced striping
        assert res.peak_bytes <= budget
        ref = compose(load, gp, (32, 32), blend=blend, dtype=np.float64)
        expected = np.clip(ref, 0, 65535).astype(np.uint16)
        assert np.array_equal(read_tiff(p), expected)

    def test_cache_bounded_and_useful(self, tmp_path):
        loads = []
        inner = make_tiles()

        def load(r, c):
            loads.append((r, c))
            return inner(r, c)

        gp = grid_positions(4, 4, 24)
        budget = 64 * 1024
        res = stream_compose_to_tiff(tmp_path / "m.tif", load, gp, (32, 32),
                                     memory_budget=budget)
        assert res.cache is not None
        assert res.cache["peak_bytes"] <= res.cache["capacity_bytes"]
        assert res.cache["hits"] > 0  # boundary tiles came from the cache
        # Decodes are amortized: never more than one load per (tile, stripe
        # it spans), and the cache keeps it strictly below the no-cache
        # worst case for this geometry.
        assert len(loads) <= 16 * res.stripes

    def test_explicit_band_rows_without_budget(self, tmp_path):
        load = make_tiles()
        gp = grid_positions(4, 4, 24)
        res = stream_compose_to_tiff(tmp_path / "m.tif", load, gp, (32, 32),
                                     band_rows=7)
        assert res.band_rows == 7
        assert res.cache is None  # no budget, no cache
        assert res.memory_budget is None

    def test_metrics_and_tracer(self, tmp_path):
        metrics = MetricsRegistry()
        tracer = Tracer()
        load = make_tiles()
        gp = grid_positions(4, 4, 24)
        res = stream_compose_to_tiff(
            tmp_path / "m.tif", load, gp, (32, 32),
            memory_budget=64 * 1024, pyramid_levels=2,
            metrics=metrics, tracer=tracer,
        )
        snap = metrics.snapshot()
        assert snap["gauges"]["compose_peak_canvas_bytes"]["peak"] == res.peak_bytes
        assert snap["counters"]["compose_stripes"] == res.stripes
        assert snap["counters"]["compose_tile_cache_hits"] == res.cache["hits"]
        assert tracer.span_count("compose.stripe") == res.stripes
        assert tracer.span_count("compose.pyramid_level") == 2

    def test_skip_tiles_leaves_holes(self, tmp_path):
        load = make_tiles()
        gp = grid_positions(2, 2, 32)  # non-overlapping
        res = stream_compose_to_tiff(tmp_path / "m.tif", load, gp, (32, 32),
                                     skip_tiles=[(1, 1)],
                                     memory_budget=64 * 1024)
        assert res.tiles_rendered == 3
        img = read_tiff(tmp_path / "m.tif")
        assert not img[32:, 32:].any()
        assert img[:32, :32].any()


class TestStreamedPyramid:
    def test_levels_written_and_halved(self, tmp_path):
        load = make_tiles()
        gp = grid_positions(4, 4, 24)
        p = tmp_path / "m.tif"
        res = stream_compose_to_tiff(p, load, gp, (32, 32),
                                     memory_budget=64 * 1024,
                                     pyramid_levels=3)
        assert [q.name for q in res.pyramid_paths] == [
            "m.L1.tif", "m.L2.tif", "m.L3.tif"]
        h, w = res.shape
        for k, q in enumerate(res.pyramid_paths, start=1):
            with TiffReader(q) as r:
                assert (r.height, r.width) == (-(-h >> 1), -(-w >> 1))
                h, w = r.height, r.width

    def test_levels_match_block_mean_of_full_mosaic(self, tmp_path):
        """Streamed level k == downsample(level k-1 file) computed whole."""
        from repro.core.downsample import downsample

        load = make_tiles()
        gp = grid_positions(4, 4, 24)
        p = tmp_path / "m.tif"
        stream_compose_to_tiff(p, load, gp, (32, 32),
                               memory_budget=64 * 1024, pyramid_levels=2)
        prev = read_tiff(p)
        for k in (1, 2):
            expected = np.clip(
                np.rint(downsample(prev, 2)), 0, 65535).astype(np.uint16)
            got = read_tiff(pyramid_level_path(p, k))
            assert np.array_equal(got, expected)
            prev = got

    def test_disk_pyramid_serves_viewports(self, tmp_path):
        load = make_tiles()
        gp = grid_positions(4, 4, 24)
        p = tmp_path / "m.tif"
        stream_compose_to_tiff(p, load, gp, (32, 32),
                               memory_budget=64 * 1024, pyramid_levels=2)
        full = read_tiff(p)
        with DiskPyramid(p) as pyr:
            assert pyr.levels == 3
            assert pyr.level_shape(0) == full.shape
            win = pyr.render_region(10, 20, 30, 40)
            assert np.array_equal(win, full[10:40, 20:60])
            l1 = pyr.render_region(0, 0, 5, 5, level=1)
            assert np.array_equal(l1, read_tiff(pyramid_level_path(p, 1))[:5, :5])
            assert pyr.level_for_scale(1.0) == 0
            assert pyr.level_for_scale(0.5) == 1
            assert pyr.level_for_scale(0.2) == 2  # coarsest available
            with pytest.raises(ValueError):
                pyr.render_region(0, 0, 5, 5, level=3)

    def test_disk_pyramid_without_levels(self, tmp_path):
        load = make_tiles()
        gp = grid_positions(2, 2, 24)
        p = tmp_path / "m.tif"
        stream_compose_to_tiff(p, load, gp, (32, 32))
        with DiskPyramid(p) as pyr:
            assert pyr.levels == 1
            assert np.array_equal(pyr.render_region(0, 0, 4, 4),
                                  read_tiff(p)[:4, :4])

    def test_failure_unlinks_all_parts(self, tmp_path):
        calls = {"n": 0}
        inner = make_tiles()

        def load(r, c):
            calls["n"] += 1
            if calls["n"] > 10:
                raise OSError("disk died")
            return inner(r, c)

        gp = grid_positions(4, 4, 24)
        with pytest.raises(OSError):
            stream_compose_to_tiff(tmp_path / "m.tif", load, gp, (32, 32),
                                   band_rows=8, pyramid_levels=2)
        assert list(tmp_path.iterdir()) == []

    def test_publish_is_all_or_nothing(self, tmp_path):
        """After success, mosaic + every level exist; no .part remains."""
        load = make_tiles()
        gp = grid_positions(4, 4, 24)
        p = tmp_path / "m.tif"
        stream_compose_to_tiff(p, load, gp, (32, 32), pyramid_levels=2)
        names = sorted(q.name for q in tmp_path.iterdir())
        assert names == ["m.L1.tif", "m.L2.tif", "m.tif"]


class TestPyramidLevelPath:
    def test_naming(self, tmp_path):
        p = tmp_path / "mosaic.tif"
        assert pyramid_level_path(p, 0) == p
        assert pyramid_level_path(p, 2).name == "mosaic.L2.tif"
        with pytest.raises(ValueError):
            pyramid_level_path(p, -1)


class TestMosaicPyramidCacheBounds:
    """Satellite: LRU eviction order + byte ceiling for the viewer cache."""

    def make_pyramid(self, **kw):
        load = make_tiles(3, 3, 16, 16)
        gp = grid_positions(3, 3, 16)
        return MosaicPyramid(load, gp, (16, 16), levels=2, **kw)

    def test_count_bound_evicts_lru(self):
        pyr = self.make_pyramid(cache_tiles=2)
        pyr._tile_at(0, 0, 0)
        pyr._tile_at(0, 1, 0)
        pyr._tile_at(0, 0, 0)  # refresh: (0,1,0) is now LRU
        pyr._tile_at(0, 2, 0)  # evicts (0,1,0)
        fetches = pyr.tile_fetches
        pyr._tile_at(0, 0, 0)  # hit
        assert pyr.tile_fetches == fetches
        pyr._tile_at(0, 1, 0)  # was evicted: refetches
        assert pyr.tile_fetches == fetches + 1
        assert pyr.cache_evictions >= 1

    def test_byte_ceiling_is_hard(self):
        tile_bytes = 16 * 16 * 8  # downsampled tiles are float64
        pyr = self.make_pyramid(cache_tiles=1000,
                                cache_bytes=3 * tile_bytes)
        for r in range(3):
            for c in range(3):
                pyr._tile_at(r, c, 0)
                assert pyr.cache_current_bytes <= 3 * tile_bytes
        assert pyr.cache_peak_bytes <= 3 * tile_bytes
        assert pyr.cache_evictions == 6
        assert len(pyr._cache) == 3

    def test_byte_ceiling_smaller_than_tile_serves_uncached(self):
        pyr = self.make_pyramid(cache_bytes=10)
        pyr._tile_at(0, 0, 0)
        assert pyr.cache_current_bytes == 0
        assert len(pyr._cache) == 0
        pyr._tile_at(0, 0, 0)
        assert pyr.tile_fetches == 2  # load-through both times

    def test_render_region_respects_ceiling(self):
        tile_bytes = 16 * 16 * 8
        pyr = self.make_pyramid(cache_bytes=2 * tile_bytes)
        pyr.render(level=0)
        pyr.render(level=1)
        assert pyr.cache_peak_bytes <= 2 * tile_bytes

    def test_negative_cache_bytes_rejected(self):
        with pytest.raises(ValueError):
            self.make_pyramid(cache_bytes=-1)

    def test_unbounded_bytes_keeps_count_semantics(self):
        pyr = self.make_pyramid(cache_tiles=4)
        for r in range(3):
            for c in range(3):
                pyr._tile_at(r, c, 0)
        assert len(pyr._cache) == 4
