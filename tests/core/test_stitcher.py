"""Stitcher facade: end-to-end phases 1-3 with ground-truth scoring."""

import numpy as np
import pytest

from repro.core.pciam import CcfMode
from repro.core.stitcher import Stitcher
from repro.grid.traversal import Traversal


class TestStitcher:
    def test_recovers_ground_truth_positions(self, dataset_4x4):
        res = Stitcher().stitch(dataset_4x4)
        err = res.position_errors()
        assert err is not None
        assert err.max() == 0.0

    def test_least_squares_method(self, dataset_4x4):
        res = Stitcher(position_method="least_squares").stitch(dataset_4x4)
        assert res.position_errors().max() <= 1.0  # integer rounding only

    def test_nonsquare_grid(self, dataset_3x5):
        res = Stitcher().stitch(dataset_3x5)
        assert res.positions.positions.shape == (3, 5, 2)
        assert res.position_errors().max() == 0.0

    def test_pad_to_smooth_option(self, dataset_4x4):
        res = Stitcher(pad_to_smooth=True).stitch(dataset_4x4)
        assert res.position_errors().max() == 0.0

    def test_timing_recorded(self, dataset_4x4):
        res = Stitcher().stitch(dataset_4x4)
        assert res.phase1_seconds > 0
        assert res.phase2_seconds >= 0
        assert res.phase1_seconds > res.phase2_seconds  # paper: phase 1 dominates

    def test_stats_propagated(self, dataset_4x4):
        res = Stitcher().stitch(dataset_4x4)
        assert res.stats["pairs"] == 24

    def test_compose_shapes(self, dataset_4x4):
        res = Stitcher().stitch(dataset_4x4)
        mosaic = res.compose()
        h, w = res.positions.mosaic_shape(dataset_4x4.tile_shape)
        assert mosaic.shape == (h, w)

    def test_paper4_traversal_config(self, dataset_4x4):
        """Paper-faithful configuration still stitches this dataset."""
        res = Stitcher(
            traversal=Traversal.ROW, ccf_mode=CcfMode.PAPER4, n_peaks=2
        ).stitch(dataset_4x4)
        # PAPER4 may fold any negative jitter; positions stay within the
        # stage's error envelope instead of being exact.
        assert res.position_errors().mean() < 10.0
