"""Grid displacement phase: completeness, accuracy, memory policy."""

import numpy as np
import pytest

from repro.core.displacement import (
    DisplacementResult,
    Translation,
    compute_grid_displacements,
)
from repro.core.pciam import CcfMode
from repro.grid.neighbors import Direction
from repro.grid.traversal import Traversal


def true_deltas(dataset):
    return np.asarray(dataset.metadata.true_positions)


class TestComputeGridDisplacements:
    def test_complete_and_exact(self, dataset_4x4):
        disp = compute_grid_displacements(
            dataset_4x4.load, 4, 4, ccf_mode=CcfMode.EXTENDED, n_peaks=2
        )
        assert disp.is_complete()
        assert disp.pair_count() == 24
        true = true_deltas(dataset_4x4)
        for r in range(4):
            for c in range(4):
                if c > 0:
                    t = disp.west[r][c]
                    d = true[r, c] - true[r, c - 1]
                    assert (t.ty, t.tx) == (d[0], d[1])
                if r > 0:
                    t = disp.north[r][c]
                    d = true[r, c] - true[r - 1, c]
                    assert (t.ty, t.tx) == (d[0], d[1])

    def test_every_traversal_gives_identical_results(self, dataset_3x5):
        results = []
        for order in Traversal:
            disp = compute_grid_displacements(
                dataset_3x5.load, 3, 5, traversal=order,
                ccf_mode=CcfMode.EXTENDED, n_peaks=2,
            )
            key = [
                (t.tx, t.ty) if t else None
                for rows in (disp.west, disp.north)
                for row in rows
                for t in row
            ]
            results.append(key)
        assert all(k == results[0] for k in results)

    def test_memory_policy_bounds_live_transforms(self, dataset_3x5):
        disp = compute_grid_displacements(
            dataset_3x5.load, 3, 5, traversal=Traversal.CHAINED_DIAGONAL
        )
        # Early-free keeps the wavefront, never the whole grid.
        assert disp.stats["peak_live_transforms"] < 15
        assert disp.stats["peak_live_transforms"] >= 3

    def test_stats_match_table1_counts(self, dataset_4x4):
        disp = compute_grid_displacements(dataset_4x4.load, 4, 4)
        assert disp.stats["reads"] == 16
        assert disp.stats["ffts"] == 16       # one forward FFT per tile
        assert disp.stats["pairs"] == 24      # 2nm - n - m

    def test_single_tile_grid(self):
        disp = compute_grid_displacements(lambda r, c: np.ones((8, 8)), 1, 1)
        assert disp.is_complete()
        assert disp.pair_count() == 0

    def test_single_row_grid(self, dataset_3x5):
        disp = compute_grid_displacements(
            lambda r, c: dataset_3x5.load(0, c), 1, 5,
            ccf_mode=CcfMode.EXTENDED, n_peaks=2,
        )
        assert disp.pair_count() == 4
        assert all(t is None for row in disp.north for t in row)


class TestDisplacementResult:
    def test_set_get(self):
        d = DisplacementResult.empty(2, 2)
        t = Translation(0.9, 50, 1)
        d.set(Direction.WEST, 0, 1, t)
        assert d.get(Direction.WEST, 0, 1) is t
        assert d.get(Direction.NORTH, 1, 0) is None

    def test_is_complete_counts(self):
        d = DisplacementResult.empty(2, 2)
        assert not d.is_complete()
        t = Translation(1.0, 0, 0)
        d.set(Direction.WEST, 0, 1, t)
        d.set(Direction.WEST, 1, 1, t)
        d.set(Direction.NORTH, 1, 0, t)
        d.set(Direction.NORTH, 1, 1, t)
        assert d.is_complete()
