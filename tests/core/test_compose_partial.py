"""Phase 3 partial composition: skip lists, load-error holes, masks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compose import BlendMode, compose, compose_to_tiff
from repro.core.global_opt import GlobalPositions
from repro.io.tiff import read_tiff

TILE = (8, 8)


def grid_positions(rows: int, cols: int) -> GlobalPositions:
    pos = np.zeros((rows, cols, 2), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            pos[r, c] = (r * TILE[0], c * TILE[1])  # no overlap: disjoint
    return GlobalPositions(positions=pos, method="mst")


def constant_tiles(row, col):
    """Each tile filled with a unique nonzero value."""
    return np.full(TILE, float(10 * row + col + 1))


class TestComposeSkip:
    def test_skip_tiles_leave_zero_holes(self):
        gp = grid_positions(2, 3)
        canvas, mask = compose(
            constant_tiles, gp, TILE, skip_tiles=[(0, 1)], return_mask=True
        )
        assert canvas.shape == (16, 24)
        assert float(canvas[0:8, 8:16].max()) == 0.0  # the hole
        assert float(canvas[0:8, 0:8].min()) == 1.0   # neighbours rendered
        assert mask.tolist() == [[True, False, True], [True, True, True]]

    def test_no_skips_full_mask(self):
        gp = grid_positions(2, 2)
        canvas, mask = compose(constant_tiles, gp, TILE, return_mask=True)
        assert mask.all()
        assert float(canvas.min()) == 1.0  # no holes anywhere

    def test_return_mask_false_keeps_legacy_return(self):
        gp = grid_positions(2, 2)
        out = compose(constant_tiles, gp, TILE, skip_tiles=[(1, 1)])
        assert isinstance(out, np.ndarray)  # not a tuple

    def test_load_error_aborts_by_default(self):
        gp = grid_positions(2, 2)

        def flaky(row, col):
            if (row, col) == (1, 0):
                raise IOError("read failed mid-composition")
            return constant_tiles(row, col)

        with pytest.raises(IOError):
            compose(flaky, gp, TILE)

    def test_load_error_skipped_becomes_hole(self):
        gp = grid_positions(2, 2)

        def flaky(row, col):
            if (row, col) == (1, 0):
                raise IOError("read failed mid-composition")
            return constant_tiles(row, col)

        canvas, mask = compose(
            flaky, gp, TILE, on_tile_error="skip", return_mask=True
        )
        assert not mask[1, 0] and mask.sum() == 3
        assert float(canvas[8:16, 0:8].max()) == 0.0

    def test_invalid_on_tile_error_rejected(self):
        gp = grid_positions(2, 2)
        with pytest.raises(ValueError, match="on_tile_error"):
            compose(constant_tiles, gp, TILE, on_tile_error="retry")

    def test_outline_only_rendered_tiles(self):
        gp = grid_positions(1, 2)
        canvas = compose(
            constant_tiles, gp, TILE, outline=True, outline_value=99.0,
            skip_tiles=[(0, 1)],
        )
        assert float(canvas[0, 0]) == 99.0       # rendered tile outlined
        assert float(canvas[0:8, 8:16].max()) == 0.0  # hole left untouched

    def test_average_blend_with_skips(self):
        gp = grid_positions(2, 2)
        canvas = compose(
            constant_tiles, gp, TILE, blend=BlendMode.AVERAGE,
            skip_tiles=[(0, 0)],
        )
        assert float(canvas[0:8, 0:8].max()) == 0.0
        assert float(canvas[8:16, 0:8].min()) == 11.0


class TestComposeToTiffSkip:
    def test_skip_tiles_stream_holes(self, tmp_path):
        gp = grid_positions(3, 2)
        path = tmp_path / "partial.tif"
        shape = compose_to_tiff(
            path, constant_tiles, gp, TILE, skip_tiles=[(1, 1)], band_rows=5
        )
        assert shape == (24, 16)
        arr = read_tiff(path)
        assert float(arr[8:16, 8:16].max()) == 0.0  # the hole
        assert float(arr[8:16, 0:8].min()) == 11.0

    def test_load_error_skip_matches_in_memory_compose(self, tmp_path):
        gp = grid_positions(2, 2)

        def flaky(row, col):
            if (row, col) == (0, 1):
                raise IOError("bad read")
            return constant_tiles(row, col)

        path = tmp_path / "flaky.tif"
        compose_to_tiff(path, flaky, gp, TILE, on_tile_error="skip")
        streamed = read_tiff(path).astype(np.float64)
        in_memory = compose(flaky, gp, TILE, on_tile_error="skip")
        np.testing.assert_array_equal(streamed, in_memory.astype(np.float64))

    def test_load_error_abort_propagates(self, tmp_path):
        gp = grid_positions(2, 2)

        def broken(row, col):
            raise IOError("dead disk")

        with pytest.raises(IOError):
            compose_to_tiff(tmp_path / "x.tif", broken, gp, TILE)
