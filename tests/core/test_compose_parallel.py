"""Striped-parallel composition is bit-identical to the sequential pass.

The parallel renderer's whole contract is that ``workers`` is purely a
throughput knob: disjoint canvas stripes, sequential tile order inside
each stripe, per-stripe weight accumulation.  These tests pin the
contract for every blend mode -- including tiles straddling stripe
boundaries, jittered (non-grid) positions, skipped tiles and load
failures -- with exact ``array_equal`` comparisons, never tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compose import BlendMode, compose
from repro.core.global_opt import GlobalPositions

BLENDS = list(BlendMode)


def jittered_positions(rows, cols, step_y, step_x, seed=0):
    """Grid positions with deterministic per-tile jitter, clipped >= 0."""
    rng = np.random.default_rng(seed)
    pos = np.zeros((rows, cols, 2), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            jy, jx = rng.integers(-2, 3, size=2)
            pos[r, c] = (max(0, r * step_y + jy), max(0, c * step_x + jx))
    return GlobalPositions(positions=pos, method="test")


def textured_loader(rows, cols, th, tw, seed=1):
    rng = np.random.default_rng(seed)
    tiles = {
        (r, c): rng.random((th, tw)) * 100.0
        for r in range(rows)
        for c in range(cols)
    }
    return lambda r, c: tiles[(r, c)]


class TestBitIdentical:
    @pytest.mark.parametrize("blend", BLENDS)
    @pytest.mark.parametrize("workers", [2, 3, 7])
    def test_all_blends_all_worker_counts(self, blend, workers):
        load = textured_loader(3, 4, 16, 12)
        gp = jittered_positions(3, 4, 12, 9)
        ref, mref = compose(load, gp, (16, 12), blend, return_mask=True)
        got, mgot = compose(
            load, gp, (16, 12), blend, return_mask=True, workers=workers
        )
        assert np.array_equal(ref, got)
        assert np.array_equal(mref, mgot)

    @pytest.mark.parametrize("blend", BLENDS)
    def test_tiles_straddling_every_stripe_boundary(self, blend):
        """More stripes than tile rows: every tile crosses a boundary."""
        load = textured_loader(2, 2, 32, 8)
        gp = jittered_positions(2, 2, 24, 6, seed=3)
        ref = compose(load, gp, (32, 8), blend)
        # Canvas is ~56 rows; 16 stripes of ~4 rows each slice every
        # 32-row tile into many stripe-local pieces.
        got = compose(load, gp, (32, 8), blend, workers=16)
        assert np.array_equal(ref, got)

    def test_more_workers_than_canvas_rows(self):
        load = textured_loader(1, 3, 4, 8)
        gp = jittered_positions(1, 3, 0, 6, seed=4)
        ref = compose(load, gp, (4, 8), BlendMode.LINEAR)
        got = compose(load, gp, (4, 8), BlendMode.LINEAR, workers=64)
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("blend", [BlendMode.OVERLAY, BlendMode.AVERAGE])
    def test_skip_tiles_and_mask(self, blend):
        load = textured_loader(3, 3, 10, 10)
        gp = jittered_positions(3, 3, 8, 8, seed=5)
        skips = [(0, 1), (2, 2)]
        ref, mref = compose(
            load, gp, (10, 10), blend, skip_tiles=skips, return_mask=True
        )
        got, mgot = compose(
            load, gp, (10, 10), blend, skip_tiles=skips, return_mask=True,
            workers=4,
        )
        assert np.array_equal(ref, got)
        assert np.array_equal(mref, mgot)
        assert not mgot[0, 1] and not mgot[2, 2]

    def test_load_failures_skipped_identically(self):
        base = textured_loader(3, 3, 10, 10)

        def load(r, c):
            if (r, c) == (1, 1):
                raise OSError("bad sector")
            return base(r, c)

        gp = jittered_positions(3, 3, 8, 8, seed=6)
        ref, mref = compose(
            load, gp, (10, 10), BlendMode.AVERAGE, on_tile_error="skip",
            return_mask=True,
        )
        got, mgot = compose(
            load, gp, (10, 10), BlendMode.AVERAGE, on_tile_error="skip",
            return_mask=True, workers=3,
        )
        assert np.array_equal(ref, got)
        assert np.array_equal(mref, mgot)
        assert not mgot[1, 1]

    def test_load_failures_abort_in_workers(self):
        def load(r, c):
            raise OSError("bad sector")

        gp = jittered_positions(2, 2, 8, 8)
        with pytest.raises(OSError):
            compose(load, gp, (10, 10), BlendMode.OVERLAY, workers=2)

    @pytest.mark.parametrize("blend", BLENDS)
    def test_outline_and_dtype(self, blend):
        load = textured_loader(2, 2, 12, 12)
        gp = jittered_positions(2, 2, 9, 9, seed=7)
        ref = compose(load, gp, (12, 12), blend, outline=True, dtype=np.float64)
        got = compose(
            load, gp, (12, 12), blend, outline=True, dtype=np.float64,
            workers=3,
        )
        assert np.array_equal(ref, got)

    def test_invalid_worker_count_rejected(self):
        gp = jittered_positions(1, 1, 0, 0)
        with pytest.raises(ValueError):
            compose(lambda r, c: np.zeros((4, 4)), gp, (4, 4), workers=0)


class TestPropertyIdentity:
    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.integers(1, 3),
        cols=st.integers(1, 3),
        step_y=st.integers(3, 14),
        step_x=st.integers(3, 14),
        workers=st.integers(2, 9),
        blend=st.sampled_from(BLENDS),
        seed=st.integers(0, 100),
    )
    def test_random_layouts(self, rows, cols, step_y, step_x, workers, blend,
                            seed):
        """Any layout (including heavy overlap when step < tile size), any
        stripe count, any blend: striped == sequential, bit for bit."""
        load = textured_loader(rows, cols, 12, 12, seed=seed)
        gp = jittered_positions(rows, cols, step_y, step_x, seed=seed + 1)
        ref = compose(load, gp, (12, 12), blend)
        got = compose(load, gp, (12, 12), blend, workers=workers)
        assert np.array_equal(ref, got)
