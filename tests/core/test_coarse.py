"""Coarse-to-fine PCIAM: config, equivalence, gating, fallback."""

import numpy as np
import pytest

from repro.core.coarse import (
    PROVENANCE_COARSE,
    PROVENANCE_FALLBACK,
    CoarseConfig,
    coarse_forward_fft,
    coarse_pciam,
    coarse_transform_shape,
    resolve_coarse_peaks,
)
from repro.core.pciam import CcfMode, pciam
from repro.fftlib.plans import PlanCache, TransformKind
from repro.synth.specimen import generate_plate

PLATE = generate_plate(420, 420, seed=3)
H = W = 128


def cut_pair(ty: int, tx: int, base: int = 60):
    """Two windows of the shared plate, I_j offset (tx, ty) from I_i."""
    img_i = PLATE[base : base + H, base : base + W]
    img_j = PLATE[base + ty : base + ty + H, base + tx : base + tx + W]
    return img_i, img_j


class TestCoarseConfig:
    def test_defaults(self):
        c = CoarseConfig()
        assert c.factor == 2
        assert c.radius == 4  # 2 * factor

    def test_explicit_radius_wins(self):
        assert CoarseConfig(search_radius=7).radius == 7

    def test_factor_one_rejected(self):
        with pytest.raises(ValueError):
            CoarseConfig(factor=1)

    @pytest.mark.parametrize("scale,factor", [(0.5, 2), (0.25, 4), (0.3, 3)])
    def test_from_scale(self, scale, factor):
        assert CoarseConfig.from_scale(scale).factor == factor

    @pytest.mark.parametrize("scale", [0.0, -0.5, 0.6, 1.0])
    def test_from_scale_rejects_out_of_range(self, scale):
        with pytest.raises(ValueError):
            CoarseConfig.from_scale(scale)

    def test_fingerprint_resolves_derived_radius(self):
        fp = CoarseConfig(factor=3).to_fingerprint()
        assert fp["factor"] == 3
        assert fp["search_radius"] == 6

    def test_transform_shape_halves(self):
        assert coarse_transform_shape((128, 128), 2) == (64, 64)
        assert coarse_transform_shape((130, 96), 4) == (33, 24)


class TestCoarseRecovery:
    @pytest.mark.parametrize("ty,tx", [(5, 94), (0, 100), (96, -4), (92, 2)])
    def test_matches_full_pciam_extended(self, ty, tx):
        img_i, img_j = cut_pair(ty, tx)
        full = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        stats: dict = {}
        c = coarse_pciam(
            img_i, img_j, CoarseConfig(), ccf_mode=CcfMode.EXTENDED,
            n_peaks=2, stats=stats,
        )
        assert (c.ty, c.tx) == (full.ty, full.tx) == (ty, tx)
        assert c.correlation == pytest.approx(full.correlation, abs=1e-9)
        assert c.provenance == PROVENANCE_COARSE
        assert stats == {"coarse_hits": 1}

    @pytest.mark.parametrize("factor", [2, 4])
    def test_matches_across_factors(self, factor):
        img_i, img_j = cut_pair(6, 98)
        c = coarse_pciam(
            img_i, img_j, CoarseConfig(factor=factor),
            ccf_mode=CcfMode.EXTENDED, n_peaks=2,
        )
        assert (c.ty, c.tx) == (6, 98)

    def test_real_transforms_match_complex(self):
        img_i, img_j = cut_pair(4, 96)
        a = coarse_pciam(img_i, img_j, CoarseConfig(),
                         ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        b = coarse_pciam(img_i, img_j, CoarseConfig(),
                         ccf_mode=CcfMode.EXTENDED, n_peaks=2,
                         real_transforms=True)
        assert (a.ty, a.tx) == (b.ty, b.tx)

    def test_precomputed_coarse_spectra_match_internal(self):
        img_i, img_j = cut_pair(3, 95)
        cache = PlanCache()
        cfg = CoarseConfig()
        cfft_i = coarse_forward_fft(img_i, cfg.factor, img_i.shape, cache)
        cfft_j = coarse_forward_fft(img_j, cfg.factor, img_j.shape, cache)
        r1 = coarse_pciam(img_i, img_j, cfg, ccf_mode=CcfMode.EXTENDED,
                          n_peaks=2, cache=cache)
        r2 = coarse_pciam(img_i, img_j, cfg, cfft_i=cfft_i, cfft_j=cfft_j,
                          ccf_mode=CcfMode.EXTENDED, n_peaks=2, cache=cache)
        assert (r1.ty, r1.tx, r1.correlation) == (r2.ty, r2.tx, r2.correlation)

    def test_wrong_coarse_spectrum_shape_rejected(self):
        img_i, img_j = cut_pair(3, 95)
        bad = np.zeros((H, W), dtype=complex)  # full-res, not coarse
        with pytest.raises(ValueError):
            coarse_pciam(img_i, img_j, CoarseConfig(), cfft_i=bad, cfft_j=bad)

    def test_subpixel_carries_fractional_fields(self):
        img_i, img_j = cut_pair(5, 94)
        r = coarse_pciam(img_i, img_j, CoarseConfig(),
                         ccf_mode=CcfMode.EXTENDED, n_peaks=2, subpixel=True)
        full = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2,
                     subpixel=True)
        assert r.tx_f == pytest.approx(full.tx_f, abs=1e-9)
        assert r.ty_f == pytest.approx(full.ty_f, abs=1e-9)


class TestConfidenceGate:
    def test_unrelated_tiles_fall_back(self):
        rng = np.random.default_rng(9)
        img_i = rng.random((H, W))
        img_j = rng.random((H, W))
        stats: dict = {}
        r = coarse_pciam(img_i, img_j, CoarseConfig(), n_peaks=2, stats=stats)
        full = pciam(img_i, img_j, n_peaks=2)
        assert r.provenance == PROVENANCE_FALLBACK
        assert stats == {"full_fallbacks": 1}
        assert (r.ty, r.tx, r.correlation) == (full.ty, full.tx, full.correlation)

    def test_impossible_threshold_forces_fallback(self):
        img_i, img_j = cut_pair(5, 94)
        cfg = CoarseConfig(conf_thresh=1.1)  # nothing passes
        r = coarse_pciam(img_i, img_j, cfg, ccf_mode=CcfMode.EXTENDED,
                         n_peaks=2)
        full = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        assert r.provenance == PROVENANCE_FALLBACK
        assert (r.ty, r.tx) == (full.ty, full.tx)

    def test_resolve_without_fallback_raises_on_rejection(self):
        rng = np.random.default_rng(5)
        img_i = rng.random((32, 32))
        img_j = rng.random((32, 32))
        peaks = [(1.0, 0, 0)]
        with pytest.raises(ValueError, match="no fallback"):
            resolve_coarse_peaks(
                peaks, (16, 16), config=CoarseConfig(),
                img_i=img_i, img_j=img_j,
            )


class TestMixedResolutionPlanCache:
    def test_coarse_and_full_shapes_never_share_plans(self):
        img_i, img_j = cut_pair(5, 94)
        cache = PlanCache()
        coarse_pciam(img_i, img_j, CoarseConfig(), ccf_mode=CcfMode.EXTENDED,
                     n_peaks=2, cache=cache)
        shapes = {tuple(row["shape"]) for row in cache.stats()["per_shape"]}
        # Coarse-only clean pair: every planning problem is at 64x64.
        assert shapes == {(64, 64)}
        # A forced fallback now adds full-resolution rows alongside.
        coarse_pciam(img_i, img_j, CoarseConfig(conf_thresh=1.1),
                     ccf_mode=CcfMode.EXTENDED, n_peaks=2, cache=cache)
        shapes = {tuple(row["shape"]) for row in cache.stats()["per_shape"]}
        assert shapes == {(64, 64), (128, 128)}
        for row in cache.stats()["per_shape"]:
            p = cache.cached(tuple(row["shape"]),
                             TransformKind(row["kind"]))
            assert p is not None
            assert p.key.shape == tuple(row["shape"])

    def test_second_pair_hits_coarse_plans(self):
        cache = PlanCache()
        coarse_pciam(*cut_pair(5, 94), CoarseConfig(),
                     ccf_mode=CcfMode.EXTENDED, n_peaks=2, cache=cache)
        before = {
            (tuple(r["shape"]), r["kind"]): (r["hits"], r["misses"])
            for r in cache.stats()["per_shape"]
        }
        assert all(m >= 1 for _, m in before.values())
        coarse_pciam(*cut_pair(3, 96), CoarseConfig(),
                     ccf_mode=CcfMode.EXTENDED, n_peaks=2, cache=cache)
        after = {
            (tuple(r["shape"]), r["kind"]): (r["hits"], r["misses"])
            for r in cache.stats()["per_shape"]
        }
        for key, (h0, m0) in before.items():
            h1, m1 = after[key]
            assert m1 == m0, f"{key} re-planned on the second pair"
            assert h1 > h0, f"{key} not reused on the second pair"
