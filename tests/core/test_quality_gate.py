"""Registration quality gate: scoring, demotion decisions, config."""

import math

import numpy as np
import pytest

from repro.core.displacement import DisplacementResult, Translation
from repro.core.peak import peak_magnitude_ratio
from repro.core.quality_gate import (
    CORRELATION_FLOOR,
    QualityConfig,
    assess_quality,
    finite_correlation,
)


def make_disp(rows=3, cols=3, corr=0.9, tx=50, ty=0, ntx=0, nty=48):
    d = DisplacementResult.empty(rows, cols)
    for r in range(rows):
        for c in range(1, cols):
            d.west[r][c] = Translation(corr, tx, ty)
    for r in range(1, rows):
        for c in range(cols):
            d.north[r][c] = Translation(corr, ntx, nty)
    return d


class TestFiniteCorrelation:
    def test_passthrough(self):
        assert finite_correlation(0.7) == 0.7
        assert finite_correlation(-0.3) == -0.3

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_clamps_non_finite(self, bad):
        assert finite_correlation(bad) == CORRELATION_FLOOR


class TestPeakMagnitudeRatio:
    def test_decisive_peak(self):
        assert peak_magnitude_ratio([10.0, 2.0]) == 5.0

    def test_single_peak_is_none(self):
        assert peak_magnitude_ratio([10.0]) is None
        assert peak_magnitude_ratio([]) is None

    def test_zero_runner_up(self):
        assert peak_magnitude_ratio([10.0, 0.0]) == float("inf")


class TestQualityConfig:
    def test_defaults_follow_feabas(self):
        cfg = QualityConfig()
        assert cfg.conf_thresh == 0.33
        assert cfg.residue_mode == "none"
        assert cfg.residue_len == 2.0

    @pytest.mark.parametrize(
        "kw",
        [
            {"residue_mode": "hampel"},
            {"conf_thresh": 1.5},
            {"min_peak_ratio": -1.0},
            {"residue_len": 0.0},
            {"max_irls_iterations": 0},
            {"gate_weight": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            QualityConfig(**kw)


class TestAssessQuality:
    def test_clean_grid_nothing_gates(self):
        a = assess_quality(make_disp(), QualityConfig())
        assert a.gated_pairs == 0
        assert all(q.reasons == () for q in a.pairs.values())
        # Confidence is exactly the correlation, so the solvers' weights
        # reduce to the legacy expressions.
        assert all(q.confidence == 0.9 for q in a.pairs.values())

    def test_low_correlation_gates(self):
        d = make_disp()
        d.west[1][1] = Translation(0.05, 50, 0)
        a = assess_quality(d, QualityConfig())
        q = a.quality("west", 1, 1)
        assert q.gated
        assert "low_correlation" in q.reasons
        assert a.gated_pairs == 1

    def test_non_finite_correlation_gates_with_reason(self):
        d = make_disp()
        d.west[1][1] = Translation(float("nan"), 50, 0)
        a = assess_quality(d, QualityConfig())
        q = a.quality("west", 1, 1)
        assert q.gated
        assert "non_finite" in q.reasons
        assert q.confidence == CORRELATION_FLOOR

    def test_stage_outlier_gates_despite_high_correlation(self):
        # A confidently-wrong match: good correlation, offset far from
        # the stage model -- the case a confidence threshold cannot see.
        d = make_disp(rows=4, cols=4)
        d.west[2][2] = Translation(0.95, 50 - 40, 30)
        a = assess_quality(d, QualityConfig())
        q = a.quality("west", 2, 2)
        assert q.gated
        assert q.reasons == ("stage_outlier",)
        assert q.stage_deviation > a.stage_model["west"].radius

    def test_small_jitter_does_not_gate(self):
        d = make_disp(rows=4, cols=4)
        d.west[2][2] = Translation(0.9, 53, -2)  # within the 8 px floor
        a = assess_quality(d, QualityConfig())
        assert not a.quality("west", 2, 2).gated

    def test_explicit_stage_radius(self):
        d = make_disp(rows=4, cols=4)
        d.west[2][2] = Translation(0.9, 53, -2)
        a = assess_quality(d, QualityConfig(stage_radius=1.0))
        assert a.quality("west", 2, 2).gated

    def test_peak_ratio_gate(self):
        d = make_disp()
        d.west[1][1] = Translation(0.9, 50, 0, peak_ratio=1.01)
        d.west[1][2] = Translation(0.9, 50, 0, peak_ratio=2.0)
        a = assess_quality(d, QualityConfig(min_peak_ratio=1.1))
        assert a.quality("west", 1, 1).gated
        assert "low_peak_ratio" in a.quality("west", 1, 1).reasons
        assert not a.quality("west", 1, 2).gated

    def test_missing_peak_ratio_passes_gate(self):
        # n_peaks=1 runs and pre-gate journals carry no ratio.
        a = assess_quality(make_disp(), QualityConfig(min_peak_ratio=2.0))
        assert a.gated_pairs == 0

    def test_no_model_below_min_valid(self):
        d = DisplacementResult.empty(2, 2)
        d.west[0][1] = Translation(0.9, 50, 0)
        d.west[1][1] = Translation(0.9, 50, 0)
        a = assess_quality(d, QualityConfig(min_valid_for_model=3))
        assert "west" not in a.stage_model
        # Nominal fallback still exists for demotion targets.
        assert a.nominal_translation("west") == (0.0, 50.0)

    def test_nominal_translation_order_is_dy_dx(self):
        a = assess_quality(make_disp(), QualityConfig())
        assert a.nominal_translation("west") == (0.0, 50.0)
        assert a.nominal_translation("north") == (48.0, 0.0)

    def test_report_is_json_able(self):
        import json

        d = make_disp()
        d.west[1][1] = Translation(0.05, 50, 0)
        a = assess_quality(d, QualityConfig())
        rep = a.report()
        json.dumps(rep)
        assert rep["pair_count"] == 12
        assert rep["gated_pairs"] == 1
        assert rep["gate_reasons"] == {"low_correlation": 1}
        assert "west" in rep["stage_model"]

    def test_empty_grid(self):
        a = assess_quality(DisplacementResult.empty(1, 1), QualityConfig())
        assert a.pairs == {}
        assert a.gated_pairs == 0
        assert a.report()["pair_count"] == 0

    def test_all_non_finite_direction_cannot_demote(self):
        # No finite translation to demote onto: pairs keep their
        # measurements (gated=False) but carry the failure reasons.
        d = DisplacementResult.empty(1, 3)
        d.west[0][1] = Translation(float("nan"), 0, 0, tx_f=float("nan"), ty_f=float("nan"))
        d.west[0][2] = Translation(float("nan"), 0, 0, tx_f=float("nan"), ty_f=float("nan"))
        a = assess_quality(d, QualityConfig())
        for q in a.pairs.values():
            assert not q.gated
            assert "non_finite" in q.reasons
