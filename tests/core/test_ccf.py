"""Cross-correlation factor and overlap-view geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ccf import ccf, ccf_at, overlap_views


class TestCcf:
    def test_identical_views_correlate_perfectly(self):
        a = np.random.default_rng(0).random((10, 10))
        assert ccf(a, a) == pytest.approx(1.0)

    def test_negated_views_anticorrelate(self):
        a = np.random.default_rng(1).random((10, 10))
        assert ccf(a, -a) == pytest.approx(-1.0)

    def test_affine_invariance(self):
        a = np.random.default_rng(2).random((8, 8))
        assert ccf(a, 3.0 * a + 10.0) == pytest.approx(1.0)

    def test_constant_view_returns_sentinel(self):
        a = np.random.default_rng(3).random((5, 5))
        assert ccf(a, np.full((5, 5), 2.0)) == -1.0
        assert ccf(np.zeros((5, 5)), a) == -1.0

    def test_empty_views(self):
        e = np.zeros((0, 0))
        assert ccf(e, e) == -1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ccf(np.zeros((2, 2)), np.zeros((3, 3)))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.random((6, 6)), rng.random((6, 6))
        assert -1.0 <= ccf(a, b) <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        a, b = rng.random((7, 7)), rng.random((7, 7))
        assert ccf(a, b) == pytest.approx(ccf(b, a))


class TestOverlapViews:
    def test_positive_offsets(self):
        a = np.arange(36.0).reshape(6, 6)
        b = np.arange(36.0).reshape(6, 6)
        v1, v2 = overlap_views(a, b, tx=4, ty=2)
        assert v1.shape == (4, 2)
        assert np.array_equal(v1, a[2:6, 4:6])
        assert np.array_equal(v2, b[0:4, 0:2])

    def test_negative_offsets(self):
        a = np.arange(36.0).reshape(6, 6)
        v1, v2 = overlap_views(a, a, tx=-4, ty=-2)
        assert v1.shape == (4, 2)
        assert np.array_equal(v1, a[0:4, 0:2])
        assert np.array_equal(v2, a[2:6, 4:6])

    def test_views_not_copies(self):
        a = np.zeros((6, 6))
        v1, _ = overlap_views(a, a, 1, 1)
        assert v1.base is a

    def test_out_of_range_is_empty(self):
        a = np.zeros((6, 6))
        v1, v2 = overlap_views(a, a, tx=6, ty=0)
        assert v1.size == 0 and v2.size == 0

    @given(
        ty=st.integers(-7, 7), tx=st.integers(-7, 7),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_views_agree_for_true_shift_of_same_source(self, ty, tx, seed):
        """Cut two windows of one plate at relative offset (tx, ty): the
        overlap views must be pixel-identical and ccf_at must return 1."""
        rng = np.random.default_rng(seed)
        plate = rng.random((40, 40))
        base = 10
        a = plate[base : base + 8, base : base + 8]
        b = plate[base + ty : base + ty + 8, base + tx : base + tx + 8]
        v1, v2 = overlap_views(a, b, tx, ty)
        assert v1.shape == v2.shape
        if v1.size:
            assert np.array_equal(v1, v2)
            if v1.std() > 0:
                assert ccf_at(a, b, tx, ty) == pytest.approx(1.0)
