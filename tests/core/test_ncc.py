"""Normalized correlation coefficient: unit magnitude, peak convention."""

import numpy as np
import pytest
import scipy.fft as sf
from hypothesis import given, settings, strategies as st

from repro.core.ncc import normalized_correlation
from repro.core.peak import peak_location


class TestNormalizedCorrelation:
    def test_unit_magnitude_everywhere_signal(self):
        rng = np.random.default_rng(0)
        fa = sf.fft2(rng.random((16, 16)))
        fb = sf.fft2(rng.random((16, 16)))
        ncc = normalized_correlation(fa, fb)
        mags = np.abs(ncc)
        assert np.allclose(mags[mags > 1e-6], 1.0)

    def test_zero_bins_stay_zero(self):
        z = np.zeros((8, 8), dtype=np.complex128)
        ncc = normalized_correlation(z, z)
        assert np.all(ncc == 0)

    def test_in_place_output_aliasing(self):
        rng = np.random.default_rng(1)
        fa = sf.fft2(rng.random((8, 8)))
        fb = sf.fft2(rng.random((8, 8)))
        expected = normalized_correlation(fa.copy(), fb)
        result = normalized_correlation(fa, fb, out=fa)
        assert result is fa
        assert np.allclose(result, expected)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_correlation(
                np.zeros((4, 4), dtype=complex), np.zeros((4, 5), dtype=complex)
            )

    @settings(max_examples=40, deadline=None)
    @given(
        ty=st.integers(0, 15),
        tx=st.integers(0, 15),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_circular_shift_peak_convention(self, ty, tx, seed):
        """With I_j(p) = I_i(p + t), the inverse NCC peaks exactly at t.

        This pins the sign convention the whole package depends on.
        """
        rng = np.random.default_rng(seed)
        img = rng.random((16, 16))
        shifted = np.roll(img, (-ty, -tx), axis=(0, 1))
        ncc = normalized_correlation(sf.fft2(img), sf.fft2(shifted))
        mag, py, px = peak_location(sf.ifft2(ncc))
        assert (py, px) == (ty, tx)
        assert mag == pytest.approx(1.0, abs=1e-6)

    def test_illumination_invariance(self):
        """Phase correlation ignores gain/offset differences between tiles."""
        rng = np.random.default_rng(2)
        img = rng.random((32, 32))
        shifted = np.roll(img, (-3, -5), axis=(0, 1)) * 1.7 + 0.4
        ncc = normalized_correlation(sf.fft2(img), sf.fft2(shifted))
        _, py, px = peak_location(sf.ifft2(ncc))
        assert (py, px) == (3, 5)
