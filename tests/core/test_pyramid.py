"""Mosaic pyramid: downsampling, windowed rendering, laziness."""

import numpy as np
import pytest

from repro.core.compose import BlendMode, compose
from repro.core.global_opt import GlobalPositions
from repro.core.pyramid import MosaicPyramid, downsample


class TestDownsample:
    def test_factor_one_identity(self):
        a = np.random.default_rng(0).random((7, 9))
        assert np.array_equal(downsample(a, 1), a)

    def test_block_mean(self):
        a = np.array([[0.0, 2.0], [4.0, 6.0]])
        assert downsample(a, 2) == pytest.approx(np.array([[3.0]]))

    def test_non_divisible_edges_padded(self):
        a = np.ones((5, 7))
        out = downsample(a, 2)
        assert out.shape == (3, 4)
        assert np.allclose(out, 1.0)  # edge padding preserves constants

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            downsample(np.ones((4, 4)), 0)


def grid_positions(rows, cols, step):
    pos = np.zeros((rows, cols, 2), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            pos[r, c] = (r * step, c * step)
    return GlobalPositions(positions=pos, method="test")


class TestMosaicPyramid:
    def make(self, rows=3, cols=3, th=16, tw=16, step=12, **kw):
        rng = np.random.default_rng(1)
        tiles = {
            (r, c): rng.random((th, tw)) for r in range(rows) for c in range(cols)
        }
        gp = grid_positions(rows, cols, step)
        pyr = MosaicPyramid(lambda r, c: tiles[(r, c)], gp, (th, tw), **kw)
        return pyr, tiles, gp

    def test_level0_full_render_matches_compose(self):
        pyr, tiles, gp = self.make()
        full = pyr.render(level=0)
        ref = compose(lambda r, c: tiles[(r, c)], gp, (16, 16),
                      BlendMode.OVERLAY, dtype=np.float64)
        assert np.allclose(full, ref)

    def test_level_shapes_halve(self):
        pyr, _, gp = self.make(levels=3)
        h0, w0 = pyr.level_shape(0)
        h1, w1 = pyr.level_shape(1)
        assert h1 == (h0 + 1) // 2 and w1 == (w0 + 1) // 2

    def test_region_matches_full_crop(self):
        pyr, _, _ = self.make()
        full = pyr.render(level=0)
        window = pyr.render_region(5, 7, 11, 13, level=0)
        assert np.allclose(window, full[5:16, 7:20])

    def test_windowed_render_is_lazy(self):
        pyr, _, _ = self.make(rows=4, cols=4, step=16)  # abutting tiles
        pyr.render_region(0, 0, 16, 16, level=0)  # viewport = first tile
        assert pyr.tile_fetches == 1

    def test_cache_bounds_fetches(self):
        pyr, _, _ = self.make(cache_tiles=100)
        pyr.render(level=0)
        pyr.render(level=0)
        assert pyr.tile_fetches == 9  # second render fully cached

    def test_average_blend_in_window(self):
        rows = cols = 2
        gp = grid_positions(rows, cols, 8)
        pyr = MosaicPyramid(
            lambda r, c: np.full((16, 16), float(r * 2 + c + 1)), gp, (16, 16)
        )
        win = pyr.render_region(8, 8, 8, 8, blend=BlendMode.AVERAGE)
        assert win[0, 0] == pytest.approx((1 + 2 + 3 + 4) / 4)

    def test_downsampled_level_approximates_mean(self):
        pyr, tiles, _ = self.make(levels=2)
        lvl1 = pyr.render(level=1)
        lvl0 = pyr.render(level=0)
        assert lvl1.mean() == pytest.approx(lvl0.mean(), rel=0.1)

    def test_validation(self):
        pyr, _, _ = self.make()
        with pytest.raises(ValueError):
            pyr.level_factor(99)
        with pytest.raises(ValueError):
            pyr.render_region(0, 0, 0, 5)
        with pytest.raises(ValueError):
            pyr.render_region(0, 0, 5, 5, blend=BlendMode.LINEAR)
        with pytest.raises(ValueError):
            self.make(levels=0)
        with pytest.raises(ValueError):
            self.make(th=4, tw=4, levels=8)  # tiles vanish

    def test_end_to_end_with_stitcher(self, dataset_4x4):
        from repro.core.stitcher import Stitcher

        res = Stitcher().stitch(dataset_4x4)
        pyr = MosaicPyramid(dataset_4x4.load, res.positions,
                            dataset_4x4.tile_shape, levels=3)
        thumb = pyr.render(level=2)
        assert thumb.shape == pyr.level_shape(2)
        assert thumb.max() > 0
