"""Summed-area-table CCF statistics vs the direct Pearson scan.

``ccf_at_stats`` must reproduce ``ccf_at`` to 1e-9 on every overlap the
CCF contest can present (the SAT path evaluates the same Pearson r in a
different summation order), and the degenerate sentinels (empty overlap,
constant tile) must match *exactly* -- they decide contest outcomes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ccf import ccf_at, overlap_views, subpixel_refine
from repro.core.pciam import pciam
from repro.core.tilestats import TileStats, ccf_at_stats, subpixel_refine_stats
from repro.fftlib.plans import PlanCache, TransformKind
from repro.synth.specimen import generate_plate

PLATE = generate_plate(260, 260, seed=3)


def cut_pair(ty, tx, size=80, base=40):
    return (
        PLATE[base : base + size, base : base + size],
        PLATE[base + ty : base + ty + size, base + tx : base + tx + size],
    )


class TestRect:
    def test_rect_matches_direct_sums(self):
        rng = np.random.default_rng(17)
        tile = rng.normal(size=(33, 41))
        s = TileStats(tile)
        px = s.pixels  # mean-shifted copy the table was built from
        for _ in range(50):
            y0, y1 = sorted(rng.integers(0, 34, size=2))
            x0, x1 = sorted(rng.integers(0, 42, size=2))
            got_sum, got_sq = s.rect(y0, y1, x0, x1)
            view = px[y0:y1, x0:x1]
            assert got_sum == pytest.approx(view.sum(), abs=1e-9)
            assert got_sq == pytest.approx((view**2).sum(), abs=1e-9)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            TileStats(np.zeros(8))

    def test_nbytes_counts_pixels_and_table(self):
        s = TileStats(np.zeros((16, 16)))
        assert s.nbytes == 16 * 16 * 8 + 17 * 17 * 16


class TestCcfAtStats:
    @settings(max_examples=40, deadline=None)
    @given(
        ty=st.integers(-70, 70),
        tx=st.integers(-70, 70),
    )
    def test_matches_direct_pearson(self, ty, tx):
        img1, img2 = cut_pair(5, 60)
        got = ccf_at_stats(TileStats(img1), TileStats(img2), tx, ty)
        want = ccf_at(img1, img2, tx, ty)
        v1, v2 = overlap_views(img1, img2, tx, ty)
        if v1.size and min(v1.std(), v2.std()) > 1e-6:
            # Textured overlap: the two arithmetic paths must agree tightly.
            assert got == pytest.approx(want, abs=1e-9)
        else:
            # Degenerate overlap (empty, or a constant background strip of
            # the plate): both paths must score a guaranteed contest loser.
            # The SAT path returns the -1.0 sentinel deterministically; the
            # direct path returns -1.0 or the Pearson r of pure rounding
            # noise (~1e-15), depending on whether the constant view's mean
            # reconstructs bit-exactly.
            assert got == -1.0
            assert want == -1.0 or abs(want) < 1e-6

    def test_matches_on_random_noise(self):
        rng = np.random.default_rng(29)
        img1 = rng.normal(size=(48, 56))
        img2 = rng.normal(size=(48, 56))
        s1, s2 = TileStats(img1), TileStats(img2)
        for tx, ty in [(0, 0), (40, 3), (-40, -3), (10, -44), (-55, 47)]:
            assert ccf_at_stats(s1, s2, tx, ty) == pytest.approx(
                ccf_at(img1, img2, tx, ty), abs=1e-9
            )

    def test_empty_overlap_is_minus_one(self):
        img1, img2 = cut_pair(0, 0, size=32)
        s1, s2 = TileStats(img1), TileStats(img2)
        for tx, ty in [(32, 0), (-32, 0), (0, 32), (0, -32), (100, 100)]:
            assert ccf_at_stats(s1, s2, tx, ty) == -1.0
            assert ccf_at(img1, img2, tx, ty) == -1.0

    def test_constant_tile_is_exactly_minus_one(self):
        """Globally constant tiles must hit the -1.0 sentinel bit-for-bit.

        Mean-shifting makes a constant tile's pixels exactly zero, so its
        rectangle variance is exactly 0.0 -- no rounding-noise escape.
        """
        flat = np.full((40, 40), 37.5)
        textured = cut_pair(0, 0, size=40)[0]
        s_flat, s_tex = TileStats(flat), TileStats(textured)
        assert ccf_at_stats(s_flat, s_tex, 5, 5) == -1.0
        assert ccf_at_stats(s_tex, s_flat, 5, 5) == -1.0
        assert ccf_at_stats(s_flat, s_flat, 5, 5) == -1.0
        assert ccf_at(flat, textured, 5, 5) == -1.0

    def test_constant_rectangle_inside_textured_tile(self):
        """A locally flat overlap inside an otherwise textured tile."""
        img1 = cut_pair(0, 0, size=64)[0].copy()
        # 0.5 is binary-exact under mean reconstruction, so the *direct*
        # path's constant-view sentinel fires too (it relies on the view
        # minus its recomputed mean being exactly zero).
        img1[:16, :16] = 0.5
        img2 = cut_pair(0, 0, size=64)[1]
        # At (-48, -48) the overlap in img1 is exactly the flat 16x16
        # patch: both paths must return the degenerate sentinel.
        got = ccf_at_stats(TileStats(img1), TileStats(img2), -48, -48)
        want = ccf_at(img1, img2, -48, -48)
        assert want == -1.0
        assert got == -1.0

    def test_clamped_to_unit_interval(self):
        img = cut_pair(0, 0, size=48)[0]
        s = TileStats(img)
        assert ccf_at_stats(s, s, 0, 0) == 1.0


class TestSubpixelStats:
    @pytest.mark.parametrize("ty,tx", [(4, 58), (0, 62), (-3, 55)])
    def test_matches_direct_refine(self, ty, tx):
        img1, img2 = cut_pair(ty, tx)
        sx, sy = subpixel_refine_stats(TileStats(img1), TileStats(img2), tx, ty)
        dx, dy = subpixel_refine(img1, img2, tx, ty)
        assert sx == pytest.approx(dx, abs=1e-6)
        assert sy == pytest.approx(dy, abs=1e-6)


class TestC2rPlanCache:
    def test_pciam_real_inverse_hits_plan_cache(self):
        """Satellite check: the real inverse routes through a cached C2R plan.

        The first pair plants one C2R plan keyed by the *spatial* shape;
        subsequent pairs of the same shape must reuse that very object.
        """
        img_i, img_j = cut_pair(5, 60)
        cache = PlanCache()
        assert cache.cached(img_i.shape, TransformKind.C2R) is None
        r1 = pciam(img_i, img_j, real_transforms=True, cache=cache)
        plan = cache.cached(img_i.shape, TransformKind.C2R)
        assert plan is not None
        r2 = pciam(img_i, img_j, real_transforms=True, cache=cache)
        assert cache.cached(img_i.shape, TransformKind.C2R) is plan
        assert (r1.tx, r1.ty) == (r2.tx, r2.ty)
