"""Sub-pixel registration via parabolic CCF interpolation."""

import numpy as np
import pytest
from scipy.ndimage import shift as nd_shift

from repro.core.ccf import _parabolic_vertex, subpixel_refine
from repro.core.pciam import CcfMode, pciam
from repro.synth.specimen import generate_plate

PLATE = generate_plate(360, 360, seed=21)
SIZE = 96


def fractional_pair(ty: float, tx: float, base: int = 90):
    """I_j is I_i's plate region shifted by a *fractional* translation
    (spline-interpolated), the regime integer PCIAM cannot resolve."""
    img_i = PLATE[base : base + SIZE, base : base + SIZE]
    big = PLATE[base - 8 : base + SIZE + 8, base - 8 : base + SIZE + 8]
    moved = nd_shift(big, ( -ty, -tx), order=3, mode="nearest")
    img_j = moved[8 : 8 + SIZE, 8 : 8 + SIZE]
    return img_i, img_j


class TestParabolicVertex:
    def test_symmetric_peak_centered(self):
        assert _parabolic_vertex(0.5, 1.0, 0.5) == 0.0

    def test_skewed_peak_shifts_toward_larger_neighbour(self):
        off = _parabolic_vertex(0.4, 1.0, 0.8)
        assert 0.0 < off <= 0.5
        off = _parabolic_vertex(0.8, 1.0, 0.4)
        assert -0.5 <= off < 0.0

    def test_degenerate_cases_return_zero(self):
        assert _parabolic_vertex(1.0, 1.0, 1.0) == 0.0   # flat
        assert _parabolic_vertex(2.0, 1.0, 2.0) == 0.0   # convex

    def test_exact_parabola_recovered(self):
        # y = 1 - (x - 0.3)^2 sampled at -1, 0, 1.
        f = lambda x: 1 - (x - 0.3) ** 2
        assert _parabolic_vertex(f(-1), f(0), f(1)) == pytest.approx(0.3)


class TestSubpixelRefine:
    @pytest.mark.parametrize("ty,tx", [(0.3, 0.0), (0.0, -0.4), (0.25, 0.35)])
    def test_recovers_fractional_shift(self, ty, tx):
        img_i, img_j = fractional_pair(ty, tx)
        tx_f, ty_f = subpixel_refine(img_i, img_j, 0, 0)
        assert tx_f == pytest.approx(tx, abs=0.15)
        assert ty_f == pytest.approx(ty, abs=0.15)

    def test_integer_shift_stays_integer(self):
        img_i = PLATE[50 : 50 + SIZE, 50 : 50 + SIZE]
        img_j = PLATE[53 : 53 + SIZE, 120 : 120 + SIZE]
        tx_f, ty_f = subpixel_refine(img_i, img_j, 70, 3)
        assert tx_f == pytest.approx(70.0, abs=0.1)
        assert ty_f == pytest.approx(3.0, abs=0.1)

    def test_offsets_bounded_by_half_pixel(self):
        img_i, img_j = fractional_pair(0.49, 0.49)
        tx_f, ty_f = subpixel_refine(img_i, img_j, 0, 0)
        assert abs(tx_f) <= 0.5 and abs(ty_f) <= 0.5


class TestPciamSubpixel:
    def test_subpixel_option_returns_fractional(self):
        img_i, img_j = fractional_pair(0.3, 0.4)
        r = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2,
                  subpixel=True)
        assert (r.ty, r.tx) == (0, 0)  # integer part unchanged
        assert r.tx_f == pytest.approx(0.4, abs=0.15)
        assert r.ty_f == pytest.approx(0.3, abs=0.15)

    def test_default_floats_equal_integers(self):
        img_i = PLATE[50 : 50 + SIZE, 50 : 50 + SIZE]
        img_j = PLATE[55 : 55 + SIZE, 120 : 120 + SIZE]
        r = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        assert (r.tx_f, r.ty_f) == (float(r.tx), float(r.ty))
