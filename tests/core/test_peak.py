"""Peak reduction and periodic interpretation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.peak import peak_candidates, peak_location, top_peaks


class TestPeakLocation:
    def test_finds_planted_max(self):
        a = np.zeros((8, 10), dtype=complex)
        a[3, 7] = 5.0 - 2.0j
        mag, py, px = peak_location(a)
        assert (py, px) == (3, 7)
        assert mag == pytest.approx(abs(5.0 - 2.0j))

    def test_magnitude_not_real_part(self):
        a = np.zeros((4, 4), dtype=complex)
        a[0, 0] = 1.0       # real 1
        a[2, 2] = -3.0j     # |.| = 3 but real part 0
        _, py, px = peak_location(a)
        assert (py, px) == (2, 2)


class TestTopPeaks:
    def test_ordered_by_magnitude(self):
        a = np.zeros((6, 6), dtype=complex)
        a[1, 1], a[2, 2], a[3, 3] = 3.0, 5.0, 4.0
        peaks = top_peaks(a, 3)
        assert [(py, px) for _, py, px in peaks] == [(2, 2), (3, 3), (1, 1)]

    def test_k_capped_at_size(self):
        a = np.ones((2, 2), dtype=complex)
        assert len(top_peaks(a, 99)) == 4

    def test_k_one_matches_peak_location(self):
        rng = np.random.default_rng(0)
        a = rng.random((9, 9)) + 1j * rng.random((9, 9))
        assert top_peaks(a, 1)[0] == peak_location(a)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_peaks(np.ones((2, 2), dtype=complex), 0)


class TestPeakCandidates:
    def test_paper4_combinations(self):
        # Fig. 2: (x | w-x) crossed with (y | h-y).
        cands = peak_candidates(5, 90, (128, 128))
        assert set(cands) == {(90, 5), (38, 5), (90, 123), (38, 123)}

    def test_extended_signed_aliases(self):
        cands = peak_candidates(5, 90, (128, 128), extended=True)
        assert set(cands) == {(90, 5), (-38, 5), (90, -123), (-38, -123)}

    def test_zero_peak_degenerates(self):
        cands = peak_candidates(0, 0, (64, 64))
        assert (0, 0) in cands

    def test_out_of_range_peak_rejected(self):
        with pytest.raises(ValueError):
            peak_candidates(64, 0, (64, 64))

    @given(
        h=st.integers(2, 64), w=st.integers(2, 64),
        py=st.integers(0, 63), px=st.integers(0, 63),
    )
    def test_extended_contains_all_true_aliases(self, h, w, py, px):
        """Any translation congruent to the peak mod (H, W) with components
        in (-W, W) x (-H, H) appears among extended candidates."""
        if py >= h or px >= w:
            return
        cands = set(peak_candidates(py, px, (h, w), extended=True))
        for ty in (py, py - h):
            for tx in (px, px - w):
                assert (tx, ty) in cands
