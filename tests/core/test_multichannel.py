"""Multi-channel stitching: register once, compose everywhere."""

import numpy as np
import pytest

from repro.core.stitcher import Stitcher
from repro.io.dataset import TileDataset
from repro.synth import make_synthetic_dataset
from repro.synth.microscope import ScanPlan, StageModel, VirtualMicroscope
from repro.synth.noise import CameraModel
from repro.synth.specimen import generate_plate


@pytest.fixture(scope="module")
def two_channels(tmp_path_factory):
    """Two channels of the *same* scan: identical stage positions, the
    second channel dimmer and noisier (a typical second fluorophore)."""
    root = tmp_path_factory.mktemp("channels")
    stage = StageModel(jitter_sigma=1.5, backlash_x=2.0, max_error=6.0)
    plan = ScanPlan(3, 4, tile_height=64, tile_width=64, overlap=0.25)
    margin = 8
    from repro.synth.specimen import SpecimenParams

    # Modest colony density: the default 24-colony load saturates a plate
    # this small to solid white, leaving no texture to register on.
    specimen = SpecimenParams(colony_count=4, cells_per_colony=20,
                              colony_radius=12.0, cell_radius=2.0)
    plate = generate_plate(*plan.plate_shape(margin), specimen, seed=50)

    scope = VirtualMicroscope(stage=stage, camera=CameraModel(), seed=5)
    tiles_a, pos = scope.scan(plate, plan, margin)

    # Channel B: same positions (same scan), different optics/noise.
    dim_cam = CameraModel(full_well=6000.0, read_noise=40.0)
    rng = np.random.default_rng(99)
    tiles_b = np.empty_like(tiles_a)
    for r in range(3):
        for c in range(4):
            y, x = pos[r, c]
            fov = plate[y : y + 64, x : x + 64] * 0.6
            tiles_b[r, c] = dim_cam.expose(fov, rng)

    ds_a = TileDataset.create(root / "ch0", tiles_a, overlap=0.25, true_positions=pos)
    ds_b = TileDataset.create(root / "ch1", tiles_b, overlap=0.25, true_positions=pos)
    return ds_a, ds_b


class TestStitchChannels:
    def test_shared_positions(self, two_channels):
        ds_a, ds_b = two_channels
        res_a, res_b = Stitcher().stitch_channels([ds_a, ds_b])
        assert res_a.position_errors().max() == 0.0
        assert np.array_equal(res_a.positions.positions, res_b.positions.positions)
        assert res_b.stats == {"positions_from_channel": 0}

    def test_secondary_channel_composes(self, two_channels):
        ds_a, ds_b = two_channels
        _, res_b = Stitcher().stitch_channels([ds_a, ds_b])
        mosaic = res_b.compose()
        assert mosaic.shape == res_b.positions.mosaic_shape(ds_b.tile_shape)
        assert mosaic.max() > 0

    def test_positions_correct_for_secondary_too(self, two_channels):
        """Ground truth is shared, so channel B's reused positions must
        score perfectly against B's own metadata."""
        ds_a, ds_b = two_channels
        _, res_b = Stitcher().stitch_channels([ds_a, ds_b])
        assert res_b.position_errors().max() == 0.0

    def test_reference_selection(self, two_channels):
        ds_a, ds_b = two_channels
        res_a, res_b = Stitcher().stitch_channels([ds_a, ds_b], reference=1)
        assert res_a.stats == {"positions_from_channel": 1}

    def test_geometry_mismatch_rejected(self, two_channels, tmp_path):
        ds_a, _ = two_channels
        other = make_synthetic_dataset(tmp_path / "odd", rows=2, cols=2,
                                       tile_height=64, tile_width=64)
        with pytest.raises(ValueError, match="geometry"):
            Stitcher().stitch_channels([ds_a, other])

    def test_validation(self, two_channels):
        ds_a, _ = two_channels
        with pytest.raises(ValueError):
            Stitcher().stitch_channels([])
        with pytest.raises(IndexError):
            Stitcher().stitch_channels([ds_a], reference=3)


class TestProvenancePropagation:
    """Dependent channels inherit the reference run's provenance.

    Positions already flow across channels; these tests pin down that the
    *context* of those positions -- skip policy, fault report, quality
    report -- flows with them, so a dependent channel's compose() leaves
    holes exactly where the reference registration dropped tiles.
    """

    def test_skip_policy_and_fault_report_shared(self, two_channels):
        from repro.faults import FaultPlan

        ds_a, ds_b = two_channels
        plan = FaultPlan.random(3, 4, seed=9, missing=1, corrupt=1,
                                transient=0, slow=0)
        res_a, res_b = Stitcher(
            max_retries=1, on_tile_error="skip"
        ).stitch_channels([plan.wrap_dataset(ds_a), ds_b])

        assert res_b.on_tile_error == "skip"
        # Same object, not a copy: one registration, one report.
        assert res_b.stats["fault_report"] is res_a.stats["fault_report"]
        assert res_b.skipped_tiles() == res_a.skipped_tiles()
        assert len(res_b.skipped_tiles()) == 2
        assert res_b.stats["positions_from_channel"] == 0
        assert np.array_equal(res_a.positions.positions,
                              res_b.positions.positions)

    def test_dependent_compose_masks_reference_holes(self, two_channels):
        from repro.faults import FaultPlan

        ds_a, ds_b = two_channels
        plan = FaultPlan.random(3, 4, seed=9, missing=1, corrupt=1,
                                transient=0, slow=0)
        res_a, res_b = Stitcher(
            max_retries=1, on_tile_error="skip"
        ).stitch_channels([plan.wrap_dataset(ds_a), ds_b])
        _, mask_a = res_a.compose(return_mask=True)
        _, mask_b = res_b.compose(return_mask=True)
        # Channel B's tiles are all readable, yet its mosaic must carry
        # the same holes: those positions were never registered.
        assert np.array_equal(mask_a, mask_b)
        assert int(mask_b.sum()) == 3 * 4 - 2

    def test_quality_report_shared(self, two_channels):
        ds_a, ds_b = two_channels
        res_a, res_b = Stitcher(quality=True).stitch_channels([ds_a, ds_b])
        assert "quality_report" in res_a.stats
        assert res_b.stats["quality_report"] is res_a.stats["quality_report"]

    def test_clean_run_stats_stay_minimal(self, two_channels):
        """No fault policy, no gate: the dependent stats dict stays the
        historical one-key shape (nothing leaks in unconditionally)."""
        ds_a, ds_b = two_channels
        _, res_b = Stitcher().stitch_channels([ds_a, ds_b])
        assert res_b.stats == {"positions_from_channel": 0}
        assert res_b.on_tile_error == "abort"
