"""PCIAM: pairwise alignment recovery on synthetic overlaps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pciam import CcfMode, forward_fft, pciam, smooth_fft_shape
from repro.synth.specimen import generate_plate

PLATE = generate_plate(320, 320, seed=3)
H = W = 96


def cut_pair(ty: int, tx: int, base: int = 60):
    """Two windows of the shared plate, I_j offset (tx, ty) from I_i."""
    img_i = PLATE[base : base + H, base : base + W]
    img_j = PLATE[base + ty : base + ty + H, base + tx : base + tx + W]
    return img_i, img_j


class TestPciamRecovery:
    @pytest.mark.parametrize("ty,tx", [(5, 70), (0, 80), (3, 76), (76, -4), (72, 2)])
    def test_extended_mode_exact(self, ty, tx):
        r = pciam(*cut_pair(ty, tx), ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        assert (r.ty, r.tx) == (ty, tx)
        assert r.correlation == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("ty,tx", [(5, 70), (0, 80), (70, 3)])
    def test_paper4_mode_exact_for_nonnegative_shifts(self, ty, tx):
        r = pciam(*cut_pair(ty, tx), ccf_mode=CcfMode.PAPER4)
        assert (r.ty, r.tx) == (ty, tx)

    def test_paper4_folds_negative_offsets(self):
        """The Fig. 2 scheme cannot represent a negative component: it
        reports the folded positive alias (this is why MIST extended it)."""
        r4 = pciam(*cut_pair(76, -4), ccf_mode=CcfMode.PAPER4)
        rx = pciam(*cut_pair(76, -4), ccf_mode=CcfMode.EXTENDED)
        assert (rx.ty, rx.tx) == (76, -4)
        assert r4.tx >= 0
        assert r4.correlation <= rx.correlation

    @settings(max_examples=20, deadline=None)
    @given(ty=st.integers(-6, 6), tx=st.integers(60, 80))
    def test_random_west_pair_geometry(self, ty, tx):
        r = pciam(*cut_pair(ty, tx), ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        assert (r.ty, r.tx) == (ty, tx)

    def test_identical_tiles_give_zero_shift(self):
        img, _ = cut_pair(0, 0)
        r = pciam(img, img)
        assert (r.ty, r.tx) == (0, 0)
        assert r.correlation == pytest.approx(1.0)


class TestPciamInterfaces:
    def test_precomputed_transforms_match_internal(self):
        img_i, img_j = cut_pair(4, 72)
        fft_i = forward_fft(img_i)
        fft_j = forward_fft(img_j)
        r1 = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED)
        r2 = pciam(img_i, img_j, fft_i=fft_i, fft_j=fft_j, ccf_mode=CcfMode.EXTENDED)
        assert (r1.ty, r1.tx, r1.correlation) == (r2.ty, r2.tx, r2.correlation)

    def test_padded_fft_shape_recovers_same_answer(self):
        """The paper's padding optimization must not change results."""
        img_i, img_j = cut_pair(5, 70)
        for shape in [(100, 108), (128, 128)]:
            r = pciam(img_i, img_j, fft_shape=shape, ccf_mode=CcfMode.EXTENDED, n_peaks=2)
            assert (r.ty, r.tx) == (5, 70)

    def test_smooth_fft_shape_of_paper_tile(self):
        assert smooth_fft_shape((1040, 1392)) == (1050, 1400)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pciam(np.zeros((8, 8)), np.zeros((8, 9)))

    def test_wrong_transform_shape_rejected(self):
        img_i, img_j = cut_pair(0, 70)
        bad = np.zeros((H + 1, W + 1), dtype=complex)
        with pytest.raises(ValueError):
            pciam(img_i, img_j, fft_i=bad, fft_j=bad)

    def test_result_tuple_protocol(self):
        r = pciam(*cut_pair(5, 70), ccf_mode=CcfMode.EXTENDED)
        corr, tx, ty = r
        assert (ty, tx) == (5, 70)
        assert corr == r.correlation

    def test_featureless_pair_reports_low_correlation(self):
        flat_i = np.full((32, 32), 5.0)
        flat_j = np.full((32, 32), 5.0)
        r = pciam(flat_i, flat_j)
        assert r.correlation == -1.0  # no usable signal, flagged as such
