"""Property-based invariants of the pairwise alignment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pciam import CcfMode, pciam
from repro.synth.specimen import generate_plate

PLATE = generate_plate(360, 360, seed=9)
SIZE = 96


def cut(ty, tx, base=80):
    return (
        PLATE[base : base + SIZE, base : base + SIZE],
        PLATE[base + ty : base + ty + SIZE, base + tx : base + tx + SIZE],
    )


class TestInvariances:
    @settings(max_examples=12, deadline=None)
    @given(
        ty=st.integers(-5, 5),
        tx=st.integers(64, 78),
        pad_h=st.integers(0, 24),
        pad_w=st.integers(0, 24),
    )
    def test_padding_invariance(self, ty, tx, pad_h, pad_w):
        """Any zero-padded FFT size recovers the same translation."""
        img_i, img_j = cut(ty, tx)
        r = pciam(img_i, img_j, fft_shape=(SIZE + pad_h, SIZE + pad_w),
                  ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        assert (r.ty, r.tx) == (ty, tx)

    @settings(max_examples=12, deadline=None)
    @given(
        gain=st.floats(0.2, 5.0),
        offset=st.floats(-0.5, 0.5),
        ty=st.integers(-4, 4),
        tx=st.integers(66, 76),
    )
    def test_affine_intensity_invariance(self, gain, offset, ty, tx):
        """Per-tile gain/offset (exposure differences) change nothing."""
        img_i, img_j = cut(ty, tx)
        r = pciam(img_i, gain * img_j + offset,
                  ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        assert (r.ty, r.tx) == (ty, tx)

    @settings(max_examples=12, deadline=None)
    @given(ty=st.integers(-4, 4), tx=st.integers(66, 76))
    def test_antisymmetry(self, ty, tx):
        """Swapping the pair negates the recovered translation."""
        img_i, img_j = cut(ty, tx)
        fwd = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        rev = pciam(img_j, img_i, ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        assert (rev.tx, rev.ty) == (-fwd.tx, -fwd.ty)
        assert rev.correlation == pytest.approx(fwd.correlation, abs=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(ty=st.integers(-4, 4), tx=st.integers(66, 76), k=st.integers(1, 6))
    def test_more_peaks_never_hurt(self, ty, tx, k):
        """The CCF contest over a superset of candidates can only find a
        better-or-equal winner."""
        img_i, img_j = cut(ty, tx)
        r1 = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=1)
        rk = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=k)
        assert rk.correlation >= r1.correlation - 1e-12

    @settings(max_examples=8, deadline=None)
    @given(ty=st.integers(0, 5), tx=st.integers(66, 76))
    def test_extended_superset_of_paper4_quality(self, ty, tx):
        """Extended candidates include enough of the paper4 set that the
        winning correlation is never worse."""
        img_i, img_j = cut(ty, tx)
        p4 = pciam(img_i, img_j, ccf_mode=CcfMode.PAPER4, n_peaks=2)
        ex = pciam(img_i, img_j, ccf_mode=CcfMode.EXTENDED, n_peaks=2)
        assert ex.correlation >= p4.correlation - 1e-9
