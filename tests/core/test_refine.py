"""Stage-model refinement: filtering, hill-climb repair."""

import numpy as np
import pytest

from repro.core.displacement import Translation, compute_grid_displacements
from repro.core.pciam import CcfMode
from repro.core.refine import RefineConfig, hill_climb, refine_displacements
from repro.core.stitcher import Stitcher
from repro.grid.neighbors import Direction
from repro.synth.specimen import generate_plate


class TestHillClimb:
    def test_converges_to_true_offset_from_nearby(self):
        plate = generate_plate(300, 300, seed=2)
        img_i = plate[50:146, 50:146]
        img_j = plate[53:149, 120:216]  # true (tx, ty) = (70, 3)
        t = hill_climb(img_i, img_j, tx0=66, ty0=0)
        assert (t.tx, t.ty) == (70, 3)
        assert t.correlation == pytest.approx(1.0, abs=1e-9)

    def test_start_clipped_into_range(self):
        plate = generate_plate(200, 200, seed=3)
        img = plate[20:84, 20:84]
        t = hill_climb(img, img, tx0=1000, ty0=-1000)
        assert abs(t.tx) < 64 and abs(t.ty) < 64

    def test_zero_steps_returns_start(self):
        plate = generate_plate(200, 200, seed=4)
        img = plate[20:84, 20:84]
        t = hill_climb(img, img, 5, 5, max_steps=0)
        assert (t.tx, t.ty) == (5, 5)


class TestRefineDisplacements:
    def _clean_disp(self, dataset):
        return compute_grid_displacements(
            dataset.load, dataset.rows, dataset.cols,
            ccf_mode=CcfMode.EXTENDED, n_peaks=2,
        )

    def test_clean_grid_untouched(self, dataset_4x4):
        disp = self._clean_disp(dataset_4x4)
        refined, report = refine_displacements(disp, dataset_4x4.load)
        assert report.repaired == 0
        for r in range(4):
            for c in range(4):
                for d in (Direction.WEST, Direction.NORTH):
                    a, b = disp.get(d, r, c), refined.get(d, r, c)
                    assert (a is None) == (b is None)
                    if a is not None:
                        assert (a.tx, a.ty) == (b.tx, b.ty)

    def test_repairs_injected_garbage(self, dataset_4x4):
        disp = self._clean_disp(dataset_4x4)
        truth = disp.west[2][2]
        disp.west[2][2] = Translation(-0.2, 5, 40)  # garbage, low confidence
        refined, report = refine_displacements(disp, dataset_4x4.load)
        assert report.repaired >= 1
        got = refined.west[2][2]
        assert abs(got.tx - truth.tx) <= 1 and abs(got.ty - truth.ty) <= 1

    def test_repairs_outlier_with_high_correlation(self, dataset_4x4):
        """An edge can be confidently wrong (periodic texture); the stage
        model flags it by its deviation from the median."""
        disp = self._clean_disp(dataset_4x4)
        truth = disp.north[2][1]
        disp.north[2][1] = Translation(0.95, truth.tx + 30, truth.ty - 25)
        refined, report = refine_displacements(disp, dataset_4x4.load)
        got = refined.north[2][1]
        assert report.repaired >= 1
        assert abs(got.tx - truth.tx) <= 1 and abs(got.ty - truth.ty) <= 1

    def test_report_medians_per_direction(self, dataset_4x4):
        disp = self._clean_disp(dataset_4x4)
        _, report = refine_displacements(disp, dataset_4x4.load)
        assert set(report.medians) == {"west", "north"}
        med_tx, med_ty, radius = report.medians["west"]
        assert 40 < med_tx < 64  # ~ (1 - overlap) * 64
        assert radius >= 4.0

    def test_too_few_trusted_edges_passthrough(self):
        """With no usable stage model nothing is repaired (nothing to
        anchor a repair on)."""
        from repro.core.displacement import DisplacementResult

        d = DisplacementResult.empty(1, 3)
        d.west[0][1] = Translation(-0.9, 1, 1)
        d.west[0][2] = Translation(-0.8, 2, 2)
        refined, report = refine_displacements(
            d, lambda r, c: np.zeros((8, 8)),
            RefineConfig(min_valid_for_model=2),
        )
        assert report.repaired == 0
        assert refined.west[0][1] is not None


class TestStitcherIntegration:
    def test_refine_option_in_stitcher(self, dataset_4x4):
        res = Stitcher(refine=True).stitch(dataset_4x4)
        assert "refined_pairs" in res.stats
        assert res.position_errors().max() == 0.0

    def test_refine_rescues_paper4_sign_folding(self, dataset_4x4):
        """PAPER4 folds negative jitter onto the wrong sign; the stage
        model catches those outliers and repairs them."""
        plain = Stitcher(ccf_mode=CcfMode.PAPER4, n_peaks=1).stitch(dataset_4x4)
        refined = Stitcher(
            ccf_mode=CcfMode.PAPER4, n_peaks=1, refine=True
        ).stitch(dataset_4x4)
        assert refined.stats["refined_pairs"] > 0
        assert refined.position_errors().max() <= plain.position_errors().max()
        # Large folds are repaired; sub-radius folds (a few px, inside the
        # stage's repeatability) are indistinguishable from jitter and may
        # survive -- the residual stays within the stage error envelope.
        assert refined.position_errors().max() <= 4.0
