"""Phase 3: composition and blend modes."""

import numpy as np
import pytest

from repro.core.compose import BlendMode, compose
from repro.core.displacement import DisplacementResult, Translation
from repro.core.global_opt import GlobalPositions


def positions_grid(rows, cols, step_y, step_x):
    pos = np.zeros((rows, cols, 2), dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            pos[r, c] = (r * step_y, c * step_x)
    return GlobalPositions(positions=pos, method="test")


class TestCompose:
    def make_tiles(self, rows=2, cols=2, th=8, tw=8, value_fn=None):
        tiles = {}
        for r in range(rows):
            for c in range(cols):
                v = value_fn(r, c) if value_fn else (r * cols + c + 1)
                tiles[(r, c)] = np.full((th, tw), float(v))
        return lambda r, c: tiles[(r, c)]

    def test_overlay_shape_and_coverage(self):
        load = self.make_tiles()
        gp = positions_grid(2, 2, 6, 6)
        m = compose(load, gp, (8, 8), BlendMode.OVERLAY)
        assert m.shape == (14, 14)
        assert m.dtype == np.float32
        assert np.all(m > 0)  # full coverage with overlapping tiles

    def test_overlay_last_write_wins(self):
        load = self.make_tiles()
        gp = positions_grid(2, 2, 6, 6)
        m = compose(load, gp, (8, 8), BlendMode.OVERLAY)
        assert m[13, 13] == 4.0   # tile (1,1) painted last
        assert m[7, 7] == 4.0     # overlap corner owned by last writer

    def test_average_blend_in_overlap(self):
        load = self.make_tiles(value_fn=lambda r, c: 2.0 if (r, c) == (0, 0) else 4.0)
        gp = positions_grid(1, 2, 0, 6)
        m = compose(load, gp, (8, 8), BlendMode.AVERAGE)
        assert m[0, 0] == 2.0
        assert m[0, 13] == 4.0
        assert m[0, 7] == pytest.approx(3.0)  # overlap column averaged

    def test_maximum_blend(self):
        load = self.make_tiles(value_fn=lambda r, c: 1.0 + r + c)
        gp = positions_grid(2, 2, 4, 4)
        m = compose(load, gp, (8, 8), BlendMode.MAXIMUM)
        assert m[5, 5] == 3.0  # interior overlap keeps the max tile

    def test_linear_blend_smooth_and_bounded(self):
        load = self.make_tiles(value_fn=lambda r, c: 2.0 if (r + c) % 2 == 0 else 4.0)
        gp = positions_grid(2, 2, 6, 6)
        m = compose(load, gp, (8, 8), BlendMode.LINEAR)
        covered = m[m > 0]
        assert covered.min() >= 2.0 - 1e-4 and covered.max() <= 4.0 + 1e-4

    def test_outline_draws_tile_borders(self):
        load = self.make_tiles(value_fn=lambda r, c: 1.0)
        gp = positions_grid(2, 2, 8, 8)  # abutting, no overlap
        m = compose(load, gp, (8, 8), BlendMode.OVERLAY, outline=True, outline_value=9.0)
        assert m[0, 0] == 9.0
        assert m[8, 3] == 9.0     # top edge of tile (1,0)
        assert m[4, 4] == 1.0     # interior untouched

    def test_wrong_tile_shape_rejected(self):
        gp = positions_grid(1, 1, 0, 0)
        with pytest.raises(ValueError):
            compose(lambda r, c: np.zeros((4, 4)), gp, (8, 8))

    def test_dtype_parameter(self):
        load = self.make_tiles(1, 1)
        gp = positions_grid(1, 1, 0, 0)
        m = compose(load, gp, (8, 8), dtype=np.float64)
        assert m.dtype == np.float64


class TestComposeAgainstGroundTruth:
    def test_full_plate_reconstruction(self, dataset_4x4):
        """End-of-pipeline check: stitched mosaic reproduces the plate
        region wherever the overlay covers it."""
        from repro.core.stitcher import Stitcher

        res = Stitcher().stitch(dataset_4x4)
        mosaic = res.compose(BlendMode.OVERLAY)
        true = np.asarray(dataset_4x4.metadata.true_positions)
        true0 = true - true.reshape(-1, 2).min(axis=0)
        # Every tile's pixels must appear at its true mosaic position
        # unless a later tile overwrote them; check the last tile fully.
        last = dataset_4x4.load(3, 3)
        y, x = true0[3, 3]
        region = mosaic[y : y + 64, x : x + 64]
        assert np.allclose(region, last.astype(np.float32))
