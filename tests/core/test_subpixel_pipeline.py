"""Sub-pixel support through displacement, global opt, and Stitcher."""

import numpy as np
import pytest

from repro.core.displacement import (
    DisplacementResult,
    Translation,
    compute_grid_displacements,
)
from repro.core.global_opt import resolve_absolute_positions
from repro.core.pciam import CcfMode
from repro.core.stitcher import Stitcher


class TestTranslationFloats:
    def test_defaults_to_integers(self):
        t = Translation(0.9, 50, 3)
        assert (t.fx, t.fy) == (50.0, 3.0)

    def test_carries_fractions(self):
        t = Translation(0.9, 50, 3, tx_f=50.3, ty_f=2.7)
        assert (t.fx, t.fy) == (50.3, 2.7)


class TestSubpixelGlobalOpt:
    def make(self):
        d = DisplacementResult.empty(2, 2)
        d.west[0][1] = Translation(1.0, 50, 0, 50.25, 0.0)
        d.west[1][1] = Translation(1.0, 50, 0, 50.25, 0.0)
        d.north[1][0] = Translation(1.0, 0, 48, 0.0, 47.5)
        d.north[1][1] = Translation(1.0, 0, 48, 0.0, 47.5)
        return d

    @pytest.mark.parametrize("method", ["mst", "least_squares"])
    def test_float_positions_exposed(self, method):
        gp = resolve_absolute_positions(self.make(), method, subpixel=True)
        assert gp.positions_f is not None
        assert gp.positions_f[0, 1, 1] == pytest.approx(50.25)
        assert gp.positions_f[1, 0, 0] == pytest.approx(47.5)
        # Integer positions are the rounded float solution.
        assert np.array_equal(gp.positions, np.rint(gp.positions_f).astype(np.int64))

    def test_disabled_by_default(self):
        gp = resolve_absolute_positions(self.make(), "mst")
        assert gp.positions_f is None


class TestSubpixelStitcher:
    def test_stitcher_subpixel_positions(self, dataset_4x4):
        res = Stitcher(subpixel=True).stitch(dataset_4x4)
        assert res.positions.positions_f is not None
        # Integer ground truth: fractional estimates stay near integers...
        frac = np.abs(
            res.positions.positions_f - np.rint(res.positions.positions_f)
        )
        assert frac.max() < 0.5
        # ...and the rounded result is still exact.
        assert res.position_errors().max() == 0.0

    def test_grid_displacements_carry_floats(self, dataset_4x4):
        disp = compute_grid_displacements(
            dataset_4x4.load, 4, 4, ccf_mode=CcfMode.EXTENDED, n_peaks=2,
            subpixel=True,
        )
        t = disp.west[0][1]
        assert t.tx_f is not None
        assert abs(t.tx_f - t.tx) <= 0.5
