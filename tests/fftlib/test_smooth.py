"""Unit + property tests for smooth-size search and padding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fftlib.smooth import (
    is_smooth,
    next_smooth,
    next_smooth_shape,
    pad_to_shape,
)


class TestIsSmooth:
    def test_one_is_smooth(self):
        assert is_smooth(1)

    @pytest.mark.parametrize("n", [2, 3, 5, 7, 8, 12, 1050, 1400, 2048, 6720])
    def test_known_smooth(self, n):
        assert is_smooth(n)

    @pytest.mark.parametrize("n", [11, 13, 29, 1392, 1040, 1039])
    def test_known_rough(self, n):
        assert not is_smooth(n)

    def test_custom_radices(self):
        assert is_smooth(11, radices=(11,))
        assert not is_smooth(22, radices=(11,))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            is_smooth(0)


class TestNextSmooth:
    def test_paper_tile_sizes(self):
        # The paper's 1392x1040 tiles have awkward factors (29 and 13).
        assert next_smooth(1392) == 1400
        assert next_smooth(1040) == 1050

    def test_identity_on_smooth(self):
        for n in (8, 12, 1400, 2048):
            assert next_smooth(n) == n

    @given(st.integers(min_value=1, max_value=100_000))
    def test_result_is_smooth_and_minimal(self, n):
        m = next_smooth(n)
        assert m >= n
        assert is_smooth(m)
        # Minimality: nothing smooth strictly between n and m.
        for k in range(n, m):
            assert not is_smooth(k)

    def test_shape_helper(self):
        assert next_smooth_shape((1040, 1392)) == (1050, 1400)


class TestPadToShape:
    def test_pads_bottom_right_with_zeros(self):
        a = np.arange(6.0).reshape(2, 3)
        out = pad_to_shape(a, (4, 5))
        assert out.shape == (4, 5)
        assert np.array_equal(out[:2, :3], a)
        assert out[2:, :].sum() == 0 and out[:, 3:].sum() == 0

    def test_identity_shape(self):
        a = np.ones((3, 3))
        assert np.array_equal(pad_to_shape(a, (3, 3)), a)

    def test_workspace_reuse_clears_stale_data(self):
        ws = np.full((4, 4), 7.0)
        a = np.ones((2, 2))
        out = pad_to_shape(a, (4, 4), out=ws)
        assert out is ws
        assert out.sum() == 4.0  # stale 7s wiped

    def test_rejects_shrink(self):
        with pytest.raises(ValueError):
            pad_to_shape(np.ones((4, 4)), (2, 2))

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            pad_to_shape(np.ones((4,)), (4, 4))

    def test_rejects_bad_workspace(self):
        with pytest.raises(ValueError):
            pad_to_shape(np.ones((2, 2)), (4, 4), out=np.empty((5, 5)))
