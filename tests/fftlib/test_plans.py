"""Plan cache, planning modes, and wisdom semantics."""

import json

import numpy as np
import pytest

from repro.fftlib.plans import (
    Plan,
    PlanCache,
    PlanKey,
    PlanningMode,
    TransformKind,
)


class TestPlanExecution:
    def test_direct_forward_matches_numpy(self):
        a = np.random.default_rng(0).random((12, 10)) + 0j
        plan = PlanCache().plan(a.shape, TransformKind.C2C_FORWARD)
        assert np.allclose(plan.execute(a), np.fft.fft2(a))

    def test_inverse_roundtrip(self):
        cache = PlanCache()
        a = np.random.default_rng(1).random((9, 14)).astype(np.complex128)
        fwd = cache.plan(a.shape, TransformKind.C2C_FORWARD)
        inv = cache.plan(a.shape, TransformKind.C2C_INVERSE)
        assert np.allclose(inv.execute(fwd.execute(a)), a)

    def test_r2c_matches_rfft(self):
        a = np.random.default_rng(2).random((8, 6))
        plan = PlanCache().plan(a.shape, TransformKind.R2C)
        assert np.allclose(plan.execute(a), np.fft.rfft2(a))

    def test_padded_strategy_transforms_at_padded_size(self):
        key = PlanKey((11, 13), TransformKind.C2C_FORWARD)
        plan = Plan(key, "padded", (12, 14))
        a = np.ones((11, 13), dtype=np.complex128)
        out = plan.execute(a)
        assert out.shape == (12, 14)
        # Padded transform equals transform of the zero-padded input.
        padded = np.zeros((12, 14), dtype=np.complex128)
        padded[:11, :13] = a
        assert np.allclose(out, np.fft.fft2(padded))

    def test_shape_mismatch_rejected(self):
        plan = PlanCache().plan((4, 4), TransformKind.C2C_FORWARD)
        with pytest.raises(ValueError):
            plan.execute(np.ones((5, 5), dtype=np.complex128))

    def test_execution_counter(self):
        plan = PlanCache().plan((4, 4), TransformKind.C2C_FORWARD)
        a = np.ones((4, 4), dtype=np.complex128)
        plan.execute(a)
        plan.execute(a)
        assert plan.executions == 2


class TestPlanCache:
    def test_caches_by_shape_and_kind(self):
        cache = PlanCache()
        p1 = cache.plan((8, 8), TransformKind.C2C_FORWARD)
        p2 = cache.plan((8, 8), TransformKind.C2C_FORWARD)
        p3 = cache.plan((8, 8), TransformKind.C2C_INVERSE)
        assert p1 is p2
        assert p1 is not p3
        assert len(cache) == 2

    def test_estimate_mode_never_measures(self):
        cache = PlanCache()
        cache.plan((11, 13), TransformKind.C2C_FORWARD, PlanningMode.ESTIMATE)
        assert cache.planning_seconds == 0.0

    def test_measured_modes_record_planning_time(self):
        cache = PlanCache()
        cache.plan((11, 13), TransformKind.C2C_FORWARD, PlanningMode.PATIENT)
        assert cache.planning_seconds > 0.0

    def test_planning_effort_ordering(self):
        assert (
            PlanningMode.ESTIMATE.trials
            < PlanningMode.MEASURE.trials
            < PlanningMode.PATIENT.trials
            < PlanningMode.EXHAUSTIVE.trials
        )

    def test_allow_padding_false_is_shape_preserving(self):
        cache = PlanCache()
        plan = cache.plan((11, 13), TransformKind.C2C_FORWARD,
                          PlanningMode.PATIENT, allow_padding=False)
        assert plan.strategy == "direct"
        assert plan.fft_shape == (11, 13)


class TestPerShapeStats:
    def test_hits_and_misses_tallied_per_key(self):
        cache = PlanCache()
        cache.plan((8, 8), TransformKind.C2C_FORWARD)   # miss
        cache.plan((8, 8), TransformKind.C2C_FORWARD)   # hit
        cache.plan((8, 8), TransformKind.C2C_FORWARD)   # hit
        cache.plan((4, 4), TransformKind.C2C_FORWARD)   # miss
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 2
        by_key = {
            (tuple(r["shape"]), r["kind"]): r for r in stats["per_shape"]
        }
        big = by_key[((8, 8), TransformKind.C2C_FORWARD.value)]
        small = by_key[((4, 4), TransformKind.C2C_FORWARD.value)]
        assert (big["hits"], big["misses"]) == (2, 1)
        assert (small["hits"], small["misses"]) == (0, 1)

    def test_mixed_resolutions_stay_separate(self):
        """Coarse-to-fine uses one cache for both resolutions: the
        (shape, kind) keying must never let one shape's plan satisfy
        the other's lookups."""
        cache = PlanCache()
        full = cache.plan((128, 128), TransformKind.C2C_INVERSE)
        coarse = cache.plan((64, 64), TransformKind.C2C_INVERSE)
        assert full is not coarse
        assert cache.plan((128, 128), TransformKind.C2C_INVERSE) is full
        assert cache.plan((64, 64), TransformKind.C2C_INVERSE) is coarse
        by_shape = {
            tuple(r["shape"]): r for r in cache.stats()["per_shape"]
        }
        assert by_shape[(128, 128)]["misses"] == 1
        assert by_shape[(64, 64)]["misses"] == 1
        assert by_shape[(128, 128)]["hits"] == 1
        assert by_shape[(64, 64)]["hits"] == 1

    def test_per_shape_sorted_largest_first(self):
        cache = PlanCache()
        cache.plan((4, 4), TransformKind.R2C)
        cache.plan((64, 64), TransformKind.R2C)
        cache.plan((16, 16), TransformKind.R2C)
        shapes = [tuple(r["shape"]) for r in cache.stats()["per_shape"]]
        assert shapes == [(64, 64), (16, 16), (4, 4)]

    def test_executions_reported(self):
        cache = PlanCache()
        plan = cache.plan((4, 4), TransformKind.C2C_FORWARD)
        a = np.ones((4, 4), dtype=np.complex128)
        plan.execute(a)
        plan.execute(a)
        (row,) = cache.stats()["per_shape"]
        assert row["executions"] == 2


class TestWisdom:
    def test_roundtrip(self):
        cache = PlanCache()
        cache.plan((11, 13), TransformKind.C2C_FORWARD, PlanningMode.MEASURE)
        blob = cache.export_wisdom()
        fresh = PlanCache()
        assert fresh.import_wisdom(blob) == 1
        # Wisdom short-circuits measurement entirely.
        fresh.plan((11, 13), TransformKind.C2C_FORWARD, PlanningMode.EXHAUSTIVE)
        assert fresh.planning_seconds == 0.0

    def test_import_is_accumulative_not_overwriting(self):
        cache = PlanCache()
        cache.plan((8, 8), TransformKind.C2C_FORWARD, PlanningMode.MEASURE)
        blob = cache.export_wisdom()
        assert cache.import_wisdom(blob) == 0  # already known

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            PlanCache().import_wisdom(json.dumps({"version": 99, "wisdom": []}))

    def test_wisdom_is_json(self):
        cache = PlanCache()
        cache.plan((4, 4), TransformKind.R2C)
        data = json.loads(cache.export_wisdom())
        assert data["version"] == 1
        assert data["wisdom"][0]["key"]["shape"] == [4, 4]
