"""Convenience transform entry points."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fftlib import fft2, ifft2, irfft2, rfft2
from repro.fftlib.plans import PlanCache


def test_fft_ifft_roundtrip():
    a = np.random.default_rng(0).random((17, 23))
    assert np.allclose(ifft2(fft2(a)).real, a)


def test_rfft_irfft_roundtrip_even_and_odd_width():
    rng = np.random.default_rng(1)
    for shape in [(8, 8), (9, 7), (10, 5)]:
        a = rng.random(shape)
        assert np.allclose(irfft2(rfft2(a), shape), a)


def test_rfft_halves_spectrum_width():
    a = np.zeros((16, 20))
    assert rfft2(a).shape == (16, 11)


def test_private_cache_isolated_from_default():
    cache = PlanCache()
    a = np.random.default_rng(2).random((6, 6))
    fft2(a, cache=cache)
    assert len(cache) == 1


@settings(max_examples=25, deadline=None)
@given(
    h=st.integers(min_value=2, max_value=24),
    w=st.integers(min_value=2, max_value=24),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_parseval_energy_conservation(h, w, seed):
    """FFT preserves energy: sum|a|^2 == sum|FFT(a)|^2 / (h*w)."""
    a = np.random.default_rng(seed).random((h, w))
    spec = fft2(a)
    assert np.isclose((np.abs(a) ** 2).sum(), (np.abs(spec) ** 2).sum() / (h * w))


@settings(max_examples=25, deadline=None)
@given(
    h=st.integers(min_value=2, max_value=16),
    w=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_rfft_consistent_with_full_fft(h, w, seed):
    a = np.random.default_rng(seed).random((h, w))
    full = fft2(a)
    half = rfft2(a)
    assert np.allclose(half, full[:, : w // 2 + 1])
