#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation, in one run.

Prints Table I, Table II (plus the laptop validation), and the data behind
Figs. 5, 7/9, 10, 11 and 12, each next to the published values.  The same
experiments run under pytest-benchmark in ``benchmarks/``; this script is
the human-readable one-shot version.

Run:  python examples/paper_figures.py           (takes ~1 minute)
"""

from repro.analysis.opcounts import table1_counts
from repro.analysis.report import format_series, format_table
from repro.simulate.experiments import (
    PAPER_TABLE2,
    fig5_vm_cliff,
    fig7_fig9_profiles,
    fig10_ccf_threads,
    fig11_cpu_scaling,
    fig12_speedup_surface,
    table2_runtimes,
)


def banner(text: str) -> None:
    print(f"\n{'=' * 74}\n{text}\n{'=' * 74}")


def main() -> None:
    banner("Table I -- operation counts (42x59 grid, 1392x1040 tiles)")
    rows = table1_counts(42, 59, 1040, 1392)
    print(format_table(
        ["operation", "count", "cost", "operand bytes"],
        [[r["operation"], r["count"], r["cost"], r["operand_bytes"]] for r in rows],
    ))

    banner("Table II -- run times & speedups (simulated evaluation machine)")
    t2 = table2_runtimes()
    print(format_table(
        ["implementation", "time (s)", "S/CPU", "S/ImageJ", "paper (s)"],
        [[r.implementation, round(r.seconds, 1), round(r.speedup_vs_simple_cpu, 1),
          round(r.speedup_vs_imagej, 1), round(PAPER_TABLE2[r.implementation], 1)]
         for r in t2],
    ))

    banner("Fig. 5 -- virtual-memory cliff (24 GiB machine, FFT-only, no frees)")
    f5 = fig5_vm_cliff()
    sp = f5["speedup"]
    threads = [1, 4, 8, 16]
    print("tiles  " + "".join(f"T={t:<7}" for t in threads))
    for n in f5["tiles"]:
        print(f"{n:5d}  " + "".join(f"{sp[(n, t)]:<9.2f}" for t in threads))
    print(f"cliff at {f5['cliff_at']} tiles (paper: between 832 and 864)")

    banner("Figs. 7 & 9 -- GPU profiles, 8x8 grid")
    prof = fig7_fig9_profiles()
    for name, paper_s in (("simple-gpu", 15.9), ("pipelined-gpu", 1.6)):
        p = prof[name]
        print(f"{name:14s} makespan {p['makespan']:6.2f} s (paper ~{paper_s} s), "
              f"kernel density {p['kernel_density']:.3f}")
    print(f"pipelining speedup: {prof['speedup']:.1f}x (paper: ~10-11.2x)")

    banner("Fig. 10 -- Pipelined-GPU (2 GPUs) vs CCF threads")
    print(format_series("ccf_threads", "s",
                        [(t, round(s, 1)) for t, s in fig10_ccf_threads()]))

    banner("Fig. 11 -- Pipelined-CPU strong scaling")
    print(format_series("threads", "s",
                        [(t, round(s, 1), round(spd, 2))
                         for t, s, spd in fig11_cpu_scaling()]))

    banner("Fig. 12 -- speedup surface (threads x tiles)")
    f12 = fig12_speedup_surface()
    surf = f12["surface"]
    print("tiles  " + "".join(f"T={t:<7}" for t in threads))
    for n in f12["tiles"]:
        print(f"{n:5d}  " + "".join(f"{surf[(n, t)]:<9.2f}" for t in threads))


if __name__ == "__main__":
    main()
