#!/usr/bin/env python
"""Quickstart: acquire a synthetic plate, stitch it, render the mosaic.

This is the 60-second tour of the public API:

1. ``make_synthetic_dataset`` stands in for a microscope acquisition (a
   directory of overlapping 16-bit TIFF tiles + metadata);
2. ``Stitcher.stitch`` runs the paper's phase 1 (pairwise phase
   correlation) and phase 2 (global positions);
3. ``StitchResult.compose`` runs phase 3 and renders the mosaic.

Run:  python examples/quickstart.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import BlendMode, Stitcher, make_synthetic_dataset, write_tiff


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    out_dir.mkdir(parents=True, exist_ok=True)

    print("1. acquiring a synthetic 6x8 plate (96 px tiles, 15 % overlap)...")
    dataset = make_synthetic_dataset(
        out_dir / "acquisition",
        rows=6, cols=8, tile_height=96, tile_width=96, overlap=0.15, seed=42,
    )
    print(f"   {len(dataset)} tiles written to {dataset.directory}")

    print("2. stitching (phase 1: pairwise displacements; phase 2: global)...")
    result = Stitcher().stitch(dataset)
    print(f"   phase 1: {result.phase1_seconds:.2f} s "
          f"({result.stats['pairs']} pairs, {result.stats['ffts']} FFTs)")
    print(f"   phase 2: {result.phase2_seconds * 1e3:.1f} ms")

    errors = result.position_errors()
    print(f"   position error vs ground truth: max {errors.max():.1f} px, "
          f"mean {errors.mean():.2f} px")

    print("3. composing the mosaic (phase 3, linear-feather blend)...")
    mosaic = result.compose(BlendMode.LINEAR)
    print(f"   mosaic: {mosaic.shape[0]} x {mosaic.shape[1]} px")

    out_path = out_dir / "mosaic.tif"
    scaled = (np.clip(mosaic / mosaic.max(), 0, 1) * 65535).astype(np.uint16)
    write_tiff(out_path, scaled, description="repro quickstart mosaic")
    print(f"   saved {out_path}")


if __name__ == "__main__":
    main()
