#!/usr/bin/env python
"""The viewer + profiler workflow: pyramids, viewports, Chrome traces.

The paper's Section VI describes a visualization prototype ("image
pyramids for all the tiles ... render a stitched image at varying
resolutions") and leans on NVIDIA's visual profiler throughout Section IV.
This example exercises both reproductions:

1. stitch an acquisition and build a :class:`MosaicPyramid`;
2. render a zoomed-out overview and a full-resolution viewport without
   ever materializing the whole mosaic;
3. run Simple-GPU vs Pipelined-GPU on the virtual device and export both
   execution timelines as Chrome trace files (open in chrome://tracing or
   https://ui.perfetto.dev) -- the reproduction's Figs. 7 and 9.

Run:  python examples/viewer_and_traces.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import Stitcher, make_synthetic_dataset, write_tiff
from repro.analysis.tracefmt import gpu_trace_events, write_chrome_trace
from repro.core.pyramid import MosaicPyramid
from repro.gpu.device import VirtualGpu
from repro.impls import PipelinedGpu, SimpleGpu


def to_uint16(a: np.ndarray) -> np.ndarray:
    top = float(a.max()) or 1.0
    return (np.clip(a / top, 0, 1) * 65535).astype(np.uint16)


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    out.mkdir(parents=True, exist_ok=True)

    print("stitching a 6x6 acquisition...")
    dataset = make_synthetic_dataset(
        out / "acq", rows=6, cols=6, tile_height=96, tile_width=96,
        overlap=0.15, seed=77,
    )
    result = Stitcher().stitch(dataset)
    assert result.position_errors().max() == 0.0

    print("building the mosaic pyramid (4 levels)...")
    pyramid = MosaicPyramid(dataset.load, result.positions,
                            dataset.tile_shape, levels=4)
    overview = pyramid.render(level=3)
    write_tiff(out / "overview_level3.tif", to_uint16(overview))
    print(f"  level-3 overview: {overview.shape[0]}x{overview.shape[1]} px "
          f"(full mosaic is {pyramid.level_shape(0)})")

    viewport = pyramid.render_region(100, 120, 200, 260, level=0)
    write_tiff(out / "viewport_level0.tif", to_uint16(viewport))
    print(f"  level-0 viewport: {viewport.shape} -- only "
          f"{pyramid.tile_fetches} tile fetches so far (lazy)")

    print("profiling Simple-GPU vs Pipelined-GPU on the virtual device...")
    simple = SimpleGpu()
    simple.run(dataset)
    write_chrome_trace(out / "trace_simple_gpu.json",
                       gpu_trace_events(simple.last_device.profiler))
    dens_simple = simple.last_device.profiler.density("compute")

    dev = VirtualGpu()
    PipelinedGpu(devices=[dev]).run(dataset)
    write_chrome_trace(out / "trace_pipelined_gpu.json",
                       gpu_trace_events(dev.profiler))
    dens_piped = dev.profiler.density("compute")

    print(f"  kernel density: simple {dens_simple:.2f} vs pipelined "
          f"{dens_piped:.2f} (the Fig. 7 vs Fig. 9 contrast)")
    print(f"  traces: {out}/trace_simple_gpu.json, "
          f"{out}/trace_pipelined_gpu.json (open in chrome://tracing)")


if __name__ == "__main__":
    main()
