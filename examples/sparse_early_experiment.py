#!/usr/bin/env python
"""The feature-poor regime: why the paper uses phase correlation.

Early live-cell plates have "few distinguishable features in the overlap
region" (Section I) -- the regime that defeats feature-based stitchers.
This example sweeps colony density from nearly-empty plates to confluent
ones, stitching each with:

- the paper's exact scheme (single peak, 4 non-negative interpretations),
- the robust configuration (2 peaks, signed interpretations -- the scheme
  the MIST successor adopted),

and reports recovered-position accuracy for both, demonstrating where the
paper-faithful scheme starts to benefit from the extensions.

Run:  python examples/sparse_early_experiment.py
"""

import tempfile
from pathlib import Path

from repro import CcfMode, Stitcher, make_synthetic_dataset
from repro.analysis.report import format_table
from repro.synth.specimen import SpecimenParams

DENSITIES = [
    ("nearly empty", SpecimenParams(colony_count=1, cells_per_colony=4,
                                    background_texture=0.01, fine_texture=0.015,
                                    granularity=0.02)),
    ("sparse", SpecimenParams(colony_count=3, cells_per_colony=12,
                              granularity=0.025)),
    ("moderate", SpecimenParams(colony_count=8, cells_per_colony=30)),
    ("confluent", SpecimenParams(colony_count=20, cells_per_colony=60)),
]


def main() -> None:
    root = Path(tempfile.mkdtemp())
    rows = []
    for label, specimen in DENSITIES:
        dataset = make_synthetic_dataset(
            root / label.replace(" ", "_"),
            rows=4, cols=4, tile_height=96, tile_width=96, overlap=0.2,
            seed=17, specimen=specimen,
        )
        paper = Stitcher(ccf_mode=CcfMode.PAPER4, n_peaks=1).stitch(dataset)
        robust = Stitcher(ccf_mode=CcfMode.EXTENDED, n_peaks=2).stitch(dataset)
        rows.append([
            label,
            f"{paper.position_errors().mean():.1f}",
            f"{robust.position_errors().mean():.1f}",
        ])
    print(format_table(
        ["plate density", "paper scheme err (px)", "robust scheme err (px)"],
        rows,
        title="mean tile-position error vs specimen density (4x4 grid, 20% overlap)",
    ))
    print(
        "\nPhase correlation locks on even on nearly-empty plates (specimen\n"
        "granularity carries the signal); the signed-alias + multi-peak\n"
        "extension removes the residual errors of the 4-combination scheme."
    )


if __name__ == "__main__":
    main()
