#!/usr/bin/env python
"""Run all six Table II implementations and compare them.

Each implementation (the Fiji-architecture baseline, Simple-CPU, MT-CPU,
Pipelined-CPU, Simple-GPU on the virtual device, and multi-GPU
Pipelined-GPU) computes phase 1 on the same synthetic dataset.  The script
verifies they agree pair-for-pair with the sequential reference, prints
their instrumentation (the architectural differences: redundant FFTs,
stream counts, pool peaks), and then projects each architecture to the
paper's 42x59 workload with the calibrated performance simulator.

Run:  python examples/implementation_comparison.py
"""

import tempfile
from pathlib import Path

from repro.analysis.metrics import displacement_agreement
from repro.analysis.report import format_table
from repro.impls import (
    FijiBaseline, MtCpu, PipelinedCpu, PipelinedGpu, SimpleCpu, SimpleGpu,
)
from repro.simulate.costmodel import PAPER_MACHINE
from repro.simulate.experiments import PAPER_TABLE2, table2_runtimes
from repro.synth import make_synthetic_dataset


def main() -> None:
    root = Path(tempfile.mkdtemp())
    print("generating a 5x5 synthetic dataset...")
    dataset = make_synthetic_dataset(
        root / "ds", rows=5, cols=5, tile_height=80, tile_width=80,
        overlap=0.2, seed=7,
    )

    impls = [
        ("fiji-baseline", FijiBaseline()),
        ("simple-cpu", SimpleCpu()),
        ("mt-cpu (3 workers)", MtCpu(workers=3)),
        ("pipelined-cpu (3 workers)", PipelinedCpu(workers=3)),
        ("simple-gpu", SimpleGpu()),
        ("pipelined-gpu (2 GPUs)", PipelinedGpu(devices=2)),
    ]

    print("\nrunning every implementation on the same dataset...")
    reference = None
    rows = []
    for name, impl in impls:
        res = impl.run(dataset)
        if reference is None:
            reference = res
        agree = displacement_agreement(res.displacements, reference.displacements)
        rows.append([
            name,
            f"{res.wall_seconds:.2f}",
            res.stats.get("reads", "-"),
            res.stats.get("ffts", "-"),
            "yes" if agree == 1.0 else f"NO ({agree:.2%})",
        ])
    print(format_table(
        ["implementation", "wall (s)", "reads", "FFTs", "matches reference"],
        rows,
        title="small-scale real execution (single-core container)",
    ))

    print("\nprojecting to the paper's 42x59 workload (calibrated simulator)...")
    sim_rows = table2_runtimes(PAPER_MACHINE)
    print(format_table(
        ["implementation", "simulated (s)", "paper (s)", "speedup vs simple-cpu"],
        [[r.implementation, round(r.seconds, 1),
          round(PAPER_TABLE2[r.implementation], 1),
          round(r.speedup_vs_simple_cpu, 1)] for r in sim_rows],
        title="Table II projection",
    ))


if __name__ == "__main__":
    main()
