#!/usr/bin/env python
"""The paper's motivating workload: a live-cell time-series experiment.

NIST biologists image a plate every 45 minutes for 5 days; stitching must
finish "in a fraction of the imaging period" so researchers can inspect
the plate and steer the experiment (Section I).  This example uses
:class:`repro.synth.TimeSeriesExperiment` to simulate several scans of a
growing culture (one fixed set of colony sites, expanding between scans),
stitches every scan, and scores each against the steerability criterion --
including the early, feature-poor scans that rule out feature-based
stitchers.

Run:  python examples/cell_colony_timeseries.py
"""

import tempfile
import time

from repro import Stitcher
from repro.analysis.steerability import steerability
from repro.synth import GrowthModel, ScanPlan, SpecimenParams, StageModel, TimeSeriesExperiment

SCANS = 4
IMAGING_PERIOD_S = 45 * 60  # the paper's 45 min scan interval


def main() -> None:
    experiment = TimeSeriesExperiment(
        plan=ScanPlan(4, 5, tile_height=96, tile_width=96, overlap=0.2),
        colony_count=5,
        growth=GrowthModel(initial_cells=6, growth_rate=0.8, initial_radius=12.0),
        specimen=SpecimenParams(cell_radius=2.5, granularity=0.025),
        stage=StageModel(jitter_sigma=1.5, backlash_x=2.5, max_error=7.0),
        seed=42,
        imaging_period_s=IMAGING_PERIOD_S,
    )
    stitcher = Stitcher()
    print(f"time-series experiment: {SCANS} scans of a 4x5 grid, "
          f"period {IMAGING_PERIOD_S / 60:.0f} min\n")

    root = tempfile.mkdtemp()
    for scan, dataset in enumerate(experiment.acquire(root, scans=SCANS)):
        t0 = time.perf_counter()
        result = stitcher.stitch(dataset)
        elapsed = time.perf_counter() - t0
        report = steerability(elapsed, IMAGING_PERIOD_S, analysis_seconds=600)
        err = result.position_errors()
        mean_corr = sum(
            t.correlation
            for rows in (result.displacements.west, result.displacements.north)
            for row in rows for t in row if t is not None
        ) / result.stats["pairs"]
        print(
            f"scan {scan}: {elapsed:6.2f} s "
            f"({100 * report.used_fraction:5.2f} % of period incl. 10 min "
            f"analysis) | mean corr {mean_corr:.3f} | "
            f"pos err max {err.max():.1f} px | "
            f"steerable: {report.steerable}"
        )

    print(
        "\nevery scan leaves the researcher most of the period to act: the "
        "experiment is computationally steerable (the paper's Section I goal)."
    )


if __name__ == "__main__":
    main()
