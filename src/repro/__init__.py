"""repro: reproduction of "A Hybrid CPU-GPU System for Stitching Large
Scale Optical Microscopy Images" (Blattner et al., ICPP 2014).

Public API highlights:

- :class:`repro.Stitcher` -- three-phase stitching facade;
- :mod:`repro.impls` -- the six Table II implementations;
- :mod:`repro.synth` -- synthetic microscope acquisitions with ground truth;
- :mod:`repro.simulate` -- paper-scale performance reproduction (DES);
- :mod:`repro.pipeline` -- the general-purpose pipeline framework;
- :mod:`repro.faults` -- fault injection, retry policies, fault reports.
"""

from repro.core import (
    BlendMode,
    CcfMode,
    Stitcher,
    StitchResult,
    compose,
    pciam,
    resolve_absolute_positions,
)
from repro.faults import ErrorPolicy, FaultPlan, FaultReport
from repro.io import TileDataset, read_tiff, write_tiff
from repro.synth import make_synthetic_dataset

__version__ = "1.0.0"

__all__ = [
    "Stitcher",
    "StitchResult",
    "BlendMode",
    "CcfMode",
    "pciam",
    "compose",
    "resolve_absolute_positions",
    "TileDataset",
    "read_tiff",
    "write_tiff",
    "make_synthetic_dataset",
    "ErrorPolicy",
    "FaultPlan",
    "FaultReport",
    "__version__",
]
