"""Command-line interface: ``python -m repro <command> ...``.

Commands:

``synth``     generate a synthetic acquisition (tiles + metadata)
``stitch``    stitch an acquisition directory into a mosaic TIFF
``serve``     run the stitching service (HTTP job server, warm workers)
``info``      inspect a dataset or TIFF file
``simulate``  run the paper-scale performance simulation (Table II)

The CLI wraps the same public API the examples use; it exists so the tool
is usable without writing Python, like the standalone executables the
paper planned to release.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + rename.

    A reader (or a resumed run) never observes a torn output file: it
    sees the old content or the new content, nothing in between.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.synth import make_synthetic_dataset

    ds = make_synthetic_dataset(
        args.output,
        rows=args.rows,
        cols=args.cols,
        tile_height=args.tile_size,
        tile_width=args.tile_size,
        overlap=args.overlap,
        seed=args.seed,
    )
    print(f"wrote {len(ds)} tiles ({args.tile_size} px, {args.overlap:.0%} "
          f"overlap) to {ds.directory}")
    return 0


#: ``--backend`` shorthand -> Table II implementation.
_BACKEND_IMPLS = {"seq": "simple-cpu", "thread": "mt-cpu", "proc": "proc-cpu"}


def _workers_arg(value: str) -> int:
    """Parse ``--workers``: an integer, or ``auto`` for the CPU count."""
    if value == "auto":
        return os.cpu_count() or 1
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"need at least one worker, got {n}")
    return n


def _bytes_arg(value: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (``512M``)."""
    suffixes = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    text = value.strip().lower().rstrip("b")
    scale = 1
    if text and text[-1] in suffixes:
        scale = suffixes[text[-1]]
        text = text[:-1]
    try:
        n = int(float(text) * scale)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected BYTES or e.g. 512M, got {value!r}"
        ) from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"byte budget must be >= 1, got {n}")
    return n


def _cmd_stitch(args: argparse.Namespace) -> int:
    from repro.core.compose import BlendMode
    from repro.core.pciam import CcfMode
    from repro.core.stitcher import Stitcher
    from repro.fftlib.plans import PlanCache, PlanningMode
    from repro.io.dataset import TileDataset
    from repro.io.tiff import write_tiff

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    if args.backend is not None:
        backend_impl = _BACKEND_IMPLS[args.backend]
        if args.impl not in ("stitcher", backend_impl):
            print(
                f"error: --backend {args.backend} selects --impl "
                f"{backend_impl}, which conflicts with --impl {args.impl}",
                file=sys.stderr,
            )
            return 2
        args.impl = backend_impl
    if args.pattern:
        dataset = TileDataset.discover(
            args.dataset, pattern=args.pattern, overlap=args.overlap
        )
        print(f"discovered {dataset.rows}x{dataset.cols} grid via {args.pattern!r}")
    else:
        dataset = TileDataset(args.dataset)
    if args.inject_faults is not None:
        from repro.faults import FaultPlan

        plan = FaultPlan.from_spec(
            args.inject_faults, dataset.rows, dataset.cols
        )
        dataset = plan.wrap_dataset(dataset)
        print(f"injecting faults (seed {plan.seed}): "
              + ", ".join(f"{k} x{v}" for k, v in sorted(plan.summary().items())))
    cache = PlanCache()
    if args.wisdom and Path(args.wisdom).exists():
        n = cache.import_wisdom(Path(args.wisdom).read_text())
        print(f"imported {n} wisdom entries from {args.wisdom}")
    tracer = metrics = None
    if args.trace or args.metrics:
        from repro.observe import MetricsRegistry, Tracer

        metrics = MetricsRegistry()
        if args.trace:
            tracer = Tracer()
    # Quality gate (docs/ROBUSTNESS.md): enabled by --quality-gate or by
    # naming any of its knobs; off by default so positions stay
    # bit-identical to ungated runs.
    quality_on = (
        args.quality_gate
        or args.conf_thresh is not None
        or args.residue_mode is not None
        or args.min_peak_ratio is not None
    )
    # Coarse-to-fine registration (docs/PERFORMANCE.md): enabled by
    # --coarse-registration or by naming either of its knobs; off by
    # default so displacements stay bit-identical to single-pass runs.
    coarse_on = (
        args.coarse_registration
        or args.coarse_scale is not None
        or args.coarse_conf_thresh is not None
    )
    real_transforms = not args.complex_transforms
    stitcher = Stitcher(
        ccf_mode=CcfMode.PAPER4 if args.paper_faithful else CcfMode.EXTENDED,
        n_peaks=1 if args.paper_faithful else args.peaks,
        real_transforms=real_transforms,
        use_tile_stats=not args.no_tile_stats,
        use_workspace=not args.no_workspace,
        pad_to_smooth=args.pad,
        position_method=args.positions,
        refine=args.refine,
        quality=quality_on,
        conf_thresh=args.conf_thresh,
        residue_mode=args.residue_mode,
        min_peak_ratio=args.min_peak_ratio,
        coarse=coarse_on,
        coarse_scale=args.coarse_scale,
        coarse_conf_thresh=args.coarse_conf_thresh,
        planning=PlanningMode(args.planning),
        cache=cache,
        max_retries=args.max_retries,
        on_tile_error=args.on_tile_error,
        trace=tracer if tracer is not None else False,
        metrics=metrics if metrics is not None else False,
        checkpoint=str(args.checkpoint) if args.checkpoint else None,
        resume="require" if args.resume else "auto",
    )
    watchdog = None
    if args.watchdog is not None:
        from repro.recovery import WatchdogConfig

        watchdog = WatchdogConfig(
            item_deadline=args.watchdog, stall_timeout=args.stall_timeout
        )
    t0 = time.perf_counter()
    if args.impl == "stitcher":
        result = stitcher.stitch(dataset)
    else:
        # Run one of the Table II implementations for phase 1, then the
        # standard phases 2-3.
        from repro.core.global_opt import resolve_absolute_positions
        from repro.core.stitcher import StitchResult
        from repro.impls import ALL_IMPLEMENTATIONS

        impl_kwargs = {}
        if args.impl in ("mt-cpu", "pipelined-cpu"):
            impl_kwargs["workers"] = args.workers
            if args.impl == "pipelined-cpu":
                impl_kwargs["fft_batch"] = args.fft_batch
        elif args.impl == "proc-cpu":
            impl_kwargs["workers"] = args.workers
            impl_kwargs["fft_batch"] = args.fft_batch
        elif args.impl == "pipelined-cpu-numa":
            impl_kwargs["workers_per_socket"] = args.workers
        elif args.impl == "pipelined-gpu":
            impl_kwargs["devices"] = args.gpus
        policy = stitcher._error_policy()
        report = None
        if policy is not None:
            from repro.faults import FaultReport

            report = FaultReport()
        journal = stitcher.open_journal(dataset)
        impl = ALL_IMPLEMENTATIONS[args.impl](
            ccf_mode=stitcher.ccf_mode, n_peaks=stitcher.n_peaks,
            real_transforms=real_transforms,
            use_tile_stats=not args.no_tile_stats,
            use_workspace=not args.no_workspace,
            cache=cache, error_policy=policy, fault_report=report,
            tracer=tracer, metrics=metrics, journal=journal,
            watchdog=watchdog, coarse=stitcher.coarse, **impl_kwargs,
        )
        try:
            run = impl.run(dataset)
        finally:
            # Close even on a crash/stall so the journaled pairs written
            # so far stay durable for the next --resume.
            if journal is not None:
                journal.close()
        if policy is not None and args.on_tile_error == "skip":
            positions = resolve_absolute_positions(
                run.displacements, method=args.positions,
                on_disconnected="nominal",
                nominal_step=stitcher._nominal_step(dataset),
                quality=stitcher.quality,
            )
        else:
            positions = resolve_absolute_positions(
                run.displacements, method=args.positions,
                quality=stitcher.quality,
            )
        stats = dict(run.stats)
        if positions.quality_report is not None:
            stats["quality_report"] = positions.quality_report
            if metrics is not None:
                metrics.counter("quality.pairs_gated").inc(
                    positions.quality_report.get("gated_pairs", 0)
                )
                metrics.counter("quality.irls_iterations").inc(
                    positions.quality_report.get("irls_iterations", 0)
                )
                metrics.counter("quality.residue_damped_edges").inc(
                    positions.quality_report.get("residue_damped_edges", 0)
                )
        if report is not None:
            for rc in positions.degraded_tiles():
                report.record_degraded_tile(rc)
            plan = getattr(dataset, "fault_plan", None)
            if plan is not None:
                report.injected = plan.summary()
            stats["fault_report"] = report
        if metrics is not None:
            stats["metrics"] = metrics.snapshot()
        if tracer is not None:
            stats["tracer"] = tracer
            # Virtual-GPU engine rows for the merged timeline (Fig. 7/9).
            profilers = []
            if getattr(impl, "last_device", None) is not None:
                profilers.append(impl.last_device.profiler)
            for dev in getattr(impl, "devices", None) or []:
                profilers.append(dev.profiler)
            if profilers:
                stats["gpu_profilers"] = profilers
        result = StitchResult(
            dataset=dataset, displacements=run.displacements,
            positions=positions, phase1_seconds=run.wall_seconds,
            phase2_seconds=0.0, implementation=args.impl, stats=stats,
            on_tile_error=args.on_tile_error,
        )
    elapsed = time.perf_counter() - t0
    if args.wisdom:
        Path(args.wisdom).write_text(cache.export_wisdom())
        print(f"wisdom -> {args.wisdom}")
    print(f"stitched {dataset.rows}x{dataset.cols} grid in {elapsed:.2f} s "
          f"({result.stats['pairs']} pairs)")
    if stitcher.coarse is not None:
        print(f"coarse: {result.stats.get('coarse_hits', 0)} hits, "
              f"{result.stats.get('full_fallbacks', 0)} fallbacks "
              f"(factor {stitcher.coarse.factor}, "
              f"conf >= {stitcher.coarse.conf_thresh})")
    report = result.stats.get("fault_report")
    if report is not None and report:
        print(f"fault report: {report.summary()}")
    quality_report = result.stats.get("quality_report")
    if quality_report is not None:
        reasons = ", ".join(
            f"{k} x{v}" for k, v in sorted(quality_report["gate_reasons"].items())
        ) or "none"
        print(
            f"quality gate: {quality_report['gated_pairs']}/"
            f"{quality_report['pair_count']} pairs demoted ({reasons}); "
            f"median confidence {quality_report['median_confidence']:.3f}; "
            f"irls iterations {quality_report['irls_iterations']}, "
            f"damped edges {quality_report['residue_damped_edges']}"
        )
    if args.fault_report:
        plan = getattr(dataset, "fault_plan", None)
        payload = {
            "implementation": args.impl,
            "grid": [dataset.rows, dataset.cols],
            "elapsed_seconds": elapsed,
            "fault_report": report.to_dict() if report is not None else None,
            "injected": plan.summary() if plan is not None else None,
            "triggered": plan.triggered_summary() if plan is not None else None,
            "journal": result.stats.get("journal"),
        }
        _write_atomic(args.fault_report, json.dumps(payload, indent=2) + "\n")
        print(f"fault report JSON -> {args.fault_report}")
    if args.trace:
        n_events = result.write_trace(args.trace)
        print(f"trace: {n_events} events -> {args.trace} "
              f"(open in Perfetto / chrome://tracing)")
    if args.metrics:
        print("metrics:")
        print(json.dumps(result.stats.get("metrics", {}), indent=2))
    errors = result.position_errors(exclude_degraded=True)
    if errors is not None:
        print(f"position error vs ground truth: max {np.nanmax(errors):.1f} px")
    if args.output:
        if args.memory_budget is not None or args.pyramid > 0:
            # Out-of-core path: the canvas never exists.  Values are
            # clipped to uint16 rather than max-normalized (a global max
            # would need a second pass over the mosaic).
            if args.outline:
                print("note: --outline is ignored with "
                      "--memory-budget/--pyramid (streaming compose)")
            sres = result.compose_to_tiff(
                args.output,
                blend=BlendMode(args.blend),
                memory_budget=args.memory_budget,
                pyramid_levels=args.pyramid,
            )
            msg = (f"mosaic {sres.height}x{sres.width} -> {args.output} "
                   f"(streamed, {sres.stripes} stripes of {sres.band_rows} "
                   f"rows, peak {sres.peak_bytes / 1e6:.1f} MB")
            if args.memory_budget is not None:
                msg += f" of {args.memory_budget / 1e6:.1f} MB budget"
            if sres.pyramid_paths:
                msg += f"; pyramid L1..L{len(sres.pyramid_paths)}"
            print(msg + ")")
        else:
            mosaic = result.compose(
                BlendMode(args.blend), outline=args.outline,
                workers=args.compose_workers,
            )
            top = float(mosaic.max()) or 1.0
            scaled = (np.clip(mosaic / top, 0, 1) * 65535).astype(np.uint16)
            # Atomic publish: a crash mid-write must not leave a torn TIFF
            # where a previous (complete) mosaic used to be.
            out = Path(args.output)
            tmp = out.with_name(out.name + ".tmp")
            write_tiff(tmp, scaled, description="repro mosaic")
            os.replace(tmp, out)
            print(f"mosaic {mosaic.shape[0]}x{mosaic.shape[1]} -> {args.output}")
    if args.positions_json:
        _write_atomic(
            args.positions_json,
            json.dumps(result.positions.positions.tolist()),
        )
        print(f"positions -> {args.positions_json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.recovery import WatchdogConfig
    from repro.service.resilience import (
        BreakerConfig,
        BrownoutPolicy,
        ResilienceConfig,
    )
    from repro.service.server import StitchService

    try:
        brownout = BrownoutPolicy.parse(args.brownout)
    except ValueError as exc:
        print(f"bad --brownout spec: {exc}")
        return 2
    resilience = ResilienceConfig(
        quarantine_threshold=args.quarantine_threshold,
        breaker=BreakerConfig(
            death_threshold=args.breaker_threshold,
            window_seconds=args.breaker_window,
            cooldown_seconds=args.breaker_cooldown,
        ),
        brownout=brownout,
        spool_budget_bytes=args.spool_budget,
    )
    service = StitchService(
        spool_dir=args.spool,
        workers=args.workers,
        dataset_root=args.dataset_root,
        max_depth=args.queue_depth,
        per_tenant_limit=args.per_tenant,
        default_retry_budget=args.retry_budget,
        watchdog=WatchdogConfig(
            item_deadline=args.job_deadline,
            stall_timeout=args.stall_timeout,
            poll_interval=0.05,
        ),
        resilience=resilience,
    )
    service.start()
    host, port = service.start_http(args.host, args.port)
    print(f"stitching service on http://{host}:{port} "
          f"({args.workers} workers, spool {args.spool})")
    print("endpoints: POST /jobs, GET /jobs/<id>, GET /jobs/<id>/result, "
          "POST /jobs/<id>/cancel, GET /metrics, GET /healthz")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("shutting down ...")
    finally:
        service.stop()
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.io.dataset import METADATA_FILENAME, TileDataset
    from repro.io.tiff import read_tiff

    path = Path(args.path)
    if path.is_dir():
        ds = TileDataset(path)
        meta = ds.metadata
        print(f"dataset: {path}")
        print(f"  grid: {ds.rows} x {ds.cols} ({len(ds)} tiles)")
        print(f"  tile: {meta.tile_height} x {meta.tile_width}, "
              f"{meta.bit_depth}-bit")
        print(f"  nominal overlap: {meta.overlap:.0%}")
        print(f"  ground truth: {'yes' if meta.true_positions else 'no'}")
    else:
        arr, desc = read_tiff(path, return_description=True)
        print(f"tiff: {path}")
        print(f"  {arr.shape[0]} x {arr.shape[1]}, {arr.dtype}, "
              f"range [{arr.min()}, {arr.max()}]")
        if desc:
            print(f"  description: {desc}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.simulate.costmodel import LAPTOP, PAPER_MACHINE
    from repro.simulate.experiments import PAPER_TABLE2, table2_runtimes

    machine = LAPTOP if args.machine == "laptop" else PAPER_MACHINE
    rows = table2_runtimes(machine, rows=args.rows, cols=args.cols)
    print(format_table(
        ["implementation", "time (s)", "S/CPU", "paper (s)"],
        [[r.implementation, round(r.seconds, 1),
          round(r.speedup_vs_simple_cpu, 1),
          round(PAPER_TABLE2.get(r.implementation, float("nan")), 1)]
         for r in rows],
        title=f"Table II projection, {args.rows}x{args.cols} grid on {machine.name}",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid CPU-GPU image stitching (ICPP 2014 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("synth", help="generate a synthetic acquisition")
    s.add_argument("output", type=Path)
    s.add_argument("--rows", type=int, default=4)
    s.add_argument("--cols", type=int, default=4)
    s.add_argument("--tile-size", type=int, default=128)
    s.add_argument("--overlap", type=float, default=0.15)
    s.add_argument("--seed", type=int, default=0)
    s.set_defaults(func=_cmd_synth)

    s = sub.add_parser("stitch", help="stitch a dataset directory")
    s.add_argument("dataset", type=Path)
    s.add_argument("-o", "--output", type=Path, help="mosaic TIFF path")
    s.add_argument("--blend", choices=[m.value for m in __import__(
        "repro.core.compose", fromlist=["BlendMode"]).BlendMode],
        default="overlay")
    s.add_argument("--outline", action="store_true", help="highlight tiles (Fig. 14)")
    s.add_argument("--peaks", type=int, default=2)
    s.add_argument("--paper-faithful", action="store_true",
                   help="Fig. 2 scheme verbatim: 1 peak, 4 interpretations")
    s.add_argument("--complex-transforms", action="store_true",
                   help="full c2c transforms (escape hatch; doubles FFT "
                        "work and transform-pool memory)")
    s.add_argument("--no-tile-stats", action="store_true",
                   help="disable O(1) summed-area-table CCF statistics; "
                        "every CCF candidate rescans its overlap region")
    s.add_argument("--no-workspace", action="store_true",
                   help="disable per-worker pair workspaces; scratch "
                        "surfaces are reallocated for every pair")
    s.add_argument("--pad", action="store_true", help="pad FFTs to smooth sizes")
    s.add_argument("--refine", action="store_true",
                   help="stage-model filter + repair between phases 1 and 2")
    s.add_argument("--quality-gate", action="store_true",
                   help="score every pair (confidence, peak sharpness, "
                        "stage-model deviation) and demote untrustworthy "
                        "pairs to nominal-prior edges before phase 2 "
                        "(docs/ROBUSTNESS.md); implied by the knobs below")
    s.add_argument("--conf-thresh", type=float, default=None, metavar="C",
                   help="demote pairs whose correlation falls below C "
                        "(default 0.33; implies --quality-gate)")
    s.add_argument("--residue-mode", choices=["none", "huber", "threshold"],
                   default=None,
                   help="IRLS damping of large residuals in the "
                        "least_squares solver: huber re-weights, threshold "
                        "hard-rejects (default none; implies --quality-gate)")
    s.add_argument("--min-peak-ratio", type=float, default=None, metavar="R",
                   help="demote pairs whose first/second correlation-peak "
                        "magnitude ratio falls below R (default 1.0 = off; "
                        "implies --quality-gate)")
    s.add_argument("--coarse-registration", action="store_true",
                   help="two-pass coarse-to-fine PCIAM: register on "
                        "block-mean downsampled tiles, refine confident "
                        "peaks at full resolution, fall back to full "
                        "PCIAM otherwise (docs/PERFORMANCE.md); implied "
                        "by the knobs below")
    s.add_argument("--coarse-scale", type=float, default=None, metavar="S",
                   help="coarse-pass downsampling scale in (0, 0.5] "
                        "(default 0.5 = factor 2; implies "
                        "--coarse-registration)")
    s.add_argument("--coarse-conf-thresh", type=float, default=None,
                   metavar="C",
                   help="minimum refined correlation to trust the coarse "
                        "pass; below it the pair falls back to full "
                        "PCIAM (default 0.95; implies "
                        "--coarse-registration)")
    s.add_argument("--positions", choices=["mst", "least_squares"], default="mst")
    s.add_argument("--positions-json", type=Path)
    s.add_argument("--planning",
                   choices=["estimate", "measure", "patient", "exhaustive"],
                   default="estimate", help="FFTW-style planning rigor")
    s.add_argument("--wisdom", type=Path,
                   help="planning-wisdom file (loaded if present, saved after)")
    from repro.impls import ALL_IMPLEMENTATIONS as _IMPLS

    s.add_argument("--impl", choices=["stitcher", *sorted(_IMPLS)],
                   default="stitcher",
                   help="phase-1 engine: the facade or a Table II implementation")
    s.add_argument("--backend", choices=sorted(_BACKEND_IMPLS),
                   default=None,
                   help="phase-1 parallelism shorthand: seq (simple-cpu), "
                        "thread (mt-cpu), proc (proc-cpu process workers)")
    s.add_argument("--workers", type=_workers_arg, default=2,
                   metavar="N|auto",
                   help="phase-1 workers (threads or processes, per "
                        "--backend/--impl); 'auto' uses the CPU count")
    s.add_argument("--fft-batch", type=int, default=4, metavar="K",
                   help="batch K same-shape tiles per forward FFT in the "
                        "proc-cpu / pipelined-cpu impls (1 disables batching)")
    s.add_argument("--compose-workers", type=_workers_arg, default=1,
                   metavar="N|auto",
                   help="phase-3 stripe workers for the output mosaic "
                        "(bit-identical to sequential); 'auto' = CPU count")
    s.add_argument("--memory-budget", type=_bytes_arg, default=None,
                   metavar="BYTES",
                   help="compose the output mosaic out-of-core under this "
                        "hard budget (suffixes K/M/G): bounded stripes + LRU "
                        "tile cache streamed to a TIFF/BigTIFF, bit-identical "
                        "to the in-memory path")
    s.add_argument("--pyramid", type=int, default=0, metavar="LEVELS",
                   help="also write LEVELS 2x block-mean pyramid files next "
                        "to the output mosaic (streamed, never materialized); "
                        "implies the streaming compose path")
    s.add_argument("--gpus", type=int, default=1,
                   help="virtual GPUs for the pipelined-gpu impl")
    s.add_argument("--pattern", type=str, default=None,
                   help="adopt a foreign directory: tile file pattern, e.g. "
                        "'img_r{row:03d}_c{col:03d}.tif'")
    s.add_argument("--overlap", type=float, default=0.1,
                   help="nominal overlap for --pattern discovery")
    s.add_argument("--max-retries", type=int, default=0,
                   help="retries per failing tile read (0 = fail fast)")
    s.add_argument("--on-tile-error", choices=["abort", "skip"],
                   default="abort",
                   help="after retries: abort the run, or drop the tile and "
                        "render a partial mosaic")
    s.add_argument("--inject-faults", type=str, default=None,
                   metavar="SEED[:kind=count,...]",
                   help="damage the run with a seeded fault plan (testing); "
                        "a bare SEED keeps the default mix, the extended "
                        "form names counts per kind, e.g. "
                        "'42:missing=1,transient=2' or '7:hang=1,latency=0'")
    s.add_argument("--fault-report", type=Path, default=None,
                   metavar="OUT.json",
                   help="write the machine-readable fault report "
                        "(retries/skips/degradations + injection summary)")
    s.add_argument("--checkpoint", type=Path, default=None, metavar="DIR",
                   help="journal completed work to DIR/journal.jsonl so an "
                        "interrupted run can resume without recomputing")
    s.add_argument("--resume", action="store_true",
                   help="require an existing matching journal in "
                        "--checkpoint DIR (error if absent); without this "
                        "flag a matching journal is still resumed when "
                        "present")
    s.add_argument("--watchdog", type=float, default=None, metavar="SECONDS",
                   help="supervise pipelined impls: cancel any work item "
                        "running longer than SECONDS and unwedge stalls "
                        "instead of hanging")
    s.add_argument("--stall-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="whole-pipeline no-progress window before the "
                        "watchdog escalates (with --watchdog)")
    s.add_argument("--trace", type=Path, default=None, metavar="OUT.json",
                   help="record a unified Chrome/Perfetto trace of the run "
                        "(stage spans + queue depths + virtual-GPU engines)")
    s.add_argument("--metrics", action="store_true",
                   help="collect and print per-stage counters/latency "
                        "percentiles as JSON")
    s.set_defaults(func=_cmd_stitch)

    s = sub.add_parser(
        "serve",
        help="run the stitching service (async HTTP job server over a "
             "pool of persistent warm workers)",
    )
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8642,
                   help="listen port (0 = ephemeral)")
    s.add_argument("--workers", type=_workers_arg, default=2,
                   metavar="N|auto",
                   help="persistent worker processes; each keeps a warm "
                        "FFT plan cache across jobs")
    s.add_argument("--spool", type=Path, default=Path("stitch-spool"),
                   help="per-job state root (checkpoints, positions)")
    s.add_argument("--dataset-root", type=Path, default=None,
                   help="confine job dataset paths to this directory")
    s.add_argument("--queue-depth", type=int, default=64,
                   help="max queued jobs before 429 + Retry-After")
    s.add_argument("--per-tenant", type=int, default=16,
                   help="max queued jobs per tenant")
    s.add_argument("--job-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="default per-job watchdog deadline (a job spec's "
                        "deadline_seconds overrides)")
    s.add_argument("--stall-timeout", type=float, default=120.0,
                   metavar="SECONDS",
                   help="kill + requeue a job writing no journal records "
                        "for this long")
    s.add_argument("--retry-budget", type=int, default=1,
                   help="default requeues per job after worker death "
                        "(a job spec's retry_budget overrides)")
    s.add_argument("--quarantine-threshold", type=int, default=3,
                   metavar="K",
                   help="worker deaths attributed to one job before it is "
                        "quarantined with a post-mortem")
    s.add_argument("--breaker-threshold", type=int, default=3,
                   help="worker deaths inside --breaker-window that trip "
                        "the crash-loop circuit breaker open")
    s.add_argument("--breaker-window", type=float, default=30.0,
                   metavar="SECONDS",
                   help="sliding window for the breaker's death count")
    s.add_argument("--breaker-cooldown", type=float, default=1.0,
                   metavar="SECONDS",
                   help="first OPEN interval before half-open canary "
                        "probing (doubles per failed canary, capped)")
    s.add_argument("--spool-budget", type=_bytes_arg, default=None,
                   metavar="BYTES",
                   help="spool disk budget (suffixes K/M/G); submissions "
                        "that would exceed it are rejected with 429")
    s.add_argument("--brownout", type=str, default="off",
                   metavar="MODE[:k=v,...]",
                   help="overload policy: off, shed, or degrade "
                        "(e.g. 'degrade:depth=0.8,shed-priority=4')")
    s.set_defaults(func=_cmd_serve)

    s = sub.add_parser("info", help="inspect a dataset directory or TIFF")
    s.add_argument("path", type=Path)
    s.set_defaults(func=_cmd_info)

    s = sub.add_parser("simulate", help="paper-scale performance simulation")
    s.add_argument("--machine", choices=["paper", "laptop"], default="paper")
    s.add_argument("--rows", type=int, default=42)
    s.add_argument("--cols", type=int, default=59)
    s.set_defaults(func=_cmd_simulate)

    s = sub.add_parser("report", help="paper-vs-measured fidelity report")
    s.add_argument("-o", "--output", type=Path, help="write markdown here")
    s.set_defaults(func=_cmd_report)
    return p


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.paper_report import fidelity_report

    text, all_ok = fidelity_report()
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"\nreport -> {args.output}")
    return 0 if all_ok else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
