"""One-shot fidelity report: regenerate paper-vs-measured as markdown.

``python -m repro report`` runs the calibrated experiments and emits a
self-contained markdown report comparing every headline number against the
published value -- the living version of EXPERIMENTS.md.  Useful after any
cost-model change to see at a glance what drifted.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Check:
    """One paper-vs-measured comparison line."""

    name: str
    paper: float
    measured: float
    unit: str = "s"
    tolerance: float = 0.35  # relative

    @property
    def ratio(self) -> float:
        return self.measured / self.paper if self.paper else float("nan")

    @property
    def ok(self) -> bool:
        return abs(self.ratio - 1.0) <= self.tolerance

    def row(self) -> list:
        return [
            self.name,
            round(self.paper, 2),
            round(self.measured, 2),
            f"{self.ratio:.2f}",
            "ok" if self.ok else "DRIFT",
        ]


def build_checks(rows: int = 42, cols: int = 59) -> list[Check]:
    """Run the paper-scale experiments and collect every headline check."""
    from repro.simulate.costmodel import LAPTOP, PAPER_MACHINE
    from repro.simulate.experiments import (
        PAPER_TABLE2,
        fig7_fig9_profiles,
        fig10_ccf_threads,
        fig11_cpu_scaling,
        table2_runtimes,
    )
    from repro.simulate.schedules import (
        simulate_pipelined_cpu,
        simulate_pipelined_gpu,
    )

    checks: list[Check] = []
    t2 = {r.implementation: r for r in table2_runtimes(PAPER_MACHINE, rows, cols)}
    for name, row in t2.items():
        checks.append(Check(f"Table II: {name}", PAPER_TABLE2[name], row.seconds))

    # Derived Table II ratios.
    checks.append(Check(
        "second-GPU factor",
        1.87, t2["pipelined-gpu-1"].seconds / t2["pipelined-gpu-2"].seconds,
        unit="x", tolerance=0.15,
    ))
    checks.append(Check(
        "Pipelined-GPU x1 speedup vs Simple-CPU",
        12.8, t2["pipelined-gpu-1"].speedup_vs_simple_cpu, unit="x", tolerance=0.25,
    ))

    prof = fig7_fig9_profiles(PAPER_MACHINE)
    checks.append(Check("Fig. 7: Simple-GPU 8x8 makespan", 15.9,
                        prof["simple-gpu"]["makespan"]))
    checks.append(Check("Fig. 9: Pipelined-GPU 8x8 makespan", 1.6,
                        prof["pipelined-gpu"]["makespan"]))
    checks.append(Check("Fig. 7/9 pipelining speedup", 11.2, prof["speedup"],
                        unit="x", tolerance=0.3))

    fig10 = dict(fig10_ccf_threads(PAPER_MACHINE, rows, cols, ccf_threads=(1, 2)))
    checks.append(Check("Fig. 10: 1 CCF thread", 42.0, fig10[1]))
    checks.append(Check("Fig. 10: 2 CCF threads", 28.0, fig10[2]))

    fig11 = {t: sp for t, _, sp in fig11_cpu_scaling(PAPER_MACHINE, rows, cols)}
    checks.append(Check("Fig. 11: speedup at 16 threads", 7.5, fig11[16],
                        unit="x", tolerance=0.2))

    checks.append(Check(
        "laptop Pipelined-GPU", 130.0,
        simulate_pipelined_gpu(LAPTOP, rows, cols, 1).makespan_seconds,
    ))
    checks.append(Check(
        "laptop Pipelined-CPU", 146.0,
        simulate_pipelined_cpu(LAPTOP, rows, cols, 8).makespan_seconds,
    ))
    return checks


def render_report(checks: list[Check]) -> str:
    """Markdown report from a list of checks."""
    from repro.analysis.report import format_table

    table = format_table(
        ["check", "paper", "measured", "ratio", "status"],
        [c.row() for c in checks],
        title="Paper-vs-measured fidelity report (calibrated simulator)",
    )
    n_ok = sum(1 for c in checks if c.ok)
    footer = f"\n{n_ok}/{len(checks)} checks within tolerance."
    if n_ok < len(checks):
        drifted = ", ".join(c.name for c in checks if not c.ok)
        footer += f"  DRIFTED: {drifted}"
    return table + footer


def fidelity_report(rows: int = 42, cols: int = 59) -> tuple[str, bool]:
    """Build + render; returns ``(markdown, all_ok)``."""
    checks = build_checks(rows, cols)
    return render_report(checks), all(c.ok for c in checks)
