"""Table I: operation counts, complexities, and operand sizes.

The paper's Table I lists, for an ``n x m`` grid of ``h x w`` tiles:

=========  ==============  ==============  ============
Operation  Count           Cost            Operand (B)
=========  ==============  ==============  ============
Read       n*m             h*w             2*h*w
FFT-2D     n*m             hw log(hw)      16*h*w
(x)        2nm - n - m     h*w             16*h*w
FFT-2D^-1  2nm - n - m     hw log(hw)      16*h*w
/max       2nm - n - m     h*w             16*h*w
CCF^1..4   2nm - n - m     h*w             4*h*w
=========  ==============  ==============  ============

(The forward-FFT row counts only tile transforms; the total transform
count quoted in the text, ``3nm - n - m``, adds the inverse transforms.)

:func:`table1_counts` produces the analytic table;
:func:`verify_against_run` checks an instrumented implementation run
against it, which is how the reproduction *proves* its implementations
execute the paper's operation mix.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OperationCounts:
    """Analytic operation counts for one grid configuration."""

    rows: int
    cols: int
    tile_height: int
    tile_width: int

    @property
    def tiles(self) -> int:
        return self.rows * self.cols

    @property
    def pairs(self) -> int:
        n, m = self.rows, self.cols
        return 2 * n * m - n - m

    @property
    def reads(self) -> int:
        return self.tiles

    @property
    def forward_ffts(self) -> int:
        return self.tiles

    @property
    def inverse_ffts(self) -> int:
        return self.pairs

    @property
    def total_transforms(self) -> int:
        """The text's ``3nm - n - m``."""
        return self.forward_ffts + self.inverse_ffts

    @property
    def nccs(self) -> int:
        return self.pairs

    @property
    def reductions(self) -> int:
        return self.pairs

    @property
    def ccfs(self) -> int:
        return self.pairs

    # Operand sizes in bytes (Table I, rightmost column).
    @property
    def read_bytes(self) -> int:
        return 2 * self.tile_height * self.tile_width   # 16-bit pixels

    @property
    def transform_bytes(self) -> int:
        return 16 * self.tile_height * self.tile_width  # complex double

    @property
    def ccf_bytes(self) -> int:
        return 4 * self.tile_height * self.tile_width   # float image

    def forward_transform_total_bytes(self) -> int:
        """RAM needed to hold every forward transform simultaneously.

        For the paper's 42x59 grid this is 53.5 GB ("well beyond the
        capacity of most machines", Section III).
        """
        return self.forward_ffts * self.transform_bytes


def table1_counts(
    rows: int, cols: int, tile_height: int, tile_width: int
) -> list[dict]:
    """The rows of Table I for one configuration (ready for formatting)."""
    c = OperationCounts(rows, cols, tile_height, tile_width)
    hw = tile_height * tile_width
    return [
        {"operation": "Read", "count": c.reads, "cost": "h*w", "operand_bytes": c.read_bytes},
        {"operation": "FFT-2D", "count": c.forward_ffts, "cost": "hw log(hw)", "operand_bytes": c.transform_bytes},
        {"operation": "(x)", "count": c.nccs, "cost": "h*w", "operand_bytes": c.transform_bytes},
        {"operation": "FFT-2D^-1", "count": c.inverse_ffts, "cost": "hw log(hw)", "operand_bytes": c.transform_bytes},
        {"operation": "/max", "count": c.reductions, "cost": "h*w", "operand_bytes": c.transform_bytes},
        {"operation": "CCF^1..4", "count": c.ccfs, "cost": "h*w", "operand_bytes": c.ccf_bytes},
    ]


def verify_against_run(counts: OperationCounts, stats: dict) -> dict[str, bool]:
    """Compare an instrumented run's stats against the analytic counts.

    Only checks the keys the run reports.  Returns a per-check dict of
    booleans; callers assert ``all(...)``.
    """
    checks: dict[str, bool] = {}
    if "reads" in stats:
        checks["reads"] = stats["reads"] >= counts.reads  # SPMD may duplicate
        checks["reads_exact_or_redundant"] = stats["reads"] <= 2 * counts.reads
    if "ffts" in stats:
        checks["forward_ffts"] = counts.forward_ffts <= stats["ffts"] <= 2 * counts.forward_ffts
    if "pairs" in stats:
        checks["pairs"] = stats["pairs"] == counts.pairs
    return checks
