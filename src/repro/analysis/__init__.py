"""Analysis helpers: operation counting (Table I), metrics, reporting."""

from repro.analysis.opcounts import OperationCounts, table1_counts
from repro.analysis.metrics import speedup_table, position_accuracy
from repro.analysis.report import format_table, format_series
from repro.analysis.steerability import SteerabilityReport, steerability
from repro.analysis.quality import QualitySummary, quality_summary
from repro.analysis.tracefmt import des_trace_events, gpu_trace_events, write_chrome_trace

__all__ = [
    "OperationCounts",
    "table1_counts",
    "speedup_table",
    "position_accuracy",
    "format_table",
    "format_series",
    "SteerabilityReport",
    "steerability",
    "QualitySummary",
    "quality_summary",
    "gpu_trace_events",
    "des_trace_events",
    "write_chrome_trace",
]
