"""Derived metrics: speedups, accuracy scoring against ground truth."""

from __future__ import annotations

import numpy as np

from repro.core.displacement import DisplacementResult
from repro.core.global_opt import GlobalPositions


def speedup_table(times: dict[str, float], baseline: str) -> dict[str, float]:
    """Speedups of every entry relative to ``times[baseline]``."""
    if baseline not in times:
        raise KeyError(f"baseline {baseline!r} not among {sorted(times)}")
    base = times[baseline]
    return {name: base / t for name, t in times.items()}


def position_accuracy(
    positions: GlobalPositions, true_positions
) -> dict[str, float]:
    """Euclidean error statistics of recovered vs true tile origins.

    Both sets are re-anchored at their minimum before comparison (global
    translation is unobservable).
    """
    true = np.asarray(true_positions, dtype=np.float64)
    true = true - true.reshape(-1, 2).min(axis=0)
    rec = positions.positions.astype(np.float64)
    err = np.linalg.norm(rec - true, axis=-1).ravel()
    return {
        "max": float(err.max()),
        "mean": float(err.mean()),
        "rms": float(np.sqrt((err**2).mean())),
        "perfect_fraction": float((err == 0).mean()),
    }


def displacement_agreement(
    a: DisplacementResult, b: DisplacementResult
) -> float:
    """Fraction of pairs on which two phase-1 results agree exactly."""
    if (a.rows, a.cols) != (b.rows, b.cols):
        raise ValueError("grids differ")
    total = 0
    same = 0
    for arr_a, arr_b in ((a.west, b.west), (a.north, b.north)):
        for row_a, row_b in zip(arr_a, arr_b):
            for ta, tb in zip(row_a, row_b):
                if ta is None and tb is None:
                    continue
                total += 1
                if ta is not None and tb is not None and (ta.tx, ta.ty) == (tb.tx, tb.ty):
                    same += 1
    return same / total if total else 1.0
