"""Trace export: Chrome trace-event JSON from pipeline/GPU/DES timelines.

The paper inspects its implementations with NVIDIA's visual profiler
(Figs. 7 and 9).  The equivalent here: export the live pipeline's span
trace (:mod:`repro.observe`), a virtual-GPU trace, or a DES schedule to
the Chrome trace-event format and open it in ``chrome://tracing`` /
Perfetto.  Each stage worker, GPU engine, or DES resource becomes a
timeline row; queue-depth samples become counter (``ph: "C"``) tracks --
the monitor-queue occupancy signal the Fig. 8 architecture was tuned by.

:func:`merged_trace_events` combines all the sources of one run into a
*single* file: host pipeline spans on one process row, each virtual GPU's
engines on their own, so copy/compute/host activity line up the way the
paper's nvvp screenshots do.

Format reference: the "JSON Array Format" of the Trace Event
specification -- a list of ``{"name", "ph": "X", "ts", "dur", "pid",
"tid"}`` objects with microsecond timestamps.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.gpu.profiler import GpuProfiler
from repro.observe.tracer import Tracer
from repro.simulate.des import TaskGraphSimulator

_US = 1e6  # trace-event timestamps are in microseconds

#: pid of the host-pipeline process row in merged traces; virtual GPUs
#: take pids :data:`GPU_PID_BASE`, ``GPU_PID_BASE + 1``, ...
PIPELINE_PID = 1
GPU_PID_BASE = 10


def _process_name(pid: int, name: str) -> dict:
    return {"name": "process_name", "ph": "M", "ts": 0, "pid": pid,
            "tid": 0, "args": {"name": name}}


def gpu_trace_events(profiler: GpuProfiler, pid: int = 0) -> list[dict]:
    """Convert a virtual-GPU trace to trace-event dicts (one tid/engine)."""
    tids: dict[str, int] = {}
    out = []
    for e in profiler.events:
        tid = tids.setdefault(e.engine, len(tids))
        out.append({
            "name": e.name,
            "ph": "X",
            "ts": e.start * _US,
            "dur": max(0.0, e.duration) * _US,
            "pid": pid,
            "tid": tid,
            "args": {"stream": e.stream, "nbytes": e.nbytes},
        })
    # Row labels so the viewer shows engine names.
    for engine, tid in tids.items():
        out.append({
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": tid,
            "args": {"name": engine},
        })
    return out


def des_trace_events(sim: TaskGraphSimulator, pid: int = 0) -> list[dict]:
    """Convert a completed DES schedule to trace-event dicts.

    Resources become threads; ops must have been scheduled (``run()``
    called), unscheduled ops raise.
    """
    tids: dict[str, int] = {}
    out = []
    for o in sim.ops:
        if not o.scheduled:
            raise ValueError(f"op {o.name!r} was never scheduled; run() first")
        tid = tids.setdefault(o.resource, len(tids))
        out.append({
            "name": o.name,
            "ph": "X",
            "ts": o.start * _US,
            "dur": o.duration * _US,
            "pid": pid,
            "tid": tid,
        })
    for resource, tid in tids.items():
        out.append({
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": tid,
            "args": {"name": resource},
        })
    return out


def tracer_trace_events(tracer: Tracer, pid: int = PIPELINE_PID) -> list[dict]:
    """Convert live pipeline spans + counter samples to trace events.

    Span tracks (one per stage worker) become threads (``ph: "X"``);
    queue-wait spans keep their ``"<stage>:wait"`` names so they are
    visually distinct from compute.  Counter samples become ``ph: "C"``
    counter tracks -- Perfetto renders each as a step chart, the queue
    occupancy timeline of the paper's Fig. 8 tuning.
    """
    tids: dict[str, int] = {}
    out: list[dict] = []
    for s in tracer.spans:
        tid = tids.setdefault(s.track, len(tids))
        event = {
            "name": s.name,
            "ph": "X",
            "ts": s.start * _US,
            "dur": max(0.0, s.duration) * _US,
            "pid": pid,
            "tid": tid,
        }
        args = dict(s.args or {})
        if s.key is not None:
            args["key"] = s.key
        if args:
            event["args"] = args
        out.append(event)
    for c in tracer.counters:
        out.append({
            "name": c.name,
            "ph": "C",
            "ts": c.t * _US,
            "pid": pid,
            "tid": 0,
            "args": {"depth": c.value},
        })
    for track, tid in tids.items():
        out.append({
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": tid,
            "args": {"name": track},
        })
    return out


def merged_trace_events(
    tracer: Tracer | None = None,
    gpu_profilers: list[GpuProfiler] | None = None,
    sims: list[TaskGraphSimulator] | None = None,
) -> list[dict]:
    """One unified timeline: pipeline spans + queue counters + GPU engines.

    The host pipeline renders as process :data:`PIPELINE_PID`; each
    virtual GPU (and each DES schedule, if any) gets its own process row
    starting at :data:`GPU_PID_BASE`.  Note the clocks differ by design:
    pipeline spans are wall-clock seconds since the tracer's start, the
    virtual GPU rows run on the device's *virtual* clock (as in the
    paper, where nvvp time and modeled time are compared, not equated).
    """
    events: list[dict] = []
    if tracer is not None:
        events.extend(tracer_trace_events(tracer, pid=PIPELINE_PID))
        events.append(_process_name(PIPELINE_PID, "pipeline"))
    pid = GPU_PID_BASE
    for profiler in gpu_profilers or []:
        events.extend(gpu_trace_events(profiler, pid=pid))
        events.append(_process_name(pid, f"virtual-gpu-{pid - GPU_PID_BASE}"))
        pid += 1
    for sim in sims or []:
        events.extend(des_trace_events(sim, pid=pid))
        events.append(_process_name(pid, "des-schedule"))
        pid += 1
    return events


_VALID_PHASES = {"X", "C", "M", "i", "B", "E"}


def validate_trace_events(
    events: list[dict], require_counters: bool = False
) -> None:
    """Check ``events`` against the trace-event schema; raise on violation.

    Every event must carry ``name``/``ph``/``ts``/``pid``/``tid``;
    complete events (``ph: "X"``) additionally need a non-negative
    ``dur``; counter events need numeric ``args``.  With
    ``require_counters=True`` at least one ``ph: "C"`` track must exist
    (the CI smoke check: a pipeline trace without queue telemetry is a
    regression).  Used by the test suite and the CI trace-smoke step.
    """
    if not isinstance(events, list):
        raise ValueError(f"trace must be a JSON array, got {type(events).__name__}")
    if not events:
        raise ValueError("trace is empty")
    counters = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            raise ValueError(f"event {i} is not an object: {e!r}")
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in e:
                raise ValueError(f"event {i} missing {field!r}: {e!r}")
        ph = e["ph"]
        if ph not in _VALID_PHASES:
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            raise ValueError(f"event {i} has bad ts: {e['ts']!r}")
        if ph == "X":
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
                raise ValueError(f"complete event {i} has bad dur: {e!r}")
        if ph == "C":
            counters += 1
            args = e.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise ValueError(f"counter event {i} has non-numeric args: {e!r}")
    if require_counters and counters == 0:
        raise ValueError("trace has no counter (ph='C') tracks")


def write_chrome_trace(path: str | Path, events: list[dict]) -> None:
    """Write trace events as a Chrome-loadable JSON array file."""
    Path(path).write_text(json.dumps(events))
