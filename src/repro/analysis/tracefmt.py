"""Trace export: Chrome trace-event JSON from GPU/DES timelines.

The paper inspects its implementations with NVIDIA's visual profiler
(Figs. 7 and 9).  The equivalent here: export a virtual-GPU trace or a
DES schedule to the Chrome trace-event format and open it in
``chrome://tracing`` / Perfetto.  Each engine (or DES resource) becomes a
timeline row; op names and durations carry over.

Format reference: the "JSON Array Format" of the Trace Event
specification -- a list of ``{"name", "ph": "X", "ts", "dur", "pid",
"tid"}`` objects with microsecond timestamps.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.gpu.profiler import GpuProfiler
from repro.simulate.des import TaskGraphSimulator

_US = 1e6  # trace-event timestamps are in microseconds


def gpu_trace_events(profiler: GpuProfiler, pid: int = 0) -> list[dict]:
    """Convert a virtual-GPU trace to trace-event dicts (one tid/engine)."""
    tids: dict[str, int] = {}
    out = []
    for e in profiler.events:
        tid = tids.setdefault(e.engine, len(tids))
        out.append({
            "name": e.name,
            "ph": "X",
            "ts": e.start * _US,
            "dur": max(0.0, e.duration) * _US,
            "pid": pid,
            "tid": tid,
            "args": {"stream": e.stream, "nbytes": e.nbytes},
        })
    # Row labels so the viewer shows engine names.
    for engine, tid in tids.items():
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": engine},
        })
    return out


def des_trace_events(sim: TaskGraphSimulator, pid: int = 0) -> list[dict]:
    """Convert a completed DES schedule to trace-event dicts.

    Resources become threads; ops must have been scheduled (``run()``
    called), unscheduled ops raise.
    """
    tids: dict[str, int] = {}
    out = []
    for o in sim.ops:
        if not o.scheduled:
            raise ValueError(f"op {o.name!r} was never scheduled; run() first")
        tid = tids.setdefault(o.resource, len(tids))
        out.append({
            "name": o.name,
            "ph": "X",
            "ts": o.start * _US,
            "dur": o.duration * _US,
            "pid": pid,
            "tid": tid,
        })
    for resource, tid in tids.items():
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": resource},
        })
    return out


def write_chrome_trace(path: str | Path, events: list[dict]) -> None:
    """Write trace events as a Chrome-loadable JSON array file."""
    Path(path).write_text(json.dumps(events))
