"""Plain-text table/series formatting for the benchmark harness.

The harness prints the same rows/series the paper reports; these helpers
keep the formatting in one place (monospace tables, no external deps).
"""

from __future__ import annotations

from typing import Sequence


def _fmt(v, ndigits: int = 2) -> str:
    if isinstance(v, float):
        if v != v:  # NaN
            return "-"
        if abs(v) >= 1000 or (abs(v) < 0.01 and v != 0):
            return f"{v:.3g}"
        return f"{v:.{ndigits}f}"
    return str(v)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Monospace table with per-column width fitting."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    xlabel: str, ylabel: str, points: Sequence[tuple], title: str = ""
) -> str:
    """Two-column series plus a coarse ASCII bar chart (for figure benches)."""
    lines = []
    if title:
        lines.append(title)
    ys = [float(p[1]) for p in points]
    ymax = max(ys) if ys else 1.0
    for x, y, *rest in points:
        bar = "#" * max(1, int(40 * float(y) / ymax)) if ymax > 0 else ""
        extra = ("  " + " ".join(_fmt(r) for r in rest)) if rest else ""
        lines.append(f"{xlabel}={_fmt(x):>6}  {ylabel}={_fmt(float(y)):>10}  {bar}{extra}")
    return "\n".join(lines)
