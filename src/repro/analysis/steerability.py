"""Computational steerability: the paper's time-budget criterion.

Section I: "Image stitching must reconstruct a plate image in a fraction
of the imaging period to allow researchers enough time to examine and
analyze the acquired images and, if need be, intervene."  This module
turns that sentence into a measurable report: given a stitching time, an
imaging period, and the time the researcher's own analysis needs, is the
experiment steerable, and how much slack remains?
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SteerabilityReport:
    """Outcome of the time-budget analysis for one configuration."""

    stitch_seconds: float
    analysis_seconds: float
    imaging_period_seconds: float

    @property
    def used_fraction(self) -> float:
        """Fraction of the period consumed by stitching + analysis."""
        return (self.stitch_seconds + self.analysis_seconds) / self.imaging_period_seconds

    @property
    def slack_seconds(self) -> float:
        """Time left for the researcher to decide and intervene."""
        return self.imaging_period_seconds - self.stitch_seconds - self.analysis_seconds

    @property
    def steerable(self) -> bool:
        """Stitching + analysis fit in the period with decision slack.

        The criterion is a *fraction* of the period (we use <= 50 %): a
        pipeline that only just fits leaves no time to act on what it
        shows, which is the paper's whole point about ImageJ/Fiji (3.6 h of
        stitching for a 45 min period is 480 % -- results arrive five scans
        stale).
        """
        return self.used_fraction <= 0.5

    @property
    def scans_behind(self) -> int:
        """How many scans pile up while one scan is processed (0 = live)."""
        import math

        return max(0, math.ceil(
            (self.stitch_seconds + self.analysis_seconds)
            / self.imaging_period_seconds
        ) - 1)


def steerability(
    stitch_seconds: float,
    imaging_period_seconds: float = 45 * 60.0,
    analysis_seconds: float = 0.0,
) -> SteerabilityReport:
    """Build a report; raises on non-positive period."""
    if imaging_period_seconds <= 0:
        raise ValueError("imaging period must be positive")
    if stitch_seconds < 0 or analysis_seconds < 0:
        raise ValueError("times must be non-negative")
    return SteerabilityReport(
        stitch_seconds=stitch_seconds,
        analysis_seconds=analysis_seconds,
        imaging_period_seconds=imaging_period_seconds,
    )
