"""Phase-1 quality summary: correlation statistics over the grid.

After stitching, users need to know *whether to trust* the result before
composing a terabyte mosaic from it.  This summarizes the pairwise
correlations (the CCF values phase 1 attaches to every translation): how
many pairs are confident, where the weak regions are, and whether the
stage model (per-direction medians) looks sane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.displacement import DisplacementResult
from repro.grid.neighbors import Direction


@dataclass
class QualitySummary:
    """Grid-level confidence report for a phase-1 result."""

    pair_count: int
    min_correlation: float
    median_correlation: float
    mean_correlation: float
    low_confidence_pairs: int          # below the threshold
    threshold: float
    weak_tiles: list = field(default_factory=list)  # (row, col) near weak pairs
    direction_medians: dict = field(default_factory=dict)

    @property
    def low_confidence_fraction(self) -> float:
        return self.low_confidence_pairs / self.pair_count if self.pair_count else 0.0

    @property
    def trustworthy(self) -> bool:
        """Heuristic gate: at most 10 % weak pairs and a sane median."""
        return self.low_confidence_fraction <= 0.10 and self.median_correlation >= 0.5


def quality_summary(
    disp: DisplacementResult, threshold: float = 0.5
) -> QualitySummary:
    """Summarize a displacement result's confidence structure."""
    corrs: list[float] = []
    weak: set[tuple[int, int]] = set()
    medians: dict[str, tuple[float, float]] = {}
    for direction in (Direction.WEST, Direction.NORTH):
        arr = disp.west if direction is Direction.WEST else disp.north
        txs, tys = [], []
        for r in range(disp.rows):
            for c in range(disp.cols):
                t = arr[r][c]
                if t is None:
                    continue
                corrs.append(t.correlation)
                txs.append(t.tx)
                tys.append(t.ty)
                if t.correlation < threshold:
                    weak.add((r, c))
                    weak.add((r, c - 1) if direction is Direction.WEST else (r - 1, c))
        if txs:
            medians[direction.value] = (
                float(np.median(txs)), float(np.median(tys))
            )
    if not corrs:
        return QualitySummary(
            pair_count=0, min_correlation=0.0, median_correlation=0.0,
            mean_correlation=0.0, low_confidence_pairs=0, threshold=threshold,
        )
    arr = np.asarray(corrs)
    return QualitySummary(
        pair_count=len(corrs),
        min_correlation=float(arr.min()),
        median_correlation=float(np.median(arr)),
        mean_correlation=float(arr.mean()),
        low_confidence_pairs=int((arr < threshold).sum()),
        threshold=threshold,
        weak_tiles=sorted(weak),
        direction_medians=medians,
    )
