"""Thread-safe span tracer for the *real* (threaded) pipeline.

The paper diagnoses its implementations by looking at timelines: Figs. 7
and 9 are nvvp screenshots whose rows are engines and whose boxes are
copies/kernels.  The virtual GPU already produces such a timeline
(:mod:`repro.gpu.profiler`); this module produces the matching timeline
for the host-side pipeline -- one :class:`Span` per handler invocation,
tagged with the stage, the worker, the item being processed, and whether
the time was spent *waiting* on a queue or *computing*.

Design constraints:

- **near-zero overhead when disabled**: every recording call is guarded
  by a single attribute check (``tracer.enabled``), and the module-level
  :data:`NULL_TRACER` lets instrumented code avoid ``None`` checks;
- **thread-safe**: spans arrive from every stage worker concurrently;
  recording is one lock-protected ``list.append``;
- **relative clock**: timestamps are seconds since the tracer's creation
  (``perf_counter`` based), so merged traces start near zero.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """One closed interval of work on a named timeline track.

    ``track`` names the row the span renders on (e.g. ``"compute-1"`` =
    worker 1 of the compute stage); ``name`` is the box label (usually the
    stage name, or ``"<stage>:wait"`` for queue-wait time); ``key``
    identifies the item (tile position / pair) when known.
    """

    name: str
    track: str
    start: float
    end: float
    key: str | None = None
    args: dict | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CounterSample:
    """One sample of a named counter (e.g. a queue's depth) at time ``t``."""

    name: str
    t: float
    value: float


class Tracer:
    """Collects :class:`Span` and :class:`CounterSample` records.

    A disabled tracer (``Tracer(enabled=False)`` or :data:`NULL_TRACER`)
    accepts every call and records nothing; hot paths additionally guard
    on :attr:`enabled` so a disabled tracer costs one attribute read.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.counters: list[CounterSample] = []
        self._t0 = time.perf_counter()

    def now(self) -> float:
        """Seconds since this tracer was created (the trace's time base)."""
        return time.perf_counter() - self._t0

    # -- recording ----------------------------------------------------------

    def record_span(
        self,
        name: str,
        track: str,
        start: float,
        end: float,
        key: str | None = None,
        args: dict | None = None,
    ) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.spans.append(Span(name, track, start, end, key, args))

    def counter(self, name: str, value: float, t: float | None = None) -> None:
        if not self.enabled:
            return
        if t is None:
            t = self.now()
        with self._lock:
            self.counters.append(CounterSample(name, t, float(value)))

    @contextmanager
    def span(self, name: str, track: str, key: str | None = None,
             args: dict | None = None):
        """Context manager recording one span around the ``with`` body."""
        if not self.enabled:
            yield self
            return
        t0 = self.now()
        try:
            yield self
        finally:
            self.record_span(name, track, t0, self.now(), key=key, args=args)

    def absorb(self, spans: list[Span], t0: float | None = None) -> None:
        """Merge spans recorded by another tracer (usually another process).

        Process workers each run their own :class:`Tracer`; their spans are
        shipped back (the dataclass pickles) and folded into the parent's
        timeline here.  ``t0`` is the child tracer's ``perf_counter``
        creation time: ``perf_counter`` is CLOCK_MONOTONIC -- system-wide
        on Linux -- so rebasing child timestamps onto this tracer's clock
        is a constant offset ``t0 - self._t0``.  Pass ``t0=None`` when the
        clocks already share a base (same-process tracers).
        """
        if not self.enabled or not spans:
            return
        offset = 0.0 if t0 is None else t0 - self._t0
        with self._lock:
            for s in spans:
                self.spans.append(
                    Span(s.name, s.track, s.start + offset, s.end + offset,
                         s.key, s.args)
                )

    # -- inspection ---------------------------------------------------------

    def tracks(self) -> list[str]:
        """Distinct span tracks in first-appearance order."""
        with self._lock:
            seen: dict[str, None] = {}
            for s in self.spans:
                seen.setdefault(s.track, None)
            return list(seen)

    def counter_names(self) -> list[str]:
        with self._lock:
            seen: dict[str, None] = {}
            for c in self.counters:
                seen.setdefault(c.name, None)
            return list(seen)

    def span_count(self, name_prefix: str = "") -> int:
        with self._lock:
            return sum(1 for s in self.spans if s.name.startswith(name_prefix))

    def busy_seconds(self, track: str, include_wait: bool = False) -> float:
        """Summed span durations on ``track`` (compute only by default)."""
        with self._lock:
            return sum(
                s.duration
                for s in self.spans
                if s.track == track
                and (include_wait or not s.name.endswith(":wait"))
            )


#: Shared disabled tracer: instrumented code holds this instead of ``None``
#: so the hot-path guard is always a plain attribute read.
NULL_TRACER = Tracer(enabled=False)
