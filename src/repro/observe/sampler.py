"""Periodic queue-depth sampling (the Fig. 8 monitor-queue telemetry).

The paper sizes its monitor queues by watching their occupancy during
runs; :class:`QueueDepthSampler` produces exactly that signal -- a
background thread polls ``len(queue)`` for every queue of a pipeline and
emits the samples as tracer counters (rendered as ``ph: "C"`` counter
tracks in the Chrome trace) and as registry gauges.

Guarantees:

- at least one sample per queue is taken synchronously in :meth:`start`
  and one in :meth:`stop`, so every queue gets a counter track even when
  the run outpaces the sampling interval;
- the thread is a daemon and :meth:`stop` is idempotent, so a crashed
  pipeline cannot leak a spinning sampler.
"""

from __future__ import annotations

import threading

from repro.observe.metrics import MetricsRegistry
from repro.observe.tracer import NULL_TRACER, Tracer


class QueueDepthSampler:
    """Samples queue depths every ``interval`` seconds until stopped."""

    def __init__(
        self,
        queues,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        interval: float = 0.005,
        prefix: str = "queue",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.queues = list(queues)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.interval = interval
        self.prefix = prefix
        self.samples_taken = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _name(self, q) -> str:
        return f"{self.prefix}:{q.name or id(q)}"

    def sample_once(self) -> None:
        t = self.tracer.now() if self.tracer.enabled else 0.0
        for q in self.queues:
            depth = len(q)
            self.tracer.counter(self._name(q), depth, t=t)
            if self.metrics is not None:
                self.metrics.gauge(f"{self._name(q)}.depth").set(depth)
        self.samples_taken += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> "QueueDepthSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self.sample_once()  # guarantee one sample even for instant runs
        self._thread = threading.Thread(
            target=self._loop, name="queue-depth-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take a final sample; safe to call twice."""
        if self._stop.is_set():
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.sample_once()

    def __enter__(self) -> "QueueDepthSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
