"""Thread-safe metrics: counters, gauges, and latency histograms.

The paper tunes its Fig. 8 architecture by watching aggregate quantities
-- items through each stage, queue occupancy, retries -- not individual
events.  :class:`MetricsRegistry` is the aggregate side of the
observability layer: cheap monotonically-named instruments that every
pipeline component can bump without coordination, snapshotted into a
JSON-able dict at the end of a run (``StitchResult.stats["metrics"]``).

All instruments share one registry lock for creation; each instrument
carries its own lock for updates, so two stages bumping different
counters never contend.
"""

from __future__ import annotations

import threading
from typing import Any


class Counter:
    """Monotonically increasing count (items processed, retries, drops)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins instantaneous value, tracking its own peak."""

    __slots__ = ("_lock", "_value", "_peak")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._peak = 0.0

    def set(self, v: float) -> None:
        with self._lock:
            self._value = float(v)
            if v > self._peak:
                self._peak = float(v)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def peak(self) -> float:
        with self._lock:
            return self._peak


class Histogram:
    """Latency distribution with exact percentiles.

    Samples are kept verbatim (runs here are thousands of items, not
    millions); ``percentile`` sorts lazily on demand.
    """

    __slots__ = ("_lock", "_samples")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: list[float] = []

    def observe(self, v: float) -> None:
        with self._lock:
            self._samples.append(float(v))

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._samples)

    @property
    def sum(self) -> float:
        with self._lock:
            return sum(self._samples)

    def percentile(self, p: float) -> float:
        """Exact percentile ``p`` in [0, 100] (nearest-rank); 0.0 if empty."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return {"count": 0, "sum": 0.0}
        ordered = sorted(samples)

        def rank(p: float) -> float:
            return ordered[max(0, min(len(ordered) - 1,
                                      round(p / 100 * (len(ordered) - 1))))]

        return {
            "count": len(ordered),
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / len(ordered),
            "p50": rank(50),
            "p90": rank(90),
            "p99": rank(99),
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted at run end."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter()
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge()
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram()
            return inst

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump of every instrument (sorted names, stable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: counters[k].value for k in sorted(counters)},
            "gauges": {
                k: {"value": gauges[k].value, "peak": gauges[k].peak}
                for k in sorted(gauges)
            },
            "histograms": {
                k: histograms[k].summary() for k in sorted(histograms)
            },
        }
