"""Pipeline observability: span tracing, metrics, queue-depth sampling.

The runtime counterpart of the paper's profiling methodology (nvvp
timelines in Figs. 7/9, monitor-queue occupancy for the Fig. 8 tuning):

- :class:`Tracer` / :class:`Span` -- per-stage, per-worker, per-item
  timeline records with queue-wait vs compute attribution;
- :class:`MetricsRegistry` -- counters / gauges / histograms aggregated
  over a run (throughput, latency percentiles, retries, drops);
- :class:`QueueDepthSampler` -- periodic depth sampling of every monitor
  queue, rendered as Chrome-trace counter tracks.

Everything composes into one Chrome trace-event / Perfetto file through
:mod:`repro.analysis.tracefmt`.
"""

from repro.observe.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observe.sampler import QueueDepthSampler
from repro.observe.tracer import NULL_TRACER, CounterSample, Span, Tracer

__all__ = [
    "Counter",
    "CounterSample",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "QueueDepthSampler",
    "Span",
    "Tracer",
]
