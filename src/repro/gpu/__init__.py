"""Simulated CUDA substrate (replaces the paper's Tesla C2070 cards).

No GPU exists in this environment, so this package provides a *functional*
emulation with the same structural constraints the paper's implementation
had to respect:

- explicit device memory with a hard capacity (:mod:`repro.gpu.memory`):
  allocations are tracked in bytes and fail when the 6 GB-class card would
  have failed;
- streams (:mod:`repro.gpu.stream`): operations submitted to one stream
  execute in submission order; distinct streams are unordered relative to
  each other (the property the pipelined implementation exploits with one
  stream per GPU stage);
- kernels (:mod:`repro.gpu.kernels`): FFT / NCC / inverse-FFT / max-reduce
  operating on device buffers with *real NumPy math* -- results are
  bit-identical to the CPU path, only the hardware is simulated;
- a profiler (:mod:`repro.gpu.profiler`) recording every copy and kernel
  with engine attribution, standing in for ``nvvp`` in Figs. 7 and 9
  (deterministic timing for those figures comes from
  :mod:`repro.simulate`, which shares this package's cost constants).

The emulation deliberately reproduces a Fermi-era quirk the paper calls
out: cuFFT kernels cannot execute concurrently (register pressure), so the
device serializes FFT work even across streams.
"""

from repro.gpu.device import VirtualGpu
from repro.gpu.memory import DeviceAllocator, DeviceBuffer, DevicePool, OutOfDeviceMemory
from repro.gpu.stream import Stream
from repro.gpu.profiler import GpuProfiler, TraceEvent

__all__ = [
    "VirtualGpu",
    "DeviceAllocator",
    "DeviceBuffer",
    "DevicePool",
    "OutOfDeviceMemory",
    "Stream",
    "GpuProfiler",
    "TraceEvent",
]
