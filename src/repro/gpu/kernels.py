"""Device kernels: FFT, NCC, inverse FFT, max-reduce (real math).

Each kernel mirrors one custom CUDA kernel or cuFFT call of the paper's
Simple-GPU / Pipelined-GPU implementations.  They operate on device-side
arrays (``DeviceBuffer.data`` or pool slots), run genuine NumPy/SciPy math,
and are traced on the device's compute engine with modeled durations.

The max-reduce returns only the flat index and magnitude -- the paper
"minimizes transfers from device to host memory by only copying the result
of the parallel reduction", and these kernels preserve that structure: the
caller d2h-copies a scalar, never the 22 MB correlation surface.
"""

from __future__ import annotations

import numpy as np
import scipy.fft as _sfft

from repro.core.ncc import normalized_correlation
from repro.gpu.device import VirtualGpu
from repro.gpu.stream import Stream


def _area(a: np.ndarray) -> int:
    return int(a.shape[-2] * a.shape[-1])


def fft2_kernel(
    device: VirtualGpu,
    src: np.ndarray,
    dst: np.ndarray,
    stream: Stream | None = None,
    not_before: float = 0.0,
):
    """Forward 2-D c2c transform of ``src`` (device) into ``dst`` (device)."""
    stream = stream or device.default_stream

    def do() -> None:
        dst[...] = _sfft.fft2(src)

    _, event = stream.submit(
        "cufft-fwd", "compute", do, device.costs.fft(_area(src)), 0, not_before
    )
    return event


def rfft2_kernel(
    device: VirtualGpu,
    src: np.ndarray,
    dst: np.ndarray,
    stream: Stream | None = None,
    not_before: float = 0.0,
):
    """Forward 2-D r2c transform: real ``src`` into half-spectrum ``dst``.

    cuFFT's R2C plan exploits Hermitian symmetry: the output is
    ``(h, w//2+1)`` and the work is roughly half a C2C transform of the
    same spatial extent, which the cost model reflects.
    """
    stream = stream or device.default_stream

    def do() -> None:
        dst[...] = _sfft.rfft2(src)

    _, event = stream.submit(
        "cufft-fwd-r2c", "compute", do,
        0.5 * device.costs.fft(_area(src)), 0, not_before,
    )
    return event


def irfft2_kernel(
    device: VirtualGpu,
    src: np.ndarray,
    dst: np.ndarray,
    stream: Stream | None = None,
    not_before: float = 0.0,
):
    """Inverse 2-D c2r transform: half-spectrum ``src`` into real ``dst``.

    ``dst``'s spatial shape disambiguates the target width (the
    half-spectrum alone cannot distinguish even from odd widths), exactly
    as a cuFFT C2R plan carries the full transform size.
    """
    stream = stream or device.default_stream

    def do() -> None:
        dst[...] = _sfft.irfft2(src, s=dst.shape)

    _, event = stream.submit(
        "cufft-inv-c2r", "compute", do,
        0.5 * device.costs.fft(_area(dst)), 0, not_before,
    )
    return event


def ncc_kernel(
    device: VirtualGpu,
    fft_i: np.ndarray,
    fft_j: np.ndarray,
    dst: np.ndarray,
    stream: Stream | None = None,
    not_before: float = 0.0,
):
    """Normalized conjugate multiply into ``dst`` (may alias inputs)."""
    stream = stream or device.default_stream

    def do() -> None:
        normalized_correlation(fft_i, fft_j, out=dst)

    _, event = stream.submit(
        "ncc", "compute", do, device.costs.ncc(_area(fft_i)), 0, not_before
    )
    return event


def ifft2_kernel(
    device: VirtualGpu,
    src: np.ndarray,
    dst: np.ndarray,
    stream: Stream | None = None,
    not_before: float = 0.0,
):
    """Inverse 2-D c2c transform (cuFFT backward)."""
    stream = stream or device.default_stream

    def do() -> None:
        dst[...] = _sfft.ifft2(src)

    _, event = stream.submit(
        "cufft-inv", "compute", do, device.costs.fft(_area(src)), 0, not_before
    )
    return event


def reduce_max_kernel(
    device: VirtualGpu,
    src: np.ndarray,
    stream: Stream | None = None,
    not_before: float = 0.0,
    k: int = 1,
) -> tuple[list[tuple[float, int]], object]:
    """Top-``k`` |.| reduction; returns ``([(magnitude, flat_index), ...], event)``.

    Modeled after Harris-style parallel reduction: the device-side result
    is ``k`` (value, index) pairs, so the subsequent D2H copy is O(k) --
    never the 22 MB correlation surface.  ``k == 1`` is the paper's exact
    kernel; ``k > 1`` supports the multi-peak robustness option at the same
    asymptotic cost (a k-way partial reduction).
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    stream = stream or device.default_stream

    def do() -> list[tuple[float, int]]:
        mag = np.abs(src).ravel()
        kk = min(k, mag.size)
        idxs = np.argpartition(mag, mag.size - kk)[-kk:]
        idxs = idxs[np.argsort(mag[idxs])[::-1]]
        return [(float(mag[i]), int(i)) for i in idxs]

    result, event = stream.submit(
        "reduce-max", "compute", do, device.costs.reduce_max(_area(src)), 0, not_before
    )
    return result, event
