"""The virtual GPU device.

Capacity, engines, streams, and data movement for one simulated card.  The
default configuration matches the paper's NVIDIA Tesla C2070 (6 GB GDDR5,
separate copy/compute engines, no concurrent cuFFT kernels).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.gpu.costs import TESLA_C2070, GpuCostModel
from repro.gpu.memory import DeviceAllocator, DeviceBuffer, DevicePool
from repro.gpu.profiler import GpuProfiler, TraceEvent
from repro.gpu.stream import Stream

#: 6 GB GDDR5 of the Tesla C2070.
C2070_MEMORY_BYTES = 6 * 1024**3


class VirtualGpu:
    """One simulated CUDA device.

    Engines (``h2d``, ``compute``, ``d2h``) each execute one operation at a
    time on the virtual clock; streams provide ordering, the profiler
    records everything.  All public data movement goes through
    :meth:`h2d` / :meth:`d2h` so byte accounting is complete.
    """

    def __init__(
        self,
        device_id: int = 0,
        memory_bytes: int = C2070_MEMORY_BYTES,
        costs: GpuCostModel = TESLA_C2070,
        name: str = "Tesla C2070 (virtual)",
    ) -> None:
        self.device_id = device_id
        self.name = name
        self.costs = costs
        self.allocator = DeviceAllocator(memory_bytes)
        self.profiler = GpuProfiler()
        self._clock_lock = threading.Lock()
        self._engine_free: dict[str, float] = {"h2d": 0.0, "compute": 0.0, "d2h": 0.0}
        self._streams: list[Stream] = []
        self.default_stream = self.create_stream()

    # -- streams ------------------------------------------------------------

    def create_stream(self) -> Stream:
        s = Stream(self, len(self._streams))
        self._streams.append(s)
        return s

    def synchronize(self) -> float:
        """Virtual completion time of all work on all streams."""
        return max((s.synchronize() for s in self._streams), default=0.0)

    # -- virtual clock -------------------------------------------------------

    def _schedule(
        self,
        name: str,
        engine: str,
        stream: int,
        duration: float,
        nbytes: int,
        not_before: float,
    ) -> TraceEvent:
        if engine not in self._engine_free:
            raise ValueError(f"unknown engine {engine!r}")
        with self._clock_lock:
            start = max(self._engine_free[engine], not_before)
            end = start + duration
            self._engine_free[engine] = end
        event = TraceEvent(
            name=name, engine=engine, stream=stream, start=start, end=end, nbytes=nbytes
        )
        self.profiler.record(event)
        return event

    # -- memory --------------------------------------------------------------

    def alloc(self, shape: tuple[int, ...], dtype=np.complex128) -> DeviceBuffer:
        return self.allocator.alloc(shape, dtype)

    def free(self, buf: DeviceBuffer) -> None:
        self.allocator.free(buf)

    def create_pool(
        self, count: int, shape: tuple[int, ...], dtype=np.complex128
    ) -> DevicePool:
        """The one-time transform pool of the pipelined implementation."""
        return DevicePool(self.allocator, count, shape, dtype=dtype)

    # -- data movement ----------------------------------------------------------

    def h2d(
        self,
        host: np.ndarray,
        dest: np.ndarray | DeviceBuffer,
        stream: Stream | None = None,
        not_before: float = 0.0,
    ) -> TraceEvent:
        """Copy host array into device memory (into ``dest``)."""
        stream = stream or self.default_stream
        target = dest.data if isinstance(dest, DeviceBuffer) else dest
        if isinstance(dest, DeviceBuffer):
            dest.require_live()
        nbytes = host.nbytes

        def do() -> None:
            if target.shape != host.shape:
                raise ValueError(
                    f"h2d shape mismatch: host {host.shape} vs device {target.shape}"
                )
            target[...] = host

        _, event = stream.submit(
            "memcpy-h2d", "h2d", do, self.costs.h2d(nbytes), nbytes, not_before
        )
        return event

    def p2p_from(
        self,
        src_device: "VirtualGpu",
        src: np.ndarray | DeviceBuffer,
        dest: np.ndarray | DeviceBuffer,
        stream: Stream | None = None,
        not_before: float = 0.0,
    ) -> TraceEvent:
        """Peer-to-peer copy: another card's memory into this card's.

        The paper lists p2p copies as the enabler for scaling past two
        GPUs (Section VI).  Modeled on this device's H2D engine at the
        switch's p2p bandwidth; the caller supplies ``not_before`` (e.g.
        the producing kernel's completion time) to keep the virtual
        timeline causal across devices.
        """
        stream = stream or self.default_stream
        source = src.data if isinstance(src, DeviceBuffer) else src
        target = dest.data if isinstance(dest, DeviceBuffer) else dest
        if isinstance(src, DeviceBuffer):
            src.require_live()
        if isinstance(dest, DeviceBuffer):
            dest.require_live()
        nbytes = source.nbytes

        def do() -> None:
            if target.shape != source.shape:
                raise ValueError(
                    f"p2p shape mismatch: src {source.shape} vs dst {target.shape}"
                )
            target[...] = source

        _, event = stream.submit(
            f"memcpy-p2p-from-gpu{src_device.device_id}", "h2d",
            do, self.costs.p2p(nbytes), nbytes, not_before,
        )
        return event

    def d2h(
        self,
        src: np.ndarray | DeviceBuffer,
        stream: Stream | None = None,
        not_before: float = 0.0,
    ) -> tuple[np.ndarray, TraceEvent]:
        """Copy device memory back to a fresh host array."""
        stream = stream or self.default_stream
        source = src.data if isinstance(src, DeviceBuffer) else src
        if isinstance(src, DeviceBuffer):
            src.require_live()
        nbytes = source.nbytes
        result, event = stream.submit(
            "memcpy-d2h",
            "d2h",
            lambda: source.copy(),
            self.costs.d2h(nbytes),
            nbytes,
            not_before,
        )
        return result, event
