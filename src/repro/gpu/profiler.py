"""Execution tracing for the virtual GPU (the role of ``nvvp`` in the paper).

Every copy and kernel submitted to a :class:`~repro.gpu.stream.Stream` is
recorded as a :class:`TraceEvent` with engine attribution (H2D copy engine,
compute engine, D2H copy engine -- the C2070 has separate copy and compute
paths).  From the trace the profiler derives the quantities the paper reads
off its Fig. 7 / Fig. 9 screenshots:

- *kernel density*: fraction of the span during which the compute engine is
  busy (Fig. 7 shows sparse kernels with gaps; Fig. 9 a dense row);
- *concurrent streams*: how many distinct streams had events in flight;
- byte counters for each copy direction (the paper minimizes D2H traffic to
  a single scalar per pair).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One device operation: ``[start, end)`` in seconds on ``engine``."""

    name: str
    engine: str        # "h2d" | "compute" | "d2h" | "host"
    stream: int
    start: float
    end: float
    nbytes: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class GpuProfiler:
    """Thread-safe trace collector with derived occupancy metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    # -- derived metrics ----------------------------------------------------

    def span(self) -> tuple[float, float]:
        """(first start, last end); ``(0, 0)`` when empty."""
        if not self.events:
            return (0.0, 0.0)
        return (
            min(e.start for e in self.events),
            max(e.end for e in self.events),
        )

    def busy_time(self, engine: str) -> float:
        """Union length of the engine's busy intervals (overlap-merged)."""
        spans = sorted(
            (e.start, e.end) for e in self.events if e.engine == engine
        )
        total = 0.0
        cur_start, cur_end = None, None
        for s, e in spans:
            if cur_end is None or s > cur_end:
                if cur_end is not None:
                    total += cur_end - cur_start
                cur_start, cur_end = s, e
            else:
                cur_end = max(cur_end, e)
        if cur_end is not None:
            total += cur_end - cur_start
        return total

    def density(self, engine: str = "compute") -> float:
        """Busy fraction of the engine over the whole trace span."""
        t0, t1 = self.span()
        if t1 <= t0:
            return 0.0
        return self.busy_time(engine) / (t1 - t0)

    def streams_used(self) -> set[int]:
        return {e.stream for e in self.events}

    def bytes_copied(self, engine: str) -> int:
        return sum(e.nbytes for e in self.events if e.engine == engine)

    def count(self, name_prefix: str = "") -> int:
        return sum(1 for e in self.events if e.name.startswith(name_prefix))

    def max_concurrency(self) -> int:
        """Maximum number of engines simultaneously busy."""
        points: list[tuple[float, int]] = []
        for e in self.events:
            if e.engine == "host":
                continue
            points.append((e.start, 1))
            points.append((e.end, -1))
        points.sort()
        cur = peak = 0
        for _, delta in points:
            cur += delta
            peak = max(peak, cur)
        return peak
