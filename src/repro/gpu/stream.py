"""CUDA-like streams on the virtual device.

Operations submitted to one stream execute (and are traced) in submission
order; operations on different streams are unordered with respect to each
other except where they contend for the same engine.  The virtual clock
implements exactly the C2070's engine structure: one H2D copy engine, one
D2H copy engine, one compute engine (kernels serialize -- the paper notes
cuFFT's register pressure prevents concurrent kernels on Fermi).

Functional execution is immediate and synchronous in *wall* time (the math
really runs, on the submitting thread); the virtual clock is what encodes
device concurrency.  A submitted op's virtual interval is::

    start = max(engine_free, stream_last_end, not_before)
    end   = start + modeled_duration

``not_before`` lets callers express host-side dependencies (e.g. a
synchronous copy cannot start before the host issued it).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.gpu.profiler import TraceEvent


@dataclass(frozen=True)
class Event:
    """A CUDA-style event: a point on a stream's virtual timeline.

    Recorded with :meth:`Stream.record_event`; another stream passes its
    ``time`` as ``not_before`` (or uses :meth:`Stream.wait_event` semantics
    by threading it into the next submit) to express cross-stream
    dependencies -- how real CUDA code makes a displacement stream wait
    for the FFT stream's output without host synchronization.
    """

    stream_id: int
    time: float


class Stream:
    """An ordered operation queue on a :class:`~repro.gpu.device.VirtualGpu`."""

    def __init__(self, device, stream_id: int) -> None:
        self.device = device
        self.stream_id = stream_id
        self._lock = threading.Lock()
        self.last_end = 0.0
        self.ops_submitted = 0

    def submit(
        self,
        name: str,
        engine: str,
        fn: Callable[[], Any],
        duration: float,
        nbytes: int = 0,
        not_before: float = 0.0,
    ) -> tuple[Any, TraceEvent]:
        """Run ``fn`` now; place it on the virtual timeline.

        Returns ``(fn result, trace event)``.  Thread-safe: the stream lock
        serializes same-stream submissions (stream order), the device lock
        serializes engine-clock updates.
        """
        if duration < 0:
            raise ValueError(f"negative duration for {name}")
        with self._lock:
            result = fn()
            event = self.device._schedule(
                name=name,
                engine=engine,
                stream=self.stream_id,
                duration=duration,
                nbytes=nbytes,
                not_before=max(not_before, self.last_end),
            )
            self.last_end = event.end
            self.ops_submitted += 1
        return result, event

    def synchronize(self) -> float:
        """Virtual time at which all submitted work completes."""
        with self._lock:
            return self.last_end

    def record_event(self) -> Event:
        """Mark the current end of this stream's work (CUDA event record)."""
        with self._lock:
            return Event(stream_id=self.stream_id, time=self.last_end)
