"""Device memory: buffers, an accounting allocator, and the transform pool.

The C2070 has 6 GB of GDDR5; the paper's implementation must fit a grid
whose transforms alone total 53.5 GB, so device memory is managed as a
fixed pool of transform-sized buffers recycled by reference counting.  The
allocator here enforces the capacity limit byte-for-byte, so any
implementation that over-allocates fails in tests the way it would have
failed on the card.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.memmodel.pool import BufferPool


class OutOfDeviceMemory(MemoryError):
    """Device allocation exceeded capacity."""


@dataclass
class DeviceBuffer:
    """A device-resident array.

    ``data`` is host memory standing in for GDDR; code outside
    :mod:`repro.gpu` must treat it as opaque and move data only through
    explicit copies (``VirtualGpu.h2d`` / ``d2h``) -- tests enforce the
    accounting this enables.
    """

    handle: int
    nbytes: int
    data: np.ndarray
    freed: bool = False

    def require_live(self) -> None:
        if self.freed:
            raise ValueError(f"use-after-free of device buffer {self.handle}")


class DeviceAllocator:
    """Byte-accounted allocator with a hard capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("device capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._lock = threading.Lock()
        self._next_handle = 1
        self._live: dict[int, DeviceBuffer] = {}
        self.used_bytes = 0
        self.peak_bytes = 0
        self.alloc_count = 0

    def alloc(self, shape: tuple[int, ...], dtype=np.complex128) -> DeviceBuffer:
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        with self._lock:
            if self.used_bytes + nbytes > self.capacity_bytes:
                raise OutOfDeviceMemory(
                    f"requested {nbytes} B with {self.used_bytes} of "
                    f"{self.capacity_bytes} B in use"
                )
            handle = self._next_handle
            self._next_handle += 1
            buf = DeviceBuffer(handle=handle, nbytes=nbytes, data=np.empty(shape, dtype=dtype))
            self._live[handle] = buf
            self.used_bytes += nbytes
            self.peak_bytes = max(self.peak_bytes, self.used_bytes)
            self.alloc_count += 1
            return buf

    def free(self, buf: DeviceBuffer) -> None:
        with self._lock:
            if buf.handle not in self._live:
                raise ValueError(f"double free of device buffer {buf.handle}")
            del self._live[buf.handle]
            self.used_bytes -= buf.nbytes
            buf.freed = True

    @property
    def live_buffers(self) -> int:
        with self._lock:
            return len(self._live)


class DevicePool:
    """The paper's fixed transform pool, on-device.

    Allocated once at pipeline start-up ("to avoid any further allocations
    which would force a global synchronization"), then recycled.  Acquire
    blocks until a buffer is recycled, which throttles upstream stages.
    """

    def __init__(
        self,
        allocator: DeviceAllocator,
        count: int,
        shape: tuple[int, ...],
        dtype=np.complex128,
    ) -> None:
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        # Reserve pool bytes against device capacity up front.
        self._reservation = allocator.alloc(
            (count * nbytes // np.dtype(np.uint8).itemsize,), dtype=np.uint8
        )
        self._allocator = allocator
        self._pool = BufferPool(count, shape, dtype=dtype)
        self.count = count
        self.buffer_nbytes = nbytes

    def acquire(self, blocking: bool = True, timeout: float | None = None) -> int:
        return self._pool.acquire(blocking=blocking, timeout=timeout)

    def release(self, idx: int) -> None:
        self._pool.release(idx)

    def array(self, idx: int) -> np.ndarray:
        return self._pool.array(idx)

    @property
    def peak_in_use(self) -> int:
        return self._pool.peak_in_use

    @property
    def free_count(self) -> int:
        return self._pool.free_count

    def destroy(self) -> None:
        """Return the reservation to the device allocator."""
        self._allocator.free(self._reservation)
