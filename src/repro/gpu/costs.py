"""Device/host operation cost constants (virtual-clock durations).

These constants drive the virtual GPU's trace clock and the discrete-event
simulator.  They are calibrated against the paper's *end-to-end* Table II
results for the 42x59 grid (2478 tiles, 4879 pairs, 7357 transforms):

=================  ========  =============================================
Simple-CPU          636 s    7357 x 69 ms FFT (80 % of run time, per the
                             paper) + 4879 x 25 ms of NCC/reduce/CCF
Simple-GPU          556 s    fast kernels but ~18 ms of synchronous
                             overhead per GPU call (the Fig. 7 gaps)
Pipelined-GPU      49.7 s    GPU-compute bound: 7357 x 5 ms FFT +
                             4879 x 1.8 ms NCC+reduce
Pipelined-GPU x2   26.6 s    per-card compute halves (1.87x)
=================  ========  =============================================

Calibration note (recorded in EXPERIMENTS.md): the paper's Section IV.A
micro-ratios ("cuFFT ~1.5x FFTW-patient", "NCC kernel ~2.3x CPU") are
internally inconsistent with its own Table II -- at 46 ms per GPU FFT the
7357 transforms alone would take 338 s, seven times the published 49.7 s
end-to-end time.  We therefore calibrate the per-kernel constants to the
end-to-end numbers, which are the reproducible claim, and attribute the
Simple-GPU/Pipelined-GPU gap to the synchronous-call overhead the paper's
own profiler analysis identifies (Fig. 7: gaps from synchronous copies,
CPU reads and CCFs between kernels; Section IV.B: per-call allocations
"force a global synchronization").

Costs scale with tile area ``hw`` (element-wise kernels) or
``hw log2(hw)`` (transforms), so grids of any tile size share one model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Reference tile of the paper's dataset.
REF_H, REF_W = 1040, 1392
REF_HW = REF_H * REF_W
_REF_LOG = REF_HW * math.log2(REF_HW)


def _per_elem(ref_seconds: float, hw: int) -> float:
    return ref_seconds * hw / REF_HW


def _fft_scale(ref_seconds: float, hw: int) -> float:
    return ref_seconds * (hw * math.log2(max(hw, 2))) / _REF_LOG


@dataclass(frozen=True)
class GpuCostModel:
    """Per-operation device durations, in seconds at the reference tile size.

    ``sync_overhead`` is the per-call penalty paid only by *synchronous*
    call patterns (the Simple-GPU architecture): plan setup, synchronous
    launch, and the device-wide stalls of unpooled allocation.  Pipelined
    implementations amortize or avoid all of it.
    """

    fft_seconds: float = 0.005          # cuFFT 2-D c2c, 1392x1040
    ncc_seconds: float = 0.0012         # normalized conjugate multiply
    reduce_seconds: float = 0.0006      # top-k magnitude reduction
    h2d_bandwidth: float = 4.0e9        # bytes/s, pinned PCIe gen2
    d2h_bandwidth: float = 4.0e9
    p2p_bandwidth: float = 8.0e9        # device-to-device over the switch
    copy_latency: float = 10e-6         # per-transfer fixed cost
    kernel_launch: float = 5e-6
    sync_overhead: float = 0.018        # per synchronous call (Simple-GPU)

    def fft(self, hw: int) -> float:
        return self.kernel_launch + _fft_scale(self.fft_seconds, hw)

    def ncc(self, hw: int) -> float:
        return self.kernel_launch + _per_elem(self.ncc_seconds, hw)

    def reduce_max(self, hw: int) -> float:
        return self.kernel_launch + _per_elem(self.reduce_seconds, hw)

    def h2d(self, nbytes: int) -> float:
        return self.copy_latency + nbytes / self.h2d_bandwidth

    def d2h(self, nbytes: int) -> float:
        return self.copy_latency + nbytes / self.d2h_bandwidth

    def p2p(self, nbytes: int) -> float:
        return self.copy_latency + nbytes / self.p2p_bandwidth


@dataclass(frozen=True)
class CpuCostModel:
    """Host-side durations (per worker thread) at the reference tile size.

    ``read_seconds`` reflects the warm-page-cache regime of the paper's
    measurements (10-run averages of a 6.68 GB dataset on a 48 GB machine):
    an effective ~1.5 GB/s, not cold-disk bandwidth.
    """

    fft_seconds: float = 0.069          # FFTW patient plan, 1392x1040 c2c
    ncc_seconds: float = 0.011          # SSE element-wise multiply+normalize
    reduce_seconds: float = 0.006       # SSE max reduction
    ccf_seconds: float = 0.008          # four overlap CCFs per pair
    read_seconds: float = 0.00184       # 2.76 MB tile at ~1.5 GB/s (cached)
    decode_seconds: float = 0.004       # TIFF strip unpack + convert

    def fft(self, hw: int) -> float:
        return _fft_scale(self.fft_seconds, hw)

    def ncc(self, hw: int) -> float:
        return _per_elem(self.ncc_seconds, hw)

    def reduce_max(self, hw: int) -> float:
        return _per_elem(self.reduce_seconds, hw)

    def ccf(self, hw: int) -> float:
        return _per_elem(self.ccf_seconds, hw)

    def read(self, hw: int) -> float:
        # Disk time scales with file bytes (2 B/px, 16-bit grayscale).
        return _per_elem(self.read_seconds, hw)

    def decode(self, hw: int) -> float:
        return _per_elem(self.decode_seconds, hw)

    def pair_cpu(self, hw: int) -> float:
        """Full per-pair CPU displacement work (NCC + iFFT + reduce + CCF)."""
        return self.ncc(hw) + self.fft(hw) + self.reduce_max(hw) + self.ccf(hw)


#: Paper evaluation machine: 2x Xeon E-5620 (8 cores / 16 threads), 2x C2070.
TESLA_C2070 = GpuCostModel()
XEON_E5620 = CpuCostModel()

#: Section VI laptop validation: i7-950 (4 cores) + GTX 560M.  Calibrated so
#: Pipelined-GPU lands near the reported 130 s and Pipelined-CPU near 146 s.
GTX_560M = GpuCostModel(
    fft_seconds=0.014,
    ncc_seconds=0.0035,
    reduce_seconds=0.0017,
    h2d_bandwidth=2.0e9,
    d2h_bandwidth=2.0e9,
)
I7_950 = CpuCostModel(
    fft_seconds=0.062,
    ncc_seconds=0.012,
    reduce_seconds=0.007,
    ccf_seconds=0.009,
)
