"""High-level stitching facade tying the three phases together.

``Stitcher`` is the public entry point a downstream user reaches for::

    from repro import Stitcher
    from repro.io import TileDataset

    result = Stitcher().stitch(TileDataset("path/to/acquisition"))
    mosaic = result.compose()

Implementation selection, FFT padding, peak-interpretation mode, traversal
order and the phase-2 solver are all options with paper-faithful defaults.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.coarse import CoarseConfig
from repro.core.compose import BlendMode, compose
from repro.core.displacement import DisplacementResult, compute_grid_displacements
from repro.core.global_opt import GlobalPositions, resolve_absolute_positions
from repro.core.pciam import CcfMode, smooth_fft_shape
from repro.core.quality_gate import QualityConfig
from repro.core.refine import RefineConfig, refine_displacements
from repro.faults.report import FaultReport
from repro.fftlib.plans import PlanCache, PlanningMode
from repro.grid.traversal import Traversal
from repro.io.dataset import TileDataset
from repro.observe.metrics import MetricsRegistry
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.pipeline.stage import ErrorPolicy
from repro.recovery.journal import (
    RunJournal,
    checkpoint_journal_path,
    options_fingerprint,
    run_fingerprint,
)


@dataclass
class StitchResult:
    """Everything the three phases produced, plus timing."""

    dataset: TileDataset
    displacements: DisplacementResult
    positions: GlobalPositions
    phase1_seconds: float
    phase2_seconds: float
    implementation: str = "simple-cpu"
    stats: dict = field(default_factory=dict)
    on_tile_error: str = "abort"

    @property
    def fault_report(self) -> FaultReport | None:
        """The run's :class:`FaultReport` when a retry/skip policy was active."""
        return self.stats.get("fault_report")

    @property
    def tracer(self):
        """The run's :class:`~repro.observe.tracer.Tracer` when traced."""
        return self.stats.get("tracer")

    @property
    def metrics(self) -> dict | None:
        """JSON-able metrics snapshot (``stats["metrics"]``) when collected."""
        return self.stats.get("metrics")

    def trace_events(self) -> list[dict]:
        """Merged Chrome trace events for this run (pipeline + any GPUs)."""
        from repro.analysis.tracefmt import merged_trace_events

        tracer = self.stats.get("tracer")
        if tracer is None:
            raise ValueError(
                "run was not traced; pass trace=True to Stitcher (or --trace)"
            )
        return merged_trace_events(
            tracer=tracer, gpu_profilers=self.stats.get("gpu_profilers")
        )

    def write_trace(self, path) -> int:
        """Write the unified Chrome/Perfetto trace; returns the event count."""
        from repro.analysis.tracefmt import write_chrome_trace

        events = self.trace_events()
        write_chrome_trace(path, events)
        return len(events)

    def skipped_tiles(self) -> list[tuple[int, int]]:
        report = self.fault_report
        return report.skipped_tiles if report is not None else []

    def compose(
        self,
        blend: BlendMode = BlendMode.OVERLAY,
        outline: bool = False,
        dtype=np.float32,
        return_mask: bool = False,
        workers: int = 1,
    ):
        """Phase 3, on demand (the paper renders rather than always saving).

        Tiles phase 1 dropped are left as holes; with ``return_mask=True``
        the per-tile provenance mask comes back alongside the canvas.
        ``workers > 1`` renders horizontal canvas stripes in parallel
        (bit-identical to sequential; see :func:`repro.core.compose.compose`).
        """
        return compose(
            self._load_native,
            self.positions,
            self.dataset.tile_shape,
            blend=blend,
            outline=outline,
            dtype=dtype,
            skip_tiles=self.skipped_tiles(),
            on_tile_error=self.on_tile_error,
            return_mask=return_mask,
            workers=workers,
        )

    def _load_native(self, row: int, col: int) -> np.ndarray:
        """Tile pixels in their stored dtype (no float64 promotion).

        Composition blends into float64 canvases/bands either way, and
        numpy's promotion makes uint8/uint16 arithmetic there value-exact
        -- so handing compose the native array is bit-identical while
        skipping a 4x-sized float64 copy per tile.  Registration paths
        keep requesting float64 explicitly.
        """
        return self.dataset.load(row, col, dtype=None)

    def compose_to_tiff(
        self,
        path,
        blend: BlendMode = BlendMode.OVERLAY,
        memory_budget: int | None = None,
        pyramid_levels: int = 0,
        band_rows: int | None = None,
        dtype=np.uint16,
        scale: float | None = None,
        metrics=None,
        tracer=None,
    ):
        """Phase 3 straight to disk under a memory budget (out-of-core).

        Streams the mosaic to ``path`` in bounded stripes through
        :func:`repro.core.streamcompose.stream_compose_to_tiff` --
        bit-identical to :meth:`compose` + quantization for every blend
        mode, but peak memory is the budget, not the canvas.
        ``memory_budget`` (bytes) sizes the stripes and the LRU tile
        cache; ``pyramid_levels`` also writes 2x block-mean levels next
        to ``path`` for :class:`repro.core.pyramid.DiskPyramid` viewers.
        Tiles phase 1 dropped are left as holes, as in :meth:`compose`.

        Returns the :class:`repro.core.streamcompose.StreamComposeResult`
        (mosaic shape, stripe/cache/peak-memory accounting, pyramid
        paths).
        """
        from repro.core.streamcompose import stream_compose_to_tiff
        from repro.observe.tracer import NULL_TRACER

        return stream_compose_to_tiff(
            path,
            self._load_native,
            self.positions,
            self.dataset.tile_shape,
            blend=blend,
            memory_budget=memory_budget,
            band_rows=band_rows,
            dtype=dtype,
            scale=scale,
            skip_tiles=self.skipped_tiles(),
            on_tile_error=self.on_tile_error,
            pyramid_levels=pyramid_levels,
            metrics=metrics,
            tracer=tracer if tracer is not None else NULL_TRACER,
        )

    def position_errors(self, exclude_degraded: bool = False) -> np.ndarray | None:
        """Per-tile |recovered - truth| in pixels, when ground truth exists.

        Both recovered and true positions are normalized to a (0, 0) origin
        before comparison (absolute positions are only defined up to a
        global translation).  ``exclude_degraded=True`` sets the error to
        NaN for tiles positioned by nominal fallback (their "error" reflects
        the stage model, not the registration).
        """
        if self.dataset.metadata.true_positions is None:
            return None
        true = np.asarray(self.dataset.metadata.true_positions, dtype=np.int64)
        true = true - true.reshape(-1, 2).min(axis=0)
        diff = self.positions.positions - true
        err = np.linalg.norm(diff.astype(np.float64), axis=-1)
        if exclude_degraded and self.positions.degraded is not None:
            err = err.copy()
            err[self.positions.degraded] = np.nan
        return err


class Stitcher:
    """Configurable three-phase stitcher (sequential reference execution).

    For the parallel implementations of Table II, see :mod:`repro.impls`;
    they produce identical displacements and plug into the same phase 2/3.
    """

    def __init__(
        self,
        traversal: Traversal = Traversal.CHAINED_DIAGONAL,
        ccf_mode: CcfMode = CcfMode.EXTENDED,
        n_peaks: int = 2,
        real_transforms: bool = True,
        subpixel: bool = False,
        use_tile_stats: bool = True,
        use_workspace: bool = True,
        pad_to_smooth: bool = False,
        position_method: str = "mst",
        refine: bool | RefineConfig = False,
        quality: QualityConfig | bool | None = None,
        conf_thresh: float | None = None,
        residue_mode: str | None = None,
        min_peak_ratio: float | None = None,
        coarse: CoarseConfig | bool | None = None,
        coarse_scale: float | None = None,
        coarse_conf_thresh: float | None = None,
        planning: PlanningMode = PlanningMode.ESTIMATE,
        cache: PlanCache | None = None,
        max_retries: int = 0,
        retry_backoff: float = 0.05,
        on_tile_error: str = "abort",
        trace: bool | Tracer = False,
        metrics: bool | MetricsRegistry = False,
        checkpoint: str | None = None,
        resume: str = "auto",
        journal_fsync: bool = True,
    ) -> None:
        self.traversal = traversal
        self.ccf_mode = ccf_mode
        self.n_peaks = n_peaks
        self.real_transforms = real_transforms
        self.subpixel = subpixel
        # Hot-path knobs (all on by default; see docs/PERFORMANCE.md):
        # half-spectrum transforms, O(1)-statistics CCF, reusable pair
        # workspaces.  Off switches exist for benchmarking each layer.
        self.use_tile_stats = use_tile_stats
        self.use_workspace = use_workspace
        self.pad_to_smooth = pad_to_smooth
        self.position_method = position_method
        # ``refine`` enables the MIST-style stage-model filter/repair pass
        # between phases 1 and 2 (see repro.core.refine).
        if refine is True:
            refine = RefineConfig()
        self.refine: RefineConfig | None = refine or None
        # ``quality`` enables the phase-2 registration quality gate
        # (docs/ROBUSTNESS.md): True for the default gate, a QualityConfig
        # for tuned gating, or None/False to solve exactly as before (the
        # default -- positions stay bit-identical to ungated runs).  The
        # convenience knobs mirror the CLI flags; passing any of them
        # turns the gate on.
        if quality is True:
            quality = QualityConfig()
        elif quality is False:
            quality = None
        overrides = {
            k: v
            for k, v in (
                ("conf_thresh", conf_thresh),
                ("residue_mode", residue_mode),
                ("min_peak_ratio", min_peak_ratio),
            )
            if v is not None
        }
        if overrides:
            quality = replace(quality or QualityConfig(), **overrides)
        self.quality: QualityConfig | None = quality
        # ``coarse`` enables two-pass coarse-to-fine registration
        # (docs/PERFORMANCE.md): True for the defaults, a CoarseConfig for
        # tuned behaviour, None/False for single-pass PCIAM (the default --
        # displacements stay bit-identical to pre-coarse runs).  The
        # convenience knobs mirror the CLI flags; passing either turns the
        # two-pass mode on.
        if coarse is True:
            coarse = CoarseConfig()
        elif coarse is False:
            coarse = None
        if coarse_scale is not None:
            keep = (
                {}
                if coarse is None
                else {
                    k: getattr(coarse, k)
                    for k in ("conf_thresh", "min_peak_ratio",
                              "coarse_peaks", "search_radius",
                              "min_overlap_frac")
                }
            )
            coarse = CoarseConfig.from_scale(coarse_scale, **keep)
        if coarse_conf_thresh is not None:
            coarse = replace(
                coarse or CoarseConfig(), conf_thresh=coarse_conf_thresh
            )
        self.coarse: CoarseConfig | None = coarse
        self.planning = planning
        self.cache = cache
        if on_tile_error not in ("abort", "skip"):
            raise ValueError(
                f"unknown on_tile_error {on_tile_error!r} (use 'abort' or 'skip')"
            )
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.on_tile_error = on_tile_error
        # Observability: ``trace=True`` (or a caller-owned Tracer) records
        # per-phase and per-operation spans; metrics are collected whenever
        # either switch is on, and land in ``StitchResult.stats["metrics"]``.
        if isinstance(trace, Tracer):
            self.tracer: Tracer | None = trace
        else:
            self.tracer = Tracer() if trace else None
        if isinstance(metrics, MetricsRegistry):
            self.metrics: MetricsRegistry | None = metrics
        elif metrics or self.tracer is not None:
            self.metrics = MetricsRegistry()
        else:
            self.metrics = None
        # Durability (docs/ROBUSTNESS.md): ``checkpoint`` names a directory
        # holding the run journal; every completed pair is fsync'd there,
        # and a rerun over the same directory resumes, recomputing only
        # what never landed.  ``resume`` is the journal-open mode
        # (auto/require/never); ``journal_fsync=False`` trades the
        # per-record durability point for speed (tests, benchmarks).
        self.checkpoint = checkpoint
        self.resume = resume
        self.journal_fsync = journal_fsync

    def _error_policy(self) -> ErrorPolicy | None:
        """Retry/skip policy for tile reads; None = strict legacy behaviour."""
        if self.max_retries == 0 and self.on_tile_error == "abort":
            return None
        return ErrorPolicy(
            max_retries=self.max_retries,
            backoff=self.retry_backoff,
            on_exhausted=self.on_tile_error,
        )

    @staticmethod
    def _nominal_step(dataset: TileDataset):
        """Nominal grid step from acquisition metadata (overlap fraction)."""
        th, tw = dataset.tile_shape
        ov = dataset.metadata.overlap
        return ((0.0, round(tw * (1.0 - ov))), (round(th * (1.0 - ov)), 0.0))

    def _fft_shape(self, dataset: TileDataset):
        return smooth_fft_shape(dataset.tile_shape) if self.pad_to_smooth else None

    def run_fingerprint(self, dataset: TileDataset) -> dict:
        """The identity a journal of this run is bound to.

        Dataset geometry plus the result-affecting options; performance
        knobs and implementation choice are excluded (all produce
        identical displacements, so cross-implementation resume is legal).
        """
        return run_fingerprint(
            dataset,
            ccf_mode=self.ccf_mode,
            n_peaks=self.n_peaks,
            subpixel=self.subpixel,
            fft_shape=self._fft_shape(dataset),
            position_method=self.position_method,
            refine=self.refine is not None,
            coarse=self.coarse,
        )

    def open_journal(self, dataset: TileDataset) -> RunJournal | None:
        """Open/create the checkpoint journal, or ``None`` (no checkpoint).

        Raises :class:`~repro.recovery.journal.JournalMismatch` when the
        directory holds a different run's journal, and
        :class:`~repro.recovery.journal.JournalError` when ``resume=
        "require"`` finds nothing to resume.
        """
        if self.checkpoint is None:
            return None
        return RunJournal.open(
            checkpoint_journal_path(self.checkpoint),
            self.run_fingerprint(dataset),
            fsync=self.journal_fsync,
            metrics=self.metrics,
            resume=self.resume,
        )

    def compute_displacements(
        self,
        dataset: TileDataset,
        error_policy: ErrorPolicy | None = None,
        fault_report: FaultReport | None = None,
        journal: RunJournal | None = None,
    ) -> DisplacementResult:
        fft_shape = self._fft_shape(dataset)
        return compute_grid_displacements(
            dataset.load,
            dataset.rows,
            dataset.cols,
            traversal=self.traversal,
            fft_shape=fft_shape,
            ccf_mode=self.ccf_mode,
            n_peaks=self.n_peaks,
            real_transforms=self.real_transforms,
            subpixel=self.subpixel,
            cache=self.cache,
            planning=self.planning,
            error_policy=error_policy,
            fault_report=fault_report,
            tracer=self.tracer,
            metrics=self.metrics,
            use_tile_stats=self.use_tile_stats,
            use_workspace=self.use_workspace,
            journal=journal,
            coarse=self.coarse,
        )

    def stitch(self, dataset: TileDataset) -> StitchResult:
        """Run phases 1 and 2; phase 3 is on the result object.

        With ``max_retries``/``on_tile_error="skip"`` the run survives
        unreadable tiles: failing reads are retried, exhausted tiles are
        dropped from phase 1, phase 2 falls back to nominal stage
        coordinates for any stranded grid component, and the resulting
        :class:`FaultReport` lands in ``result.stats["fault_report"]``.
        """
        policy = self._error_policy()
        report = FaultReport() if policy is not None else None
        tracer = self.tracer if self.tracer is not None else NULL_TRACER
        journal = self.open_journal(dataset)
        t0 = time.perf_counter()
        try:
            with tracer.span("phase1:displacements", "stitcher"):
                disp = self.compute_displacements(
                    dataset, error_policy=policy, fault_report=report,
                    journal=journal,
                )
            if journal is not None:
                journal.record_milestone(
                    "phase1_complete", pairs=disp.pair_count()
                )
        except BaseException:
            # Keep everything journaled so far durable for the next resume.
            if journal is not None:
                journal.close()
            raise
        stats = dict(disp.stats)
        if self.refine is not None:
            with tracer.span("refine", "stitcher"):
                disp, rep = refine_displacements(disp, dataset.load, self.refine)
            stats["refined_pairs"] = rep.repaired
            stats["unrepairable_pairs"] = rep.unrepairable
        t1 = time.perf_counter()
        with tracer.span("phase2:global-opt", "stitcher"):
            if policy is not None and self.on_tile_error == "skip":
                pos = resolve_absolute_positions(
                    disp,
                    method=self.position_method,
                    subpixel=self.subpixel,
                    on_disconnected="nominal",
                    nominal_step=self._nominal_step(dataset),
                    quality=self.quality,
                )
            else:
                pos = resolve_absolute_positions(
                    disp, method=self.position_method, subpixel=self.subpixel,
                    quality=self.quality,
                )
        t2 = time.perf_counter()
        if journal is not None:
            # Phase 2 is deterministic and cheap relative to phase 1, so a
            # resumed run always re-solves it from the journaled pairs; the
            # milestone records that (and when) the run got this far.
            journal.record_milestone(
                "phase2_complete",
                method=self.position_method,
                degraded=len(pos.degraded_tiles()),
            )
            stats["journal"] = journal.summary()
            journal.close()
        if pos.quality_report is not None:
            stats["quality_report"] = pos.quality_report
            if self.metrics is not None:
                self.metrics.counter("quality.pairs_gated").inc(
                    pos.quality_report.get("gated_pairs", 0)
                )
                self.metrics.counter("quality.irls_iterations").inc(
                    pos.quality_report.get("irls_iterations", 0)
                )
                self.metrics.counter("quality.residue_damped_edges").inc(
                    pos.quality_report.get("residue_damped_edges", 0)
                )
        if report is not None:
            for rc in pos.degraded_tiles():
                report.record_degraded_tile(rc)
            plan = getattr(dataset, "fault_plan", None)
            if plan is not None:
                report.injected = plan.summary()
            stats["fault_report"] = report
        if self.metrics is not None:
            self.metrics.histogram("stitch.phase1_seconds").observe(t1 - t0)
            self.metrics.histogram("stitch.phase2_seconds").observe(t2 - t1)
            stats["metrics"] = self.metrics.snapshot()
        if self.tracer is not None:
            stats["tracer"] = self.tracer
        return StitchResult(
            dataset=dataset,
            displacements=disp,
            positions=pos,
            phase1_seconds=t1 - t0,
            phase2_seconds=t2 - t1,
            stats=stats,
            on_tile_error=self.on_tile_error,
        )

    def stitch_channels(
        self, datasets: list[TileDataset], reference: int = 0
    ) -> list[StitchResult]:
        """Multi-channel stitching: register once, compose per channel.

        The paper's experiments acquire "two tile grids, one per color
        channel" of the *same* plate scan; the stage moved once, so one
        channel's displacements apply to all.  The reference channel (pick
        the one with the most texture) is stitched normally; the others
        reuse its positions, costing only phase 3 each.

        Provenance follows the positions: when the reference run carried
        a fault policy (retries/skips) or a quality gate, the dependent
        channels share its ``fault_report``/``quality_report`` and its
        ``on_tile_error`` policy, so a tile dropped from the reference
        registration is also left out of every dependent channel's
        mosaic -- the channels stay aligned *and* identically masked.
        """
        if not datasets:
            raise ValueError("need at least one channel")
        if not 0 <= reference < len(datasets):
            raise IndexError(f"reference channel {reference} of {len(datasets)}")
        ref_ds = datasets[reference]
        for i, ds in enumerate(datasets):
            if (ds.rows, ds.cols) != (ref_ds.rows, ref_ds.cols) or (
                ds.tile_shape != ref_ds.tile_shape
            ):
                raise ValueError(
                    f"channel {i} geometry {ds.rows}x{ds.cols}/{ds.tile_shape} "
                    f"differs from reference "
                    f"{ref_ds.rows}x{ref_ds.cols}/{ref_ds.tile_shape}"
                )
        ref_result = self.stitch(ref_ds)
        # Shared provenance: only keys the reference run actually produced
        # (a clean default run keeps the minimal one-key stats dict).
        shared = {
            key: ref_result.stats[key]
            for key in ("fault_report", "quality_report")
            if key in ref_result.stats
        }
        out: list[StitchResult] = []
        for i, ds in enumerate(datasets):
            if i == reference:
                out.append(ref_result)
            else:
                out.append(
                    StitchResult(
                        dataset=ds,
                        displacements=ref_result.displacements,
                        positions=ref_result.positions,
                        phase1_seconds=0.0,
                        phase2_seconds=0.0,
                        stats={"positions_from_channel": reference, **shared},
                        on_tile_error=ref_result.on_tile_error,
                    )
                )
        return out
