"""Per-tile summed-area tables for O(1)-statistics CCF.

The CCF contest (``repro.core.ccf``) evaluates the Pearson correlation of
4-8 candidate overlap rectangles per pair; the direct formulation makes five
full passes over each rectangle (two means, two norms, one dot product) and
materializes two mean-centred temporaries.  Every one of those statistics
except the cross term is a *single-tile* quantity, and each tile takes part
in up to four pairs (west/north/east/south neighbours), so the same sums are
recomputed up to ``4 * candidates`` times.

:class:`TileStats` computes two summed-area tables (integral images) of the
tile -- ``sum(I)`` and ``sum(I^2)`` -- once per tile, packed as the real
and imaginary parts of a single complex table so one cumsum pass per axis
builds both (IEEE accumulates the parts independently, so the values are
bit-identical to two separate real tables).  Any rectangle's sum
and sum-of-squares then costs four lookups, reducing each CCF candidate to
O(1) statistics lookups plus one fused dot product for the cross term:

    r = (cross - S1*S2/n) / sqrt((S11 - S1^2/n) * (S22 - S2^2/n))

The tables are built on *mean-shifted* pixels (tile minus its global mean).
Pearson correlation is shift-invariant, so every rectangle's ``r`` is
mathematically unchanged, while the shift (a) keeps the running sums small,
bounding the cancellation error of the ``S11 - S1^2/n`` subtraction, and
(b) makes a globally constant tile produce exactly-zero pixels, so its
variance is exactly ``0.0`` and the degenerate ``-1.0`` sentinel of
:func:`repro.core.ccf.ccf` is reproduced bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np

#: Relative variance floor for trusting the summed-area-table path.  The
#: cancellation error of ``S11 - S1^2/n`` is bounded by a few ulps of the
#: table's largest entry (~eps * sum(I^2) over the whole tile); a rectangle
#: variance below ``_VAR_GUARD * sq_total`` is indistinguishable from that
#: noise, so the overlap carries no usable texture and scores the ``-1.0``
#: degenerate sentinel.  (The direct path lands in the same regime on such
#: overlaps -- exactly ``-1.0`` when the constant view's mean reconstructs
#: bit-exactly, otherwise ``r`` of pure rounding noise, ~1e-15 -- either
#: way a guaranteed loser of the interpretation contest.)
_VAR_GUARD = 1e-12


class TileStats:
    """Summed-area tables of one tile's intensities and squared intensities.

    Built once per tile (O(hw)); shared by every pair the tile takes part
    in.  ``pixels`` holds the mean-shifted float64 tile used for the cross
    term, so callers that cache a ``TileStats`` need not also keep the raw
    tile alive for the CCF stage.
    """

    __slots__ = ("pixels", "shape", "_table", "sq_total")

    def __init__(self, tile: np.ndarray) -> None:
        px = np.asarray(tile, dtype=np.float64)
        if px.ndim != 2:
            raise ValueError(f"expected a 2-D tile, got shape {px.shape}")
        px = px - px.mean()
        self.pixels = px
        self.shape = px.shape
        h, w = px.shape
        # Padded tables: row/col 0 are zero so rect() needs no branching.
        # Both tables come from ONE complex cumsum: real part carries I,
        # imaginary part I^2.  IEEE accumulates the parts independently, so
        # the values are bit-identical to two separate real cumsums, but
        # numpy's per-element accumulate overhead is paid once, not twice.
        table = np.zeros((h + 1, w + 1), dtype=np.complex128)
        inner = table[1:, 1:]
        inner.real = px
        np.square(px, out=inner.imag)
        # Cumulating the whole padded table is bit-identical (the zero
        # guard row/column contribute exact zeros) and skips a separate
        # temporary + block copy.
        np.cumsum(table, axis=0, out=table)
        np.cumsum(table, axis=1, out=table)
        self._table = table
        # Whole-tile sum of squares: the error scale of every rectangle
        # variance the table can produce (see _VAR_GUARD).
        self.sq_total = float(table[h, w].imag)

    @classmethod
    def from_parts(cls, pixels: np.ndarray, table: np.ndarray) -> "TileStats":
        """Rebuild a ``TileStats`` around precomputed arrays (zero-copy).

        Used by the process backend: a worker builds the stats once,
        publishes ``pixels`` and ``_table`` into shared-memory slabs, and
        peers wrap the slab views with this constructor instead of
        recomputing the cumsums.  The arrays are adopted as-is (views
        welcome); values must have been produced by ``__init__`` for the
        numerical guarantees to hold.
        """
        self = cls.__new__(cls)
        self.pixels = pixels
        self.shape = pixels.shape
        self._table = table
        h, w = pixels.shape
        self.sq_total = float(table[h, w].imag)
        return self

    @property
    def table(self) -> np.ndarray:
        """The padded complex summed-area table (for slab publication)."""
        return self._table

    @property
    def nbytes(self) -> int:
        return self.pixels.nbytes + self._table.nbytes

    def rect(self, y0: int, y1: int, x0: int, x1: int) -> tuple[float, float]:
        """``(sum, sum_of_squares)`` over ``[y0:y1, x0:x1]`` in O(1)."""
        t = self._table
        z = complex(t[y1, x1]) - complex(t[y0, x1]) - complex(t[y1, x0]) \
            + complex(t[y0, x0])
        return z.real, z.imag


def ccf_at_stats(s1: TileStats, s2: TileStats, tx: int, ty: int) -> float:
    """CCF at translation ``(tx, ty)`` using O(1) rectangle statistics.

    Semantics match :func:`repro.core.ccf.ccf_at` (same overlap geometry,
    same ``[-1, 1]`` clamp, ``-1.0`` for empty or degenerate-constant
    overlaps); only the arithmetic path differs.  Textured overlaps agree
    with the direct scan to well under 1e-9; (near-)constant overlaps hit
    the ``_VAR_GUARD`` sentinel deterministically.
    """
    h1, w1 = s1.shape
    h2, w2 = s2.shape
    y0, y1 = max(ty, 0), min(h1, h2 + ty)
    x0, x1 = max(tx, 0), min(w1, w2 + tx)
    if y1 <= y0 or x1 <= x0:
        return -1.0
    n = float((y1 - y0) * (x1 - x0))
    sum1, sq1 = s1.rect(y0, y1, x0, x1)
    sum2, sq2 = s2.rect(y0 - ty, y1 - ty, x0 - tx, x1 - tx)
    var1 = sq1 - sum1 * sum1 / n
    var2 = sq2 - sum2 * sum2 / n
    if var1 <= _VAR_GUARD * s1.sq_total or var2 <= _VAR_GUARD * s2.sq_total:
        return -1.0
    v1 = s1.pixels[y0:y1, x0:x1]
    v2 = s2.pixels[y0 - ty : y1 - ty, x0 - tx : x1 - tx]
    # einsum reduces the strided views directly; ravel()+dot would copy both.
    cross = float(np.einsum("ij,ij->", v1, v2))
    # Scalar tail in pure python (math.sqrt is the same IEEE sqrt); numpy
    # scalar dispatch here costs more than the whole rectangle lookup.
    r = (cross - sum1 * sum2 / n) / math.sqrt(var1 * var2)
    if r >= 1.0:
        return 1.0
    if r <= -1.0:
        return -1.0
    return r


def subpixel_refine_stats(
    s1: TileStats, s2: TileStats, tx: int, ty: int
) -> tuple[float, float]:
    """O(1)-statistics twin of :func:`repro.core.ccf.subpixel_refine`."""
    from repro.core.ccf import _parabolic_vertex

    h, w = s1.shape
    c0 = ccf_at_stats(s1, s2, tx, ty)
    tx_f, ty_f = float(tx), float(ty)
    if abs(tx - 1) < w and abs(tx + 1) < w:
        cxm = ccf_at_stats(s1, s2, tx - 1, ty)
        cxp = ccf_at_stats(s1, s2, tx + 1, ty)
        tx_f += _parabolic_vertex(cxm, c0, cxp)
    if abs(ty - 1) < h and abs(ty + 1) < h:
        cym = ccf_at_stats(s1, s2, tx, ty - 1)
        cyp = ccf_at_stats(s1, s2, tx, ty + 1)
        ty_f += _parabolic_vertex(cym, c0, cyp)
    return tx_f, ty_f
