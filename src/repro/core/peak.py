"""Peak reduction and periodic interpretation (steps 5-6 of Fig. 1).

The inverse transform of the NCC is reduced to its maximum-magnitude
element; its index ``(py, px)`` is ambiguous because Fourier transforms are
periodic: a peak at ``px`` can mean a horizontal translation of ``px`` *or*
``px - W`` (the paper phrases the second case as ``w - x`` with the overlap
measured from the other side).  The paper's implementation tests the four
combinations ``(x | w-x) x (y | h-y)`` -- all as non-negative translations.
An *extended* mode additionally tests the signed aliases
``{px, px-W} x {py, py-H}``, which distinguishes small negative offsets
(e.g. a slightly *upward* drift between horizontal neighbours) that the
4-combination scheme folds onto the wrong sign; this is the refinement the
MIST successor tool adopted.
"""

from __future__ import annotations

import numpy as np


def peak_location(inv_ncc: np.ndarray) -> tuple[float, int, int]:
    """Reduce to the max of ``|NCC^-1|``; returns ``(magnitude, py, px)``.

    Equivalent to the paper's custom max-reduction kernel followed by the
    index-to-coordinates mapping.
    """
    mag = np.abs(inv_ncc)
    flat_idx = int(np.argmax(mag))
    py, px = np.unravel_index(flat_idx, mag.shape)
    return float(mag[py, px]), int(py), int(px)


def top_peaks(
    inv_ncc: np.ndarray, n: int, mag_out: np.ndarray | None = None
) -> list[tuple[float, int, int]]:
    """The ``n`` largest-magnitude elements as ``(magnitude, py, px)``.

    ``n == 1`` reduces to :func:`peak_location` (the paper's scheme); the
    ImageJ/Fiji plugin the paper benchmarks against tests several peaks,
    which is markedly more robust on feature-poor overlaps, so callers may
    ask for more.  Ordered by decreasing magnitude.  ``mag_out`` (float64,
    same shape) receives the magnitude scratch so the reduction allocates
    nothing.
    """
    if n < 1:
        raise ValueError(f"need at least one peak, got n={n}")
    mag = np.abs(inv_ncc, out=mag_out)
    n = min(n, mag.size)
    flat = np.argpartition(mag.ravel(), mag.size - n)[-n:]
    flat = flat[np.argsort(mag.ravel()[flat])[::-1]]
    out = []
    for f in flat:
        py, px = np.unravel_index(int(f), mag.shape)
        out.append((float(mag[py, px]), int(py), int(px)))
    return out


def peak_magnitude_ratio(magnitudes) -> float | None:
    """First-to-second peak-magnitude ratio, the peak-sharpness score.

    ``magnitudes`` must be ordered decreasing (as :func:`top_peaks`
    returns them).  A decisive correlation surface concentrates energy
    in one peak (ratio well above 1); a diffuse surface -- blank or
    saturated overlap, sparse content -- spreads it (ratio near 1).
    Returns ``None`` when fewer than two peaks were reduced, and
    ``inf`` when the runner-up magnitude is zero.
    """
    if len(magnitudes) < 2:
        return None
    first, second = float(magnitudes[0]), float(magnitudes[1])
    if second <= 0.0:
        return float("inf")
    return first / second


def peak_candidates(
    py: int,
    px: int,
    fft_shape: tuple[int, int],
    extended: bool = False,
) -> list[tuple[int, int]]:
    """Candidate translations ``(tx, ty)`` implied by a peak at ``(py, px)``.

    ``fft_shape`` is the shape ``(H, W)`` of the transform that produced the
    peak (which is the padded shape when padding is in use).

    Paper mode (default) returns the four non-negative combinations
    ``(px | W-px) x (py | H-py)``; extended mode returns the signed aliases,
    up to eight distinct candidates.
    """
    h, w = fft_shape
    if not (0 <= py < h and 0 <= px < w):
        raise ValueError(f"peak ({py},{px}) outside transform shape {fft_shape}")
    if extended:
        xs = {px, px - w}
        ys = {py, py - h}
    else:
        xs = {px, w - px}
        ys = {py, h - py}
    return [(tx, ty) for ty in sorted(ys) for tx in sorted(xs)]
