"""Multi-resolution, on-demand mosaic rendering (the paper's viewer).

Section III: "the third phase can be carried out on demand as part of
visualizing the stitched image"; Section VI describes a prototype that
generates "image pyramids for all the tiles in a grid and render[s] a
stitched image at varying resolutions" (Figs. 13-14 come from it).

:class:`MosaicPyramid` implements that viewer back-end:

- tiles are downsampled per level by block averaging (factor ``2**level``),
  lazily and with a small LRU cache, so zoomed-out views never touch
  full-resolution pixels more than once;
- :meth:`render_region` composes only the tiles intersecting a viewport,
  so panning a 17k x 22k mosaic never materializes the whole canvas --
  the paper "composes and renders the composite image without saving it".
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.core.compose import BlendMode
from repro.core.downsample import downsample
from repro.core.global_opt import GlobalPositions

__all__ = ["DiskPyramid", "MosaicPyramid", "downsample"]


class MosaicPyramid:
    """Viewport renderer over stitched tile positions.

    ``levels`` counts pyramid levels (level 0 = native resolution, level
    ``k`` downsampled by ``2**k``).  ``cache_tiles`` bounds the per-level
    LRU of downsampled tiles by entry count; ``cache_bytes`` additionally
    bounds it by the sum of cached ``nbytes`` (the tighter bound wins),
    so a viewer session has a hard memory ceiling regardless of tile
    size.  Eviction is least-recently-used under either bound.
    """

    def __init__(
        self,
        load_tile,
        positions: GlobalPositions,
        tile_shape: tuple[int, int],
        levels: int = 4,
        cache_tiles: int = 64,
        cache_bytes: int | None = None,
    ) -> None:
        if levels < 1:
            raise ValueError("need at least one level")
        max_factor = 2 ** (levels - 1)
        if min(tile_shape) // max_factor < 1:
            raise ValueError(
                f"{levels} levels would shrink {tile_shape} tiles below 1 px"
            )
        if cache_bytes is not None and cache_bytes < 0:
            raise ValueError(f"cache_bytes must be >= 0, got {cache_bytes}")
        self._load = load_tile
        self.positions = positions
        self.tile_shape = tuple(tile_shape)
        self.levels = levels
        self._cache: OrderedDict = OrderedDict()
        self._cache_limit = cache_tiles
        self._cache_byte_limit = cache_bytes
        self.cache_current_bytes = 0
        self.cache_peak_bytes = 0
        self.cache_evictions = 0
        self.tile_fetches = 0  # instrumentation for laziness tests

    # -- geometry --------------------------------------------------------

    def level_factor(self, level: int) -> int:
        if not 0 <= level < self.levels:
            raise ValueError(f"level {level} outside [0, {self.levels})")
        return 2**level

    def level_shape(self, level: int) -> tuple[int, int]:
        """Full-mosaic shape at a pyramid level."""
        f = self.level_factor(level)
        h, w = self.positions.mosaic_shape(self.tile_shape)
        return (h + f - 1) // f, (w + f - 1) // f

    def _tile_at(self, row: int, col: int, level: int) -> np.ndarray:
        key = (row, col, level)
        if key in self._cache:
            self._cache.move_to_end(key)
            return self._cache[key]
        self.tile_fetches += 1
        tile = downsample(self._load(row, col), self.level_factor(level))
        if self._cache_byte_limit is not None and tile.nbytes > self._cache_byte_limit:
            return tile  # larger than the whole budget: serve uncached
        self._cache[key] = tile
        self.cache_current_bytes += tile.nbytes
        while self._cache and (
            len(self._cache) > self._cache_limit
            or (
                self._cache_byte_limit is not None
                and self.cache_current_bytes > self._cache_byte_limit
            )
        ):
            _, old = self._cache.popitem(last=False)
            self.cache_current_bytes -= old.nbytes
            self.cache_evictions += 1
        self.cache_peak_bytes = max(self.cache_peak_bytes, self.cache_current_bytes)
        return tile

    # -- rendering ----------------------------------------------------------

    def render(self, level: int = 0, blend: BlendMode = BlendMode.OVERLAY) -> np.ndarray:
        """Full mosaic at a level (convenience over :meth:`render_region`)."""
        h, w = self.level_shape(level)
        return self.render_region(0, 0, h, w, level=level, blend=blend)

    def render_region(
        self,
        y: int,
        x: int,
        height: int,
        width: int,
        level: int = 0,
        blend: BlendMode = BlendMode.OVERLAY,
    ) -> np.ndarray:
        """Compose the viewport ``[y, y+height) x [x, x+width)`` at a level.

        Coordinates are in *level* pixels.  Only tiles intersecting the
        viewport are loaded.  ``OVERLAY`` and ``AVERAGE`` blends are
        supported (feathering needs global weights, which defeats windowed
        rendering).
        """
        if height < 1 or width < 1:
            raise ValueError("viewport must be at least 1x1")
        if blend not in (BlendMode.OVERLAY, BlendMode.AVERAGE):
            raise ValueError(f"windowed rendering supports OVERLAY/AVERAGE, not {blend}")
        f = self.level_factor(level)
        th = (self.tile_shape[0] + f - 1) // f
        tw = (self.tile_shape[1] + f - 1) // f
        canvas = np.zeros((height, width), dtype=np.float64)
        weight = (
            np.zeros((height, width), dtype=np.float64)
            if blend is BlendMode.AVERAGE
            else None
        )
        for r in range(self.positions.rows):
            for c in range(self.positions.cols):
                ty, tx = (int(v) // f for v in self.positions.positions[r, c])
                # Intersect tile box with the viewport.
                y0, y1 = max(ty, y), min(ty + th, y + height)
                x0, x1 = max(tx, x), min(tx + tw, x + width)
                if y1 <= y0 or x1 <= x0:
                    continue
                tile = self._tile_at(r, c, level)
                src = tile[y0 - ty : y1 - ty, x0 - tx : x1 - tx]
                dst = (slice(y0 - y, y1 - y), slice(x0 - x, x1 - x))
                if blend is BlendMode.OVERLAY:
                    canvas[dst] = src
                else:
                    canvas[dst] += src
                    weight[dst] += 1.0
        if weight is not None:
            covered = weight > 0
            canvas[covered] /= weight[covered]
        return canvas


class DiskPyramid:
    """Viewport access to an on-disk mosaic pyramid, nothing resident.

    The files are the ones
    :func:`repro.core.streamcompose.stream_compose_to_tiff` publishes
    (``mosaic.tif`` plus ``mosaic.L1.tif`` ... -- see
    :func:`repro.core.streamcompose.pyramid_level_path`): level 0 at
    native resolution, level k block-mean downsampled by ``2**k``.  Where
    :class:`MosaicPyramid` recomposes viewports from source tiles,
    this serves them straight from the composed mosaic through windowed
    :class:`repro.io.tiff.TiffReader` reads -- any viewport of a grid
    orders of magnitude beyond RAM costs only the viewport itself.

    Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, path: str | Path) -> None:
        from repro.core.streamcompose import pyramid_level_path
        from repro.io.tiff import TiffReader

        self.path = Path(path)
        self._readers = []
        try:
            level = 0
            while True:
                p = pyramid_level_path(self.path, level)
                if level > 0 and not p.exists():
                    break
                self._readers.append(TiffReader(p))
                level += 1
        except BaseException:
            self.close()
            raise

    @property
    def levels(self) -> int:
        return len(self._readers)

    def level_shape(self, level: int) -> tuple[int, int]:
        r = self._reader(level)
        return r.height, r.width

    @property
    def dtype(self) -> np.dtype:
        return self._readers[0].dtype

    def _reader(self, level: int):
        if not 0 <= level < len(self._readers):
            raise ValueError(
                f"level {level} outside [0, {len(self._readers)})"
            )
        return self._readers[level]

    def render_region(
        self, y: int, x: int, height: int, width: int, level: int = 0
    ) -> np.ndarray:
        """Read the viewport ``[y, y+height) x [x, x+width)`` at a level.

        Coordinates are in *level* pixels; the result keeps the mosaic's
        stored dtype.  Only the window's bytes are read from disk.
        """
        return self._reader(level).read_region(y, x, height, width)

    def level_for_scale(self, scale: float) -> int:
        """Coarsest stored level still at least ``scale`` of native size.

        ``scale=1.0`` is level 0; ``scale=0.25`` picks level 2 (or the
        coarsest available).  The viewer contract: pick the level whose
        factor does not undershoot the requested zoom.
        """
        if not 0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        level = 0
        while level + 1 < len(self._readers) and 2 ** (level + 1) <= 1.0 / scale:
            level += 1
        return level

    def close(self) -> None:
        for r in self._readers:
            r.close()
        self._readers = []

    def __enter__(self) -> "DiskPyramid":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
