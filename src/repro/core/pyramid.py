"""Multi-resolution, on-demand mosaic rendering (the paper's viewer).

Section III: "the third phase can be carried out on demand as part of
visualizing the stitched image"; Section VI describes a prototype that
generates "image pyramids for all the tiles in a grid and render[s] a
stitched image at varying resolutions" (Figs. 13-14 come from it).

:class:`MosaicPyramid` implements that viewer back-end:

- tiles are downsampled per level by block averaging (factor ``2**level``),
  lazily and with a small LRU cache, so zoomed-out views never touch
  full-resolution pixels more than once;
- :meth:`render_region` composes only the tiles intersecting a viewport,
  so panning a 17k x 22k mosaic never materializes the whole canvas --
  the paper "composes and renders the composite image without saving it".
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.compose import BlendMode
from repro.core.downsample import downsample
from repro.core.global_opt import GlobalPositions

__all__ = ["MosaicPyramid", "downsample"]


class MosaicPyramid:
    """Viewport renderer over stitched tile positions.

    ``levels`` counts pyramid levels (level 0 = native resolution, level
    ``k`` downsampled by ``2**k``).  ``cache_tiles`` bounds the per-level
    LRU of downsampled tiles.
    """

    def __init__(
        self,
        load_tile,
        positions: GlobalPositions,
        tile_shape: tuple[int, int],
        levels: int = 4,
        cache_tiles: int = 64,
    ) -> None:
        if levels < 1:
            raise ValueError("need at least one level")
        max_factor = 2 ** (levels - 1)
        if min(tile_shape) // max_factor < 1:
            raise ValueError(
                f"{levels} levels would shrink {tile_shape} tiles below 1 px"
            )
        self._load = load_tile
        self.positions = positions
        self.tile_shape = tuple(tile_shape)
        self.levels = levels
        self._cache: OrderedDict = OrderedDict()
        self._cache_limit = cache_tiles
        self.tile_fetches = 0  # instrumentation for laziness tests

    # -- geometry --------------------------------------------------------

    def level_factor(self, level: int) -> int:
        if not 0 <= level < self.levels:
            raise ValueError(f"level {level} outside [0, {self.levels})")
        return 2**level

    def level_shape(self, level: int) -> tuple[int, int]:
        """Full-mosaic shape at a pyramid level."""
        f = self.level_factor(level)
        h, w = self.positions.mosaic_shape(self.tile_shape)
        return (h + f - 1) // f, (w + f - 1) // f

    def _tile_at(self, row: int, col: int, level: int) -> np.ndarray:
        key = (row, col, level)
        if key in self._cache:
            self._cache.move_to_end(key)
            return self._cache[key]
        self.tile_fetches += 1
        tile = downsample(self._load(row, col), self.level_factor(level))
        self._cache[key] = tile
        if len(self._cache) > self._cache_limit:
            self._cache.popitem(last=False)
        return tile

    # -- rendering ----------------------------------------------------------

    def render(self, level: int = 0, blend: BlendMode = BlendMode.OVERLAY) -> np.ndarray:
        """Full mosaic at a level (convenience over :meth:`render_region`)."""
        h, w = self.level_shape(level)
        return self.render_region(0, 0, h, w, level=level, blend=blend)

    def render_region(
        self,
        y: int,
        x: int,
        height: int,
        width: int,
        level: int = 0,
        blend: BlendMode = BlendMode.OVERLAY,
    ) -> np.ndarray:
        """Compose the viewport ``[y, y+height) x [x, x+width)`` at a level.

        Coordinates are in *level* pixels.  Only tiles intersecting the
        viewport are loaded.  ``OVERLAY`` and ``AVERAGE`` blends are
        supported (feathering needs global weights, which defeats windowed
        rendering).
        """
        if height < 1 or width < 1:
            raise ValueError("viewport must be at least 1x1")
        if blend not in (BlendMode.OVERLAY, BlendMode.AVERAGE):
            raise ValueError(f"windowed rendering supports OVERLAY/AVERAGE, not {blend}")
        f = self.level_factor(level)
        th = (self.tile_shape[0] + f - 1) // f
        tw = (self.tile_shape[1] + f - 1) // f
        canvas = np.zeros((height, width), dtype=np.float64)
        weight = (
            np.zeros((height, width), dtype=np.float64)
            if blend is BlendMode.AVERAGE
            else None
        )
        for r in range(self.positions.rows):
            for c in range(self.positions.cols):
                ty, tx = (int(v) // f for v in self.positions.positions[r, c])
                # Intersect tile box with the viewport.
                y0, y1 = max(ty, y), min(ty + th, y + height)
                x0, x1 = max(tx, x), min(tx + tw, x + width)
                if y1 <= y0 or x1 <= x0:
                    continue
                tile = self._tile_at(r, c, level)
                src = tile[y0 - ty : y1 - ty, x0 - tx : x1 - tx]
                dst = (slice(y0 - y, y1 - y), slice(x0 - x, x1 - x))
                if blend is BlendMode.OVERLAY:
                    canvas[dst] = src
                else:
                    canvas[dst] += src
                    weight[dst] += 1.0
        if weight is not None:
            covered = weight > 0
            canvas[covered] /= weight[covered]
        return canvas
