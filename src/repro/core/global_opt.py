"""Phase 2: resolve the over-constrained displacement graph (Section III).

The pairwise translations over-constrain absolute positions: any cycle in
the grid graph gives two path-sums for the same tile, and stage noise makes
them disagree.  The paper offers two resolution strategies, both
implemented here:

``mst``
    Select a subset of displacements forming a maximum-correlation spanning
    tree and read positions off tree paths.  Low-confidence edges (blank
    overlaps) are simply never selected when any better path exists.
``least_squares``
    Global adjustment: minimize ``sum_ij w_ij * ||p_j - p_i - d_ij||^2``
    over all edges, with correlation-derived weights, anchored at tile
    (0, 0).  This is the "global optimization approach to adjust them to a
    path invariant state" the paper describes; it uses every measurement
    instead of discarding the off-tree ones.

Both return integer pixel positions normalized so ``min == (0, 0)``.

Degraded operation: when phase 1 dropped tiles (fault tolerance), the
displacement graph may be disconnected.  ``on_disconnected="nominal"``
places each disconnected component by anchoring it at the nominal stage
coordinate of its local root -- the grid-index position scaled by the
nominal step, estimated from the median of the surviving edges (or
supplied explicitly from acquisition metadata).  Such tiles are flagged
in ``GlobalPositions.degraded``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.displacement import DisplacementResult


@dataclass
class GlobalPositions:
    """Absolute tile origins ``positions[rows, cols, 2]`` as ``(y, x)``.

    ``mosaic_shape`` is the bounding canvas for a given tile size.
    """

    positions: np.ndarray  # int64 [rows, cols, 2] (y, x), min at (0, 0)
    method: str
    spanning_tree_correlation: float | None = None
    #: Sub-pixel positions (float64, same normalization) when the
    #: displacements carried fractional estimates; ``None`` otherwise.
    positions_f: np.ndarray | None = None
    #: Bool mask [rows, cols]; True where the position is a nominal-grid
    #: fallback (tile disconnected from the anchor component).  ``None``
    #: when the graph was fully connected.
    degraded: np.ndarray | None = None

    @property
    def rows(self) -> int:
        return self.positions.shape[0]

    @property
    def cols(self) -> int:
        return self.positions.shape[1]

    @property
    def degraded_count(self) -> int:
        return 0 if self.degraded is None else int(self.degraded.sum())

    def degraded_tiles(self) -> list[tuple[int, int]]:
        if self.degraded is None:
            return []
        return [tuple(rc) for rc in np.argwhere(self.degraded)]

    def mosaic_shape(self, tile_shape: tuple[int, int]) -> tuple[int, int]:
        h = int(self.positions[..., 0].max()) + tile_shape[0]
        w = int(self.positions[..., 1].max()) + tile_shape[1]
        return h, w


def _edges(disp: DisplacementResult):
    """Yield ``(u, v, translation)`` with u the west/north neighbour of v."""
    for r in range(disp.rows):
        for c in range(disp.cols):
            t = disp.west[r][c]
            if t is not None:
                yield (r, c - 1), (r, c), t
            t = disp.north[r][c]
            if t is not None:
                yield (r - 1, c), (r, c), t


def _normalize(pos: np.ndarray) -> np.ndarray:
    pos = pos - pos.reshape(-1, 2).min(axis=0)
    return np.rint(pos).astype(np.int64)


def _normalize_f(pos: np.ndarray) -> np.ndarray:
    return pos - pos.reshape(-1, 2).min(axis=0)


def _build_graph(disp: DisplacementResult) -> "nx.Graph":
    g = nx.Graph()
    for u, v, t in _edges(disp):
        # Maximum-correlation spanning tree == minimum of (1 - corr).
        g.add_edge(u, v, weight=1.0 - t.correlation, translation=t, forward=(u, v))
    for r in range(disp.rows):
        for c in range(disp.cols):
            g.add_node((r, c))
    return g


def estimate_nominal_step(
    disp: DisplacementResult,
    nominal_step: tuple[tuple[float, float], tuple[float, float]] | None = None,
) -> tuple[tuple[float, float], tuple[float, float]]:
    """Nominal ``((west_dy, west_dx), (north_dy, north_dx))`` grid step.

    Estimated as the per-direction median of the surviving phase-1
    translations (robust to the occasional blank-overlap outlier); a
    direction with no surviving edges falls back to the supplied
    ``nominal_step`` (typically derived from acquisition metadata).
    """
    west = [(t.fy, t.fx) for row in disp.west for t in row if t is not None]
    north = [(t.fy, t.fx) for row in disp.north for t in row if t is not None]

    def median_or_fallback(samples, fallback, direction):
        if samples:
            arr = np.asarray(samples, dtype=np.float64)
            return (float(np.median(arr[:, 0])), float(np.median(arr[:, 1])))
        if fallback is not None:
            return (float(fallback[0]), float(fallback[1]))
        raise ValueError(
            f"cannot estimate nominal {direction} step: no surviving "
            f"{direction} displacements and no nominal_step supplied"
        )

    return (
        median_or_fallback(west, nominal_step[0] if nominal_step else None, "west"),
        median_or_fallback(north, nominal_step[1] if nominal_step else None, "north"),
    )


def _nominal_position(
    rc: tuple[int, int], step: tuple[tuple[float, float], tuple[float, float]]
) -> np.ndarray:
    (wy, wx), (ny, nx_) = step
    r, c = rc
    return np.array([r * ny + c * wy, r * nx_ + c * wx], dtype=np.float64)


def _mst_positions(
    disp: DisplacementResult,
    subpixel: bool = False,
    on_disconnected: str = "error",
    nominal_step=None,
) -> GlobalPositions:
    g = _build_graph(disp)
    connected = disp.rows * disp.cols <= 1 or nx.is_connected(g)
    if not connected and on_disconnected != "nominal":
        raise ValueError("displacement graph is disconnected; cannot stitch")
    step = None
    if not connected:
        step = estimate_nominal_step(disp, nominal_step)
    tree = nx.minimum_spanning_tree(g, weight="weight")
    pos = np.zeros((disp.rows, disp.cols, 2), dtype=np.float64)
    degraded = np.zeros((disp.rows, disp.cols), dtype=bool)
    seen: set = set()
    total_corr = 0.0
    # Anchor component: rooted at (0, 0).  Every other component is rooted
    # at its smallest (row, col) member, anchored on the nominal grid.
    roots = [(0, 0)]
    if not connected:
        for comp in nx.connected_components(g):
            if (0, 0) not in comp:
                roots.append(min(comp))
    for root in roots:
        if root == (0, 0):
            pos[root] = 0.0
        else:
            pos[root] = _nominal_position(root, step)
            degraded[root] = True
        seen.add(root)
        # BFS from the root accumulating signed translations along tree edges.
        stack = [root]
        while stack:
            u = stack.pop()
            for v in tree.neighbors(u):
                if v in seen:
                    continue
                seen.add(v)
                data = tree.edges[u, v]
                t = data["translation"]
                fu, fv = data["forward"]
                sign = 1.0 if (fu, fv) == (u, v) else -1.0
                dy, dx = (t.fy, t.fx) if subpixel else (float(t.ty), float(t.tx))
                pos[v] = pos[u] + sign * np.array([dy, dx], dtype=np.float64)
                degraded[v] = degraded[root]
                total_corr += t.correlation
                stack.append(v)
    return GlobalPositions(
        positions=_normalize(pos),
        method="mst",
        spanning_tree_correlation=total_corr,
        positions_f=_normalize_f(pos) if subpixel else None,
        degraded=degraded if degraded.any() else None,
    )


def _least_squares_positions(
    disp: DisplacementResult,
    min_weight: float = 1e-3,
    subpixel: bool = False,
    on_disconnected: str = "error",
    nominal_step=None,
) -> GlobalPositions:
    n = disp.rows * disp.cols

    def idx(rc) -> int:
        return rc[0] * disp.cols + rc[1]

    g = _build_graph(disp)
    connected = n <= 1 or nx.is_connected(g)
    if not connected and on_disconnected != "nominal":
        raise ValueError("displacement graph is disconnected; cannot stitch")
    degraded = np.zeros((disp.rows, disp.cols), dtype=bool)
    off_anchor: list[tuple[int, int]] = []
    if not connected:
        for comp in nx.connected_components(g):
            if (0, 0) not in comp:
                off_anchor.extend(comp)
        for rc in off_anchor:
            degraded[rc] = True
    step = estimate_nominal_step(disp, nominal_step) if off_anchor else None

    rows_a, cols_a, vals, b_y, b_x = [], [], [], [], []
    eq = 0
    for u, v, t in _edges(disp):
        w = max(min_weight, (t.correlation + 1.0) / 2.0)
        rows_a += [eq, eq]
        cols_a += [idx(v), idx(u)]
        vals += [w, -w]
        dy, dx = (t.fy, t.fx) if subpixel else (float(t.ty), float(t.tx))
        b_y.append(w * dy)
        b_x.append(w * dx)
        eq += 1
    # Anchor tile (0,0) at the origin to pin the translation gauge freedom.
    rows_a.append(eq)
    cols_a.append(0)
    vals.append(1.0)
    b_y.append(0.0)
    b_x.append(0.0)
    eq += 1
    # Weak nominal prior for tiles cut off from the anchor component: pins
    # their otherwise-free gauge to the nominal grid without measurably
    # perturbing the measured edges (weight 1e-6 vs >= min_weight).
    for rc in off_anchor:
        nominal = _nominal_position(rc, step)
        rows_a.append(eq)
        cols_a.append(idx(rc))
        vals.append(1e-6)
        b_y.append(1e-6 * nominal[0])
        b_x.append(1e-6 * nominal[1])
        eq += 1

    a = sp.csr_matrix((vals, (rows_a, cols_a)), shape=(eq, n))
    y = spla.lsqr(a, np.asarray(b_y), atol=1e-12, btol=1e-12)[0]
    x = spla.lsqr(a, np.asarray(b_x), atol=1e-12, btol=1e-12)[0]
    pos = np.stack([y, x], axis=-1).reshape(disp.rows, disp.cols, 2)
    return GlobalPositions(
        positions=_normalize(pos),
        method="least_squares",
        positions_f=_normalize_f(pos) if subpixel else None,
        degraded=degraded if degraded.any() else None,
    )


def resolve_absolute_positions(
    disp: DisplacementResult,
    method: str = "mst",
    subpixel: bool = False,
    on_disconnected: str = "error",
    nominal_step: tuple[tuple[float, float], tuple[float, float]] | None = None,
) -> GlobalPositions:
    """Phase 2 entry point; ``method`` is ``"mst"`` or ``"least_squares"``.

    ``subpixel=True`` resolves over the fractional translation estimates
    (where present) and exposes ``GlobalPositions.positions_f`` alongside
    the rounded integer positions composition uses.

    ``on_disconnected`` controls degraded operation when phase 1 dropped
    tiles and split the displacement graph: ``"error"`` (default)
    preserves the strict behaviour and raises ``ValueError``;
    ``"nominal"`` places each stranded component on the nominal grid
    (step from :func:`estimate_nominal_step`, seeded by ``nominal_step``
    metadata when the surviving edges cannot define it) and flags its
    tiles in ``GlobalPositions.degraded``.
    """
    if on_disconnected not in ("error", "nominal"):
        raise ValueError(
            f"unknown on_disconnected {on_disconnected!r} (use 'error' or 'nominal')"
        )
    if not disp.is_complete() and disp.pair_count() == 0 and len(disp.west) * len(disp.west[0]) > 1:
        if on_disconnected != "nominal":
            raise ValueError("no displacements computed")
        if nominal_step is None:
            raise ValueError(
                "no displacements computed and no nominal_step to fall back on"
            )
    if method == "mst":
        return _mst_positions(
            disp, subpixel=subpixel,
            on_disconnected=on_disconnected, nominal_step=nominal_step,
        )
    if method == "least_squares":
        return _least_squares_positions(
            disp, subpixel=subpixel,
            on_disconnected=on_disconnected, nominal_step=nominal_step,
        )
    raise ValueError(f"unknown method {method!r} (use 'mst' or 'least_squares')")
