"""Phase 2: resolve the over-constrained displacement graph (Section III).

The pairwise translations over-constrain absolute positions: any cycle in
the grid graph gives two path-sums for the same tile, and stage noise makes
them disagree.  The paper offers two resolution strategies, both
implemented here:

``mst``
    Select a subset of displacements forming a maximum-correlation spanning
    tree and read positions off tree paths.  Low-confidence edges (blank
    overlaps) are simply never selected when any better path exists.
``least_squares``
    Global adjustment: minimize ``sum_ij w_ij * ||p_j - p_i - d_ij||^2``
    over all edges, with confidence-derived weights, anchored at tile
    (0, 0).  This is the "global optimization approach to adjust them to a
    path invariant state" the paper describes; it uses every measurement
    instead of discarding the off-tree ones.

Both return integer pixel positions normalized so ``min == (0, 0)``.

Robustness (docs/ROBUSTNESS.md): with a
:class:`~repro.core.quality_gate.QualityConfig`, every pair is scored by
:func:`~repro.core.quality_gate.assess_quality` first.  Gated pairs --
low correlation, diffuse correlation peak, or stage-model outliers -- are
*demoted* to nominal-prior edges: their measured (garbage) translation is
replaced by the stage model's median step at a token weight, so they keep
the graph connected without pulling on their neighbours.  The
least-squares solver additionally supports IRLS residue damping
(``residue_mode: huber | threshold``): after each solve, edges with large
residuals are down-weighted and the system is re-solved until the weights
converge.  Non-finite correlations are always clamped to a finite floor
before any weight is derived from them.

Degraded operation: when phase 1 dropped tiles (fault tolerance), the
displacement graph may be disconnected.  ``on_disconnected="nominal"``
places each disconnected component by anchoring it at the nominal stage
coordinate of its local root -- the grid-index position scaled by the
nominal step, estimated from the median of the surviving edges (or
supplied explicitly from acquisition metadata).  Such tiles are flagged
in ``GlobalPositions.degraded``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.displacement import DisplacementResult, Translation
from repro.core.quality_gate import (
    QualityAssessment,
    QualityConfig,
    assess_quality,
    finite_correlation,
)


@dataclass
class GlobalPositions:
    """Absolute tile origins ``positions[rows, cols, 2]`` as ``(y, x)``.

    ``mosaic_shape`` is the bounding canvas for a given tile size.
    """

    positions: np.ndarray  # int64 [rows, cols, 2] (y, x), min at (0, 0)
    method: str
    spanning_tree_correlation: float | None = None
    #: Sub-pixel positions (float64, same normalization) when the
    #: displacements carried fractional estimates; ``None`` otherwise.
    positions_f: np.ndarray | None = None
    #: Bool mask [rows, cols]; True where the position is a nominal-grid
    #: fallback (tile disconnected from the anchor component).  ``None``
    #: when the graph was fully connected.
    degraded: np.ndarray | None = None
    #: JSON-able gating/IRLS summary when a quality gate ran (pair
    #: counts, gate reasons, stage models, IRLS iterations and damped
    #: edge counts); ``None`` for ungated solves.
    quality_report: dict | None = None

    @property
    def rows(self) -> int:
        return self.positions.shape[0]

    @property
    def cols(self) -> int:
        return self.positions.shape[1]

    @property
    def degraded_count(self) -> int:
        return 0 if self.degraded is None else int(self.degraded.sum())

    def degraded_tiles(self) -> list[tuple[int, int]]:
        if self.degraded is None:
            return []
        return [tuple(rc) for rc in np.argwhere(self.degraded)]

    def mosaic_shape(self, tile_shape: tuple[int, int]) -> tuple[int, int]:
        h = int(self.positions[..., 0].max()) + tile_shape[0]
        w = int(self.positions[..., 1].max()) + tile_shape[1]
        return h, w


def _edges(disp: DisplacementResult):
    """Yield ``(u, v, translation, direction)``; u is v's west/north peer."""
    for r in range(disp.rows):
        for c in range(disp.cols):
            t = disp.west[r][c]
            if t is not None:
                yield (r, c - 1), (r, c), t, "west"
            t = disp.north[r][c]
            if t is not None:
                yield (r - 1, c), (r, c), t, "north"


def _normalize(pos: np.ndarray) -> np.ndarray:
    pos = pos - pos.reshape(-1, 2).min(axis=0)
    return np.rint(pos).astype(np.int64)


def _normalize_f(pos: np.ndarray) -> np.ndarray:
    return pos - pos.reshape(-1, 2).min(axis=0)


def _nominal_prior_translation(
    assessment: QualityAssessment, direction: str
) -> Translation | None:
    """The stage model's step as a demoted edge's replacement value."""
    nominal = assessment.nominal_translation(direction)
    if nominal is None:
        return None
    dy, dx = nominal
    return Translation(
        correlation=0.0, tx=int(round(dx)), ty=int(round(dy)),
        tx_f=float(dx), ty_f=float(dy),
    )


def _build_graph(
    disp: DisplacementResult,
    assessment: QualityAssessment | None = None,
) -> "nx.Graph":
    """The displacement graph with confidence-derived MST weights.

    The maximum-confidence spanning tree is the minimum of
    ``1 - confidence``, where confidence is the finite-clamped
    correlation -- identical to the historical ``1 - correlation``
    weight on clean (finite, ungated) data.  A non-finite correlation
    previously produced a NaN weight, silently corrupting spanning-tree
    selection; it now clamps to the floor (weight 2.0).  With an
    ``assessment``, gated pairs carry a penalty offset of 2.0 so any
    measured edge beats any demoted one, and their translation is
    replaced by the stage model's nominal step so a tree forced through
    one (connectivity) places the tile on the stage grid instead of at
    the garbage measurement.
    """
    g = nx.Graph()
    for u, v, t, direction in _edges(disp):
        confidence = finite_correlation(t.correlation)
        weight = 1.0 - confidence
        if assessment is not None:
            q = assessment.quality(direction, v[0], v[1])
            if q is not None and q.gated:
                prior = _nominal_prior_translation(assessment, direction)
                if prior is not None:
                    t = prior
                # Any ungated edge (weight <= 2.0) is preferred to any
                # gated one; among gated edges, higher confidence wins.
                weight = 2.0 + (1.0 - confidence)
        g.add_edge(u, v, weight=weight, translation=t, forward=(u, v))
    for r in range(disp.rows):
        for c in range(disp.cols):
            g.add_node((r, c))
    return g


def estimate_nominal_step(
    disp: DisplacementResult,
    nominal_step: tuple[tuple[float, float], tuple[float, float]] | None = None,
) -> tuple[tuple[float, float], tuple[float, float]]:
    """Nominal ``((west_dy, west_dx), (north_dy, north_dx))`` grid step.

    Estimated as the per-direction median of the surviving phase-1
    translations (robust to the occasional blank-overlap outlier); a
    direction with no surviving edges falls back to the supplied
    ``nominal_step`` (typically derived from acquisition metadata).
    """
    west = [(t.fy, t.fx) for row in disp.west for t in row if t is not None]
    north = [(t.fy, t.fx) for row in disp.north for t in row if t is not None]

    def median_or_fallback(samples, fallback, direction):
        if samples:
            arr = np.asarray(samples, dtype=np.float64)
            return (float(np.median(arr[:, 0])), float(np.median(arr[:, 1])))
        if fallback is not None:
            return (float(fallback[0]), float(fallback[1]))
        raise ValueError(
            f"cannot estimate nominal {direction} step: no surviving "
            f"{direction} displacements and no nominal_step supplied"
        )

    return (
        median_or_fallback(west, nominal_step[0] if nominal_step else None, "west"),
        median_or_fallback(north, nominal_step[1] if nominal_step else None, "north"),
    )


def _nominal_position(
    rc: tuple[int, int], step: tuple[tuple[float, float], tuple[float, float]]
) -> np.ndarray:
    (wy, wx), (ny, nx_) = step
    r, c = rc
    return np.array([r * ny + c * wy, r * nx_ + c * wx], dtype=np.float64)


def _mst_positions(
    disp: DisplacementResult,
    subpixel: bool = False,
    on_disconnected: str = "error",
    nominal_step=None,
    assessment: QualityAssessment | None = None,
) -> GlobalPositions:
    g = _build_graph(disp, assessment)
    connected = disp.rows * disp.cols <= 1 or nx.is_connected(g)
    if not connected and on_disconnected != "nominal":
        raise ValueError("displacement graph is disconnected; cannot stitch")
    step = None
    if not connected:
        step = estimate_nominal_step(disp, nominal_step)
    tree = nx.minimum_spanning_tree(g, weight="weight")
    pos = np.zeros((disp.rows, disp.cols, 2), dtype=np.float64)
    degraded = np.zeros((disp.rows, disp.cols), dtype=bool)
    seen: set = set()
    total_corr = 0.0
    gated_in_tree = 0
    # Anchor component: rooted at (0, 0).  Every other component is rooted
    # at its smallest (row, col) member, anchored on the nominal grid.
    roots = [(0, 0)]
    if not connected:
        for comp in nx.connected_components(g):
            if (0, 0) not in comp:
                roots.append(min(comp))
    for root in roots:
        if root == (0, 0):
            pos[root] = 0.0
        else:
            pos[root] = _nominal_position(root, step)
            degraded[root] = True
        seen.add(root)
        # BFS from the root accumulating signed translations along tree edges.
        stack = [root]
        while stack:
            u = stack.pop()
            for v in tree.neighbors(u):
                if v in seen:
                    continue
                seen.add(v)
                data = tree.edges[u, v]
                t = data["translation"]
                fu, fv = data["forward"]
                sign = 1.0 if (fu, fv) == (u, v) else -1.0
                dy, dx = (t.fy, t.fx) if subpixel else (float(t.ty), float(t.tx))
                pos[v] = pos[u] + sign * np.array([dy, dx], dtype=np.float64)
                degraded[v] = degraded[root]
                total_corr += t.correlation
                if data["weight"] > 2.0:
                    gated_in_tree += 1
                stack.append(v)
    quality_report = None
    if assessment is not None:
        quality_report = assessment.report()
        quality_report["gated_edges_in_tree"] = gated_in_tree
    return GlobalPositions(
        positions=_normalize(pos),
        method="mst",
        spanning_tree_correlation=total_corr,
        positions_f=_normalize_f(pos) if subpixel else None,
        degraded=degraded if degraded.any() else None,
        quality_report=quality_report,
    )


def _residue_damping(
    residuals: np.ndarray, mode: str, residue_len: float
) -> np.ndarray:
    """Per-edge IRLS damping factors in ``(0, 1]`` from residual lengths.

    ``huber`` is the classic Huber IRLS weight (quadratic inside the
    delta, linear beyond: weight ``residue_len / |r|``); ``threshold``
    collapses offending edges to a token weight, the hard-rejection
    analogue.
    """
    if mode == "huber":
        return np.minimum(
            1.0, residue_len / np.maximum(residuals, 1e-12)
        )
    if mode == "threshold":
        return np.where(residuals <= residue_len, 1.0, 1e-3)
    raise ValueError(f"unknown residue mode {mode!r}")


def _least_squares_positions(
    disp: DisplacementResult,
    min_weight: float = 1e-3,
    subpixel: bool = False,
    on_disconnected: str = "error",
    nominal_step=None,
    assessment: QualityAssessment | None = None,
) -> GlobalPositions:
    n = disp.rows * disp.cols

    def idx(rc) -> int:
        return rc[0] * disp.cols + rc[1]

    g = _build_graph(disp, assessment)
    connected = n <= 1 or nx.is_connected(g)
    if not connected and on_disconnected != "nominal":
        raise ValueError("displacement graph is disconnected; cannot stitch")
    degraded = np.zeros((disp.rows, disp.cols), dtype=bool)
    off_anchor: list[tuple[int, int]] = []
    if not connected:
        for comp in nx.connected_components(g):
            if (0, 0) not in comp:
                off_anchor.extend(comp)
        for rc in off_anchor:
            degraded[rc] = True
    step = estimate_nominal_step(disp, nominal_step) if off_anchor else None

    cfg = assessment.config if assessment is not None else None

    # Per-edge system data.  Gated pairs are demoted: their measurement is
    # replaced by the stage model's nominal step at a token weight, so the
    # graph stays connected without the garbage value pulling on anyone.
    e_iu: list[int] = []
    e_iv: list[int] = []
    e_w: list[float] = []
    e_dy: list[float] = []
    e_dx: list[float] = []
    e_gated: list[bool] = []
    for u, v, t, direction in _edges(disp):
        gated = False
        if assessment is not None:
            q = assessment.quality(direction, v[0], v[1])
            if q is not None and q.gated:
                prior = _nominal_prior_translation(assessment, direction)
                if prior is not None:
                    t = prior
                    gated = True
        if gated:
            w = cfg.gate_weight
        else:
            # Clamp first: the historical expression fed a NaN correlation
            # straight into max(), surviving only by argument order.
            confidence = finite_correlation(t.correlation)
            w = max(min_weight, (confidence + 1.0) / 2.0)
        dy, dx = (t.fy, t.fx) if subpixel else (float(t.ty), float(t.tx))
        e_iu.append(idx(u))
        e_iv.append(idx(v))
        e_w.append(w)
        e_dy.append(dy)
        e_dx.append(dx)
        e_gated.append(gated)

    n_edges = len(e_w)
    base_w = np.asarray(e_w, dtype=np.float64)
    arr_dy = np.asarray(e_dy, dtype=np.float64)
    arr_dx = np.asarray(e_dx, dtype=np.float64)
    gated_mask = np.asarray(e_gated, dtype=bool)
    iu = np.asarray(e_iu, dtype=np.int64)
    iv = np.asarray(e_iv, dtype=np.int64)

    # Extra rows appended after the edge equations: the gauge anchor and
    # (under degraded operation) the weak nominal priors for tiles cut off
    # from the anchor component (weight 1e-6: pins their otherwise-free
    # gauge to the nominal grid without measurably perturbing the
    # measured edges).
    extra_cols: list[int] = [0]
    extra_vals: list[float] = [1.0]
    extra_by: list[float] = [0.0]
    extra_bx: list[float] = [0.0]
    for rc in off_anchor:
        nominal = _nominal_position(rc, step)
        extra_cols.append(idx(rc))
        extra_vals.append(1e-6)
        extra_by.append(1e-6 * nominal[0])
        extra_bx.append(1e-6 * nominal[1])

    def solve(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rows_a: list[int] = []
        cols_a: list[int] = []
        vals: list[float] = []
        b_y: list[float] = []
        b_x: list[float] = []
        eq = 0
        for e in range(n_edges):
            w = weights[e]
            rows_a += [eq, eq]
            cols_a += [int(iv[e]), int(iu[e])]
            vals += [w, -w]
            b_y.append(w * arr_dy[e])
            b_x.append(w * arr_dx[e])
            eq += 1
        for col, val, by, bx in zip(extra_cols, extra_vals, extra_by, extra_bx):
            rows_a.append(eq)
            cols_a.append(col)
            vals.append(val)
            b_y.append(by)
            b_x.append(bx)
            eq += 1
        a = sp.csr_matrix((vals, (rows_a, cols_a)), shape=(eq, n))
        y = spla.lsqr(a, np.asarray(b_y), atol=1e-12, btol=1e-12)[0]
        x = spla.lsqr(a, np.asarray(b_x), atol=1e-12, btol=1e-12)[0]
        return y, x

    residue_mode = cfg.residue_mode if cfg is not None else "none"
    damp = np.ones(n_edges, dtype=np.float64)
    irls_iterations = 0
    y, x = solve(base_w)
    if residue_mode != "none" and n_edges:
        # IRLS: damp edges whose residual exceeds the Huber delta /
        # threshold and re-solve until the damping stabilizes.  Demoted
        # (nominal-prior) edges are exempt -- they are already priors.
        for _ in range(cfg.max_irls_iterations):
            res_y = (y[iv] - y[iu]) - arr_dy
            res_x = (x[iv] - x[iu]) - arr_dx
            residuals = np.hypot(res_y, res_x)
            new_damp = _residue_damping(residuals, residue_mode, cfg.residue_len)
            new_damp[gated_mask] = 1.0
            delta = float(np.max(np.abs(new_damp - damp)))
            if delta <= cfg.irls_tol:
                break
            damp = new_damp
            irls_iterations += 1
            y, x = solve(base_w * damp)
    pos = np.stack([y, x], axis=-1).reshape(disp.rows, disp.cols, 2)
    quality_report = None
    if assessment is not None:
        quality_report = assessment.report()
        quality_report["irls_iterations"] = irls_iterations
        quality_report["residue_damped_edges"] = int((damp < 1.0).sum())
    return GlobalPositions(
        positions=_normalize(pos),
        method="least_squares",
        positions_f=_normalize_f(pos) if subpixel else None,
        degraded=degraded if degraded.any() else None,
        quality_report=quality_report,
    )


def resolve_absolute_positions(
    disp: DisplacementResult,
    method: str = "mst",
    subpixel: bool = False,
    on_disconnected: str = "error",
    nominal_step: tuple[tuple[float, float], tuple[float, float]] | None = None,
    quality: QualityConfig | None = None,
) -> GlobalPositions:
    """Phase 2 entry point; ``method`` is ``"mst"`` or ``"least_squares"``.

    ``subpixel=True`` resolves over the fractional translation estimates
    (where present) and exposes ``GlobalPositions.positions_f`` alongside
    the rounded integer positions composition uses.

    ``on_disconnected`` controls degraded operation when phase 1 dropped
    tiles and split the displacement graph: ``"error"`` (default)
    preserves the strict behaviour and raises ``ValueError``;
    ``"nominal"`` places each stranded component on the nominal grid
    (step from :func:`estimate_nominal_step`, seeded by ``nominal_step``
    metadata when the surviving edges cannot define it) and flags its
    tiles in ``GlobalPositions.degraded``.

    ``quality`` enables the registration quality gate
    (:mod:`repro.core.quality_gate`): pairs failing the confidence /
    peak-sharpness / stage-model gates are demoted to nominal-prior
    edges, solver weights become confidence-derived, and -- for the
    least-squares method -- ``residue_mode`` selects Huber or threshold
    IRLS damping of large residuals.  The gating/IRLS summary lands in
    ``GlobalPositions.quality_report``.  With the default gate and clean
    data, nothing gates and positions are bit-identical to ``quality=
    None``.
    """
    if on_disconnected not in ("error", "nominal"):
        raise ValueError(
            f"unknown on_disconnected {on_disconnected!r} (use 'error' or 'nominal')"
        )
    if not disp.is_complete() and disp.pair_count() == 0 and len(disp.west) * len(disp.west[0]) > 1:
        if on_disconnected != "nominal":
            raise ValueError("no displacements computed")
        if nominal_step is None:
            raise ValueError(
                "no displacements computed and no nominal_step to fall back on"
            )
    assessment = assess_quality(disp, quality) if quality is not None else None
    if method == "mst":
        return _mst_positions(
            disp, subpixel=subpixel,
            on_disconnected=on_disconnected, nominal_step=nominal_step,
            assessment=assessment,
        )
    if method == "least_squares":
        return _least_squares_positions(
            disp, subpixel=subpixel,
            on_disconnected=on_disconnected, nominal_step=nominal_step,
            assessment=assessment,
        )
    raise ValueError(f"unknown method {method!r} (use 'mst' or 'least_squares')")
