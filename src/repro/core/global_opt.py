"""Phase 2: resolve the over-constrained displacement graph (Section III).

The pairwise translations over-constrain absolute positions: any cycle in
the grid graph gives two path-sums for the same tile, and stage noise makes
them disagree.  The paper offers two resolution strategies, both
implemented here:

``mst``
    Select a subset of displacements forming a maximum-correlation spanning
    tree and read positions off tree paths.  Low-confidence edges (blank
    overlaps) are simply never selected when any better path exists.
``least_squares``
    Global adjustment: minimize ``sum_ij w_ij * ||p_j - p_i - d_ij||^2``
    over all edges, with correlation-derived weights, anchored at tile
    (0, 0).  This is the "global optimization approach to adjust them to a
    path invariant state" the paper describes; it uses every measurement
    instead of discarding the off-tree ones.

Both return integer pixel positions normalized so ``min == (0, 0)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.displacement import DisplacementResult


@dataclass
class GlobalPositions:
    """Absolute tile origins ``positions[rows, cols, 2]`` as ``(y, x)``.

    ``mosaic_shape`` is the bounding canvas for a given tile size.
    """

    positions: np.ndarray  # int64 [rows, cols, 2] (y, x), min at (0, 0)
    method: str
    spanning_tree_correlation: float | None = None
    #: Sub-pixel positions (float64, same normalization) when the
    #: displacements carried fractional estimates; ``None`` otherwise.
    positions_f: np.ndarray | None = None

    @property
    def rows(self) -> int:
        return self.positions.shape[0]

    @property
    def cols(self) -> int:
        return self.positions.shape[1]

    def mosaic_shape(self, tile_shape: tuple[int, int]) -> tuple[int, int]:
        h = int(self.positions[..., 0].max()) + tile_shape[0]
        w = int(self.positions[..., 1].max()) + tile_shape[1]
        return h, w


def _edges(disp: DisplacementResult):
    """Yield ``(u, v, translation)`` with u the west/north neighbour of v."""
    for r in range(disp.rows):
        for c in range(disp.cols):
            t = disp.west[r][c]
            if t is not None:
                yield (r, c - 1), (r, c), t
            t = disp.north[r][c]
            if t is not None:
                yield (r - 1, c), (r, c), t


def _normalize(pos: np.ndarray) -> np.ndarray:
    pos = pos - pos.reshape(-1, 2).min(axis=0)
    return np.rint(pos).astype(np.int64)


def _normalize_f(pos: np.ndarray) -> np.ndarray:
    return pos - pos.reshape(-1, 2).min(axis=0)


def _mst_positions(disp: DisplacementResult, subpixel: bool = False) -> GlobalPositions:
    g = nx.Graph()
    for u, v, t in _edges(disp):
        # Maximum-correlation spanning tree == minimum of (1 - corr).
        g.add_edge(u, v, weight=1.0 - t.correlation, translation=t, forward=(u, v))
    for r in range(disp.rows):
        for c in range(disp.cols):
            g.add_node((r, c))
    if disp.rows * disp.cols > 1 and not nx.is_connected(g):
        raise ValueError("displacement graph is disconnected; cannot stitch")
    tree = nx.minimum_spanning_tree(g, weight="weight")
    pos = np.zeros((disp.rows, disp.cols, 2), dtype=np.float64)
    root = (0, 0)
    seen = {root}
    # BFS from the root accumulating signed translations along tree edges.
    stack = [root]
    total_corr = 0.0
    while stack:
        u = stack.pop()
        for v in tree.neighbors(u):
            if v in seen:
                continue
            seen.add(v)
            data = tree.edges[u, v]
            t = data["translation"]
            fu, fv = data["forward"]
            sign = 1.0 if (fu, fv) == (u, v) else -1.0
            dy, dx = (t.fy, t.fx) if subpixel else (float(t.ty), float(t.tx))
            pos[v] = pos[u] + sign * np.array([dy, dx], dtype=np.float64)
            total_corr += t.correlation
            stack.append(v)
    return GlobalPositions(
        positions=_normalize(pos),
        method="mst",
        spanning_tree_correlation=total_corr,
        positions_f=_normalize_f(pos) if subpixel else None,
    )


def _least_squares_positions(
    disp: DisplacementResult, min_weight: float = 1e-3, subpixel: bool = False
) -> GlobalPositions:
    n = disp.rows * disp.cols

    def idx(rc) -> int:
        return rc[0] * disp.cols + rc[1]

    rows_a, cols_a, vals, b_y, b_x, weights = [], [], [], [], [], []
    eq = 0
    for u, v, t in _edges(disp):
        w = max(min_weight, (t.correlation + 1.0) / 2.0)
        rows_a += [eq, eq]
        cols_a += [idx(v), idx(u)]
        vals += [w, -w]
        dy, dx = (t.fy, t.fx) if subpixel else (float(t.ty), float(t.tx))
        b_y.append(w * dy)
        b_x.append(w * dx)
        eq += 1
    # Anchor tile (0,0) at the origin to pin the translation gauge freedom.
    rows_a.append(eq)
    cols_a.append(0)
    vals.append(1.0)
    b_y.append(0.0)
    b_x.append(0.0)
    eq += 1

    a = sp.csr_matrix((vals, (rows_a, cols_a)), shape=(eq, n))
    y = spla.lsqr(a, np.asarray(b_y), atol=1e-12, btol=1e-12)[0]
    x = spla.lsqr(a, np.asarray(b_x), atol=1e-12, btol=1e-12)[0]
    pos = np.stack([y, x], axis=-1).reshape(disp.rows, disp.cols, 2)
    return GlobalPositions(
        positions=_normalize(pos),
        method="least_squares",
        positions_f=_normalize_f(pos) if subpixel else None,
    )


def resolve_absolute_positions(
    disp: DisplacementResult, method: str = "mst", subpixel: bool = False
) -> GlobalPositions:
    """Phase 2 entry point; ``method`` is ``"mst"`` or ``"least_squares"``.

    ``subpixel=True`` resolves over the fractional translation estimates
    (where present) and exposes ``GlobalPositions.positions_f`` alongside
    the rounded integer positions composition uses.
    """
    if not disp.is_complete() and disp.pair_count() == 0 and len(disp.west) * len(disp.west[0]) > 1:
        raise ValueError("no displacements computed")
    if method == "mst":
        return _mst_positions(disp, subpixel=subpixel)
    if method == "least_squares":
        return _least_squares_positions(disp, subpixel=subpixel)
    raise ValueError(f"unknown method {method!r} (use 'mst' or 'least_squares')")
