"""Coarse-to-fine PCIAM: downsampled first pass + windowed refinement.

The full-resolution PCIAM of :mod:`repro.core.pciam` spends nearly all
of its time in the forward FFTs and the NCC/inverse pair -- all of it
proportional to the tile area.  For pure-translation registration the
phase-correlation peak survives block-mean downsampling almost
unchanged (feabas registers at ``coarse_downsample: 0.5`` and only
refines confident matches at full resolution), so a two-pass scheme
does ~1/f^2 of the FFT work:

1. **Coarse pass** -- both tiles are block-mean downsampled by an
   integer ``factor`` (:mod:`repro.core.downsample`) and a standard
   PCIAM front half runs at the coarse shape: forward FFTs, NCC,
   inverse, peak reduction.  Plans are cached per coarse shape in the
   same :class:`~repro.fftlib.plans.PlanCache` as the full-resolution
   ones (the cache is keyed on ``(shape, kind)``, so the two
   resolutions never cross-contaminate).
2. **Windowed refinement** -- each coarse peak's periodic
   interpretations are upscaled by ``factor`` and the full-resolution
   CCF surface is probed only *around* those candidate hills: the O(1)
   summed-area statistics (:func:`~repro.core.tilestats.ccf_at_stats`)
   evaluate each probe without any full-resolution FFT.  A bounded
   steepest-ascent walk (Chebyshev radius ``2 * factor`` by default,
   covering the worst-case upscaling error of rounding + anti-alias
   blur + edge padding) finds the full-resolution integer peak.
3. **Confidence gate** -- the refined correlation and the coarse
   peak-sharpness ratio are judged with the same thresholds the
   quality gate uses (``conf_thresh`` / ``min_peak_ratio``).  A
   confident result is accepted with provenance ``"coarse"``; anything
   else (blank, damaged, or feature-poor overlaps) falls back to the
   unmodified full-resolution :func:`~repro.core.pciam.pciam` with
   provenance ``"fallback"`` -- so dirty data degrades to exactly the
   single-pass behaviour, never to a wrong-but-confident answer.

:func:`resolve_coarse_peaks` packages steps 2-3 on their own so the
GPU implementations -- which run step 1 on the device and only see the
reduced peak list on the host -- share the identical refinement and
fallback logic with the CPU paths.  That sharing is what keeps every
implementation bit-identical to ``simple-cpu`` in coarse mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.core.ccf import ccf_at, subpixel_refine
from repro.core.downsample import downsample, downsampled_shape
from repro.core.ncc import normalized_correlation
from repro.core.peak import peak_candidates, peak_magnitude_ratio, top_peaks
from repro.core.pciam import CcfMode, PciamResult, forward_fft, pciam
from repro.core.tilestats import TileStats, ccf_at_stats, subpixel_refine_stats
from repro.fftlib.plans import (
    PlanCache,
    PlanningMode,
    TransformKind,
    default_cache,
)

#: Provenance stamps carried on results (and journaled with each pair,
#: so a resumed run can prove which path produced every translation).
PROVENANCE_COARSE = "coarse"
PROVENANCE_FALLBACK = "fallback"

#: A runner-up candidate hill is climbed when its centre probe is within
#: this much correlation of the best centre's: the true hill's centre can
#: sit a pixel or two off its peak (coarse quantization) and score below a
#: smooth impostor, but never this far below.
_HILL_MARGIN = 0.2

#: A centre probing at least this high is *decisive*: a genuinely aligned
#: overlap scores >= 0.98 while impostor hills (smooth strips correlating
#: at a wrong offset) top out around 0.9, so the contest can stop without
#: probing the remaining -- typically larger-overlap, costlier --
#: candidates.  A ``conf_thresh`` above this raises the bar with it.
_DECISIVE_CORR = 0.95

#: The most a bounded climb has been observed to raise a hill centre's
#: correlation (the centre sits at most ``radius`` from the summit, and
#: the CCF surface is smooth at that distance).  A best centre further
#: than this below ``conf_thresh`` cannot climb to a confident answer,
#: so the walk is skipped and the pair goes straight to the
#: full-resolution fallback -- the climb's probes would be pure waste.
_CLIMB_HEADROOM = 0.25


@dataclass(frozen=True)
class CoarseConfig:
    """Knobs of the coarse-to-fine pass.

    ``factor``
        Integer downsampling factor of the first pass (2 = the feabas
        ``coarse_downsample: 0.5``); FFT work shrinks by ``factor**2``.
    ``conf_thresh``
        Minimum refined full-resolution correlation to accept the
        coarse-seeded answer.  Deliberately much stricter than the
        quality gate's 0.33: that threshold decides whether a pair is
        usable at all, this one decides whether the *shortcut* is
        trusted over the exhaustive path.  At the true integer
        alignment the refined Pearson correlation is >= 0.98 on every
        clean pair we measured, while a wrong hill (e.g. smooth
        vignette strips correlating at an absurd offset) tops out
        around 0.9 -- so 0.95 accepts every correct refinement and
        sends everything doubtful to the full-resolution fallback,
        which can be slower but never wrong.
    ``min_peak_ratio``
        Minimum coarse first-to-second peak-magnitude ratio; a diffuse
        coarse surface (ratio ~1) is not trusted to have found the
        right hill.  The default 1.0 never rejects on its own.
    ``coarse_peaks``
        How many coarse-surface peaks to reduce and contest.  The
        coarse surface ranks the true peak first for ~90% of pairs but
        can demote it behind fixed-pattern artifacts on feature-poor
        overlaps; contesting the top 8 recovers nearly all of those at
        the cost of a few extra O(overlap) probes (the cheap-first
        probe ordering means extra candidates rarely cost anything),
        and every recovered pair is a full-PCIAM fallback avoided.
    ``search_radius``
        Chebyshev radius of the full-resolution refinement window
        around each upscaled candidate; ``None`` derives ``2 * factor``
        (covers rounding of ±factor/2, ±1 coarse pixel of anti-alias
        blur, and the edge-padding bias of partial blocks).
    ``min_overlap_frac``
        Minimum overlap a refinement probe must cover *in each
        dimension* (as a fraction of that dimension) to be scored at
        all.  A Pearson correlation over a sliver is trivially high --
        a 2-pixel overlap correlates at exactly 1.0, and a 2-row strip
        of a smooth specimen is not much better -- so without a floor
        the confidence gate would bless degenerate near-full-shift
        aliases as "coarse hits".  Probes below the floor score
        ``-inf``; when every candidate is degenerate the pair falls
        back to full PCIAM (a false reject only costs speed, never
        correctness).  The default 5% sits well under any real
        microscope overlap (the paper's scans use ~10%) while rejecting
        the aliases whose strips are a few pixels wide.
    """

    factor: int = 2
    conf_thresh: float = 0.95
    min_peak_ratio: float = 1.0
    coarse_peaks: int = 8
    search_radius: int | None = None
    min_overlap_frac: float = 0.05

    def __post_init__(self) -> None:
        if self.factor < 2:
            raise ValueError(
                f"coarse factor must be >= 2, got {self.factor} "
                "(factor 1 is just the full-resolution path)"
            )
        if self.coarse_peaks < 1:
            raise ValueError(
                f"coarse_peaks must be >= 1, got {self.coarse_peaks}"
            )
        if self.search_radius is not None and self.search_radius < 1:
            raise ValueError(
                f"search_radius must be >= 1, got {self.search_radius}"
            )
        if not 0.0 <= self.min_overlap_frac < 1.0:
            raise ValueError(
                f"min_overlap_frac must be in [0, 1), "
                f"got {self.min_overlap_frac}"
            )

    @property
    def radius(self) -> int:
        """Effective refinement window radius (full-resolution pixels)."""
        if self.search_radius is not None:
            return self.search_radius
        return 2 * self.factor

    @staticmethod
    def from_scale(scale: float, **overrides) -> "CoarseConfig":
        """Build a config from a downsampling *scale* (0.5 -> factor 2).

        The CLI exposes the feabas-style fractional scale; block-mean
        downsampling needs an integer factor, so the nearest integer
        reciprocal is used (0.5 -> 2, 0.25 -> 4, 0.3 -> 3).
        """
        if not 0.0 < scale <= 0.5:
            raise ValueError(
                f"coarse scale must be in (0, 0.5], got {scale}"
            )
        return CoarseConfig(factor=round(1.0 / scale), **overrides)

    def to_fingerprint(self) -> dict:
        """JSON-able identity for journal fingerprint binding."""
        return {
            "factor": self.factor,
            "conf_thresh": self.conf_thresh,
            "min_peak_ratio": self.min_peak_ratio,
            "coarse_peaks": self.coarse_peaks,
            "search_radius": self.radius,
            "min_overlap_frac": self.min_overlap_frac,
        }


def coarse_transform_shape(
    full_fft_shape: tuple[int, int], factor: int
) -> tuple[int, int]:
    """Coarse-pass transform shape for a full-resolution transform shape.

    Matches what :func:`~repro.core.downsample.downsample` produces for
    the tile, so the coarse FFT runs un-padded at the downsampled size
    (and every implementation derives the same device-buffer / slab /
    workspace geometry from it).
    """
    return downsampled_shape(full_fft_shape, factor)


def coarse_forward_fft(
    tile: np.ndarray,
    factor: int,
    fft_shape: tuple[int, int] | None = None,
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
    real: bool = False,
    stats: dict | None = None,
) -> np.ndarray:
    """Coarse-pass spectrum of a tile: block-mean downsample, then FFT.

    ``fft_shape`` is the *full-resolution* transform shape (as passed to
    :func:`~repro.core.pciam.forward_fft`); the coarse transform runs at
    :func:`coarse_transform_shape` of it.  This is the per-tile product
    the implementations compute once and share across the tile's (up to
    four) incident pairs, exactly as they do full-resolution spectra in
    single-pass mode.
    """
    cshape = (
        coarse_transform_shape(tuple(fft_shape), factor)
        if fft_shape is not None
        else None
    )
    return forward_fft(
        downsample(np.asarray(tile), factor), cshape, cache, mode,
        real=real, stats=stats,
    )


def _bump(stats: dict | None, key: str) -> None:
    if stats is not None:
        stats[key] = stats.get(key, 0) + 1


def refine_from_coarse_peaks(
    peaks: list[tuple[float, int, int]],
    coarse_fft_shape: tuple[int, int],
    config: CoarseConfig,
    ccf_mode: CcfMode = CcfMode.PAPER4,
    img_i: np.ndarray | None = None,
    img_j: np.ndarray | None = None,
    stats_i: TileStats | None = None,
    stats_j: TileStats | None = None,
    use_tile_stats: bool = True,
    subpixel: bool = False,
) -> tuple[float, int, int, float, float]:
    """Full-resolution refinement of coarse peaks; returns the best probe.

    Every coarse peak's periodic interpretations (the same candidate set
    full PCIAM contests, but on the *coarse* grid) are upscaled by
    ``config.factor`` into candidate hill centres.  Neighbouring coarse
    peaks usually sit on the same hill, so a centre within Chebyshev
    ``factor`` of one already listed is skipped -- the climb covers the
    difference -- and zero-overlap centres are dropped outright.  The
    survivors are probed smallest overlap first: a probe costs
    O(overlap), and for a grid scan the true alignment *is* a
    small-overlap candidate, so when one probes decisively (above both
    ``config.conf_thresh`` and the impostor ceiling) the contest stops
    before paying for the near-full-overlap aliases at several times
    the price.  The best centre's hill is then walked uphill on the
    full-resolution CCF surface (deterministic steepest ascent:
    orthogonal neighbours first, diagonals only on an orthogonal
    plateau, bounded to Chebyshev ``config.radius`` from the hill's
    centre, probes memoized); absent a decisive centre, a close
    runner-up hill is climbed too, since the true centre may merely sit
    a pixel further downhill than an impostor's.  No full-resolution
    FFT is involved: with tile statistics each probe is O(overlap) for
    the cross term and O(1) for everything else.

    Returns ``(correlation, tx, ty, tx_f, ty_f)`` of the best probe
    (``tx_f``/``ty_f`` carry the parabolic sub-pixel vertex when
    ``subpixel``, the integers otherwise).
    """
    if use_tile_stats:
        if stats_i is None:
            stats_i = TileStats(img_i)
        if stats_j is None:
            stats_j = TileStats(img_j)

        def evaluate(tx: int, ty: int) -> float:
            return ccf_at_stats(stats_i, stats_j, tx, ty)
    else:

        def evaluate(tx: int, ty: int) -> float:
            return ccf_at(img_i, img_j, tx, ty)

    memo: dict[tuple[int, int], float] = {}
    h, w = stats_i.shape if use_tile_stats else img_i.shape
    # Probes overlapping fewer rows or columns than this are never
    # scored: Pearson correlation *inflates monotonically* as a strip of
    # smooth content thins (a 2-pixel overlap correlates at exactly 1.0),
    # so slivers would sail through the confidence gate with garbage
    # translations.  The absolute term keeps the whole climb window out
    # of the sliver regime even when the fractional floor rounds to a
    # couple of pixels on small tiles.
    floor = 2 * config.radius + 1
    min_h = max(floor, math.ceil(config.min_overlap_frac * h))
    min_w = max(floor, math.ceil(config.min_overlap_frac * w))

    def probe(tx: int, ty: int) -> float:
        key = (tx, ty)
        c = memo.get(key)
        if c is None:
            if h - abs(ty) >= min_h and w - abs(tx) >= min_w:
                c = evaluate(tx, ty)
            else:
                c = -np.inf
            memo[key] = c
        return c

    f = config.factor
    radius = config.radius
    extended = ccf_mode is CcfMode.EXTENDED
    cands: list[tuple[int, int, int]] = []
    taken: list[tuple[int, int]] = []
    for _mag, qy, qx in peaks:
        for ctx, cty in peak_candidates(
            qy, qx, coarse_fft_shape, extended=extended
        ):
            cx, cy = ctx * f, cty * f
            if any(
                max(abs(cx - px), abs(cy - py)) <= f for px, py in taken
            ):
                continue
            taken.append((cx, cy))
            if h - abs(cy) < min_h or w - abs(cx) < min_w:
                continue
            area = (h - abs(cy)) * (w - abs(cx))
            cands.append((area, cx, cy))
    # Contest the candidate hills like full PCIAM contests candidate
    # translations -- cheapest probes first, stopping at a decisive one.
    cands.sort()
    decisive = max(config.conf_thresh, _DECISIVE_CORR)
    centers: list[tuple[float, tuple[int, int]]] = []
    for _area, cx, cy in cands:
        c = probe(cx, cy)
        centers.append((c, (cx, cy)))
        if c >= decisive:
            break
    centers.sort(key=lambda e: (-e[0], e[1]))

    def climb(sx: int, sy: int, c0: float) -> tuple[float, int, int]:
        bx, by, bc = sx, sy, c0
        for _ in range(2 * radius):
            step = None
            sc = bc
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = bx + dx, by + dy
                if abs(nx - sx) > radius or abs(ny - sy) > radius:
                    continue
                c = probe(nx, ny)
                if c > sc:
                    sc, step = c, (nx, ny)
            if step is None:
                # Orthogonal plateau: a concave hill peaks here, and a
                # summit already above the decisive bar cannot move by a
                # diagonal pixel of correlation.  Otherwise check the
                # diagonals once before declaring a maximum (ridges at
                # ~45 degrees can hide the true peak there).
                if bc >= decisive:
                    break
                for dx, dy in ((1, 1), (1, -1), (-1, 1), (-1, -1)):
                    nx, ny = bx + dx, by + dy
                    if abs(nx - sx) > radius or abs(ny - sy) > radius:
                        continue
                    c = probe(nx, ny)
                    if c > sc:
                        sc, step = c, (nx, ny)
                if step is None:
                    break
            bx, by = step
            bc = sc
        return bc, bx, by

    best = (-np.inf, 0, 0)
    if centers and centers[0][0] < config.conf_thresh - _CLIMB_HEADROOM:
        # Hopeless: even a perfect climb cannot reach the gate.  Return
        # the raw centre so the gate rejects and the fallback runs.
        c0, (sx, sy) = centers[0]
        best = (c0, sx, sy)
    elif centers:
        c0, (sx, sy) = centers[0]
        best = max(best, climb(sx, sy, c0))
        # A decisive best centre (already above the gate) cannot be beaten
        # by another hill -- wrong hills top out well below the gate -- so
        # the runner-up climb is only paid when the contest was close.
        if len(centers) > 1 and c0 < config.conf_thresh:
            c1, (sx, sy) = centers[1]
            if c1 >= c0 - _HILL_MARGIN:
                best = max(best, climb(sx, sy, c1))
    corr, tx, ty = float(best[0]), int(best[1]), int(best[2])
    tx_f, ty_f = float(tx), float(ty)
    if subpixel:
        if use_tile_stats:
            tx_f, ty_f = subpixel_refine_stats(stats_i, stats_j, tx, ty)
        else:
            tx_f, ty_f = subpixel_refine(img_i, img_j, tx, ty)
    return corr, tx, ty, tx_f, ty_f


def resolve_coarse_peaks(
    peaks: list[tuple[float, int, int]],
    coarse_fft_shape: tuple[int, int],
    config: CoarseConfig,
    ccf_mode: CcfMode = CcfMode.PAPER4,
    img_i: np.ndarray | None = None,
    img_j: np.ndarray | None = None,
    stats_i: TileStats | None = None,
    stats_j: TileStats | None = None,
    use_tile_stats: bool = True,
    subpixel: bool = False,
    fallback=None,
    stats: dict | None = None,
) -> PciamResult:
    """Refine coarse peaks, gate on confidence, fall back when in doubt.

    ``peaks`` are the coarse pass's reduced ``(magnitude, py, px)`` list
    (host- or device-produced -- the GPU implementations call this with
    the output of their ``reduce_max`` kernel).  ``fallback`` is a
    zero-argument callable returning the full-resolution
    :class:`~repro.core.pciam.PciamResult`; it runs only when the gate
    rejects.  ``stats`` (a plain dict) receives the ``coarse_hits`` /
    ``full_fallbacks`` counters.
    """
    peak_ratio = peak_magnitude_ratio([m for m, _, _ in peaks])
    corr, tx, ty, tx_f, ty_f = refine_from_coarse_peaks(
        peaks, coarse_fft_shape, config, ccf_mode,
        img_i=img_i, img_j=img_j, stats_i=stats_i, stats_j=stats_j,
        use_tile_stats=use_tile_stats, subpixel=subpixel,
    )
    # Non-finite probe scores (degenerate overlap variance) fail the gate.
    confident = math.isfinite(corr) and corr >= config.conf_thresh and not (
        peak_ratio is not None and peak_ratio < config.min_peak_ratio
    )
    if confident:
        _bump(stats, "coarse_hits")
        mag, py, px = peaks[0]
        return PciamResult(
            correlation=corr,
            tx=tx,
            ty=ty,
            peak_value=float(mag),
            peak_index=(int(py), int(px)),
            tx_f=tx_f,
            ty_f=ty_f,
            peak_ratio=peak_ratio,
            provenance=PROVENANCE_COARSE,
        )
    _bump(stats, "full_fallbacks")
    if fallback is None:
        raise ValueError(
            "coarse confidence gate rejected the pair but no fallback "
            "was supplied"
        )
    return replace(fallback(), provenance=PROVENANCE_FALLBACK)


def coarse_pciam(
    img_i: np.ndarray,
    img_j: np.ndarray,
    coarse: CoarseConfig,
    cfft_i: np.ndarray | None = None,
    cfft_j: np.ndarray | None = None,
    fft_shape: tuple[int, int] | None = None,
    ccf_mode: CcfMode = CcfMode.PAPER4,
    n_peaks: int = 1,
    real_transforms: bool = False,
    subpixel: bool = False,
    cache: PlanCache | None = None,
    planning: PlanningMode = PlanningMode.ESTIMATE,
    stats_i: TileStats | None = None,
    stats_j: TileStats | None = None,
    workspace=None,
    use_tile_stats: bool = True,
    stats: dict | None = None,
) -> PciamResult:
    """Two-pass drop-in for :func:`~repro.core.pciam.pciam`.

    Same contract and parameters, plus:

    ``coarse``
        The :class:`CoarseConfig` driving the first pass and the gate.
    ``cfft_i`` / ``cfft_j``
        Optional precomputed *coarse* spectra from
        :func:`coarse_forward_fft` with the same ``fft_shape`` /
        ``real_transforms`` -- the per-tile reuse product of coarse
        mode, replacing the full-resolution ``fft_i`` / ``fft_j``.
    ``workspace``
        A pair workspace sized for the **coarse** transform shape (the
        arena in coarse mode is built at
        :func:`coarse_transform_shape`); the fallback path allocates its
        own scratch since the coarse buffers cannot hold a
        full-resolution NCC.
    ``stats``
        Dict receiving ``coarse_hits`` / ``full_fallbacks``.

    The fallback recomputes the full-resolution spectra on demand --
    coarse mode deliberately never computes them up front, which is
    where its speedup lives; the occasional rejected pair pays two extra
    FFTs instead of every pair paying them always.
    """
    if img_i.shape != img_j.shape:
        raise ValueError(
            f"pciam requires same-size tiles, got {img_i.shape} vs {img_j.shape}"
        )
    cache = cache if cache is not None else default_cache()
    full_shape = tuple(fft_shape) if fft_shape is not None else img_i.shape
    cshape = coarse_transform_shape(full_shape, coarse.factor)
    cspectrum = (
        (cshape[0], cshape[1] // 2 + 1) if real_transforms else cshape
    )
    if cfft_i is None:
        cfft_i = coarse_forward_fft(
            img_i, coarse.factor, full_shape, cache, planning,
            real=real_transforms,
        )
    if cfft_j is None:
        cfft_j = coarse_forward_fft(
            img_j, coarse.factor, full_shape, cache, planning,
            real=real_transforms,
        )
    if cfft_i.shape != cspectrum or cfft_j.shape != cspectrum:
        raise ValueError(
            f"supplied coarse transforms have shape {cfft_i.shape}/"
            f"{cfft_j.shape}, expected {cspectrum}"
        )
    if use_tile_stats:
        # Full-resolution statistics back both the refinement probes and
        # the fallback; build them once here when the caller did not.
        if stats_i is None:
            stats_i = TileStats(img_i)
        if stats_j is None:
            stats_j = TileStats(img_j)

    out = workspace.ncc if workspace is not None else None
    mag_out = workspace.ncc_mag if workspace is not None else None
    peak_mag = workspace.peak_mag if workspace is not None else None
    ncc = normalized_correlation(cfft_i, cfft_j, out=out, mag_out=mag_out)
    inverse_kind = (
        TransformKind.C2R if real_transforms else TransformKind.C2C_INVERSE
    )
    plan = cache.plan(cshape, inverse_kind, planning, allow_padding=False)
    inv = plan.execute(ncc, overwrite_input=workspace is not None)
    # Reduce more peaks than the caller asked for: the coarse surface
    # demotes the true peak behind fixed-pattern artifacts on ~10% of
    # pairs, and the full-resolution contest is what sorts them out.
    peaks = top_peaks(inv, max(n_peaks, coarse.coarse_peaks), mag_out=peak_mag)

    def fallback() -> PciamResult:
        return pciam(
            img_i, img_j,
            fft_shape=fft_shape,
            ccf_mode=ccf_mode,
            n_peaks=n_peaks,
            real_transforms=real_transforms,
            subpixel=subpixel,
            cache=cache,
            planning=planning,
            stats_i=stats_i,
            stats_j=stats_j,
            workspace=None,
            use_tile_stats=use_tile_stats,
        )

    return resolve_coarse_peaks(
        peaks, cshape, config=coarse, ccf_mode=ccf_mode,
        img_i=img_i, img_j=img_j, stats_i=stats_i, stats_j=stats_j,
        use_tile_stats=use_tile_stats, subpixel=subpixel,
        fallback=fallback, stats=stats,
    )
