"""PCIAM: phase-correlation image alignment for one adjacent pair (Fig. 2).

``pciam(I_i, I_j)`` returns the translation of ``I_j``'s origin in
``I_i``'s coordinate frame together with the winning cross-correlation
factor.  The steps mirror the paper's pseudo-code exactly:

1. forward FFTs of both tiles (cached transforms may be supplied),
2. normalized correlation coefficient,
3. inverse FFT,
4. max-magnitude reduction to a peak index,
5. CCF contest over the peak's periodic interpretations.

The function accepts precomputed forward transforms because transform reuse
across the four pairs incident to a tile is the core memory/compute
trade-off every implementation in the paper manages.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.ccf import ccf_at, subpixel_refine
from repro.core.ncc import normalized_correlation
from repro.core.peak import peak_candidates, peak_magnitude_ratio, top_peaks
from repro.core.tilestats import TileStats, ccf_at_stats, subpixel_refine_stats
from repro.fftlib.plans import PlanCache, PlanningMode, TransformKind, default_cache
from repro.fftlib.smooth import next_smooth_shape, pad_to_shape


class CcfMode(Enum):
    """Peak-interpretation scheme (see :mod:`repro.core.peak`)."""

    PAPER4 = "paper4"      # the four non-negative combinations of Fig. 2
    EXTENDED = "extended"  # signed aliases (MIST-style), handles ty < 0


@dataclass(frozen=True)
class PciamResult:
    """Outcome of one pairwise alignment.

    ``tx``/``ty`` are the integer translation (the paper's output);
    ``tx_f``/``ty_f`` carry the sub-pixel estimate when requested
    (otherwise they equal the integers).
    """

    correlation: float  # winning CCF in [-1, 1]
    tx: int             # I_j origin x in I_i frame
    ty: int             # I_j origin y in I_i frame
    peak_value: float   # magnitude of the phase-correlation peak
    peak_index: tuple[int, int]  # (py, px) in the transform grid
    tx_f: float = 0.0
    ty_f: float = 0.0
    #: First-to-second peak-magnitude ratio (peak sharpness): a diffuse
    #: correlation surface has a ratio near 1, a decisive one well above
    #: it.  ``None`` when only one peak was reduced (``n_peaks == 1``).
    peak_ratio: float | None = None
    #: How the result was produced.  ``None`` for the single-pass full-
    #: resolution path; the coarse-to-fine path (:mod:`repro.core.coarse`)
    #: stamps ``"coarse"`` (confident first pass + windowed refinement)
    #: or ``"fallback"`` (coarse confidence too low, full PCIAM rerun).
    provenance: str | None = None

    def __iter__(self):
        yield self.correlation
        yield self.tx
        yield self.ty


def _count_saved_copy(stats: dict | None) -> None:
    if stats is not None:
        stats["fft_copies_saved"] = stats.get("fft_copies_saved", 0) + 1


def forward_fft(
    tile: np.ndarray,
    fft_shape: tuple[int, int] | None = None,
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
    real: bool = False,
    stats: dict | None = None,
) -> np.ndarray:
    """Forward transform of a tile, optionally zero-padded to ``fft_shape``.

    This is the "FFT" pipeline stage: each tile's transform is computed
    once and shared by its (up to four) incident pairs.

    ``real=True`` selects the real-to-complex transform (the paper's
    second future-work optimization): tiles are real-valued, so the
    half-spectrum of shape ``(h, w // 2 + 1)`` carries all information at
    roughly half the work and memory.  The resulting spectra plug into the
    same NCC (Hermitian symmetry is preserved by the normalization) and
    invert through ``irfft2``.

    Inputs already in the transform dtype/layout are used without copying;
    other dtypes convert in a single pass (the old path always went through
    float64 first, costing an extra full copy per tile on the complex
    branch).  Each copy avoided increments ``stats["fft_copies_saved"]``.
    """
    cache = cache if cache is not None else default_cache()
    a = np.asarray(tile)
    if real:
        if a.dtype == np.float64 and a.flags.c_contiguous:
            pass  # use as-is (ascontiguousarray would be a no-op anyway)
        else:
            a = np.ascontiguousarray(a, dtype=np.float64)
        if fft_shape is not None and tuple(fft_shape) != a.shape:
            a = pad_to_shape(a, fft_shape)
        plan = cache.plan(a.shape, TransformKind.R2C, mode, allow_padding=False)
        return plan.execute(a)
    if a.dtype == np.complex128 and a.flags.c_contiguous:
        _count_saved_copy(stats)  # previously forced through float64 + astype
    elif a.dtype == np.float64 and a.flags.c_contiguous:
        a = a.astype(np.complex128)
    else:
        # Single direct conversion; the old float64-then-complex route made
        # two full copies for e.g. uint16 camera tiles.
        _count_saved_copy(stats)
        a = a.astype(np.complex128, order="C")
    if fft_shape is not None and tuple(fft_shape) != a.shape:
        a = pad_to_shape(a, fft_shape)
    plan = cache.plan(a.shape, TransformKind.C2C_FORWARD, mode, allow_padding=False)
    return plan.execute(a)


def forward_fft_batch(
    tiles: list[np.ndarray],
    fft_shape: tuple[int, int] | None = None,
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
    real: bool = False,
    stats: dict | None = None,
) -> list[np.ndarray]:
    """Forward transforms of ``k`` same-shape tiles in one backend call.

    Batching amortizes per-transform dispatch overhead (plan lookup,
    argument checking, backend setup) across the stack -- the many-small-
    FFT optimization.  Each output slice is bit-identical to
    ``forward_fft(tile, ...)`` of the matching input: the pooled backend
    runs the identical 2-D transform per slice, so results feed every
    downstream consumer unchanged.

    Increments ``stats["fft_batches"]`` / ``stats["fft_batched_tiles"]``
    so callers can verify the batch path actually engaged.
    """
    if not tiles:
        return []
    cache = cache if cache is not None else default_cache()
    if len(tiles) == 1:
        return [forward_fft(tiles[0], fft_shape, cache, mode, real=real,
                            stats=stats)]
    shape = tuple(fft_shape) if fft_shape is not None else tiles[0].shape
    dtype = np.float64 if real else np.complex128
    stack = np.zeros((len(tiles), *shape), dtype=dtype)
    for i, tile in enumerate(tiles):
        a = np.asarray(tile)
        if a.shape != tiles[0].shape:
            raise ValueError(
                f"batch requires same-shape tiles, got {a.shape} "
                f"vs {tiles[0].shape}"
            )
        stack[i, : a.shape[0], : a.shape[1]] = a
    kind = TransformKind.R2C if real else TransformKind.C2C_FORWARD
    plan = cache.plan(stack.shape, kind, mode, allow_padding=False)
    out = plan.execute(stack, overwrite_input=True)
    if stats is not None:
        stats["fft_batches"] = stats.get("fft_batches", 0) + 1
        stats["fft_batched_tiles"] = (
            stats.get("fft_batched_tiles", 0) + len(tiles)
        )
    # Contiguous per-tile copies: downstream consumers cache these spectra
    # for the tile's lifetime, and holding k views would pin the whole
    # stack (k x spectrum) in memory instead.
    return [np.ascontiguousarray(out[i]) for i in range(len(tiles))]


def smooth_fft_shape(tile_shape: tuple[int, int]) -> tuple[int, int]:
    """The padded transform shape of the paper's future-work optimization."""
    return next_smooth_shape(tile_shape)  # type: ignore[return-value]


def pciam(
    img_i: np.ndarray,
    img_j: np.ndarray,
    fft_i: np.ndarray | None = None,
    fft_j: np.ndarray | None = None,
    fft_shape: tuple[int, int] | None = None,
    ccf_mode: CcfMode = CcfMode.PAPER4,
    n_peaks: int = 1,
    real_transforms: bool = False,
    subpixel: bool = False,
    cache: PlanCache | None = None,
    planning: PlanningMode = PlanningMode.ESTIMATE,
    stats_i: TileStats | None = None,
    stats_j: TileStats | None = None,
    workspace=None,
    use_tile_stats: bool = True,
) -> PciamResult:
    """Relative displacement of ``img_j`` with respect to ``img_i``.

    Parameters
    ----------
    img_i, img_j:
        Same-shape grayscale tiles (any real dtype).  ``img_j`` is the
        east/south member of the pair under the package-wide convention.
    fft_i, fft_j:
        Optional precomputed forward transforms (from :func:`forward_fft`
        with the same ``fft_shape``); whichever is missing is computed here.
    fft_shape:
        Transform size; ``None`` means the native tile shape.  Pass
        :func:`smooth_fft_shape` of the tile shape to enable the padding
        optimization.
    ccf_mode:
        Peak-interpretation scheme; ``PAPER4`` reproduces Fig. 2 verbatim.
    n_peaks:
        Number of correlation peaks whose interpretations enter the CCF
        contest.  ``1`` is the paper's scheme; the Fiji plugin tests
        several, which is more robust on feature-poor overlaps.
    real_transforms:
        Use real-to-complex transforms (half-spectrum NCC, cached ``C2R``
        inverse plan) -- the paper's future-work optimization.  Results are
        identical to the complex path; work and footprint roughly halve.
        Precomputed ``fft_i``/``fft_j`` must then be half-spectra from
        ``forward_fft(..., real=True)``.
    stats_i, stats_j:
        Optional precomputed :class:`~repro.core.tilestats.TileStats`
        (computed here when omitted and ``use_tile_stats`` is on).  Like
        the forward transforms, tile statistics are a per-tile product
        shared by up to four incident pairs.
    workspace:
        Optional :class:`~repro.memmodel.workspace.PairWorkspace` whose
        scratch buffers receive the NCC, its magnitude, and the peak
        magnitudes -- turning the per-pair allocation churn into reuse.
        The workspace's ``ncc`` buffer is clobbered by the inverse
        transform (``overwrite_input``) and must not be read afterwards.
    use_tile_stats:
        ``False`` falls back to the direct five-pass CCF of
        :mod:`repro.core.ccf` (useful for benchmarking the O(1)-statistics
        path against its baseline; results are identical).

    Returns the winning ``(correlation, tx, ty)`` plus peak diagnostics.
    """
    if img_i.shape != img_j.shape:
        raise ValueError(
            f"pciam requires same-size tiles, got {img_i.shape} vs {img_j.shape}"
        )
    cache = cache if cache is not None else default_cache()
    shape = tuple(fft_shape) if fft_shape is not None else img_i.shape
    spectrum_shape = (shape[0], shape[1] // 2 + 1) if real_transforms else shape
    if fft_i is None:
        fft_i = forward_fft(img_i, shape, cache, planning, real=real_transforms)
    if fft_j is None:
        fft_j = forward_fft(img_j, shape, cache, planning, real=real_transforms)
    if fft_i.shape != spectrum_shape or fft_j.shape != spectrum_shape:
        raise ValueError(
            f"supplied transforms have shape {fft_i.shape}/{fft_j.shape}, "
            f"expected {spectrum_shape}"
        )

    out = workspace.ncc if workspace is not None else None
    mag_out = workspace.ncc_mag if workspace is not None else None
    peak_mag = workspace.peak_mag if workspace is not None else None
    ncc = normalized_correlation(fft_i, fft_j, out=out, mag_out=mag_out)
    # The workspace-held NCC is scratch the caller refills every pair, so
    # the inverse transform may consume it in place.
    overwrite = workspace is not None
    inverse_kind = (
        TransformKind.C2R if real_transforms else TransformKind.C2C_INVERSE
    )
    plan = cache.plan(shape, inverse_kind, planning, allow_padding=False)
    inv = plan.execute(ncc, overwrite_input=overwrite)
    peaks = top_peaks(inv, n_peaks, mag_out=peak_mag)
    peak_val, py, px = peaks[0]
    peak_ratio = peak_magnitude_ratio([m for m, _, _ in peaks])

    if use_tile_stats:
        if stats_i is None:
            stats_i = TileStats(img_i)
        if stats_j is None:
            stats_j = TileStats(img_j)

    extended = ccf_mode is CcfMode.EXTENDED
    seen: set[tuple[int, int]] = set()
    best = (-np.inf, 0, 0)
    for _mag, qy, qx in peaks:
        for tx, ty in peak_candidates(qy, qx, shape, extended=extended):
            if (tx, ty) in seen:
                continue
            seen.add((tx, ty))
            if use_tile_stats:
                c = ccf_at_stats(stats_i, stats_j, tx, ty)
            else:
                c = ccf_at(img_i, img_j, tx, ty)
            if c > best[0]:
                best = (c, tx, ty)
    corr, tx, ty = best
    tx_f, ty_f = float(tx), float(ty)
    if subpixel:
        # Parabolic vertex of the CCF surface around the integer winner --
        # recovers fractional stage positions (a successor-tool feature;
        # the paper's pipeline reports integers).
        if use_tile_stats:
            tx_f, ty_f = subpixel_refine_stats(stats_i, stats_j, int(tx), int(ty))
        else:
            tx_f, ty_f = subpixel_refine(img_i, img_j, int(tx), int(ty))
    return PciamResult(
        correlation=float(corr),
        tx=int(tx),
        ty=int(ty),
        peak_value=peak_val,
        peak_index=(py, px),
        tx_f=tx_f,
        ty_f=ty_f,
        peak_ratio=peak_ratio,
    )
