"""The paper's core contribution: Fourier-based image stitching.

Three phases (Section III):

1. **Relative displacements** -- for every adjacent tile pair, the
   phase-correlation image alignment method (PCIAM) of Kuglin & Hines with
   Lewis' normalized-cross-correlation disambiguation: FFT both tiles, form
   the normalized correlation coefficient, inverse-FFT, reduce to the peak,
   then test the peak's periodic interpretations with cross-correlation
   factors (CCFs) over the implied overlap regions (Figs. 1-4).
2. **Over-constraint resolution** -- the pairwise translations form an
   over-constrained graph; absolute positions come from a
   maximum-correlation spanning tree (subset selection) optionally refined
   by a weighted least-squares global adjustment.
3. **Composition** -- render the mosaic from absolute positions.

:class:`repro.core.stitcher.Stitcher` is the high-level facade gluing the
phases together.
"""

from repro.core.ccf import ccf, overlap_views
from repro.core.displacement import (
    DisplacementResult,
    Translation,
    compute_grid_displacements,
)
from repro.core.global_opt import GlobalPositions, resolve_absolute_positions
from repro.core.compose import BlendMode, compose, compose_to_tiff
from repro.core.ncc import normalized_correlation
from repro.core.pciam import CcfMode, pciam
from repro.core.peak import peak_candidates, peak_location, top_peaks
from repro.core.pyramid import MosaicPyramid, downsample
from repro.core.refine import RefineConfig, RefineReport, refine_displacements
from repro.core.stitcher import Stitcher, StitchResult

__all__ = [
    "ccf",
    "overlap_views",
    "normalized_correlation",
    "pciam",
    "CcfMode",
    "peak_location",
    "peak_candidates",
    "Translation",
    "DisplacementResult",
    "compute_grid_displacements",
    "GlobalPositions",
    "resolve_absolute_positions",
    "BlendMode",
    "compose",
    "compose_to_tiff",
    "MosaicPyramid",
    "downsample",
    "top_peaks",
    "RefineConfig",
    "RefineReport",
    "refine_displacements",
    "Stitcher",
    "StitchResult",
]
