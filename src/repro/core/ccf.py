"""Cross-correlation factor over an overlap region (the paper's Fig. 3).

``ccf(I1, I2)`` is the normalized dot product of the mean-centred overlap
pixels -- Pearson correlation of the two views.  It disambiguates the
periodic interpretations of the phase-correlation peak: the true
translation's overlap really matches, the aliases' overlaps do not.
"""

from __future__ import annotations

import numpy as np


def ccf(i1: np.ndarray, i2: np.ndarray) -> float:
    """Pearson correlation of two same-shaped overlap views in ``[-1, 1]``.

    Degenerate overlaps (empty, or constant-intensity in either view --
    common in feature-poor microscopy regions) return ``-1.0`` so they can
    never win the interpretation contest against a real match.
    """
    if i1.shape != i2.shape:
        raise ValueError(f"overlap views differ in shape: {i1.shape} vs {i2.shape}")
    if i1.size == 0:
        return -1.0
    a = i1.ravel().astype(np.float64, copy=False)
    b = i2.ravel().astype(np.float64, copy=False)
    a = a - a.mean()
    b = b - b.mean()
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return -1.0
    # Clamp: float rounding can push |r| epsilon past 1.
    return float(np.clip(np.dot(a, b) / (na * nb), -1.0, 1.0))


def overlap_views(
    i1: np.ndarray, i2: np.ndarray, tx: int, ty: int
) -> tuple[np.ndarray, np.ndarray]:
    """Views of the overlap implied by placing ``i2``'s origin at ``(tx, ty)``.

    ``(tx, ty)`` is in ``i1``'s frame, each component in ``(-W, W)`` /
    ``(-H, H)``.  Returns a pair of equal-shaped *views* (no copies -- the
    paper's CCF stage runs four of these per pair and copying 2x4 overlap
    regions per pair would dominate the stage).  Out-of-range translations
    yield empty views.
    """
    h1, w1 = i1.shape
    h2, w2 = i2.shape
    # Overlap rectangle in i1 coordinates.
    y0, y1 = max(ty, 0), min(h1, h2 + ty)
    x0, x1 = max(tx, 0), min(w1, w2 + tx)
    if y1 <= y0 or x1 <= x0:
        empty = i1[0:0, 0:0]
        return empty, empty
    v1 = i1[y0:y1, x0:x1]
    v2 = i2[y0 - ty : y1 - ty, x0 - tx : x1 - tx]
    return v1, v2


def ccf_at(i1: np.ndarray, i2: np.ndarray, tx: int, ty: int) -> float:
    """CCF of the overlap at translation ``(tx, ty)`` (``-1.0`` if empty)."""
    v1, v2 = overlap_views(i1, i2, tx, ty)
    return ccf(v1, v2)


def _parabolic_vertex(y_minus: float, y_0: float, y_plus: float) -> float:
    """Sub-sample offset of the vertex of a parabola through 3 samples.

    Returns a value in ``[-0.5, 0.5]``; degenerate (non-concave or flat)
    neighbourhoods return 0.0 so the integer estimate survives untouched.
    """
    denom = y_minus - 2.0 * y_0 + y_plus
    if denom >= -1e-12:  # not strictly concave at the peak
        return 0.0
    off = 0.5 * (y_minus - y_plus) / denom
    return float(np.clip(off, -0.5, 0.5))


def subpixel_refine(
    i1: np.ndarray, i2: np.ndarray, tx: int, ty: int
) -> tuple[float, float]:
    """Sub-pixel translation estimate around an integer CCF winner.

    Fits independent parabolas through the CCF values at ``tx - 1, tx,
    tx + 1`` (and likewise in y) and returns the vertex ``(tx_f, ty_f)``.
    The CCF surface is smooth near the true offset, so the parabolic
    vertex recovers fractional stage positions to ~0.1 px; at image
    borders (no neighbour sample) the integer estimate is returned.
    """
    h, w = i1.shape
    c0 = ccf_at(i1, i2, tx, ty)
    tx_f, ty_f = float(tx), float(ty)
    if abs(tx - 1) < w and abs(tx + 1) < w:
        cxm = ccf_at(i1, i2, tx - 1, ty)
        cxp = ccf_at(i1, i2, tx + 1, ty)
        tx_f += _parabolic_vertex(cxm, c0, cxp)
    if abs(ty - 1) < h and abs(ty + 1) < h:
        cym = ccf_at(i1, i2, tx, ty - 1)
        cyp = ccf_at(i1, i2, tx, ty + 1)
        ty_f += _parabolic_vertex(cym, c0, cyp)
    return tx_f, ty_f
