"""Registration quality gate: per-pair confidence scoring and demotion.

The paper's phase 2 trusts every PCIAM correlation equally, so a handful
of garbage pairs -- sparse overlap, dust, saturation, blank tiles -- can
distort the entire solved grid.  This module scores every pairwise
displacement on three independent signals and decides, *before* the
global solve, which pairs are trustworthy:

- **correlation**: the winning CCF value phase 1 already attaches to
  every translation (feabas rejects below ``conf_thresh: 0.33``);
- **peak sharpness**: the ratio of the strongest phase-correlation peak
  to the runner-up (a diffuse correlation surface means the peak is
  noise, however good its CCF happens to be);
- **stage-model deviation**: distance of the translation from the
  per-direction median of the trusted translations (the stage's
  repeatable step) -- catches confidently-wrong matches such as a
  content shift, which correlate well at the *wrong* offset.

A pair failing any gate is *demoted*, not dropped: the solvers in
:mod:`repro.core.global_opt` replace its measurement with the stage
model's nominal prediction at a token weight, so the graph stays
connected but the bad measurement stops pulling on its neighbours.
Ungated pairs keep their exact correlation as the confidence score, so
a clean grid solves bit-identically to the ungated code path.

The damped side of the same coin -- Huber/threshold IRLS re-weighting of
large residuals during the least-squares solve -- is configured here
(``residue_mode``, after feabas's ``residue_mode: huber`` +
``residue_len``) and executed by
:func:`repro.core.global_opt._least_squares_positions`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.displacement import DisplacementResult, Translation
from repro.grid.neighbors import Direction

#: Confidence assigned to a non-finite correlation (NaN/inf CCF values
#: come out of degenerate overlaps); the floor keeps every derived
#: weight finite.
CORRELATION_FLOOR = -1.0

#: Valid IRLS residue-damping modes (see ``QualityConfig.residue_mode``).
RESIDUE_MODES = ("none", "huber", "threshold")


def finite_correlation(corr: float) -> float:
    """``corr`` as a float, with non-finite values clamped to the floor."""
    c = float(corr)
    return c if math.isfinite(c) else CORRELATION_FLOOR


@dataclass(frozen=True)
class QualityConfig:
    """Gating and robust-solve parameters (defaults follow feabas).

    ``conf_thresh``
        Pairs whose CCF correlation falls below this are demoted
        (feabas: ``conf_thresh: 0.33``).
    ``min_peak_ratio``
        Minimum first-to-second phase-correlation peak-magnitude ratio.
        The ratio is always >= 1 when defined, so the default ``1.0``
        never gates; raise to ~1.05-1.2 to reject diffuse surfaces.
        Pairs without a recorded ratio (``n_peaks == 1`` runs, resumed
        journals from older versions, refined pairs) pass this gate.
    ``stage_radius``
        Stage repeatability radius in pixels: translations deviating
        from the per-direction median by more than this are demoted.
        ``None`` derives it from the trusted translations themselves
        (``max(8, 5 x MAD)`` -- deliberately wider than the refine
        pass's repair radius so clean stage jitter never gates).
    ``min_valid_for_model``
        Minimum trusted pairs per direction before a stage model is fit
        (below it, the deviation gate is off for that direction).
    ``residue_mode``
        IRLS damping of large post-solve residuals in the
        least-squares solver: ``"none"`` (single solve, the legacy
        behaviour), ``"huber"`` (weights scale as ``residue_len / |r|``
        beyond ``residue_len``), or ``"threshold"`` (edges with
        ``|r| > residue_len`` collapse to a token weight).
    ``residue_len``
        The Huber delta / threshold cutoff in pixels (feabas:
        ``residue_len: 2``).
    ``max_irls_iterations`` / ``irls_tol``
        IRLS loop bounds: stop after this many re-solves or when the
        largest per-edge damping change falls below the tolerance.
    ``gate_weight``
        Least-squares weight of a demoted (nominal-prior) edge --
        strong enough to keep the graph numerically connected, weak
        enough that measured edges dominate.
    """

    conf_thresh: float = 0.33
    min_peak_ratio: float = 1.0
    stage_radius: float | None = None
    min_valid_for_model: int = 3
    residue_mode: str = "none"
    residue_len: float = 2.0
    max_irls_iterations: int = 50
    irls_tol: float = 1e-6
    gate_weight: float = 1e-3

    def __post_init__(self) -> None:
        if self.residue_mode not in RESIDUE_MODES:
            raise ValueError(
                f"unknown residue_mode {self.residue_mode!r} "
                f"(use one of {', '.join(RESIDUE_MODES)})"
            )
        if not -1.0 <= self.conf_thresh <= 1.0:
            raise ValueError(
                f"conf_thresh must be in [-1, 1], got {self.conf_thresh}"
            )
        if self.min_peak_ratio < 0:
            raise ValueError(
                f"min_peak_ratio must be >= 0, got {self.min_peak_ratio}"
            )
        if self.residue_len <= 0:
            raise ValueError(
                f"residue_len must be > 0, got {self.residue_len}"
            )
        if self.max_irls_iterations < 1:
            raise ValueError(
                f"max_irls_iterations must be >= 1, "
                f"got {self.max_irls_iterations}"
            )
        if self.gate_weight <= 0:
            raise ValueError(
                f"gate_weight must be > 0, got {self.gate_weight}"
            )


@dataclass(frozen=True)
class StageModelFit:
    """Per-direction repeatable stage step fit from trusted pairs."""

    median_ty: float
    median_tx: float
    radius: float
    samples: int

    def deviation(self, t: Translation) -> float:
        """Chebyshev distance of a translation from the model."""
        return max(abs(t.fy - self.median_ty), abs(t.fx - self.median_tx))

    def to_dict(self) -> dict:
        return {
            "median_ty": self.median_ty,
            "median_tx": self.median_tx,
            "radius": self.radius,
            "samples": self.samples,
        }


@dataclass(frozen=True)
class PairQuality:
    """Quality verdict for one pairwise displacement.

    ``confidence`` equals the (finite-clamped) correlation -- the
    solvers derive their weights from it, so an ungated pair is weighted
    exactly as the legacy code weighted its raw correlation.
    ``reasons`` is empty for a trusted pair; a non-empty tuple names
    every gate the pair failed (``low_correlation``, ``low_peak_ratio``,
    ``stage_outlier``, ``non_finite``).  ``gated`` is True when the pair
    is demoted to a nominal-prior edge (reasons present *and* a nominal
    replacement exists).
    """

    direction: str
    row: int
    col: int
    confidence: float
    peak_ratio: float | None
    stage_deviation: float | None
    gated: bool
    reasons: tuple[str, ...] = ()


@dataclass
class QualityAssessment:
    """Every pair's quality verdict plus the per-direction stage models."""

    config: QualityConfig
    pairs: dict = field(default_factory=dict)  # (dir, r, c) -> PairQuality
    stage_model: dict = field(default_factory=dict)  # dir -> StageModelFit
    #: Per-direction nominal (dy, dx) used for demoted edges; present
    #: even when the stage model could not be fit (falls back to the
    #: median over all pairs in the direction).
    nominal: dict = field(default_factory=dict)

    def quality(self, direction, row: int, col: int) -> PairQuality | None:
        key = (getattr(direction, "value", direction), int(row), int(col))
        return self.pairs.get(key)

    def nominal_translation(self, direction) -> tuple[float, float] | None:
        """Nominal ``(dy, dx)`` for a direction, or ``None``."""
        return self.nominal.get(getattr(direction, "value", direction))

    @property
    def gated_pairs(self) -> int:
        return sum(1 for q in self.pairs.values() if q.gated)

    def gate_reasons(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for q in self.pairs.values():
            for reason in q.reasons:
                out[reason] = out.get(reason, 0) + 1
        return out

    def report(self) -> dict:
        """JSON-able summary for ``StitchResult.stats["quality_report"]``."""
        confidences = [q.confidence for q in self.pairs.values()]
        return {
            "conf_thresh": self.config.conf_thresh,
            "min_peak_ratio": self.config.min_peak_ratio,
            "residue_mode": self.config.residue_mode,
            "residue_len": self.config.residue_len,
            "pair_count": len(self.pairs),
            "gated_pairs": self.gated_pairs,
            "gate_reasons": self.gate_reasons(),
            "min_confidence": min(confidences) if confidences else 0.0,
            "median_confidence": (
                float(np.median(confidences)) if confidences else 0.0
            ),
            "stage_model": {
                d: m.to_dict() for d, m in self.stage_model.items()
            },
            "irls_iterations": 0,
            "residue_damped_edges": 0,
        }


def _fit_stage_model(
    entries: list[tuple[int, int, Translation]], cfg: QualityConfig
) -> StageModelFit | None:
    """Median step + repeatability radius from the trusted translations."""
    good = [
        t for _, _, t in entries
        if finite_correlation(t.correlation) >= cfg.conf_thresh
    ]
    if len(good) < cfg.min_valid_for_model:
        return None
    tys = np.array([t.fy for t in good], dtype=np.float64)
    txs = np.array([t.fx for t in good], dtype=np.float64)
    med_ty, med_tx = float(np.median(tys)), float(np.median(txs))
    if cfg.stage_radius is not None:
        radius = float(cfg.stage_radius)
    else:
        mad = max(
            float(np.median(np.abs(tys - med_ty))),
            float(np.median(np.abs(txs - med_tx))),
        )
        radius = max(8.0, 5.0 * mad)
    return StageModelFit(
        median_ty=med_ty, median_tx=med_tx, radius=radius, samples=len(good)
    )


def _collect(disp: DisplacementResult, direction: Direction):
    arr = disp.west if direction is Direction.WEST else disp.north
    out = []
    for r in range(disp.rows):
        for c in range(disp.cols):
            t = arr[r][c]
            if t is not None:
                out.append((r, c, t))
    return out


def assess_quality(
    disp: DisplacementResult, cfg: QualityConfig | None = None
) -> QualityAssessment:
    """Score every pair of a phase-1 result against the quality gates.

    Pure function of the displacement result: no tile pixels are read,
    so the assessment is cheap enough to run on every stitch.
    """
    cfg = cfg or QualityConfig()
    assessment = QualityAssessment(config=cfg)
    for direction in (Direction.WEST, Direction.NORTH):
        entries = _collect(disp, direction)
        if not entries:
            continue
        model = _fit_stage_model(entries, cfg)
        if model is not None:
            assessment.stage_model[direction.value] = model
            assessment.nominal[direction.value] = (
                model.median_ty, model.median_tx
            )
        else:
            # No trustworthy model: fall back to the median over *all*
            # pairs so non-finite pairs still have a demotion target.
            tys = [t.fy for _, _, t in entries if math.isfinite(t.fy)]
            txs = [t.fx for _, _, t in entries if math.isfinite(t.fx)]
            if tys and txs:
                assessment.nominal[direction.value] = (
                    float(np.median(tys)), float(np.median(txs))
                )
        nominal = assessment.nominal.get(direction.value)
        for r, c, t in entries:
            raw = float(t.correlation)
            confidence = finite_correlation(raw)
            reasons: list[str] = []
            if not math.isfinite(raw):
                reasons.append("non_finite")
            if confidence < cfg.conf_thresh:
                reasons.append("low_correlation")
            ratio = getattr(t, "peak_ratio", None)
            if ratio is not None:
                ratio = float(ratio)
                if math.isfinite(ratio) and ratio < cfg.min_peak_ratio:
                    reasons.append("low_peak_ratio")
            deviation = None
            if model is not None:
                deviation = model.deviation(t)
                if not math.isfinite(deviation):
                    deviation = float("inf")
                if deviation > model.radius:
                    reasons.append("stage_outlier")
            assessment.pairs[(direction.value, r, c)] = PairQuality(
                direction=direction.value,
                row=r,
                col=c,
                confidence=confidence,
                peak_ratio=ratio,
                stage_deviation=deviation,
                # Demotion needs a replacement value; without one (a
                # direction where every translation is non-finite) the
                # pair keeps its measurement -- the weight floors in
                # global_opt still keep the solve finite.
                gated=bool(reasons) and nominal is not None,
                reasons=tuple(reasons),
            )
    return assessment
