"""Translation filtering and repair (the successor-tool refinement).

The paper's phase 1 accepts whatever translation wins the CCF contest.  On
feature-poor pairs that translation can be garbage with low correlation;
phase 2's MST routes around *isolated* bad edges but cannot fix regions
where several adjacent overlaps are blank.  The NIST successor tool (MIST)
added the stage-model refinement implemented here:

1. **Filter**: per direction (west/north), collect translations whose
   correlation clears a threshold; take their component-wise median as the
   stage's repeatable displacement and flag every translation that is
   low-confidence or deviates from the median by more than the stage's
   repeatability radius.
2. **Repair**: re-estimate each flagged pair by hill-climbing the CCF
   surface from the median translation (the overlap is locally smooth in
   the CCF metric, so greedy 4-neighbour ascent converges in a few steps).

The refined result keeps exact translations exact (a valid translation is
never touched) and replaces invalid ones with the constrained estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ccf import ccf_at
from repro.core.displacement import DisplacementResult, Translation
from repro.grid.neighbors import Direction


@dataclass(frozen=True)
class RefineConfig:
    """Filtering/repair parameters.

    ``correlation_threshold`` separates trusted from suspect translations.
    ``repeatability`` is the stage's positioning repeatability in pixels
    (deviations from the median beyond it are outliers); ``None`` derives
    it from the trusted translations themselves (3x the median absolute
    deviation, floored at 4 px).  ``max_hill_climb_steps`` bounds the
    greedy ascent.
    """

    correlation_threshold: float = 0.5
    repeatability: float | None = None
    max_hill_climb_steps: int = 64
    min_valid_for_model: int = 2


@dataclass
class RefineReport:
    """What the refinement changed."""

    valid: int = 0
    repaired: int = 0
    unrepairable: int = 0
    medians: dict = None

    def __post_init__(self) -> None:
        if self.medians is None:
            self.medians = {}


def _collect(disp: DisplacementResult, direction: Direction):
    arr = disp.west if direction is Direction.WEST else disp.north
    out = []
    for r in range(disp.rows):
        for c in range(disp.cols):
            t = arr[r][c]
            if t is not None:
                out.append((r, c, t))
    return out


def _stage_model(entries, cfg: RefineConfig):
    """(median_tx, median_ty, radius) from trusted translations, or None."""
    good = [t for _, _, t in entries if t.correlation >= cfg.correlation_threshold]
    if len(good) < cfg.min_valid_for_model:
        return None
    txs = np.array([t.tx for t in good], dtype=np.float64)
    tys = np.array([t.ty for t in good], dtype=np.float64)
    med_tx, med_ty = float(np.median(txs)), float(np.median(tys))
    if cfg.repeatability is not None:
        radius = cfg.repeatability
    else:
        mad = max(
            float(np.median(np.abs(txs - med_tx))),
            float(np.median(np.abs(tys - med_ty))),
        )
        radius = max(4.0, 3.0 * mad)
    return med_tx, med_ty, radius


def hill_climb(
    img_i: np.ndarray,
    img_j: np.ndarray,
    tx0: int,
    ty0: int,
    max_steps: int = 64,
) -> Translation:
    """Greedy 4-neighbour ascent of the CCF surface from ``(tx0, ty0)``.

    Returns the local maximum reached (translation + its CCF).  This is
    the MIST repair search: cheap (each step costs one overlap CCF) and
    sufficient because the CCF surface is smooth near the true offset.
    """
    h, w = img_i.shape
    tx = int(np.clip(tx0, -(w - 1), w - 1))
    ty = int(np.clip(ty0, -(h - 1), h - 1))
    best = ccf_at(img_i, img_j, tx, ty)
    cache: dict[tuple[int, int], float] = {(tx, ty): best}
    for _ in range(max_steps):
        moved = False
        for dtx, dty in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            cand = (tx + dtx, ty + dty)
            if abs(cand[0]) >= w or abs(cand[1]) >= h:
                continue
            if cand not in cache:
                cache[cand] = ccf_at(img_i, img_j, cand[0], cand[1])
            if cache[cand] > best:
                best = cache[cand]
                tx, ty = cand
                moved = True
        if not moved:
            break
    return Translation(correlation=best, tx=tx, ty=ty)


def refine_displacements(
    disp: DisplacementResult,
    load_tile,
    cfg: RefineConfig | None = None,
) -> tuple[DisplacementResult, RefineReport]:
    """Filter and repair a phase-1 result; returns ``(refined, report)``.

    ``load_tile(row, col)`` must return the same pixels phase 1 saw.  The
    input is not modified.  Tiles are reloaded only for flagged pairs, so
    a clean grid costs nothing beyond the statistics pass.
    """
    cfg = cfg or RefineConfig()
    out = DisplacementResult.empty(disp.rows, disp.cols)
    out.stats = dict(disp.stats)
    report = RefineReport()

    for direction in (Direction.WEST, Direction.NORTH):
        entries = _collect(disp, direction)
        model = _stage_model(entries, cfg)
        if model is not None:
            report.medians[direction.value] = model
        for r, c, t in entries:
            suspicious = t.correlation < cfg.correlation_threshold
            if model is not None:
                med_tx, med_ty, radius = model
                off = max(abs(t.tx - med_tx), abs(t.ty - med_ty))
                suspicious = suspicious or off > radius
            if not suspicious or model is None:
                out.set(direction, r, c, t)
                report.valid += 1
                if suspicious:
                    report.unrepairable += 1
                continue
            # Repair: constrained search from the stage model's prediction.
            if direction is Direction.WEST:
                img_i = load_tile(r, c - 1)
            else:
                img_i = load_tile(r - 1, c)
            img_j = load_tile(r, c)
            med_tx, med_ty, _radius = model
            repaired = hill_climb(
                np.asarray(img_i, dtype=np.float64),
                np.asarray(img_j, dtype=np.float64),
                int(round(med_tx)),
                int(round(med_ty)),
                cfg.max_hill_climb_steps,
            )
            out.set(direction, r, c, repaired)
            report.repaired += 1
    return out, report
