"""Out-of-core phase 3: bounded-memory streaming composition.

The in-memory :func:`repro.core.compose.compose` caps mosaic size at RAM
(the ROADMAP's first open item): a 42x59-tile grid at the paper's tile
size is a ~17 GB float64 canvas.  This module renders the same mosaic
under a *hard memory budget*: the canvas never exists -- the mosaic is
produced as bounded horizontal stripes, each blended in a reusable band
buffer, quantized, and appended to an incremental striped TIFF/BigTIFF
writer (:class:`repro.io.tiff.TiffStripWriter`).  Peak resident bytes are

    stripe band (float64) + weight band (AVERAGE/LINEAR) +
    quantized output band + LRU tile cache

and the stripe height is *derived from the budget* so that sum stays
under it.  The LRU tile cache (:class:`repro.io.dataset.TileCache`,
modeled on feabas's ``loader_config.cache_size``) absorbs the re-decodes
of tiles that straddle stripe boundaries, keeping each source tile
decoded O(1) amortized times.

Bit-identity with the in-memory path holds for **all four blend modes**,
including LINEAR feathering: every tile covering a pixel vertically
intersects that pixel's stripe, so the per-stripe weighted accumulation
and normalization are exactly the row-restriction of the global
computation -- same contributors, same painter's order, same float64
sums.  (The previous streaming writer rejected LINEAR out of caution;
the restriction argument above is the same one that already justifies
``_render_stripe``.)

After the full-resolution pass, multi-resolution pyramid levels are
emitted by streaming each level from the level above (block-mean 2x
:func:`repro.core.downsample.downsample`, windowed reads through
:class:`repro.io.tiff.TiffReader`) -- the full canvas is never
materialized at any level.  All output files stream into same-directory
``<name>.part`` files and are published together with ``os.replace``
only after the last byte: a failure at any point leaves nothing behind.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.compose import BlendMode, _linear_weight
from repro.core.downsample import downsample, downsampled_shape
from repro.core.global_opt import GlobalPositions
from repro.io.dataset import TileCache
from repro.io.tiff import TiffReader, TiffStripWriter
from repro.observe.tracer import NULL_TRACER

#: Default split of the memory budget between the tile cache and the
#: stripe buffers.  Half-and-half keeps roughly one tile row resident
#: (the set that straddles stripe boundaries) while leaving stripes tall
#: enough that most tiles are visited once.
CACHE_FRACTION = 0.5


def pyramid_level_path(path: str | Path, level: int) -> Path:
    """On-disk name of pyramid level ``level`` for mosaic ``path``.

    Level 0 is ``path`` itself; level k >= 1 is ``<stem>.L<k><suffix>``
    next to it (e.g. ``mosaic.tif`` -> ``mosaic.L2.tif``).
    """
    path = Path(path)
    if level < 0:
        raise ValueError(f"bad pyramid level {level}")
    if level == 0:
        return path
    return path.with_name(f"{path.stem}.L{level}{path.suffix}")


def plan_stripe_rows(
    memory_budget: int,
    width: int,
    height: int,
    blend: BlendMode,
    out_dtype: np.dtype,
    cache_fraction: float = CACHE_FRACTION,
) -> tuple[int, int]:
    """Split ``memory_budget`` bytes into stripe height + tile-cache bytes.

    Returns ``(band_rows, cache_bytes)``.  A canvas row costs
    ``width * (8 [band f64] + 8 [weight, AVERAGE/LINEAR only] +
    out_itemsize [quantized band])`` bytes; the budget must fit at least
    one row or the mosaic is simply not composable at this width
    (:class:`ValueError`).  The cache gets ``cache_fraction`` of the
    budget, shrinking to whatever remains when even one stripe row is
    tight.
    """
    if memory_budget < 1:
        raise ValueError(f"memory budget must be positive, got {memory_budget}")
    if not 0.0 <= cache_fraction < 1.0:
        raise ValueError(f"cache_fraction must be in [0, 1), got {cache_fraction}")
    need_weight = blend in (BlendMode.AVERAGE, BlendMode.LINEAR)
    per_row = width * (8 + (8 if need_weight else 0) + out_dtype.itemsize)
    if memory_budget < per_row:
        raise ValueError(
            f"memory budget {memory_budget} B cannot fit one canvas row "
            f"({per_row} B at width {width}); raise the budget or "
            f"compose a smaller mosaic"
        )
    cache_bytes = int(memory_budget * cache_fraction)
    band_rows = (memory_budget - cache_bytes) // per_row
    if band_rows < 1:
        # Budget is row-tight: give the stripe its one row, cache the rest.
        band_rows = 1
        cache_bytes = memory_budget - per_row
    return int(min(band_rows, height)), int(cache_bytes)


@dataclass
class StreamComposeResult:
    """What one streaming composition did (shape, memory, cache, pyramid)."""

    height: int
    width: int
    band_rows: int
    stripes: int
    tiles_rendered: int
    #: Peak tracked resident bytes (stripe buffers + tile cache), the
    #: number the memory budget bounds.
    peak_bytes: int
    memory_budget: int | None
    cache: dict | None
    #: Published pyramid files, ``[level 1 path, level 2 path, ...]``.
    pyramid_paths: list[Path] = field(default_factory=list)

    @property
    def shape(self) -> tuple[int, int]:
        return self.height, self.width


def _stripe_tiles(
    tiles: list[tuple[int, int, int, int]],
    n_stripes: int,
    band_rows: int,
    tile_h: int,
) -> list[list[tuple[int, int, int, int]]]:
    """Bucket row-major tiles by the stripes they intersect (O(tiles)).

    Appending in row-major order preserves painter's order inside every
    bucket, which is what makes OVERLAY bit-identical to the sequential
    render.
    """
    buckets: list[list[tuple[int, int, int, int]]] = [[] for _ in range(n_stripes)]
    for t in tiles:
        ty = t[2]
        s0 = max(0, ty // band_rows)
        s1 = min(n_stripes - 1, (ty + tile_h - 1) // band_rows)
        for s in range(s0, s1 + 1):
            buckets[s].append(t)
    return buckets


def stream_compose_to_tiff(
    path,
    load_tile,
    positions: GlobalPositions,
    tile_shape: tuple[int, int],
    blend: BlendMode = BlendMode.OVERLAY,
    memory_budget: int | None = None,
    band_rows: int | None = None,
    dtype=np.uint16,
    scale: float | None = None,
    skip_tiles=None,
    on_tile_error: str = "abort",
    pyramid_levels: int = 0,
    cache_fraction: float = CACHE_FRACTION,
    bigtiff: bool | str = "auto",
    metrics=None,
    tracer=NULL_TRACER,
) -> StreamComposeResult:
    """Compose a mosaic to a TIFF/BigTIFF under a hard memory budget.

    The mosaic is rendered top-to-bottom in stripes of ``band_rows`` canvas
    rows; ``memory_budget`` (bytes) derives ``band_rows`` via
    :func:`plan_stripe_rows` and funds an LRU tile cache with the
    remainder.  Passing ``band_rows`` explicitly overrides the derived
    stripe height (the cache still gets its budget share).  With neither,
    stripes default to twice the tile height and no cache is used --
    the legacy :func:`repro.core.compose.compose_to_tiff` behavior.

    All four blend modes stream bit-identically to the in-memory path
    (see module docstring for the LINEAR argument).  ``scale`` maps pixel
    values into the integer output range exactly as the in-memory
    quantization does (multiply, clip, truncating ``astype``).

    ``pyramid_levels`` > 0 additionally writes that many 2x block-mean
    levels next to ``path`` (see :func:`pyramid_level_path`), each
    streamed from the level above through windowed reads.  All files
    (mosaic + levels) are published atomically together; any failure
    unlinks every ``.part``.

    ``metrics`` (a :class:`repro.observe.MetricsRegistry`) gains a
    ``compose_peak_canvas_bytes`` gauge, tile-cache hit/miss/eviction
    counters and a ``compose_stripes`` counter; ``tracer`` records one
    span per stripe and per pyramid level.

    Returns a :class:`StreamComposeResult`; ``result.peak_bytes`` is the
    tracked peak of stripe buffers + cache, which tests assert stays
    within ``memory_budget``.
    """
    # -- validate everything before any output I/O (atomicity contract).
    blend = BlendMode(blend)
    if on_tile_error not in ("abort", "skip"):
        raise ValueError(
            f"unknown on_tile_error {on_tile_error!r} (use 'abort' or 'skip')"
        )
    skip = {(int(r), int(c)) for r, c in (skip_tiles or ())}
    dtype = np.dtype(dtype)
    if dtype.kind not in "iu":
        raise ValueError(f"streaming compose needs an integer dtype, got {dtype}")
    th, tw = (int(v) for v in tile_shape)
    if th < 1 or tw < 1:
        raise ValueError(f"bad tile shape {tile_shape}")
    if pyramid_levels < 0:
        raise ValueError(f"pyramid_levels must be >= 0, got {pyramid_levels}")
    height, width = positions.mosaic_shape(tile_shape)

    cache_bytes = 0
    if memory_budget is not None:
        planned_rows, cache_bytes = plan_stripe_rows(
            int(memory_budget), width, height, blend, dtype, cache_fraction
        )
        if band_rows is None:
            band_rows = planned_rows
    elif band_rows is None:
        band_rows = 2 * th
    band_rows = max(1, min(int(band_rows), height))
    limit = float(np.iinfo(dtype).max)
    need_weight = blend in (BlendMode.AVERAGE, BlendMode.LINEAR)
    lin_w = _linear_weight((th, tw)) if blend is BlendMode.LINEAR else None

    cache = TileCache(load_tile, cache_bytes) if cache_bytes > 0 else None
    fetch = cache.load if cache is not None else load_tile

    gauge = metrics.gauge("compose_peak_canvas_bytes") if metrics is not None else None
    peak_bytes = 0

    def track(resident: int) -> None:
        nonlocal peak_bytes
        if cache is not None:
            resident += cache.current_bytes
        peak_bytes = max(peak_bytes, resident)
        if gauge is not None:
            gauge.set(resident)

    # Row-major painter's order, bucketed per stripe.
    tiles = [
        (r, c, int(positions.positions[r, c][0]), int(positions.positions[r, c][1]))
        for r in range(positions.rows)
        for c in range(positions.cols)
        if (r, c) not in skip
    ]
    n_stripes = (height + band_rows - 1) // band_rows
    buckets = _stripe_tiles(tiles, n_stripes, band_rows, th)

    path = Path(path)
    level_paths = [pyramid_level_path(path, k) for k in range(pyramid_levels + 1)]
    parts = [p.with_name(p.name + ".part") for p in level_paths]
    rendered: set[tuple[int, int]] = set()

    try:
        # -- full-resolution pass -------------------------------------------
        with TiffStripWriter(
            parts[0], height, width, dtype,
            rows_per_strip=band_rows, bigtiff=bigtiff,
        ) as writer:
            band = np.zeros((band_rows, width), dtype=np.float64)
            weight = np.zeros_like(band) if need_weight else None
            for s in range(n_stripes):
                y0 = s * band_rows
                y1 = min(height, y0 + band_rows)
                b = band[: y1 - y0]
                b[:] = 0.0
                w = None
                if weight is not None:
                    w = weight[: y1 - y0]
                    w[:] = 0.0
                with tracer.span("compose.stripe", "compose", key=f"s{s}"):
                    for r, c, ty, tx in buckets[s]:
                        by0, by1 = max(ty, y0), min(ty + th, y1)
                        if by1 <= by0:
                            continue
                        try:
                            # Native dtype: float64 promotion inside the
                            # blend ops is value-exact for uint tiles, so
                            # no 4x-sized tile copy is ever made.
                            tile = np.asarray(fetch(r, c))
                        except Exception:
                            if on_tile_error == "skip":
                                continue
                            raise
                        if tile.shape != (th, tw):
                            raise ValueError(
                                f"tile ({r},{c}) has shape {tile.shape}, "
                                f"expected {(th, tw)}"
                            )
                        src = tile[by0 - ty : by1 - ty, :]
                        dst = (slice(by0 - y0, by1 - y0), slice(tx, tx + tw))
                        if blend is BlendMode.OVERLAY:
                            b[dst] = src
                        elif blend is BlendMode.MAXIMUM:
                            np.maximum(b[dst], src, out=b[dst])
                        elif blend is BlendMode.AVERAGE:
                            b[dst] += src
                            w[dst] += 1.0
                        else:  # LINEAR
                            w_src = lin_w[by0 - ty : by1 - ty, :]
                            b[dst] += src * w_src
                            w[dst] += w_src
                        rendered.add((r, c))
                    if w is not None:
                        covered = w > 0
                        b[covered] /= w[covered]
                    if scale is not None:
                        b *= scale
                    np.clip(b, 0, limit, out=b)
                    out = b.astype(dtype)
                    writer.write_rows(out)
                track(band.nbytes + (weight.nbytes if weight is not None else 0)
                      + out.nbytes)
                if metrics is not None:
                    metrics.counter("compose_stripes").inc()
            del band, weight, out

        if cache is not None:
            if metrics is not None:
                metrics.counter("compose_tile_cache_hits").inc(cache.hits)
                metrics.counter("compose_tile_cache_misses").inc(cache.misses)
                metrics.counter("compose_tile_cache_evictions").inc(cache.evictions)
            cache.clear()  # pyramid pass reads the mosaic file, not tiles

        # -- pyramid pass: level k streamed from level k-1 ------------------
        _stream_pyramid_levels(parts, height, width, dtype, band_rows,
                               pyramid_levels, tracer, track)

        # -- atomic publish: levels first, mosaic last, so a reader that
        # sees the mosaic also sees its pyramid.
        for part, final in zip(parts[1:], level_paths[1:]):
            os.replace(part, final)
        os.replace(parts[0], path)
    except BaseException:
        for part in parts:
            part.unlink(missing_ok=True)
        raise

    if gauge is not None:
        gauge.set(0)
    return StreamComposeResult(
        height=height,
        width=width,
        band_rows=band_rows,
        stripes=n_stripes,
        tiles_rendered=len(rendered),
        peak_bytes=peak_bytes,
        memory_budget=memory_budget,
        cache=cache.stats() if cache is not None else None,
        pyramid_paths=level_paths[1:],
    )


def _stream_pyramid_levels(
    parts: list[Path],
    height: int,
    width: int,
    dtype: np.dtype,
    band_rows: int,
    pyramid_levels: int,
    tracer,
    track,
) -> None:
    """Write 2x block-mean levels, each windowed from the one above.

    Output bands are a quarter of the full-res stripe height so the input
    window (2x rows at the parent level, plus the float64 working copy
    inside :func:`downsample`) stays within the memory envelope the
    full-resolution stripe buffers already claimed.
    """
    limit = float(np.iinfo(dtype).max)
    in_h, in_w = height, width
    for k in range(1, pyramid_levels + 1):
        out_h, out_w = downsampled_shape((in_h, in_w), 2)
        out_band = max(1, band_rows // 4)
        with tracer.span("compose.pyramid_level", "compose", key=f"L{k}"), \
                TiffReader(parts[k - 1]) as reader, \
                TiffStripWriter(parts[k], out_h, out_w, dtype,
                                rows_per_strip=out_band) as writer:
            for oy0 in range(0, out_h, out_band):
                oy1 = min(out_h, oy0 + out_band)
                src = reader.read_rows(2 * oy0, min(in_h, 2 * oy1))
                ds = downsample(src, 2)
                out = np.clip(np.rint(ds), 0, limit).astype(dtype)
                if out.shape != (oy1 - oy0, out_w):  # pragma: no cover
                    raise AssertionError(
                        f"pyramid window bug: {out.shape} != "
                        f"{(oy1 - oy0, out_w)} at level {k}"
                    )
                writer.write_rows(out)
                # downsample's float64 conversion of src dominates its
                # transient footprint; account it honestly.
                track(src.nbytes + src.size * 8 + ds.nbytes + out.nbytes)
        in_h, in_w = out_h, out_w
