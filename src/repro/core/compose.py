"""Phase 3: mosaic composition (Figs. 13-14).

Renders tiles into the output canvas at their absolute positions.  Blend
modes:

``OVERLAY``
    Last write wins -- the mode used for the paper's Fig. 13 ("composed
    using an overlay blend").
``AVERAGE``
    Mean of all tiles covering a pixel (needs a per-pixel weight pass).
``MAXIMUM``
    Per-pixel max; useful for fluorescence channels.
``LINEAR``
    Feathered blend: each tile contributes with a weight that ramps from
    its borders toward its centre, hiding seams from residual registration
    or illumination error.

``outline`` reproduces Fig. 14's highlighted-tile rendering by brightening
each tile's border pixels.

Composition streams tiles one at a time (``load_tile`` callback) so the
canvas is the only full-mosaic allocation -- the paper renders a
17k x 22k image, which at float64 would be ~3 GB; the canvas dtype is
therefore configurable and defaults to ``float32`` accumulation.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.global_opt import GlobalPositions


class BlendMode(Enum):
    OVERLAY = "overlay"
    AVERAGE = "average"
    MAXIMUM = "maximum"
    LINEAR = "linear"


def _linear_weight(shape: tuple[int, int]) -> np.ndarray:
    """Separable ramp weight, 1 at the tile centre, ~0 at the borders."""
    h, w = shape
    wy = 1.0 - np.abs(np.linspace(-1.0, 1.0, h))
    wx = 1.0 - np.abs(np.linspace(-1.0, 1.0, w))
    out = np.outer(wy, wx)
    # Strictly positive so fully-covered pixels never divide by zero.
    return np.maximum(out, 1e-6)


def compose(
    load_tile,
    positions: GlobalPositions,
    tile_shape: tuple[int, int],
    blend: BlendMode = BlendMode.OVERLAY,
    outline: bool = False,
    outline_value: float | None = None,
    dtype=np.float32,
    skip_tiles=None,
    on_tile_error: str = "abort",
    return_mask: bool = False,
):
    """Render the mosaic; returns a 2-D array of ``dtype``.

    ``load_tile(row, col) -> ndarray`` supplies pixels on demand.  Tiles are
    visited row-major, which for OVERLAY reproduces the usual microscopy
    convention (later rows/columns over earlier ones).

    Degraded rendering: ``skip_tiles`` (iterable of ``(row, col)``) leaves
    holes where phase 1 dropped tiles; ``on_tile_error="skip"`` also turns
    load failures *during composition* into holes instead of aborting.
    With ``return_mask=True`` the return value is ``(canvas, mask)`` where
    ``mask[r, c]`` is True for every tile actually rendered -- the
    per-tile provenance record of the partial mosaic.
    """
    rows, cols = positions.rows, positions.cols
    th, tw = tile_shape
    skip = {(int(r), int(c)) for r, c in (skip_tiles or ())}
    if on_tile_error not in ("abort", "skip"):
        raise ValueError(
            f"unknown on_tile_error {on_tile_error!r} (use 'abort' or 'skip')"
        )
    canvas_shape = positions.mosaic_shape(tile_shape)
    canvas = np.zeros(canvas_shape, dtype=np.float64)
    mask = np.zeros((rows, cols), dtype=bool)
    weight = None
    if blend in (BlendMode.AVERAGE, BlendMode.LINEAR):
        weight = np.zeros(canvas_shape, dtype=np.float64)
    lin_w = _linear_weight(tile_shape) if blend is BlendMode.LINEAR else None

    for r in range(rows):
        for c in range(cols):
            if (r, c) in skip:
                continue
            try:
                tile = np.asarray(load_tile(r, c), dtype=np.float64)
            except Exception:
                if on_tile_error == "skip":
                    continue
                raise
            if tile.shape != (th, tw):
                raise ValueError(
                    f"tile ({r},{c}) has shape {tile.shape}, expected {(th, tw)}"
                )
            y, x = (int(v) for v in positions.positions[r, c])
            region = (slice(y, y + th), slice(x, x + tw))
            if blend is BlendMode.OVERLAY:
                canvas[region] = tile
            elif blend is BlendMode.MAXIMUM:
                np.maximum(canvas[region], tile, out=canvas[region])
            elif blend is BlendMode.AVERAGE:
                canvas[region] += tile
                weight[region] += 1.0
            elif blend is BlendMode.LINEAR:
                canvas[region] += tile * lin_w
                weight[region] += lin_w
            else:  # pragma: no cover - exhaustive enum
                raise AssertionError(blend)
            mask[r, c] = True

    if weight is not None:
        covered = weight > 0
        canvas[covered] /= weight[covered]

    if outline:
        if outline_value is None:
            outline_value = float(canvas.max())
        for r in range(rows):
            for c in range(cols):
                if not mask[r, c]:
                    continue
                y, x = (int(v) for v in positions.positions[r, c])
                canvas[y, x : x + tw] = outline_value
                canvas[min(y + th - 1, canvas.shape[0] - 1), x : x + tw] = outline_value
                canvas[y : y + th, x] = outline_value
                canvas[y : y + th, min(x + tw - 1, canvas.shape[1] - 1)] = outline_value

    canvas = canvas.astype(dtype)
    if return_mask:
        return canvas, mask
    return canvas


def compose_to_tiff(
    path,
    load_tile,
    positions: GlobalPositions,
    tile_shape: tuple[int, int],
    blend: BlendMode = BlendMode.OVERLAY,
    band_rows: int | None = None,
    dtype=np.uint16,
    scale: float | None = None,
    skip_tiles=None,
    on_tile_error: str = "abort",
) -> tuple[int, int]:
    """Compose directly to a TIFF file in row bands (bounded memory).

    The paper's full-scale mosaic is 17k x 22k pixels (~750 MB at 16-bit);
    Fiji takes 1.5 h to compose and save it largely because it
    materializes everything.  This streams: for each horizontal band only
    the tiles intersecting it are loaded, blended, quantized and appended
    through :class:`repro.io.tiff.TiffStripWriter`.  Peak memory is one
    band plus one tile.

    ``scale`` maps pixel values to the integer range (``None`` = identity
    with clipping to the dtype's range).  ``band_rows`` defaults to twice
    the tile height.  Returns the mosaic shape.  OVERLAY and AVERAGE
    blends are supported (LINEAR feathering needs cross-band weights).
    ``skip_tiles``/``on_tile_error`` mirror :func:`compose` for partial
    mosaics (a skipped tile is simply left out of every band).
    """
    from repro.io.tiff import TiffStripWriter

    if blend not in (BlendMode.OVERLAY, BlendMode.AVERAGE):
        raise ValueError(f"streaming compose supports OVERLAY/AVERAGE, not {blend}")
    if on_tile_error not in ("abort", "skip"):
        raise ValueError(
            f"unknown on_tile_error {on_tile_error!r} (use 'abort' or 'skip')"
        )
    skip = {(int(r), int(c)) for r, c in (skip_tiles or ())}
    dtype = np.dtype(dtype)
    th, tw = tile_shape
    height, width = positions.mosaic_shape(tile_shape)
    if band_rows is None:
        band_rows = 2 * th
    band_rows = max(1, min(band_rows, height))
    limit = float(np.iinfo(dtype).max)

    # Row-band index: which tiles intersect each band (tiles sorted
    # row-major so OVERLAY keeps the same painter's order as compose()).
    tiles_by_order = [
        (r, c, int(positions.positions[r, c][0]), int(positions.positions[r, c][1]))
        for r in range(positions.rows)
        for c in range(positions.cols)
        if (r, c) not in skip
    ]

    with TiffStripWriter(path, height, width, dtype) as writer:
        for y0 in range(0, height, band_rows):
            y1 = min(height, y0 + band_rows)
            band = np.zeros((y1 - y0, width), dtype=np.float64)
            weight = (
                np.zeros_like(band) if blend is BlendMode.AVERAGE else None
            )
            for r, c, ty, tx in tiles_by_order:
                by0, by1 = max(ty, y0), min(ty + th, y1)
                if by1 <= by0:
                    continue
                try:
                    tile = np.asarray(load_tile(r, c), dtype=np.float64)
                except Exception:
                    if on_tile_error == "skip":
                        continue
                    raise
                src = tile[by0 - ty : by1 - ty, :]
                dst = (slice(by0 - y0, by1 - y0), slice(tx, tx + tw))
                if blend is BlendMode.OVERLAY:
                    band[dst] = src
                else:
                    band[dst] += src
                    weight[dst] += 1.0
            if weight is not None:
                covered = weight > 0
                band[covered] /= weight[covered]
            if scale is not None:
                band *= scale
            np.clip(band, 0, limit, out=band)
            writer.write_rows(band.astype(dtype))
    return height, width
