"""Phase 3: mosaic composition (Figs. 13-14).

Renders tiles into the output canvas at their absolute positions.  Blend
modes:

``OVERLAY``
    Last write wins -- the mode used for the paper's Fig. 13 ("composed
    using an overlay blend").
``AVERAGE``
    Mean of all tiles covering a pixel (needs a per-pixel weight pass).
``MAXIMUM``
    Per-pixel max; useful for fluorescence channels.
``LINEAR``
    Feathered blend: each tile contributes with a weight that ramps from
    its borders toward its centre, hiding seams from residual registration
    or illumination error.

``outline`` reproduces Fig. 14's highlighted-tile rendering by brightening
each tile's border pixels.

Composition streams tiles one at a time (``load_tile`` callback) so the
canvas is the only full-mosaic allocation -- the paper renders a
17k x 22k image, which at float64 would be ~3 GB; the canvas dtype is
therefore configurable and defaults to ``float32`` accumulation.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from enum import Enum

import numpy as np

from repro.core.global_opt import GlobalPositions


class BlendMode(Enum):
    OVERLAY = "overlay"
    AVERAGE = "average"
    MAXIMUM = "maximum"
    LINEAR = "linear"


#: Striped-composition context, staged by the parent before the worker
#: processes fork and inherited by them by address (one live composition
#: per process; callers are sequential).
_COMPOSE_CTX: dict | None = None


def _linear_weight(shape: tuple[int, int]) -> np.ndarray:
    """Separable ramp weight, 1 at the tile centre, ~0 at the borders."""
    h, w = shape
    wy = 1.0 - np.abs(np.linspace(-1.0, 1.0, h))
    wx = 1.0 - np.abs(np.linspace(-1.0, 1.0, w))
    out = np.outer(wy, wx)
    # Strictly positive so fully-covered pixels never divide by zero.
    return np.maximum(out, 1e-6)


def _stripe_bounds(height: int, n: int) -> list[tuple[int, int]]:
    """Split ``height`` canvas rows into ``<= n`` contiguous stripes."""
    n = max(1, min(n, height))
    base, extra = divmod(height, n)
    out, y0 = [], 0
    for k in range(n):
        y1 = y0 + base + (1 if k < extra else 0)
        out.append((y0, y1))
        y0 = y1
    return out


def _render_stripe(
    y0: int,
    y1: int,
    canvas: np.ndarray,
    weight: np.ndarray | None,
    tiles: list[tuple[int, int, int, int]],
    load_tile,
    blend: BlendMode,
    lin_w: np.ndarray | None,
    tile_shape: tuple[int, int],
    on_tile_error: str,
) -> list[tuple[int, int]]:
    """Render canvas rows ``[y0, y1)``; returns the tiles it touched.

    ``canvas``/``weight`` are full-height arrays; only rows ``[y0, y1)``
    are written.  Tiles are visited in row-major order and every per-pixel
    operation is the row-restriction of the sequential one, so a stripe is
    bit-identical to the same rows of a sequential render: the tiles
    covering any given pixel are blended in the same order, and slicing an
    elementwise product (LINEAR) commutes with computing it.  Stripes are
    disjoint, so parallel stripe renders need no locks or atomics -- each
    owns its rows of both the canvas and the weight accumulator.
    """
    th, tw = tile_shape
    rendered: list[tuple[int, int]] = []
    for r, c, ty, tx in tiles:
        by0, by1 = max(ty, y0), min(ty + th, y1)
        if by1 <= by0:
            continue
        try:
            # Native dtype: the canvas is float64, and numpy's promotion
            # rules make uint8/uint16 arithmetic in float64 value-exact,
            # so skipping the explicit conversion avoids a 4x-sized
            # float64 copy of every uint16 tile without changing a bit
            # of the output.
            tile = np.asarray(load_tile(r, c))
        except Exception:
            if on_tile_error == "skip":
                continue
            raise
        if tile.shape != (th, tw):
            raise ValueError(
                f"tile ({r},{c}) has shape {tile.shape}, expected {(th, tw)}"
            )
        src = tile[by0 - ty : by1 - ty, :]
        dst = (slice(by0, by1), slice(tx, tx + tw))
        if blend is BlendMode.OVERLAY:
            canvas[dst] = src
        elif blend is BlendMode.MAXIMUM:
            np.maximum(canvas[dst], src, out=canvas[dst])
        elif blend is BlendMode.AVERAGE:
            canvas[dst] += src
            weight[dst] += 1.0
        elif blend is BlendMode.LINEAR:
            w_src = lin_w[by0 - ty : by1 - ty, :]
            canvas[dst] += src * w_src
            weight[dst] += w_src
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(blend)
        rendered.append((r, c))
    if weight is not None:
        w_band = weight[y0:y1]
        c_band = canvas[y0:y1]
        covered = w_band > 0
        c_band[covered] /= w_band[covered]
    return rendered


def _compose_stripe_task(idx: int) -> list[tuple[int, int]]:
    """Process-pool entry point: render one stripe from the forked context."""
    ctx = _COMPOSE_CTX
    y0, y1 = ctx["stripes"][idx]
    return _render_stripe(
        y0, y1, ctx["canvas"], ctx["weight"], ctx["tiles"], ctx["load_tile"],
        ctx["blend"], ctx["lin_w"], ctx["tile_shape"], ctx["on_tile_error"],
    )


def compose(
    load_tile,
    positions: GlobalPositions,
    tile_shape: tuple[int, int],
    blend: BlendMode = BlendMode.OVERLAY,
    outline: bool = False,
    outline_value: float | None = None,
    dtype=np.float32,
    skip_tiles=None,
    on_tile_error: str = "abort",
    return_mask: bool = False,
    workers: int = 1,
):
    """Render the mosaic; returns a 2-D array of ``dtype``.

    ``load_tile(row, col) -> ndarray`` supplies pixels on demand.  Tiles are
    visited row-major, which for OVERLAY reproduces the usual microscopy
    convention (later rows/columns over earlier ones).

    ``workers > 1`` renders the canvas as that many horizontal stripes in
    parallel -- forked worker processes writing a shared-memory canvas
    where the platform supports it, threads otherwise.  Stripes own
    disjoint canvas rows (no atomics) and visit tiles in the sequential
    order, so the result is bit-identical to ``workers=1`` for every blend
    mode; the only cost is that a tile straddling a stripe boundary is
    loaded once per stripe it touches.

    Degraded rendering: ``skip_tiles`` (iterable of ``(row, col)``) leaves
    holes where phase 1 dropped tiles; ``on_tile_error="skip"`` also turns
    load failures *during composition* into holes instead of aborting.
    With ``return_mask=True`` the return value is ``(canvas, mask)`` where
    ``mask[r, c]`` is True for every tile actually rendered -- the
    per-tile provenance record of the partial mosaic.
    """
    rows, cols = positions.rows, positions.cols
    skip = {(int(r), int(c)) for r, c in (skip_tiles or ())}
    if on_tile_error not in ("abort", "skip"):
        raise ValueError(
            f"unknown on_tile_error {on_tile_error!r} (use 'abort' or 'skip')"
        )
    if workers < 1:
        raise ValueError(f"need at least one compose worker, got {workers}")
    th, tw = tile_shape
    canvas_shape = positions.mosaic_shape(tile_shape)
    mask = np.zeros((rows, cols), dtype=bool)
    need_weight = blend in (BlendMode.AVERAGE, BlendMode.LINEAR)
    lin_w = _linear_weight(tile_shape) if blend is BlendMode.LINEAR else None
    # Row-major tile order -- the painter's order every stripe preserves.
    tiles = [
        (r, c, int(positions.positions[r, c][0]), int(positions.positions[r, c][1]))
        for r in range(rows)
        for c in range(cols)
        if (r, c) not in skip
    ]

    if workers <= 1:
        canvas = np.zeros(canvas_shape, dtype=np.float64)
        weight = np.zeros(canvas_shape, dtype=np.float64) if need_weight else None
        rendered = _render_stripe(
            0, canvas_shape[0], canvas, weight, tiles, load_tile,
            blend, lin_w, tile_shape, on_tile_error,
        )
        for r, c in rendered:
            mask[r, c] = True
    else:
        canvas = _compose_striped(
            canvas_shape, mask, tiles, load_tile, blend, lin_w,
            tile_shape, on_tile_error, workers,
        )

    if outline:
        if outline_value is None:
            outline_value = float(canvas.max())
        for r in range(rows):
            for c in range(cols):
                if not mask[r, c]:
                    continue
                y, x = (int(v) for v in positions.positions[r, c])
                canvas[y, x : x + tw] = outline_value
                canvas[min(y + th - 1, canvas.shape[0] - 1), x : x + tw] = outline_value
                canvas[y : y + th, x] = outline_value
                canvas[y : y + th, min(x + tw - 1, canvas.shape[1] - 1)] = outline_value

    canvas = canvas.astype(dtype)
    if return_mask:
        return canvas, mask
    return canvas


def _compose_striped(
    canvas_shape: tuple[int, int],
    mask: np.ndarray,
    tiles: list[tuple[int, int, int, int]],
    load_tile,
    blend: BlendMode,
    lin_w: np.ndarray | None,
    tile_shape: tuple[int, int],
    on_tile_error: str,
    workers: int,
) -> np.ndarray:
    """Parallel phase-3 render: disjoint horizontal stripes in workers.

    Preferred backend is forked processes sharing a ``ShmArena`` canvas
    (and weight accumulator), so stripe renders escape the GIL entirely;
    where ``fork`` is unavailable the same stripe tasks run on threads
    over ordinary arrays.  Either way the blending math is
    :func:`_render_stripe`, so the result is bit-identical to sequential.
    """
    global _COMPOSE_CTX
    stripes = _stripe_bounds(canvas_shape[0], workers)
    need_weight = blend in (BlendMode.AVERAGE, BlendMode.LINEAR)
    use_procs = len(stripes) > 1 and "fork" in mp.get_all_start_methods()

    if not use_procs:
        canvas = np.zeros(canvas_shape, dtype=np.float64)
        weight = np.zeros(canvas_shape, dtype=np.float64) if need_weight else None
        with ThreadPoolExecutor(max_workers=len(stripes)) as pool:
            futures = [
                pool.submit(
                    _render_stripe, y0, y1, canvas, weight, tiles, load_tile,
                    blend, lin_w, tile_shape, on_tile_error,
                )
                for y0, y1 in stripes
            ]
            for fut in futures:
                for r, c in fut.result():
                    mask[r, c] = True
        return canvas

    from repro.memmodel.shm import ShmArena

    arena = ShmArena()
    try:
        # POSIX shared memory is zero-filled on creation, so the slabs are
        # ready-to-blend canvases without an extra clearing pass.
        canvas = arena.slab("canvas", 1, canvas_shape, np.float64).slot(0)
        weight = (
            arena.slab("weight", 1, canvas_shape, np.float64).slot(0)
            if need_weight
            else None
        )
        _COMPOSE_CTX = {
            "stripes": stripes,
            "canvas": canvas,
            "weight": weight,
            "tiles": tiles,
            "load_tile": load_tile,
            "blend": blend,
            "lin_w": lin_w,
            "tile_shape": tile_shape,
            "on_tile_error": on_tile_error,
        }
        try:
            with ProcessPoolExecutor(
                max_workers=len(stripes), mp_context=mp.get_context("fork")
            ) as pool:
                for rendered in pool.map(
                    _compose_stripe_task, range(len(stripes))
                ):
                    for r, c in rendered:
                        mask[r, c] = True
        finally:
            _COMPOSE_CTX = None
        # Private copy so the mosaic outlives the arena unlink below.
        return np.array(canvas)
    finally:
        arena.close()


def compose_to_tiff(
    path,
    load_tile,
    positions: GlobalPositions,
    tile_shape: tuple[int, int],
    blend: BlendMode = BlendMode.OVERLAY,
    band_rows: int | None = None,
    dtype=np.uint16,
    scale: float | None = None,
    skip_tiles=None,
    on_tile_error: str = "abort",
    memory_budget: int | None = None,
    pyramid_levels: int = 0,
    metrics=None,
    tracer=None,
) -> tuple[int, int]:
    """Compose directly to a TIFF/BigTIFF file in row bands (bounded memory).

    The paper's full-scale mosaic is 17k x 22k pixels (~750 MB at 16-bit);
    Fiji takes 1.5 h to compose and save it largely because it
    materializes everything.  This streams: for each horizontal band only
    the tiles intersecting it are loaded, blended, quantized and appended
    through :class:`repro.io.tiff.TiffStripWriter`.  Peak memory is one
    band plus the tile cache.

    This is a thin front end over
    :func:`repro.core.streamcompose.stream_compose_to_tiff`, kept for its
    stable ``(height, width)`` return; see that function for the full
    contract.  Highlights:

    - all four blend modes stream bit-identically to :func:`compose`
      (LINEAR feathering normalizes per stripe, which is exactly the
      row-restriction of the global normalization);
    - ``memory_budget`` (bytes) derives the stripe height and funds an
      LRU tile cache; without it ``band_rows`` defaults to twice the
      tile height;
    - ``pyramid_levels`` streams 2x block-mean levels next to ``path``;
    - ``scale`` maps pixel values to the integer range (``None`` =
      identity with clipping to the dtype's range);
    - ``skip_tiles``/``on_tile_error`` mirror :func:`compose` for
      partial mosaics (a skipped tile is simply left out of every band).

    Every argument is validated *before* any output I/O, and the strips
    stream into a same-directory ``<name>.part`` file that is renamed
    over ``path`` only after the last band: a rejected call or a
    mid-stream failure (bad tile under ``on_tile_error="abort"``, disk
    error, kill) never leaves a partial mosaic at ``path`` -- readers
    see the old complete file or the new one, nothing in between.
    """
    from repro.core.streamcompose import stream_compose_to_tiff
    from repro.observe.tracer import NULL_TRACER

    result = stream_compose_to_tiff(
        path,
        load_tile,
        positions,
        tile_shape,
        blend=blend,
        memory_budget=memory_budget,
        band_rows=band_rows,
        dtype=dtype,
        scale=scale,
        skip_tiles=skip_tiles,
        on_tile_error=on_tile_error,
        pyramid_levels=pyramid_levels,
        metrics=metrics,
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    return result.shape
