"""Normalized correlation coefficient (steps 3-4 of the paper's Fig. 1).

Given the forward transforms of two tiles, the NCC is the element-wise
normalized conjugate product::

    fc  = FFT_i .* conj(FFT_j)
    NCC = fc ./ |fc|

Only the *phase* of the cross-power spectrum survives, which is what makes
phase correlation insensitive to illumination differences between exposures
(the vignette and gain differences of adjacent microscope tiles).

Sign convention (proved in the unit tests): with ``I_j(p) = I_i(p + t)``
(tile *j*'s content is tile *i*'s shifted so that *j*'s origin sits at
``+t`` in *i*'s frame), the inverse transform of the NCC peaks at
``t mod (H, W)``.
"""

from __future__ import annotations

import numpy as np

#: Magnitudes below this are treated as zero to avoid amplifying pure
#: numerical noise into unit-magnitude phase (matches cuFFT-era float
#: tolerances; the affected bins carry no signal).
_EPS = 1e-12


def normalized_correlation(
    fft_i: np.ndarray,
    fft_j: np.ndarray,
    out: np.ndarray | None = None,
    mag_out: np.ndarray | None = None,
) -> np.ndarray:
    """Element-wise normalized conjugate multiplication of two spectra.

    ``out`` may alias either input (in-place update is safe and saves one
    h x w complex allocation per pair, which matters at the paper's scale:
    each such array is ~22 MB).  ``mag_out`` (float64, same shape) receives
    the magnitude scratch, eliminating the remaining per-pair allocation.
    """
    if fft_i.shape != fft_j.shape:
        raise ValueError(f"spectra differ in shape: {fft_i.shape} vs {fft_j.shape}")
    # Conjugate into the output first, then multiply in place: no temporary
    # (complex multiplication commutes bit-exactly, so conj(fft_j) * fft_i
    # equals fft_i * conj(fft_j)).  Unless ``out`` aliases ``fft_i``, which
    # the conjugate would clobber -- the temporary is unavoidable there.
    if out is fft_i:
        fc = np.multiply(fft_i, np.conj(fft_j), out=out)
    else:
        fc = np.conjugate(fft_j, out=out)
        np.multiply(fc, fft_i, out=fc)
    mag = np.abs(fc, out=mag_out)
    # Zero-magnitude bins have undefined phase; leave them at zero rather
    # than dividing 0/0.
    np.maximum(mag, _EPS, out=mag)
    fc /= mag
    return fc
