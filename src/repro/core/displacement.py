"""Phase 1: relative displacements for the whole grid (Fig. 4).

This is the sequential *reference* formulation -- the ground truth against
which every parallel implementation in :mod:`repro.impls` is checked.  It
computes each tile's forward transform once, reuses it across the tile's
incident pairs, and frees it under the paper's early-release policy driven
by the traversal order (Section IV.A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coarse import (
    CoarseConfig,
    coarse_pciam,
    coarse_transform_shape,
)
from repro.core.downsample import downsample
from repro.core.pciam import CcfMode, PciamResult, forward_fft, pciam
from repro.core.tilestats import TileStats
from repro.fftlib.plans import PlanCache, PlanningMode
from repro.memmodel.workspace import WorkspaceArena
from repro.grid.neighbors import Direction, grid_pairs, pairs_for_tile
from repro.grid.tile_grid import GridPosition, TileGrid
from repro.grid.traversal import Traversal, traverse
from repro.pipeline.graph import aggregate_failures
from repro.pipeline.stage import ErrorPolicy, run_with_retries


@dataclass(frozen=True)
class Translation:
    """One pairwise translation: ``second`` relative to its west/north neighbour.

    ``tx``/``ty`` are the paper's integer output; ``tx_f``/``ty_f`` carry
    the optional sub-pixel estimate (``None`` = integer only).
    """

    correlation: float
    tx: int
    ty: int
    tx_f: float | None = None
    ty_f: float | None = None
    #: First-to-second phase-correlation peak-magnitude ratio (peak
    #: sharpness), a quality signal for the phase-2 confidence gate.
    #: ``None`` when unavailable (``n_peaks == 1`` runs, older journals,
    #: repaired translations).
    peak_ratio: float | None = None
    #: ``"coarse"``/``"fallback"`` when the coarse-to-fine path produced
    #: the pair (:mod:`repro.core.coarse`); ``None`` for the single-pass
    #: full-resolution path.  Journaled, so a resumed run can prove which
    #: path produced every translation.
    provenance: str | None = None

    @property
    def fx(self) -> float:
        """Best available x translation as a float."""
        return self.tx_f if self.tx_f is not None else float(self.tx)

    @property
    def fy(self) -> float:
        """Best available y translation as a float."""
        return self.ty_f if self.ty_f is not None else float(self.ty)

    @staticmethod
    def from_pciam(r: PciamResult, subpixel: bool = False) -> "Translation":
        if subpixel:
            return Translation(r.correlation, r.tx, r.ty, r.tx_f, r.ty_f,
                               peak_ratio=r.peak_ratio,
                               provenance=r.provenance)
        return Translation(r.correlation, r.tx, r.ty,
                           peak_ratio=r.peak_ratio,
                           provenance=r.provenance)


@dataclass
class DisplacementResult:
    """Phase-1 output: the two translation arrays of Fig. 4.

    ``west[r][c]`` positions tile ``(r, c)`` relative to ``(r, c-1)`` and is
    ``None`` for ``c == 0``; ``north[r][c]`` positions ``(r, c)`` relative
    to ``(r-1, c)`` and is ``None`` for ``r == 0``.
    """

    rows: int
    cols: int
    west: list[list[Translation | None]]
    north: list[list[Translation | None]]
    stats: dict = field(default_factory=dict)

    @staticmethod
    def empty(rows: int, cols: int) -> "DisplacementResult":
        return DisplacementResult(
            rows=rows,
            cols=cols,
            west=[[None] * cols for _ in range(rows)],
            north=[[None] * cols for _ in range(rows)],
        )

    def set(self, direction: Direction, row: int, col: int, t: Translation) -> None:
        arr = self.west if direction is Direction.WEST else self.north
        arr[row][col] = t

    def get(self, direction: Direction, row: int, col: int) -> Translation | None:
        arr = self.west if direction is Direction.WEST else self.north
        return arr[row][col]

    def pair_count(self) -> int:
        n = sum(1 for row in self.west for t in row if t is not None)
        n += sum(1 for row in self.north for t in row if t is not None)
        return n

    def is_complete(self) -> bool:
        """All ``2nm - n - m`` pairs computed."""
        return self.pair_count() == 2 * self.rows * self.cols - self.rows - self.cols

    def missing_pairs(self) -> list[tuple[str, int, int]]:
        """Absent interior pairs as ``(direction, row, col)`` of the second tile."""
        out = []
        for r in range(self.rows):
            for c in range(self.cols):
                if c > 0 and self.west[r][c] is None:
                    out.append(("west", r, c))
                if r > 0 and self.north[r][c] is None:
                    out.append(("north", r, c))
        return out


def compute_grid_displacements(
    load_tile,
    rows: int,
    cols: int,
    traversal: Traversal = Traversal.CHAINED_DIAGONAL,
    fft_shape: tuple[int, int] | None = None,
    ccf_mode: CcfMode = CcfMode.PAPER4,
    n_peaks: int = 1,
    real_transforms: bool = True,
    subpixel: bool = False,
    cache: PlanCache | None = None,
    planning: PlanningMode = PlanningMode.ESTIMATE,
    error_policy: ErrorPolicy | None = None,
    fault_report=None,
    tracer=None,
    metrics=None,
    use_tile_stats: bool = True,
    use_workspace: bool = True,
    journal=None,
    coarse: CoarseConfig | None = None,
) -> DisplacementResult:
    """Compute west/north translations for the whole grid sequentially.

    ``load_tile(row, col) -> ndarray`` supplies pixels (e.g.
    ``TileDataset.load``); tiles and transforms are released as soon as the
    early-free policy allows, so peak memory follows the traversal order,
    not the grid size.

    Half-spectrum (R2C) transforms are the default; ``real_transforms=
    False`` restores the full complex path (results are identical either
    way).  ``use_tile_stats``/``use_workspace`` gate the O(1)-statistics
    CCF and the reusable pair scratch -- on by default, exposed so the
    benchmark can measure each layer against its baseline.

    Instrumented: ``result.stats`` records FFT/pair/read counts and the peak
    number of live transforms (these feed the Table I verification bench).

    With an ``error_policy``, failing tile reads are retried per the
    policy; when retries are exhausted the run either aborts with a
    :class:`~repro.pipeline.graph.PipelineError` naming the logical stage
    (``on_exhausted="abort"``) or drops the tile -- skipping every pair it
    participates in -- and records the damage in ``fault_report`` (a
    :class:`~repro.faults.report.FaultReport`) and ``result.stats``.
    Without a policy, exceptions propagate raw (the legacy contract the
    reference implementations rely on).

    With a ``tracer`` (:class:`~repro.observe.tracer.Tracer`), every read,
    forward FFT and pair registration becomes a span on the
    ``"sequential"`` timeline track -- the single-row analogue of the
    pipelined implementations' per-stage timelines.

    With a ``journal`` (:class:`~repro.recovery.journal.RunJournal`),
    every journaled pair is served from the journal (its tiles are not
    even read when all their incident pairs are journaled) and every
    freshly computed pair is made durable before the run advances --
    ``stats["pairs"]`` counts only *computed* pairs, so a resumed run can
    prove it recomputed nothing that was already on disk
    (``stats["resumed_pairs"]`` carries the journal hits).

    With ``coarse`` (a :class:`~repro.core.coarse.CoarseConfig`), the
    per-tile product becomes the block-mean-downsampled *coarse*
    spectrum (a ``"downsample"`` span precedes each ``"fft"`` span, and
    the workspace arena is sized for the coarse transform shape), pairs
    go through :func:`~repro.core.coarse.coarse_pciam`, and
    ``stats["coarse_hits"]`` / ``stats["full_fallbacks"]`` count the
    gate's decisions.  Full-resolution tile statistics are still built
    (the refinement probes and the fallback need them); results carry
    their provenance into the journal.  ``coarse=None`` leaves the
    single-pass path byte-identical to previous releases.
    """
    from repro.observe.tracer import NULL_TRACER

    if tracer is None:
        tracer = NULL_TRACER
    grid = TileGrid(rows, cols)
    result = DisplacementResult.empty(rows, cols)

    tiles: dict[GridPosition, np.ndarray] = {}
    ffts: dict[GridPosition, np.ndarray] = {}
    tstats: dict[GridPosition, TileStats] = {}
    pairs_done: set = set()
    failed_tiles: set[GridPosition] = set()
    skipped_pairs: set = set()
    stats = {
        "reads": 0,
        "ffts": 0,
        "pairs": 0,
        "peak_live_transforms": 0,
        "fft_copies_saved": 0,
    }
    if coarse is not None:
        stats["coarse_hits"] = 0
        stats["full_fallbacks"] = 0
    # Resume: serve journaled pairs up front so the traversal below skips
    # their computation (and the loads of tiles with nothing left to do).
    if journal is not None:
        for pair in grid_pairs(grid):
            t = journal.lookup(
                pair.direction.value, pair.second.row, pair.second.col
            )
            if t is not None:
                result.set(pair.direction, pair.second.row, pair.second.col, t)
                pairs_done.add(pair)
        if pairs_done:
            stats["resumed_pairs"] = len(pairs_done)

    # One workspace for the whole sequential run: pairs are processed one
    # at a time, so a single scratch set serves every pair (lazily built
    # once the first tile reveals the native shape when fft_shape is None).
    arena: WorkspaceArena | None = None
    workspace = None

    def ensure_workspace(shape: tuple[int, int]):
        nonlocal arena, workspace
        if not use_workspace:
            return None
        if arena is None:
            arena = WorkspaceArena(shape, real=real_transforms, count=1)
            workspace = arena.acquire()
            stats["workspace_bytes"] = arena.bytes_per_workspace
        return workspace

    def load_with_policy(pos: GridPosition) -> np.ndarray | None:
        """Read one tile under the policy; None = tile dropped (skip mode)."""
        if error_policy is None:
            return load_tile(pos.row, pos.col)

        def on_retry(attempt: int, exc: BaseException) -> None:
            if fault_report is not None:
                fault_report.record_retry("read", (pos.row, pos.col), attempt, exc)
            if metrics is not None:
                metrics.counter("read.retries").inc()

        try:
            value, _ = run_with_retries(
                lambda: load_tile(pos.row, pos.col),
                error_policy,
                key=(pos.row, pos.col),
                on_retry=on_retry,
            )
            return value
        except Exception as exc:
            if error_policy.on_exhausted == "abort":
                raise aggregate_failures(
                    "displacement", [("read", exc)]
                ) from exc
            if fault_report is not None:
                fault_report.record_skipped_tile((pos.row, pos.col), exc)
            if metrics is not None:
                metrics.counter("read.skipped_tiles").inc()
            if journal is not None:
                # Forensic record only: skips are retried on resume (the
                # fault may have been transient), so replay ignores these.
                journal.record_skipped_tile(pos.row, pos.col, str(exc))
            return None

    def mark_failed(pos: GridPosition) -> None:
        failed_tiles.add(pos)
        # Its pairs can never be computed: mark them done so the early-free
        # policy still releases the surviving neighbours' transforms.
        for pair in pairs_for_tile(grid, pos.row, pos.col):
            if pair not in pairs_done:
                pairs_done.add(pair)
                skipped_pairs.add(pair)
                if metrics is not None:
                    metrics.counter("pairs.skipped").inc()
                if fault_report is not None:
                    fault_report.record_skipped_pair(
                        pair.direction.name.lower(),
                        pair.second.row,
                        pair.second.col,
                        reason=f"tile ({pos.row},{pos.col}) unreadable",
                    )

    def ensure_loaded(pos: GridPosition) -> None:
        if pos in tiles or pos in failed_tiles:
            return
        # A resumed tile with every incident pair already journaled
        # contributes nothing: don't even read it.
        if all(p in pairs_done for p in pairs_for_tile(grid, pos.row, pos.col)):
            return
        with tracer.span("read", "sequential", key=str(pos)):
            pixels = load_with_policy(pos)
        if pixels is None:
            mark_failed(pos)
            return
        tiles[pos] = np.asarray(pixels, dtype=np.float64)
        stats["reads"] += 1
        if coarse is not None:
            # Coarse mode's per-tile product is the downsampled spectrum:
            # the full-resolution transform is never computed up front
            # (the occasional gate-rejected pair recomputes it inside the
            # fallback instead of every pair paying for it always).
            with tracer.span("downsample", "sequential", key=str(pos)):
                small = downsample(tiles[pos], coarse.factor)
            with tracer.span("fft", "sequential", key=str(pos)):
                ffts[pos] = forward_fft(
                    small,
                    coarse_transform_shape(tuple(fft_shape), coarse.factor)
                    if fft_shape is not None else None,
                    cache, planning, real=real_transforms, stats=stats,
                )
        else:
            with tracer.span("fft", "sequential", key=str(pos)):
                ffts[pos] = forward_fft(
                    tiles[pos], fft_shape, cache, planning,
                    real=real_transforms, stats=stats,
                )
        if use_tile_stats:
            # Per-tile summed-area tables: computed once, shared by the
            # tile's up-to-four incident pairs, released with the FFT.
            with tracer.span("tilestats", "sequential", key=str(pos)):
                tstats[pos] = TileStats(tiles[pos])
        stats["ffts"] += 1
        stats["peak_live_transforms"] = max(
            stats["peak_live_transforms"], len(ffts)
        )

    def maybe_release(pos: GridPosition) -> None:
        if pos not in ffts:
            return
        if all(p in pairs_done for p in pairs_for_tile(grid, pos.row, pos.col)):
            del ffts[pos]
            del tiles[pos]
            tstats.pop(pos, None)

    for pos in traverse(grid, traversal):
        ensure_loaded(pos)
        for pair in pairs_for_tile(grid, pos.row, pos.col):
            if pair in pairs_done:
                continue
            if pair.first in ffts and pair.second in ffts:
                with tracer.span("pair", "sequential", key=str(pair)):
                    if coarse is not None:
                        r = coarse_pciam(
                            tiles[pair.first],
                            tiles[pair.second],
                            coarse,
                            cfft_i=ffts[pair.first],
                            cfft_j=ffts[pair.second],
                            fft_shape=fft_shape,
                            ccf_mode=ccf_mode,
                            n_peaks=n_peaks,
                            real_transforms=real_transforms,
                            subpixel=subpixel,
                            cache=cache,
                            planning=planning,
                            stats_i=tstats.get(pair.first),
                            stats_j=tstats.get(pair.second),
                            workspace=ensure_workspace(
                                coarse_transform_shape(
                                    tuple(fft_shape or tiles[pair.first].shape),
                                    coarse.factor,
                                )
                            ),
                            use_tile_stats=use_tile_stats,
                            stats=stats,
                        )
                        if metrics is not None:
                            name = (
                                "coarse.hits"
                                if r.provenance == "coarse"
                                else "coarse.fallbacks"
                            )
                            metrics.counter(name).inc()
                    else:
                        r = pciam(
                            tiles[pair.first],
                            tiles[pair.second],
                            fft_i=ffts[pair.first],
                            fft_j=ffts[pair.second],
                            fft_shape=fft_shape,
                            ccf_mode=ccf_mode,
                            n_peaks=n_peaks,
                            real_transforms=real_transforms,
                            subpixel=subpixel,
                            cache=cache,
                            planning=planning,
                            stats_i=tstats.get(pair.first),
                            stats_j=tstats.get(pair.second),
                            workspace=ensure_workspace(
                                fft_shape or tiles[pair.first].shape
                            ),
                            use_tile_stats=use_tile_stats,
                        )
                t = Translation.from_pciam(r, subpixel=subpixel)
                result.set(pair.direction, pair.second.row, pair.second.col, t)
                if journal is not None:
                    journal.record_pair(
                        pair.direction.value, pair.second.row,
                        pair.second.col, t,
                    )
                pairs_done.add(pair)
                stats["pairs"] += 1
        # Release this tile and any neighbour that just completed.
        maybe_release(pos)
        for pair in pairs_for_tile(grid, pos.row, pos.col):
            maybe_release(pair.first if pair.second == pos else pair.second)

    if arena is not None and workspace is not None:
        arena.release(workspace)
    if failed_tiles or skipped_pairs:
        stats["skipped_tiles"] = sorted((p.row, p.col) for p in failed_tiles)
        stats["skipped_pairs"] = len(skipped_pairs)
    result.stats = stats
    if not result.is_complete() and not failed_tiles:  # pragma: no cover
        raise RuntimeError(
            f"displacement phase incomplete: {result.pair_count()} pairs of "
            f"{2 * rows * cols - rows - cols}"
        )
    return result
