"""Block-mean downsampling shared by the viewer pyramid and coarse registration.

Block averaging (rather than strided subsampling) low-passes before
decimation, so consumers never alias: zoomed-out pyramid renders stay
smooth, and the coarse-pass phase correlation
(:mod:`repro.core.coarse`) sees the same anti-aliased content a
physically lower-magnification acquisition would have produced --
which is what keeps its peak within ~1 coarse pixel of the full-
resolution one.

Edge blocks that do not divide evenly are edge-padded (replicating the
last row/column) before averaging, so the output shape is always
``ceil(h / factor) x ceil(w / factor)`` and border content is neither
dropped nor darkened by zero padding.
"""

from __future__ import annotations

import numpy as np


def downsample(tile: np.ndarray, factor: int) -> np.ndarray:
    """Block-mean downsample by an integer factor (edge blocks padded).

    ``factor == 1`` is the identity up to a float64 conversion.  The
    output is always float64 and C-contiguous, ready for
    :func:`repro.core.pciam.forward_fft` without further copies.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return np.asarray(tile, dtype=np.float64)
    h, w = tile.shape
    ph = (-h) % factor
    pw = (-w) % factor
    a = np.asarray(tile, dtype=np.float64)
    if ph or pw:
        a = np.pad(a, ((0, ph), (0, pw)), mode="edge")
    # Accumulate the factor^2 strided phases instead of reshape().mean():
    # the strided adds vectorize over contiguous output rows and run ~8x
    # faster, which matters now that this sits on the coarse-pass hot
    # path (per tile, per registration) and not only under the viewer.
    out = a[0::factor, 0::factor].copy()
    for i in range(factor):
        for j in range(factor):
            if i == 0 and j == 0:
                continue
            out += a[i::factor, j::factor]
    out *= 1.0 / (factor * factor)
    return out


def downsampled_shape(
    shape: tuple[int, int], factor: int
) -> tuple[int, int]:
    """Shape :func:`downsample` produces for an input of ``shape``."""
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return tuple(-(-int(n) // factor) for n in shape)  # type: ignore[return-value]
