"""Fixed-size buffer pools with blocking acquire.

The paper (Section IV.B): "The system allocates GPU memory only once ...
The pool consists of a fixed number of buffers, one per transform ...  The
size of the pool effectively limits the number of images in flight."

The same discipline is applied host-side in the pipelined CPU
implementation.  ``acquire`` blocks until a buffer is recycled, which is
how the pool throttles the reader stage: with the chained-diagonal
traversal the pipeline keeps making progress as long as the pool exceeds
the grid's smallest dimension (tested in ``tests/memmodel``).
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np


class PoolExhausted(Exception):
    """Raised by non-blocking acquire on an empty pool."""


class BufferPool:
    """A fixed set of equally-shaped NumPy buffers.

    Buffers are identified by index; ``acquire`` hands out an index (and
    the backing array), ``release`` returns it.  The pool never allocates
    after construction -- exactly the paper's one-time-allocation rule.
    """

    def __init__(self, count: int, shape: tuple[int, ...], dtype=np.complex128):
        if count < 1:
            raise ValueError(f"pool needs at least one buffer, got {count}")
        self.count = count
        self.shape = tuple(shape)
        self._buffers = [np.empty(self.shape, dtype=dtype) for _ in range(count)]
        self._free: deque[int] = deque(range(count))
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self.peak_in_use = 0
        self.total_acquires = 0

    @property
    def free_count(self) -> int:
        with self._lock:
            return len(self._free)

    @property
    def in_use(self) -> int:
        return self.count - self.free_count

    def acquire(self, blocking: bool = True, timeout: float | None = None) -> int:
        """Take a buffer index; blocks (or raises :class:`PoolExhausted`)."""
        with self._available:
            while not self._free:
                if not blocking:
                    raise PoolExhausted(f"all {self.count} buffers in use")
                if not self._available.wait(timeout):
                    raise TimeoutError(
                        f"pool exhausted for {timeout}s ({self.count} buffers); "
                        f"likely pool too small for the traversal wavefront"
                    )
            idx = self._free.popleft()
            self.total_acquires += 1
            used = self.count - len(self._free)
            self.peak_in_use = max(self.peak_in_use, used)
            return idx

    def release(self, idx: int) -> None:
        if not 0 <= idx < self.count:
            raise ValueError(f"buffer index {idx} outside pool of {self.count}")
        with self._available:
            if idx in self._free:
                raise ValueError(f"double release of buffer {idx}")
            self._free.append(idx)
            self._available.notify()

    def array(self, idx: int) -> np.ndarray:
        """The backing array for an acquired index."""
        if not 0 <= idx < self.count:
            raise ValueError(f"buffer index {idx} outside pool of {self.count}")
        return self._buffers[idx]
