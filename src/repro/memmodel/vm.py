"""Virtual-memory cost model: the Fig. 5 performance cliff.

Fig. 5 plots the speedup of a multi-threaded FFT workload that never frees
transforms, on a 24 GB machine: speedup "falls off a cliff, across all
thread counts, when the tile count changes from 832 to 864" -- i.e. when
the transform working set (~22 MB per tile) crosses physical RAM and the
pager starts thrashing.

:class:`VirtualMemoryModel` turns a working-set trajectory into a cost
multiplier.  Under-commit costs 1.0x.  Over-commit makes every touched
page a candidate for eviction; with an LRU pager and a working set ``W``
over RAM ``R``, the probability a touched transform has been paged out is
``1 - R/W``, and servicing a fault costs ``penalty`` times a normal
access.  The resulting multiplier::

    1 + penalty * max(0, 1 - R/W)

is deliberately simple -- the figure's point is the *cliff location*, which
depends only on where ``W`` crosses ``R``, and its *depth*, set by the
disk/RAM speed ratio.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VirtualMemoryModel:
    """Paging cost model for a machine with ``ram_bytes`` of RAM.

    ``page_fault_penalty`` is the slowdown of a faulting access relative to
    a resident access (disk vs RAM bandwidth; ~50x for the 2012-era SATA
    disks of the paper's evaluation machine).  ``resident_fraction_floor``
    caps thrashing: even a badly over-committed process keeps *some* pages
    resident.
    """

    ram_bytes: float
    page_fault_penalty: float = 50.0
    resident_fraction_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.ram_bytes <= 0:
            raise ValueError("RAM size must be positive")
        if self.page_fault_penalty < 0:
            raise ValueError("penalty must be non-negative")

    def slowdown(self, working_set_bytes: float) -> float:
        """Cost multiplier for touching a working set of the given size."""
        if working_set_bytes < 0:
            raise ValueError("working set must be non-negative")
        if working_set_bytes <= self.ram_bytes:
            return 1.0
        resident = max(self.ram_bytes / working_set_bytes, self.resident_fraction_floor)
        fault_prob = 1.0 - resident
        return 1.0 + self.page_fault_penalty * fault_prob

    def cliff_tile_count(self, bytes_per_tile: float) -> int:
        """First tile count whose working set exceeds RAM.

        For the paper's numbers (24 GB RAM, ~22 MB FFTW transform + ~2.9 MB
        image + ~11 MB of per-tile float image data), the cliff lands
        between 832 and 864 tiles, matching Fig. 5.
        """
        if bytes_per_tile <= 0:
            raise ValueError("per-tile footprint must be positive")
        return int(self.ram_bytes // bytes_per_tile) + 1
