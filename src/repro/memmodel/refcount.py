"""Tile reference counting: the paper's early-release policy.

"Every tile has a reference count that is decremented when the tile is used
to compute a relative displacement.  The system recycles the GPU buffer
associated with a tile when its reference count reaches zero" (Section
IV.B).  The initial count is the tile's incident-pair count: 4 interior, 3
edge, 2 corner, less on degenerate 1xN grids.
"""

from __future__ import annotations

import threading

from repro.grid.neighbors import pairs_for_tile
from repro.grid.tile_grid import GridPosition, TileGrid


class RefCounter:
    """Thread-safe per-tile reference counts over a grid."""

    def __init__(self, grid: TileGrid) -> None:
        self.grid = grid
        self._lock = threading.Lock()
        self._counts = {
            pos: len(pairs_for_tile(grid, pos.row, pos.col))
            for pos in grid.positions()
        }

    def count(self, pos: GridPosition) -> int:
        with self._lock:
            return self._counts[pos]

    def initial_count(self, pos: GridPosition) -> int:
        """2/3/4 depending on corner/edge/interior (grid-degeneracy aware)."""
        return len(pairs_for_tile(self.grid, pos.row, pos.col))

    def decrement(self, pos: GridPosition) -> bool:
        """Decrement; returns ``True`` when the tile just became releasable.

        Raises on underflow -- a double decrement is always a scheduling
        bug upstream, never something to paper over.
        """
        with self._lock:
            c = self._counts[pos]
            if c <= 0:
                raise ValueError(f"reference count underflow for {pos}")
            self._counts[pos] = c - 1
            return c == 1

    def live_count(self) -> int:
        """Tiles not yet fully consumed."""
        with self._lock:
            return sum(1 for c in self._counts.values() if c > 0)
