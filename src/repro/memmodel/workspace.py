"""Per-worker pair workspaces: reusable scratch for the PCIAM hot path.

Each registered pair needs three scratch surfaces:

``ncc``
    The normalized cross-power spectrum (complex128, spectrum-shaped) --
    written through the ``out=`` parameter of
    :func:`repro.core.ncc.normalized_correlation` and then consumed (and
    clobbered, via ``overwrite_input=True``) by the inverse transform.
``ncc_mag``
    Magnitude scratch for the NCC normalization (float64, spectrum-shaped).
``peak_mag``
    Magnitude scratch for the peak reduction (float64, spatial-shaped).

Without reuse these three are freshly allocated *per pair* -- ~22 MB of
churn at the paper's 1392x1040 tile size, which dominates small-grid
runtime.  A :class:`WorkspaceArena` allocates them once per worker (the
paper's one-time-allocation rule, Section IV.B, applied host-side) from
fixed :class:`~repro.memmodel.pool.BufferPool` instances; workers acquire a
:class:`PairWorkspace` for the duration of their run and every pair they
process reuses the same memory.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

from repro.fftlib.plans import spectrum_shape
from repro.memmodel.pool import BufferPool


class PairWorkspace:
    """One worker's scratch buffers, handed out by :class:`WorkspaceArena`."""

    __slots__ = ("ncc", "ncc_mag", "peak_mag", "_indices")

    def __init__(
        self,
        ncc: np.ndarray,
        ncc_mag: np.ndarray,
        peak_mag: np.ndarray,
        indices: tuple[int, int, int],
    ) -> None:
        self.ncc = ncc
        self.ncc_mag = ncc_mag
        self.peak_mag = peak_mag
        self._indices = indices

    @property
    def nbytes(self) -> int:
        return self.ncc.nbytes + self.ncc_mag.nbytes + self.peak_mag.nbytes


class WorkspaceArena:
    """Fixed arena of :class:`PairWorkspace` sets (one per concurrent worker).

    ``real=True`` sizes the complex surfaces for the half-spectrum
    ``(h, w//2+1)``; ``real=False`` for the full complex spectrum.  The
    arena never allocates after construction; ``acquire`` blocks when all
    ``count`` workspaces are out (which would indicate a worker-count
    mismatch, so a generous timeout raises instead of deadlocking).
    """

    def __init__(
        self,
        fft_shape: tuple[int, int],
        real: bool = True,
        count: int = 1,
    ) -> None:
        self.fft_shape = tuple(int(n) for n in fft_shape)
        self.real = real
        self.count = int(count)
        spec = spectrum_shape(self.fft_shape) if real else self.fft_shape
        self.spectrum_shape = spec
        self._ncc = BufferPool(self.count, spec, dtype=np.complex128)
        self._mag = BufferPool(self.count, spec, dtype=np.float64)
        self._peak = BufferPool(self.count, self.fft_shape, dtype=np.float64)

    @property
    def bytes_per_workspace(self) -> int:
        return (
            self._ncc.array(0).nbytes
            + self._mag.array(0).nbytes
            + self._peak.array(0).nbytes
        )

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_workspace * self.count

    def acquire(self, timeout: float | None = 60.0) -> PairWorkspace:
        i = self._ncc.acquire(timeout=timeout)
        j = self._mag.acquire(timeout=timeout)
        k = self._peak.acquire(timeout=timeout)
        return PairWorkspace(
            self._ncc.array(i), self._mag.array(j), self._peak.array(k), (i, j, k)
        )

    def release(self, ws: PairWorkspace) -> None:
        i, j, k = ws._indices
        self._ncc.release(i)
        self._mag.release(j)
        self._peak.release(k)

    @contextmanager
    def workspace(self, timeout: float | None = 60.0):
        ws = self.acquire(timeout=timeout)
        try:
            yield ws
        finally:
            self.release(ws)

    def stats(self) -> dict:
        """Acquire accounting for metrics/tests (arena never re-allocates)."""
        return {
            "count": self.count,
            "bytes_per_workspace": self.bytes_per_workspace,
            "total_bytes": self.total_bytes,
            "acquires": self._ncc.total_acquires,
            "peak_in_use": self._ncc.peak_in_use,
        }


class ThreadLocalWorkspaces:
    """Hands each calling thread its own workspace from a shared arena.

    Pipelined stages run their pair work on an anonymous worker pool; a
    worker acquires its workspace lazily on first use and keeps it for the
    pipeline's lifetime (size the arena to the worker count).
    ``release_all`` returns every issued workspace once the pipeline has
    drained.
    """

    def __init__(self, arena: WorkspaceArena) -> None:
        self.arena = arena
        self._local = threading.local()
        self._issued: list[PairWorkspace] = []
        self._lock = threading.Lock()

    def get(self) -> PairWorkspace:
        ws = getattr(self._local, "ws", None)
        if ws is None:
            ws = self.arena.acquire()
            self._local.ws = ws
            with self._lock:
                self._issued.append(ws)
        return ws

    def release_all(self) -> None:
        with self._lock:
            for ws in self._issued:
                self.arena.release(ws)
            self._issued.clear()
        self._local = threading.local()
