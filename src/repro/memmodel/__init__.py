"""Memory-management substrate.

Three pieces the paper's scaling story rests on:

- :mod:`repro.memmodel.pool` -- fixed-size buffer pools with blocking
  acquire (the GPU transform pool of Section IV.B, also reused host-side);
- :mod:`repro.memmodel.refcount` -- transform reference counting / early
  release policy (Section IV.A);
- :mod:`repro.memmodel.vm` -- a virtual-memory cost model reproducing the
  Fig. 5 performance cliff when the working set exceeds physical RAM.
"""

from repro.memmodel.pool import BufferPool, PoolExhausted
from repro.memmodel.refcount import RefCounter
from repro.memmodel.vm import VirtualMemoryModel

__all__ = ["BufferPool", "PoolExhausted", "RefCounter", "VirtualMemoryModel"]
