"""Shared-memory arena: zero-copy ndarray slabs for process workers.

The process-parallel backend (:mod:`repro.impls.proc_cpu`, striped
composition in :mod:`repro.core.compose`) moves tiles, forward spectra,
:class:`~repro.core.tilestats.TileStats` tables and the output canvas
between workers without serializing a single pixel.  The mechanism is a
family of named ``multiprocessing.shared_memory`` segments, each wrapped
as a :class:`SharedTileSlab` -- a fixed stack of same-shape ndarray slots
that any process can view in place.

Lifecycle rules (the part POSIX shared memory makes easy to get wrong):

- exactly **one** process -- the creator -- owns each segment's name and
  is responsible for ``unlink``;
- attaching processes *deregister* the segment from their
  ``resource_tracker`` so a worker's exit can never unlink a segment the
  parent is still using (CPython registers every attach by default,
  which makes the first worker to exit destroy the arena);
- the creating :class:`ShmArena` unlinks everything on ``close()``, on
  interpreter exit (``atexit``), and -- because the segments are also
  registered with the *creator's* resource tracker -- even after SIGKILL,
  when the tracker process notices the dead parent and sweeps the leak;
- :func:`leaked_segments` / :func:`cleanup_stale` scan ``/dev/shm`` by
  name prefix so tests (and paranoid callers) can assert nothing
  survived a crash.
"""

from __future__ import annotations

import atexit
import os
import secrets
import sys
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

#: Every arena segment name starts with this, so stale segments are
#: recognizable in /dev/shm no matter which run leaked them.
SHM_NAME_PREFIX = "repro-shm"

_DEV_SHM = Path("/dev/shm")


def _unregister(name: str) -> None:
    """Drop a segment from this process's resource tracker (attach side)."""
    try:  # pragma: no cover - tracker internals vary across minor versions
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class SharedTileSlab:
    """A named shared-memory stack of ``slots`` same-shape ndarrays.

    The slab's backing array has shape ``(slots, *item_shape)``; workers
    address individual items with :meth:`slot`, which returns a zero-copy
    view.  Create in the parent (``create=True``), attach in workers from
    the :meth:`spec` triple.
    """

    def __init__(
        self,
        name: str,
        slots: int,
        item_shape: tuple[int, ...],
        dtype,
        create: bool = False,
    ) -> None:
        self.name = name
        self.slots = int(slots)
        self.item_shape = tuple(int(n) for n in item_shape)
        self.dtype = np.dtype(dtype)
        self.shape = (self.slots, *self.item_shape)
        nbytes = int(np.prod(self.shape)) * self.dtype.itemsize
        self._shm = shared_memory.SharedMemory(
            name=name, create=create, size=max(1, nbytes)
        )
        self._owner = create
        if not create:
            # The parent owns the name; this process must never unlink it.
            _unregister(self._shm.name.lstrip("/"))
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)

    @classmethod
    def attach(cls, spec: tuple) -> "SharedTileSlab":
        """Open an existing slab from a :meth:`spec` tuple (worker side)."""
        name, slots, item_shape, dtype_str = spec
        return cls(name, slots, tuple(item_shape), np.dtype(dtype_str), create=False)

    def spec(self) -> tuple:
        """Picklable identity a worker needs to :meth:`attach`."""
        return (self.name, self.slots, self.item_shape, self.dtype.str)

    def slot(self, i: int) -> np.ndarray:
        """Zero-copy view of item ``i``."""
        return self.array[i]

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    def close(self) -> None:
        """Release this process's mapping (does not destroy the segment)."""
        # Views into the buffer must be dropped before SharedMemory.close()
        # on CPython (exported pointers keep the mmap alive).
        self.array = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray views; leak the map
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        self._owner = False


class ShmArena:
    """Owns a family of slabs under one run-unique name prefix.

    The arena is the single cleanup point: ``close()`` (or the context
    manager, or the ``atexit`` hook) closes and unlinks every slab it
    created.  Workers never construct an arena -- they attach individual
    slabs from the ``spec()`` mapping the parent ships them.
    """

    def __init__(self, prefix: str | None = None) -> None:
        if prefix is None:
            prefix = f"{SHM_NAME_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        self.prefix = prefix
        self._slabs: dict[str, SharedTileSlab] = {}
        self._closed = False
        atexit.register(self._atexit_close)

    def slab(self, key: str, slots: int, item_shape: tuple[int, ...],
             dtype) -> SharedTileSlab:
        """Create (or return the existing) slab named ``key``."""
        if self._closed:
            raise RuntimeError("arena is closed")
        if key in self._slabs:
            return self._slabs[key]
        slab = SharedTileSlab(
            f"{self.prefix}-{key}", slots, item_shape, dtype, create=True
        )
        self._slabs[key] = slab
        return slab

    def spec(self) -> dict[str, tuple]:
        """Picklable ``{key: slab spec}`` mapping for worker attachment."""
        return {k: s.spec() for k, s in self._slabs.items()}

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self._slabs.values())

    def close(self) -> None:
        """Close mappings and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for slab in self._slabs.values():
            slab.close()
            slab.unlink()
        self._slabs.clear()
        atexit.unregister(self._atexit_close)

    def _atexit_close(self) -> None:  # pragma: no cover - interpreter exit
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def leaked_segments(prefix: str = SHM_NAME_PREFIX) -> list[str]:
    """Names of live ``/dev/shm`` segments starting with ``prefix``.

    Used by the lifecycle tests to assert an arena left nothing behind
    (normal exit, worker crash, or SIGKILL-with-tracker-sweep).  Returns
    ``[]`` on platforms without a /dev/shm view.
    """
    if not _DEV_SHM.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in _DEV_SHM.iterdir() if p.name.startswith(prefix))


def cleanup_stale(prefix: str) -> list[str]:
    """Unlink every ``/dev/shm`` segment under ``prefix``; returns names.

    Defensive sweep for the rare case where both the creator *and* its
    resource tracker died uncleanly (e.g. SIGKILL of the whole process
    group).  Safe to call with a run-unique prefix only -- sweeping the
    bare :data:`SHM_NAME_PREFIX` would destroy concurrent runs' arenas.
    """
    removed = []
    for name in leaked_segments(prefix):
        try:
            seg = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:  # pragma: no cover - raced with tracker
            continue
        _unregister(name)
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - raced with tracker
            pass
        removed.append(name)
    return removed


__all__ = [
    "SHM_NAME_PREFIX",
    "SharedTileSlab",
    "ShmArena",
    "leaked_segments",
    "cleanup_stale",
]
