"""Storage substrate: a from-scratch TIFF codec and tile-dataset layout.

The paper's implementation reads 16-bit grayscale TIFF tiles through libTIFF.
This package replaces libTIFF with a minimal pure-Python codec
(:mod:`repro.io.tiff`) supporting exactly the class of files optical
microscopes emit in the paper's experiments -- single-plane, uncompressed,
striped, 8/16-bit grayscale -- plus a dataset layer
(:mod:`repro.io.dataset`) implementing the row/column file-naming patterns
used to address a tile grid on disk.
"""

from repro.io.dataset import TileDataset, DatasetMetadata, FilePattern
from repro.io.tiff import TiffError, read_tiff, write_tiff

__all__ = [
    "TiffError",
    "read_tiff",
    "write_tiff",
    "TileDataset",
    "DatasetMetadata",
    "FilePattern",
]
