"""Tile-dataset layout: file naming, metadata sidecar, lazy access.

A microscope acquisition in the paper is a directory of TIFF tiles addressed
by grid position (e.g. ``img_r03_c17.tif``) plus acquisition parameters.
:class:`TileDataset` provides lazy, index-based access to such a directory so
the reader stage of the pipeline can stream tiles without ever holding the
full grid in memory (the paper's 42x59 grid is 6.68 GB on disk).
"""

from __future__ import annotations

import json
import re
from collections import OrderedDict
from dataclasses import dataclass, field, asdict
from pathlib import Path

import numpy as np

from repro.io.tiff import read_tiff, write_tiff

METADATA_FILENAME = "dataset.json"


class TileCache:
    """Byte-budgeted LRU cache in front of a ``(row, col) -> array`` loader.

    Memory policy for out-of-core composition: the streaming canvas visits
    each tile once per stripe it spans, so without caching a tile crossing
    k stripes is decoded k times.  A small LRU keyed on grid position keeps
    the working set (roughly one tile row) resident and makes decodes O(1)
    amortized, the same role feabas gives ``loader_config.cache_size``.

    ``capacity_bytes`` bounds the sum of cached ``arr.nbytes``; entries are
    evicted least-recently-used.  Tiles larger than the whole budget are
    served load-through without being cached.  Cached arrays are returned
    read-only (they are shared between calls); callers that need to mutate
    must copy.

    Counters (``hits``/``misses``/``evictions``/``current_bytes``/
    ``peak_bytes``) feed the observability gauges; :meth:`stats` snapshots
    them.
    """

    def __init__(self, loader, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        self._loader = loader
        self.capacity_bytes = int(capacity_bytes)
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.current_bytes = 0
        self.peak_bytes = 0

    def load(self, row: int, col: int) -> np.ndarray:
        key = (row, col)
        arr = self._entries.get(key)
        if arr is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return arr
        self.misses += 1
        arr = np.asarray(self._loader(row, col))
        if arr.nbytes > self.capacity_bytes:
            return arr  # load-through: would evict the entire cache for nothing
        while self._entries and self.current_bytes + arr.nbytes > self.capacity_bytes:
            _, old = self._entries.popitem(last=False)
            self.current_bytes -= old.nbytes
            self.evictions += 1
        arr = arr.view()
        arr.setflags(write=False)
        self._entries[key] = arr
        self.current_bytes += arr.nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        return arr

    __call__ = load

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.current_bytes = 0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "current_bytes": self.current_bytes,
            "peak_bytes": self.peak_bytes,
            "capacity_bytes": self.capacity_bytes,
        }


@dataclass(frozen=True)
class FilePattern:
    """A ``str.format``-style tile file pattern.

    Two addressing styles, matching what microscope software emits:

    - grid patterns with ``row``/``col`` fields, e.g.
      ``img_r{row:03d}_c{col:03d}.tif``;
    - sequence patterns with a single ``seq`` field, e.g.
      ``img_{seq:04d}.tif`` -- tiles numbered in *acquisition order*,
      which the dataset maps back to grid positions through its scan-path
      metadata (origin corner + raster/serpentine numbering).
    """

    pattern: str = "img_r{row:03d}_c{col:03d}.tif"

    def __post_init__(self) -> None:
        # Fail fast on patterns that cannot address the grid.
        if self.is_sequential:
            try:
                a = self.pattern.format(seq=0)
                b = self.pattern.format(seq=1)
            except (KeyError, IndexError) as exc:
                raise ValueError(
                    f"pattern {self.pattern!r} must use field 'seq'"
                ) from exc
        else:
            try:
                a = self.pattern.format(row=0, col=0)
                b = self.pattern.format(row=1, col=2)
            except (KeyError, IndexError) as exc:
                raise ValueError(
                    f"pattern {self.pattern!r} must use named fields "
                    f"'row'/'col' (or a single 'seq')"
                ) from exc
        if a == b:
            raise ValueError(f"pattern {self.pattern!r} does not vary")

    @property
    def is_sequential(self) -> bool:
        return "{seq" in self.pattern

    def filename(self, row: int, col: int, seq: int | None = None) -> str:
        if self.is_sequential:
            if seq is None:
                raise ValueError(
                    f"sequential pattern {self.pattern!r} needs a sequence number"
                )
            return self.pattern.format(seq=seq)
        return self.pattern.format(row=row, col=col)

    def parse(self, name: str):
        """Recover ``(row, col)`` or ``("seq", n)``; ``None`` if no match."""
        rx = ""
        for part in re.split(r"(\{row[^}]*\}|\{col[^}]*\}|\{seq[^}]*\})", self.pattern):
            if part.startswith("{row"):
                rx += r"(?P<row>\d+)"
            elif part.startswith("{col"):
                rx += r"(?P<col>\d+)"
            elif part.startswith("{seq"):
                rx += r"(?P<seq>\d+)"
            else:
                rx += re.escape(part)
        m = re.fullmatch(rx, name)
        if not m:
            return None
        if self.is_sequential:
            return ("seq", int(m.group("seq")))
        return int(m.group("row")), int(m.group("col"))


@dataclass
class DatasetMetadata:
    """Acquisition parameters stored as a JSON sidecar next to the tiles.

    ``true_positions`` (ground-truth global tile origins, ``[rows][cols][2]``
    as ``(y, x)``) is only present for synthetic datasets; real microscopes
    cannot provide it.  ``overlap`` is the nominal fractional overlap the
    stage was programmed for (the paper's displacement search exists exactly
    because the realized overlap differs from this value).
    """

    rows: int
    cols: int
    tile_height: int
    tile_width: int
    overlap: float
    pattern: str = FilePattern().pattern
    bit_depth: int = 16
    true_positions: list | None = None
    stage_model: dict = field(default_factory=dict)
    #: Acquisition path for sequence-numbered patterns (values of
    #: :class:`repro.grid.tile_grid.Origin` / ``Numbering``).
    origin: str = "ul"
    numbering: str = "row"

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2)

    @staticmethod
    def from_json(blob: str) -> "DatasetMetadata":
        return DatasetMetadata(**json.loads(blob))


class TileDataset:
    """Lazy access to a grid of TIFF tiles on disk.

    Tiles are loaded per request (and optionally converted to ``float64``,
    the working precision of the correlation math).  The dataset never
    caches pixels; memory policy belongs to the implementations, which the
    paper shows is the crux of scaling (Fig. 5).
    """

    def __init__(self, directory: str | Path, metadata: DatasetMetadata | None = None):
        self.directory = Path(directory)
        if metadata is None:
            meta_path = self.directory / METADATA_FILENAME
            if not meta_path.exists():
                raise FileNotFoundError(
                    f"no {METADATA_FILENAME} in {self.directory}; pass metadata "
                    f"explicitly for foreign datasets"
                )
            metadata = DatasetMetadata.from_json(meta_path.read_text())
        self.metadata = metadata
        self.pattern = FilePattern(metadata.pattern)
        # Sequence-numbered patterns address tiles by acquisition order:
        # build the scan-path grid that maps (row, col) -> sequence number.
        self._seq_grid = None
        if self.pattern.is_sequential:
            from repro.grid.tile_grid import Numbering, Origin, TileGrid

            self._seq_grid = TileGrid(
                metadata.rows,
                metadata.cols,
                origin=Origin(metadata.origin),
                numbering=Numbering(metadata.numbering),
            )

    # -- geometry ----------------------------------------------------------

    @property
    def rows(self) -> int:
        return self.metadata.rows

    @property
    def cols(self) -> int:
        return self.metadata.cols

    @property
    def tile_shape(self) -> tuple[int, int]:
        return (self.metadata.tile_height, self.metadata.tile_width)

    def __len__(self) -> int:
        return self.rows * self.cols

    # -- access ------------------------------------------------------------

    def path(self, row: int, col: int) -> Path:
        self._check(row, col)
        seq = None
        if self._seq_grid is not None:
            seq = self._seq_grid.sequence_of(row, col)
        return self.directory / self.pattern.filename(row, col, seq=seq)

    def _check(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(
                f"tile ({row},{col}) outside {self.rows}x{self.cols} grid"
            )

    def load(self, row: int, col: int, dtype=np.float64) -> np.ndarray:
        """Read one tile; raises ``FileNotFoundError``/``TiffError`` eagerly."""
        arr = read_tiff(self.path(row, col))
        if arr.shape != self.tile_shape:
            raise ValueError(
                f"tile ({row},{col}) has shape {arr.shape}, metadata says "
                f"{self.tile_shape}"
            )
        if dtype is not None:
            arr = arr.astype(dtype)
        return arr

    def true_position(self, row: int, col: int) -> tuple[int, int] | None:
        """Ground-truth ``(y, x)`` global origin if known (synthetic data)."""
        tp = self.metadata.true_positions
        if tp is None:
            return None
        y, x = tp[row][col]
        return int(y), int(x)

    # -- creation ----------------------------------------------------------

    @staticmethod
    def discover(
        directory: str | Path,
        pattern: str = FilePattern().pattern,
        overlap: float = 0.1,
        origin: str = "ul",
        numbering: str = "row",
    ) -> "TileDataset":
        """Adopt a foreign tile directory (no ``dataset.json``).

        Scans ``directory`` for files matching ``pattern``, infers the grid
        extent from the parsed row/column (or sequence) indices, reads one
        tile for its shape/bit depth, and synthesizes metadata.  ``overlap``
        is the *nominal* stage overlap the user knows from the microscope
        settings; the whole point of the paper is that the true overlaps
        are then measured, so a rough value is fine.

        Raises when no files match, when indices have holes, or when a
        sequence-numbered set does not fill a rectangle.
        """
        directory = Path(directory)
        fp = FilePattern(pattern)
        hits = []
        for f in sorted(directory.iterdir()):
            parsed = fp.parse(f.name)
            if parsed is not None:
                hits.append(parsed)
        if not hits:
            raise FileNotFoundError(
                f"no files matching {pattern!r} in {directory}"
            )
        if fp.is_sequential:
            seqs = sorted(n for _, n in hits)
            count = len(seqs)
            if seqs != list(range(count)):
                raise ValueError(
                    f"sequence numbers are not contiguous from 0 "
                    f"(found {seqs[:5]}...{seqs[-1]})"
                )
            # Without grid metadata a sequential set is ambiguous; require
            # the caller to re-create with explicit rows/cols via create().
            raise ValueError(
                "sequence-numbered datasets need explicit grid dimensions; "
                "write a dataset.json or use TileDataset.create()"
            )
        rows = max(r for r, _ in hits) + 1
        cols = max(c for _, c in hits) + 1
        found = set(hits)
        missing = [
            (r, c) for r in range(rows) for c in range(cols)
            if (r, c) not in found
        ]
        if missing:
            raise ValueError(
                f"grid has holes: missing {missing[:5]}"
                + ("..." if len(missing) > 5 else "")
            )
        first = read_tiff(directory / fp.filename(*hits[0]))
        meta = DatasetMetadata(
            rows=rows,
            cols=cols,
            tile_height=first.shape[0],
            tile_width=first.shape[1],
            overlap=float(overlap),
            pattern=pattern,
            bit_depth=8 if first.dtype == np.uint8 else 16,
            origin=origin,
            numbering=numbering,
        )
        return TileDataset(directory, meta)

    @staticmethod
    def create(
        directory: str | Path,
        tiles: np.ndarray,
        overlap: float,
        pattern: str = FilePattern().pattern,
        true_positions: np.ndarray | list | None = None,
        stage_model: dict | None = None,
        origin: str = "ul",
        numbering: str = "row",
    ) -> "TileDataset":
        """Write a ``[rows, cols, h, w]`` tile stack as a dataset directory.

        With a sequence-numbered ``pattern``, files are named in the
        acquisition order defined by ``origin``/``numbering`` (e.g. a
        serpentine stage path writes ``img_0000.tif`` top-left, then
        rightwards, then back along the next row).
        """
        tiles = np.asarray(tiles)
        if tiles.ndim != 4:
            raise ValueError(f"expected [rows, cols, h, w] stack, got {tiles.shape}")
        rows, cols, h, w = tiles.shape
        if tiles.dtype == np.uint8:
            bits = 8
        elif tiles.dtype == np.uint16:
            bits = 16
        else:
            raise ValueError(f"tiles must be uint8/uint16, got {tiles.dtype}")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        fp = FilePattern(pattern)
        seq_grid = None
        if fp.is_sequential:
            from repro.grid.tile_grid import Numbering, Origin, TileGrid

            seq_grid = TileGrid(rows, cols, origin=Origin(origin),
                                numbering=Numbering(numbering))
        for r in range(rows):
            for c in range(cols):
                seq = seq_grid.sequence_of(r, c) if seq_grid is not None else None
                write_tiff(directory / fp.filename(r, c, seq=seq), tiles[r, c])
        tp = None
        if true_positions is not None:
            tp = np.asarray(true_positions).astype(int).tolist()
        meta = DatasetMetadata(
            rows=rows,
            cols=cols,
            tile_height=h,
            tile_width=w,
            overlap=float(overlap),
            pattern=pattern,
            bit_depth=bits,
            true_positions=tp,
            stage_model=dict(stage_model or {}),
            origin=origin,
            numbering=numbering,
        )
        (directory / METADATA_FILENAME).write_text(meta.to_json())
        return TileDataset(directory, meta)
