"""Minimal TIFF 6.0 codec for microscope tiles.

Scope (everything the paper's datasets need, nothing more):

- baseline TIFF, little- or big-endian, classic (non-BigTIFF) headers;
- single image (first IFD read; chained IFDs ignored on read);
- grayscale (``PhotometricInterpretation`` 0/1), 1 sample/pixel;
- 8- or 16-bit unsigned integer samples;
- uncompressed (``Compression == 1``) or PackBits (``32773``) strips --
  the two baseline-TIFF compressions microscope software emits;
- strip-based layout (any ``RowsPerStrip``).

Unsupported structure raises :class:`TiffError` with a precise message; a
truncated or corrupt file never produces silently wrong pixels.  The writer
always emits little-endian, single-IFD, striped files that this reader (and
libTIFF/ImageJ) can read back bit-exactly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

# TIFF tag ids used here (TIFF 6.0 specification names).
TAG_IMAGE_WIDTH = 256
TAG_IMAGE_LENGTH = 257
TAG_BITS_PER_SAMPLE = 258
TAG_COMPRESSION = 259
TAG_PHOTOMETRIC = 262
TAG_IMAGE_DESCRIPTION = 270
TAG_STRIP_OFFSETS = 273
TAG_SAMPLES_PER_PIXEL = 277
TAG_ROWS_PER_STRIP = 278
TAG_STRIP_BYTE_COUNTS = 279
TAG_PLANAR_CONFIG = 284
TAG_SAMPLE_FORMAT = 339

TYPE_BYTE = 1
TYPE_ASCII = 2
TYPE_SHORT = 3
TYPE_LONG = 4

_TYPE_SIZE = {TYPE_BYTE: 1, TYPE_ASCII: 1, TYPE_SHORT: 2, TYPE_LONG: 4}


COMPRESSION_NONE = 1
COMPRESSION_PACKBITS = 32773


class TiffError(Exception):
    """Raised for malformed or unsupported TIFF structure."""


def packbits_encode(data: bytes) -> bytes:
    """PackBits (Apple RLE) encoding, TIFF 6.0 Section 9.

    Runs of >= 3 identical bytes become ``(1 - n, byte)``; everything else
    is emitted as literal groups of <= 128 bytes.
    """
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        # Measure the run starting at i.
        run = 1
        while i + run < n and run < 128 and data[i + run] == data[i]:
            run += 1
        if run >= 3:
            out.append(257 - run)  # two's complement of 1 - run
            out.append(data[i])
            i += run
            continue
        # Literal segment: until the next >= 3-byte run or 128 bytes.
        start = i
        i += run
        while i < n and i - start < 128:
            run = 1
            while i + run < n and run < 3 and data[i + run] == data[i]:
                run += 1
            if run >= 3:
                break
            i += run
        i = min(i, start + 128)
        out.append(i - start - 1)
        out.extend(data[start:i])
    return bytes(out)


def packbits_decode(data: bytes, expected: int) -> bytes:
    """Decode PackBits to exactly ``expected`` bytes (strict)."""
    out = bytearray()
    i = 0
    n = len(data)
    while len(out) < expected:
        if i >= n:
            raise TiffError(
                f"PackBits stream exhausted at {len(out)} of {expected} bytes"
            )
        ctrl = data[i]
        i += 1
        if ctrl < 128:  # literal run of ctrl + 1 bytes
            end = i + ctrl + 1
            if end > n:
                raise TiffError("PackBits literal run overruns the strip")
            out.extend(data[i:end])
            i = end
        elif ctrl == 128:  # no-op
            continue
        else:  # repeat next byte 257 - ctrl times
            if i >= n:
                raise TiffError("PackBits repeat run missing its byte")
            out.extend(bytes([data[i]]) * (257 - ctrl))
            i += 1
    if len(out) != expected:
        raise TiffError(
            f"PackBits decoded {len(out)} bytes, expected {expected}"
        )
    return bytes(out)


@dataclass
class _Entry:
    tag: int
    type: int
    count: int
    values: tuple


def _read_exact(data: bytes, offset: int, n: int, what: str) -> bytes:
    if offset < 0 or offset + n > len(data):
        raise TiffError(f"truncated file while reading {what} "
                        f"(need {n} bytes at offset {offset}, file is {len(data)})")
    return data[offset:offset + n]


def _parse_ifd_entry(data: bytes, off: int, bo: str) -> _Entry:
    raw = _read_exact(data, off, 12, "IFD entry")
    tag, typ, count = struct.unpack(bo + "HHI", raw[:8])
    size = _TYPE_SIZE.get(typ)
    if size is None:
        # Unknown value types are legal TIFF; carry no values.
        return _Entry(tag, typ, count, ())
    total = size * count
    if total <= 4:
        payload = raw[8:8 + total]
    else:
        (ptr,) = struct.unpack(bo + "I", raw[8:12])
        payload = _read_exact(data, ptr, total, f"tag {tag} values")
    fmt = {TYPE_BYTE: "B", TYPE_ASCII: "B", TYPE_SHORT: "H", TYPE_LONG: "I"}[typ]
    values = struct.unpack(bo + fmt * count, payload)
    return _Entry(tag, typ, count, values)


def read_tiff(path: str | Path, return_description: bool = False):
    """Read a grayscale TIFF into a NumPy array.

    Returns the pixel array (``uint8`` or ``uint16``, shape ``(h, w)``), or a
    ``(array, description)`` tuple when ``return_description`` is set (the
    description is the ``ImageDescription`` tag contents, ``""`` if absent).
    """
    data = Path(path).read_bytes()
    if len(data) < 8:
        raise TiffError("file too small to hold a TIFF header")
    if data[:2] == b"II":
        bo = "<"
    elif data[:2] == b"MM":
        bo = ">"
    else:
        raise TiffError(f"bad byte-order mark {data[:2]!r}")
    (magic, ifd_off) = struct.unpack(bo + "HI", data[2:8])
    if magic != 42:
        raise TiffError(f"bad TIFF magic {magic} (BigTIFF is not supported)")

    (n_entries,) = struct.unpack(bo + "H", _read_exact(data, ifd_off, 2, "IFD count"))
    entries: dict[int, _Entry] = {}
    for i in range(n_entries):
        e = _parse_ifd_entry(data, ifd_off + 2 + 12 * i, bo)
        entries[e.tag] = e

    def one(tag: int, default=None):
        e = entries.get(tag)
        if e is None or not e.values:
            if default is None:
                raise TiffError(f"required tag {tag} missing")
            return default
        return e.values[0]

    width = int(one(TAG_IMAGE_WIDTH))
    height = int(one(TAG_IMAGE_LENGTH))
    bits = int(one(TAG_BITS_PER_SAMPLE, 1))
    compression = int(one(TAG_COMPRESSION, 1))
    photometric = int(one(TAG_PHOTOMETRIC, 1))
    spp = int(one(TAG_SAMPLES_PER_PIXEL, 1))
    planar = int(one(TAG_PLANAR_CONFIG, 1))
    sample_format = int(one(TAG_SAMPLE_FORMAT, 1))

    if compression not in (COMPRESSION_NONE, COMPRESSION_PACKBITS):
        raise TiffError(
            f"unsupported compression {compression} (1=None, 32773=PackBits)"
        )
    if photometric not in (0, 1):
        raise TiffError(f"unsupported photometric {photometric} (grayscale only)")
    if spp != 1:
        raise TiffError(f"unsupported samples/pixel {spp} (grayscale only)")
    if planar != 1:
        raise TiffError(f"unsupported planar configuration {planar}")
    if sample_format != 1:
        raise TiffError(f"unsupported sample format {sample_format} (uint only)")
    if bits not in (8, 16):
        raise TiffError(f"unsupported bit depth {bits} (8/16 only)")
    if width <= 0 or height <= 0:
        raise TiffError(f"bad dimensions {width}x{height}")

    offsets_e = entries.get(TAG_STRIP_OFFSETS)
    counts_e = entries.get(TAG_STRIP_BYTE_COUNTS)
    if offsets_e is None or counts_e is None:
        raise TiffError("strip offsets/byte-counts missing (tiled TIFF unsupported)")
    if len(offsets_e.values) != len(counts_e.values):
        raise TiffError("strip offset/count tables disagree in length")

    bytes_per_row = width * (bits // 8)
    expected = height * bytes_per_row
    rows_per_strip = int(one(TAG_ROWS_PER_STRIP, height))
    if rows_per_strip < 1:
        raise TiffError(f"bad RowsPerStrip {rows_per_strip}")
    chunks = []
    total = 0
    for s, (off, cnt) in enumerate(zip(offsets_e.values, counts_e.values)):
        raw = _read_exact(data, off, cnt, "strip data")
        if compression == COMPRESSION_PACKBITS:
            r0 = s * rows_per_strip
            r1 = min(height, r0 + rows_per_strip)
            if r1 <= r0:
                raise TiffError("more strips than image rows")
            raw = packbits_decode(raw, (r1 - r0) * bytes_per_row)
        chunks.append(raw)
        total += len(raw)
    if total != expected:
        raise TiffError(
            f"pixel data size mismatch: strips hold {total} bytes, "
            f"image needs {expected}"
        )
    buf = b"".join(chunks)
    dtype = np.dtype("u1") if bits == 8 else np.dtype(bo + "u2")
    arr = np.frombuffer(buf, dtype=dtype).reshape(height, width)
    arr = arr.astype(arr.dtype.newbyteorder("="), copy=True)
    if photometric == 0:  # WhiteIsZero: invert to the usual BlackIsZero sense
        arr = (np.iinfo(arr.dtype).max - arr).astype(arr.dtype)

    if return_description:
        desc_e = entries.get(TAG_IMAGE_DESCRIPTION)
        desc = ""
        if desc_e is not None and desc_e.values:
            desc = bytes(desc_e.values).rstrip(b"\x00").decode("ascii", "replace")
        return arr, desc
    return arr


def write_tiff(
    path: str | Path,
    array: np.ndarray,
    description: str = "",
    rows_per_strip: int | None = None,
    compression: str = "none",
) -> None:
    """Write a grayscale ``uint8``/``uint16`` array as a TIFF.

    Output is little-endian, single IFD, strip-based.  ``rows_per_strip``
    defaults to roughly 8 KiB strips (libTIFF's default policy).
    ``compression`` is ``"none"`` or ``"packbits"``.
    """
    if compression == "none":
        comp_tag = COMPRESSION_NONE
    elif compression == "packbits":
        comp_tag = COMPRESSION_PACKBITS
    else:
        raise ValueError(f"unknown compression {compression!r} (none/packbits)")
    a = np.asarray(array)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale array, got shape {a.shape}")
    if a.dtype == np.uint8:
        bits = 8
    elif a.dtype == np.uint16:
        bits = 16
    else:
        raise ValueError(f"unsupported dtype {a.dtype} (uint8/uint16 only)")
    height, width = a.shape
    bytes_per_row = width * (bits // 8)
    if rows_per_strip is None:
        rows_per_strip = max(1, 8192 // max(1, bytes_per_row))
    rows_per_strip = min(rows_per_strip, height)
    n_strips = (height + rows_per_strip - 1) // rows_per_strip

    raw = a.astype("<" + ("u1" if bits == 8 else "u2"), copy=False).tobytes()
    strip_payloads: list[bytes] = []
    for s in range(n_strips):
        r0 = s * rows_per_strip
        r1 = min(height, r0 + rows_per_strip)
        payload = raw[r0 * bytes_per_row : r1 * bytes_per_row]
        if comp_tag == COMPRESSION_PACKBITS:
            payload = packbits_encode(payload)
        strip_payloads.append(payload)
    pixel_bytes = b"".join(strip_payloads)
    strip_counts = [len(p) for p in strip_payloads]

    desc_bytes = description.encode("ascii", "replace") + b"\x00" if description else b""

    entries: list[tuple[int, int, int, object]] = [
        (TAG_IMAGE_WIDTH, TYPE_LONG, 1, (width,)),
        (TAG_IMAGE_LENGTH, TYPE_LONG, 1, (height,)),
        (TAG_BITS_PER_SAMPLE, TYPE_SHORT, 1, (bits,)),
        (TAG_COMPRESSION, TYPE_SHORT, 1, (comp_tag,)),
        (TAG_PHOTOMETRIC, TYPE_SHORT, 1, (1,)),  # BlackIsZero
        (TAG_SAMPLES_PER_PIXEL, TYPE_SHORT, 1, (1,)),
        (TAG_ROWS_PER_STRIP, TYPE_LONG, 1, (rows_per_strip,)),
        (TAG_PLANAR_CONFIG, TYPE_SHORT, 1, (1,)),
        (TAG_SAMPLE_FORMAT, TYPE_SHORT, 1, (1,)),
    ]
    if desc_bytes:
        entries.append((TAG_IMAGE_DESCRIPTION, TYPE_ASCII, len(desc_bytes), desc_bytes))
    # Strip tables get placeholder values; patched once layout is known.
    entries.append((TAG_STRIP_OFFSETS, TYPE_LONG, n_strips, None))
    entries.append((TAG_STRIP_BYTE_COUNTS, TYPE_LONG, n_strips, tuple(strip_counts)))
    entries.sort(key=lambda e: e[0])

    header_size = 8
    ifd_size = 2 + 12 * len(entries) + 4
    # Out-of-line value area follows the IFD; strips follow that.
    overflow_at = header_size + ifd_size
    overflow: list[bytes] = []

    def place(values: bytes) -> int:
        nonlocal overflow_at
        off = overflow_at
        overflow.append(values)
        overflow_at += len(values)
        if overflow_at % 2:  # TIFF values must be word-aligned
            overflow.append(b"\x00")
            overflow_at += 1
        return off

    # First pass: compute where strip data starts (after all overflow values).
    # Strip offsets themselves live in the overflow area when n_strips > 1,
    # so lay everything out in two passes with a fixed entry order.
    pending: list[tuple[int, int, int, bytes]] = []
    strip_offsets_entry_index = None
    for idx, (tag, typ, count, values) in enumerate(entries):
        if tag == TAG_STRIP_OFFSETS:
            strip_offsets_entry_index = idx
            pending.append((tag, typ, count, b""))  # patched later
            continue
        if isinstance(values, bytes):
            payload = values
        else:
            fmt = {TYPE_SHORT: "H", TYPE_LONG: "I", TYPE_ASCII: "B", TYPE_BYTE: "B"}[typ]
            payload = struct.pack("<" + fmt * count, *values)
        pending.append((tag, typ, count, payload))

    # Account for overflow space of every oversized payload (and the strip
    # offsets table itself if oversized) before fixing strip data position.
    overflow_bytes = 0
    for tag, typ, count, payload in pending:
        n = len(payload) if tag != TAG_STRIP_OFFSETS else 4 * n_strips
        if n > 4:
            overflow_bytes += n + (n % 2)
    data_start = header_size + ifd_size + overflow_bytes

    strip_offsets = []
    pos = data_start
    for cnt in strip_counts:
        strip_offsets.append(pos)
        pos += cnt

    assert strip_offsets_entry_index is not None
    off_payload = struct.pack("<" + "I" * n_strips, *strip_offsets)
    pending[strip_offsets_entry_index] = (TAG_STRIP_OFFSETS, TYPE_LONG, n_strips, off_payload)

    # Serialize IFD with inline/overflow decision.
    ifd = struct.pack("<H", len(pending))
    for tag, typ, count, payload in pending:
        if len(payload) <= 4:
            inline = payload + b"\x00" * (4 - len(payload))
            ifd += struct.pack("<HHI", tag, typ, count) + inline
        else:
            off = place(payload)
            ifd += struct.pack("<HHII", tag, typ, count, off)
    ifd += struct.pack("<I", 0)  # no next IFD

    blob = struct.pack("<2sHI", b"II", 42, 8) + ifd + b"".join(overflow)
    if len(blob) != data_start:
        raise AssertionError(
            f"TIFF layout bug: header+IFD+overflow is {len(blob)} bytes, "
            f"expected {data_start}"
        )
    Path(path).write_bytes(blob + pixel_bytes)


class TiffStripWriter:
    """Incremental row-band TIFF writer for images too large for RAM.

    The paper's mosaics reach 17k x 22k pixels (Fiji needs 1.5 h to
    compose *and save* one).  Writing such an image should never require
    materializing it: this writer emits an uncompressed striped TIFF whose
    layout is fully determined up front (strip offsets are arithmetic for
    uncompressed data), so callers push row bands top to bottom and the
    peak memory is one band.

    Usage::

        with TiffStripWriter(path, height, width, np.uint16) as w:
            for band in bands_top_to_bottom:   # 2-D, widths must match
                w.write_rows(band)

    ``close`` (or the context manager) validates that exactly ``height``
    rows arrived.
    """

    def __init__(self, path: str | Path, height: int, width: int, dtype) -> None:
        if height < 1 or width < 1:
            raise ValueError(f"bad dimensions {height}x{width}")
        dtype = np.dtype(dtype)
        if dtype == np.uint8:
            self._bits = 8
        elif dtype == np.uint16:
            self._bits = 16
        else:
            raise ValueError(f"unsupported dtype {dtype} (uint8/uint16 only)")
        self.height = height
        self.width = width
        self.dtype = dtype
        self._rows_written = 0
        self._bytes_per_row = width * (self._bits // 8)
        self._file = open(path, "wb")
        self._closed = False
        self._write_header()

    def _write_header(self) -> None:
        # One strip per row band is wasteful in tag space; use fixed
        # rows-per-strip = whole image as a single strip *descriptor* with
        # offsets known a priori: a single strip spanning the image keeps
        # the IFD tiny and is legal TIFF (readers stream it fine).
        entries = [
            (TAG_IMAGE_WIDTH, TYPE_LONG, 1, (self.width,)),
            (TAG_IMAGE_LENGTH, TYPE_LONG, 1, (self.height,)),
            (TAG_BITS_PER_SAMPLE, TYPE_SHORT, 1, (self._bits,)),
            (TAG_COMPRESSION, TYPE_SHORT, 1, (COMPRESSION_NONE,)),
            (TAG_PHOTOMETRIC, TYPE_SHORT, 1, (1,)),
            (TAG_STRIP_OFFSETS, TYPE_LONG, 1, None),  # patched below
            (TAG_SAMPLES_PER_PIXEL, TYPE_SHORT, 1, (1,)),
            (TAG_ROWS_PER_STRIP, TYPE_LONG, 1, (self.height,)),
            (TAG_STRIP_BYTE_COUNTS, TYPE_LONG, 1,
             (self.height * self._bytes_per_row,)),
            (TAG_PLANAR_CONFIG, TYPE_SHORT, 1, (1,)),
            (TAG_SAMPLE_FORMAT, TYPE_SHORT, 1, (1,)),
        ]
        data_start = 8 + 2 + 12 * len(entries) + 4
        ifd = struct.pack("<H", len(entries))
        for tag, typ, cnt, values in entries:
            if values is None:
                values = (data_start,)
            fmt = {TYPE_SHORT: "H", TYPE_LONG: "I"}[typ]
            payload = struct.pack("<" + fmt * cnt, *values)
            payload += b"\x00" * (4 - len(payload))
            ifd += struct.pack("<HHI", tag, typ, cnt) + payload
        ifd += struct.pack("<I", 0)
        self._file.write(struct.pack("<2sHI", b"II", 42, 8) + ifd)

    def write_rows(self, band: np.ndarray) -> None:
        """Append a 2-D row band (must match width and dtype)."""
        if self._closed:
            raise ValueError("writer already closed")
        band = np.asarray(band)
        if band.ndim != 2 or band.shape[1] != self.width:
            raise ValueError(
                f"band shape {band.shape} incompatible with width {self.width}"
            )
        if band.dtype != self.dtype:
            raise ValueError(f"band dtype {band.dtype} != {self.dtype}")
        if self._rows_written + band.shape[0] > self.height:
            raise ValueError(
                f"band overruns image: {self._rows_written} + {band.shape[0]} "
                f"> {self.height}"
            )
        self._file.write(band.astype("<" + ("u1" if self._bits == 8 else "u2"),
                                     copy=False).tobytes())
        self._rows_written += band.shape[0]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self._rows_written != self.height:
                raise ValueError(
                    f"image incomplete: {self._rows_written} of "
                    f"{self.height} rows written"
                )
        finally:
            self._file.close()

    def __enter__(self) -> "TiffStripWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True
            self._file.close()
