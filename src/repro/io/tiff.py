"""Minimal TIFF 6.0 / BigTIFF codec for microscope tiles and mosaics.

Scope (everything the paper's datasets need, nothing more):

- baseline TIFF, little- or big-endian, classic *or* BigTIFF headers
  (BigTIFF carries 64-bit offsets, so >4 GiB mosaics -- the paper's
  42x59-tile grids compose far past the classic 32-bit limit -- are
  writable and readable at all);
- single image (first IFD read; chained IFDs ignored on read);
- grayscale (``PhotometricInterpretation`` 0/1), 1 sample/pixel;
- 8- or 16-bit unsigned integer samples;
- uncompressed (``Compression == 1``) or PackBits (``32773``) strips --
  the two baseline-TIFF compressions microscope software emits;
- strip-based layout (any ``RowsPerStrip``).

Unsupported structure raises :class:`TiffError` with a precise message; a
truncated or corrupt file never produces silently wrong pixels.  The writers
always emit little-endian, single-IFD, striped files that this reader (and
libTIFF/ImageJ) can read back bit-exactly.

Two readers exist: :func:`read_tiff` materializes the whole image (tiles),
while :class:`TiffReader` is a seek-based windowed reader -- it parses the
header/IFD once and serves arbitrary row bands without ever holding more
than the requested window, which is what lets the mosaic pyramid and the
out-of-core composition path work against images far larger than RAM.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

# TIFF tag ids used here (TIFF 6.0 specification names).
TAG_IMAGE_WIDTH = 256
TAG_IMAGE_LENGTH = 257
TAG_BITS_PER_SAMPLE = 258
TAG_COMPRESSION = 259
TAG_PHOTOMETRIC = 262
TAG_IMAGE_DESCRIPTION = 270
TAG_STRIP_OFFSETS = 273
TAG_SAMPLES_PER_PIXEL = 277
TAG_ROWS_PER_STRIP = 278
TAG_STRIP_BYTE_COUNTS = 279
TAG_PLANAR_CONFIG = 284
TAG_SAMPLE_FORMAT = 339

TYPE_BYTE = 1
TYPE_ASCII = 2
TYPE_SHORT = 3
TYPE_LONG = 4
#: BigTIFF 64-bit unsigned (and its signed / IFD-pointer siblings).
TYPE_LONG8 = 16
TYPE_SLONG8 = 17
TYPE_IFD8 = 18

_TYPE_SIZE = {
    TYPE_BYTE: 1,
    TYPE_ASCII: 1,
    TYPE_SHORT: 2,
    TYPE_LONG: 4,
    TYPE_LONG8: 8,
    TYPE_SLONG8: 8,
    TYPE_IFD8: 8,
}
_TYPE_FMT = {
    TYPE_BYTE: "B",
    TYPE_ASCII: "B",
    TYPE_SHORT: "H",
    TYPE_LONG: "I",
    TYPE_LONG8: "Q",
    TYPE_SLONG8: "q",
    TYPE_IFD8: "Q",
}

COMPRESSION_NONE = 1
COMPRESSION_PACKBITS = 32773

#: Classic TIFF cannot address bytes at or past 4 GiB.
_CLASSIC_LIMIT = 2**32 - 1


class TiffError(Exception):
    """Raised for malformed or unsupported TIFF structure."""


def packbits_encode(data: bytes) -> bytes:
    """PackBits (Apple RLE) encoding, TIFF 6.0 Section 9.

    Runs of >= 3 identical bytes become ``(1 - n, byte)``; everything else
    is emitted as literal groups of <= 128 bytes.
    """
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        # Measure the run starting at i.
        run = 1
        while i + run < n and run < 128 and data[i + run] == data[i]:
            run += 1
        if run >= 3:
            out.append(257 - run)  # two's complement of 1 - run
            out.append(data[i])
            i += run
            continue
        # Literal segment: until the next >= 3-byte run or 128 bytes.
        start = i
        i += run
        while i < n and i - start < 128:
            run = 1
            while i + run < n and run < 3 and data[i + run] == data[i]:
                run += 1
            if run >= 3:
                break
            i += run
        i = min(i, start + 128)
        out.append(i - start - 1)
        out.extend(data[start:i])
    return bytes(out)


def packbits_decode(data: bytes, expected: int) -> bytes:
    """Decode PackBits to exactly ``expected`` bytes (strict)."""
    out = bytearray()
    i = 0
    n = len(data)
    while len(out) < expected:
        if i >= n:
            raise TiffError(
                f"PackBits stream exhausted at {len(out)} of {expected} bytes"
            )
        ctrl = data[i]
        i += 1
        if ctrl < 128:  # literal run of ctrl + 1 bytes
            end = i + ctrl + 1
            if end > n:
                raise TiffError("PackBits literal run overruns the strip")
            out.extend(data[i:end])
            i = end
        elif ctrl == 128:  # no-op
            continue
        else:  # repeat next byte 257 - ctrl times
            if i >= n:
                raise TiffError("PackBits repeat run missing its byte")
            out.extend(bytes([data[i]]) * (257 - ctrl))
            i += 1
    if len(out) != expected:
        raise TiffError(
            f"PackBits decoded {len(out)} bytes, expected {expected}"
        )
    return bytes(out)


@dataclass
class _Entry:
    tag: int
    type: int
    count: int
    values: tuple


def _read_at(f, offset: int, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes at ``offset`` or raise a truncation error."""
    if offset < 0:
        raise TiffError(f"truncated file while reading {what} "
                        f"(negative offset {offset})")
    f.seek(offset)
    data = f.read(n)
    if len(data) != n:
        raise TiffError(f"truncated file while reading {what} "
                        f"(need {n} bytes at offset {offset})")
    return data


def _parse_header(f):
    """Parse the TIFF/BigTIFF header; returns ``(bo, bigtiff, ifd_offset)``."""
    f.seek(0)
    head = f.read(8)
    if len(head) < 8:
        raise TiffError("file too small to hold a TIFF header")
    if head[:2] == b"II":
        bo = "<"
    elif head[:2] == b"MM":
        bo = ">"
    else:
        raise TiffError(f"bad byte-order mark {head[:2]!r}")
    (magic,) = struct.unpack(bo + "H", head[2:4])
    if magic == 42:
        (ifd_off,) = struct.unpack(bo + "I", head[4:8])
        return bo, False, ifd_off
    if magic == 43:
        offsize, reserved = struct.unpack(bo + "HH", head[4:8])
        if offsize != 8 or reserved != 0:
            raise TiffError(
                f"bad BigTIFF header (offset size {offsize}, "
                f"reserved {reserved}; expected 8, 0)"
            )
        (ifd_off,) = struct.unpack(
            bo + "Q", _read_at(f, 8, 8, "BigTIFF IFD offset")
        )
        return bo, True, ifd_off
    raise TiffError(f"bad TIFF magic {magic} (42=classic, 43=BigTIFF)")


def _parse_ifd_entry(f, off: int, bo: str, bigtiff: bool) -> _Entry:
    entry_size = 20 if bigtiff else 12
    raw = _read_at(f, off, entry_size, "IFD entry")
    if bigtiff:
        tag, typ = struct.unpack(bo + "HH", raw[:4])
        (count,) = struct.unpack(bo + "Q", raw[4:12])
        inline, inline_max, ptr_fmt = raw[12:20], 8, "Q"
    else:
        tag, typ, count = struct.unpack(bo + "HHI", raw[:8])
        inline, inline_max, ptr_fmt = raw[8:12], 4, "I"
    size = _TYPE_SIZE.get(typ)
    if size is None:
        # Unknown value types are legal TIFF; carry no values.
        return _Entry(tag, typ, count, ())
    total = size * count
    if total <= inline_max:
        payload = inline[:total]
    else:
        (ptr,) = struct.unpack(bo + ptr_fmt, inline)
        payload = _read_at(f, ptr, total, f"tag {tag} values")
    fmt = _TYPE_FMT[typ]
    values = struct.unpack(bo + fmt * count, payload)
    return _Entry(tag, typ, count, values)


def _parse_first_ifd(f, bo: str, bigtiff: bool, ifd_off: int) -> dict[int, _Entry]:
    if bigtiff:
        (n_entries,) = struct.unpack(
            bo + "Q", _read_at(f, ifd_off, 8, "IFD count")
        )
        base, entry_size = ifd_off + 8, 20
    else:
        (n_entries,) = struct.unpack(
            bo + "H", _read_at(f, ifd_off, 2, "IFD count")
        )
        base, entry_size = ifd_off + 2, 12
    if n_entries > 65536:
        raise TiffError(f"implausible IFD entry count {n_entries}")
    entries: dict[int, _Entry] = {}
    for i in range(int(n_entries)):
        e = _parse_ifd_entry(f, base + entry_size * i, bo, bigtiff)
        entries[e.tag] = e
    return entries


class TiffReader:
    """Windowed, seek-based reader for striped grayscale TIFF/BigTIFF.

    Parses the header and first IFD once; :meth:`read_rows` /
    :meth:`read_region` then touch only the strip bytes the requested
    window needs.  For uncompressed files the read is exact (partial
    strips are sliced by arithmetic, so a 4 GiB mosaic costs one band of
    memory to window into); PackBits files decode whole strips
    intersecting the window.

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._f = open(self.path, "rb")
        try:
            self._bo, self.bigtiff, ifd_off = _parse_header(self._f)
            self._entries = _parse_first_ifd(
                self._f, self._bo, self.bigtiff, ifd_off
            )
            self._validate()
        except BaseException:
            self._f.close()
            raise

    # -- IFD digestion -----------------------------------------------------

    def _one(self, tag: int, default=None):
        e = self._entries.get(tag)
        if e is None or not e.values:
            if default is None:
                raise TiffError(f"required tag {tag} missing")
            return default
        return e.values[0]

    def _validate(self) -> None:
        self.width = int(self._one(TAG_IMAGE_WIDTH))
        self.height = int(self._one(TAG_IMAGE_LENGTH))
        self._bits = int(self._one(TAG_BITS_PER_SAMPLE, 1))
        self._compression = int(self._one(TAG_COMPRESSION, 1))
        self._photometric = int(self._one(TAG_PHOTOMETRIC, 1))
        spp = int(self._one(TAG_SAMPLES_PER_PIXEL, 1))
        planar = int(self._one(TAG_PLANAR_CONFIG, 1))
        sample_format = int(self._one(TAG_SAMPLE_FORMAT, 1))

        if self._compression not in (COMPRESSION_NONE, COMPRESSION_PACKBITS):
            raise TiffError(
                f"unsupported compression {self._compression} "
                f"(1=None, 32773=PackBits)"
            )
        if self._photometric not in (0, 1):
            raise TiffError(
                f"unsupported photometric {self._photometric} (grayscale only)"
            )
        if spp != 1:
            raise TiffError(f"unsupported samples/pixel {spp} (grayscale only)")
        if planar != 1:
            raise TiffError(f"unsupported planar configuration {planar}")
        if sample_format != 1:
            raise TiffError(
                f"unsupported sample format {sample_format} (uint only)"
            )
        if self._bits not in (8, 16):
            raise TiffError(f"unsupported bit depth {self._bits} (8/16 only)")
        if self.width <= 0 or self.height <= 0:
            raise TiffError(f"bad dimensions {self.width}x{self.height}")

        offsets_e = self._entries.get(TAG_STRIP_OFFSETS)
        counts_e = self._entries.get(TAG_STRIP_BYTE_COUNTS)
        if offsets_e is None or counts_e is None:
            raise TiffError(
                "strip offsets/byte-counts missing (tiled TIFF unsupported)"
            )
        if len(offsets_e.values) != len(counts_e.values):
            raise TiffError("strip offset/count tables disagree in length")
        self.offsets = tuple(int(v) for v in offsets_e.values)
        self.byte_counts = tuple(int(v) for v in counts_e.values)
        self.rows_per_strip = int(self._one(TAG_ROWS_PER_STRIP, self.height))
        if self.rows_per_strip < 1:
            raise TiffError(f"bad RowsPerStrip {self.rows_per_strip}")
        self.bytes_per_row = self.width * (self._bits // 8)
        needed = -(-self.height // self.rows_per_strip)
        if len(self.offsets) < needed:
            raise TiffError(
                f"pixel data size mismatch: {len(self.offsets)} strips cover "
                f"{len(self.offsets) * self.rows_per_strip} rows, image "
                f"needs {self.height}"
            )
        if len(self.offsets) > needed:
            raise TiffError("more strips than image rows")

    @property
    def dtype(self) -> np.dtype:
        return np.dtype("u1" if self._bits == 8 else "u2")

    def _strip_rows(self, s: int) -> tuple[int, int]:
        r0 = s * self.rows_per_strip
        return r0, min(self.height, r0 + self.rows_per_strip)

    def _decoded_strip(self, s: int) -> bytes:
        r0, r1 = self._strip_rows(s)
        expected = (r1 - r0) * self.bytes_per_row
        raw = _read_at(self._f, self.offsets[s], self.byte_counts[s],
                       "strip data")
        if self._compression == COMPRESSION_PACKBITS:
            return packbits_decode(raw, expected)
        if len(raw) != expected:
            raise TiffError(
                f"pixel data size mismatch: strip {s} holds {len(raw)} "
                f"bytes, needs {expected}"
            )
        return raw

    # -- windowed access ---------------------------------------------------

    def read_rows(self, y0: int, y1: int) -> np.ndarray:
        """Decode rows ``[y0, y1)`` into a native-endian 2-D array.

        Peak memory is the window itself (uncompressed files seek straight
        to the needed row bytes; PackBits decodes the strips the window
        intersects).
        """
        if not 0 <= y0 < y1 <= self.height:
            raise ValueError(
                f"row window [{y0}, {y1}) outside image of {self.height} rows"
            )
        bpr = self.bytes_per_row
        chunks: list[bytes] = []
        s0 = y0 // self.rows_per_strip
        s1 = (y1 - 1) // self.rows_per_strip
        for s in range(s0, s1 + 1):
            r0, r1 = self._strip_rows(s)
            a, b = max(r0, y0), min(r1, y1)
            if self._compression == COMPRESSION_NONE:
                # Exact partial-strip read: row n of strip s lives at a
                # fixed arithmetic offset, no need to touch the rest.
                expected = (r1 - r0) * bpr
                if self.byte_counts[s] != expected:
                    raise TiffError(
                        f"pixel data size mismatch: strip {s} holds "
                        f"{self.byte_counts[s]} bytes, needs {expected}"
                    )
                chunks.append(_read_at(
                    self._f, self.offsets[s] + (a - r0) * bpr,
                    (b - a) * bpr, "strip data",
                ))
            else:
                data = self._decoded_strip(s)
                chunks.append(data[(a - r0) * bpr : (b - r0) * bpr])
        buf = b"".join(chunks)
        dtype = (np.dtype("u1") if self._bits == 8
                 else np.dtype(self._bo + "u2"))
        arr = np.frombuffer(buf, dtype=dtype).reshape(y1 - y0, self.width)
        arr = arr.astype(arr.dtype.newbyteorder("="), copy=True)
        if self._photometric == 0:  # WhiteIsZero -> BlackIsZero sense
            arr = (np.iinfo(arr.dtype).max - arr).astype(arr.dtype)
        return arr

    def read_region(self, y: int, x: int, height: int, width: int) -> np.ndarray:
        """Decode the window ``[y, y+height) x [x, x+width)``."""
        if height < 1 or width < 1:
            raise ValueError("region must be at least 1x1")
        if not (0 <= x and x + width <= self.width):
            raise ValueError(
                f"column window [{x}, {x + width}) outside image of "
                f"{self.width} columns"
            )
        return self.read_rows(y, y + height)[:, x : x + width].copy()

    def read(self) -> np.ndarray:
        """The whole image (equivalent to :func:`read_tiff`)."""
        return self.read_rows(0, self.height)

    def description(self) -> str:
        """``ImageDescription`` contents, ``""`` when absent."""
        e = self._entries.get(TAG_IMAGE_DESCRIPTION)
        if e is None or not e.values:
            return ""
        return bytes(e.values).rstrip(b"\x00").decode("ascii", "replace")

    def close(self) -> None:
        self._f.close()

    def __enter__(self) -> "TiffReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_tiff(path: str | Path, return_description: bool = False):
    """Read a grayscale TIFF/BigTIFF into a NumPy array.

    Returns the pixel array (``uint8`` or ``uint16``, shape ``(h, w)``), or a
    ``(array, description)`` tuple when ``return_description`` is set (the
    description is the ``ImageDescription`` tag contents, ``""`` if absent).
    """
    with TiffReader(path) as reader:
        arr = reader.read()
        if return_description:
            return arr, reader.description()
        return arr


def write_tiff(
    path: str | Path,
    array: np.ndarray,
    description: str = "",
    rows_per_strip: int | None = None,
    compression: str = "none",
) -> None:
    """Write a grayscale ``uint8``/``uint16`` array as a classic TIFF.

    Output is little-endian, single IFD, strip-based.  ``rows_per_strip``
    defaults to roughly 8 KiB strips (libTIFF's default policy).
    ``compression`` is ``"none"`` or ``"packbits"``.  For images too large
    to materialize (or past the classic 4 GiB limit) use
    :class:`TiffStripWriter`, which streams row bands and can emit BigTIFF.
    """
    if compression == "none":
        comp_tag = COMPRESSION_NONE
    elif compression == "packbits":
        comp_tag = COMPRESSION_PACKBITS
    else:
        raise ValueError(f"unknown compression {compression!r} (none/packbits)")
    a = np.asarray(array)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale array, got shape {a.shape}")
    if a.dtype == np.uint8:
        bits = 8
    elif a.dtype == np.uint16:
        bits = 16
    else:
        raise ValueError(f"unsupported dtype {a.dtype} (uint8/uint16 only)")
    height, width = a.shape
    bytes_per_row = width * (bits // 8)
    if rows_per_strip is None:
        rows_per_strip = max(1, 8192 // max(1, bytes_per_row))
    rows_per_strip = min(rows_per_strip, height)
    n_strips = (height + rows_per_strip - 1) // rows_per_strip

    raw = a.astype("<" + ("u1" if bits == 8 else "u2"), copy=False).tobytes()
    strip_payloads: list[bytes] = []
    for s in range(n_strips):
        r0 = s * rows_per_strip
        r1 = min(height, r0 + rows_per_strip)
        payload = raw[r0 * bytes_per_row : r1 * bytes_per_row]
        if comp_tag == COMPRESSION_PACKBITS:
            payload = packbits_encode(payload)
        strip_payloads.append(payload)
    pixel_bytes = b"".join(strip_payloads)
    strip_counts = [len(p) for p in strip_payloads]

    desc_bytes = description.encode("ascii", "replace") + b"\x00" if description else b""

    entries: list[tuple[int, int, int, object]] = [
        (TAG_IMAGE_WIDTH, TYPE_LONG, 1, (width,)),
        (TAG_IMAGE_LENGTH, TYPE_LONG, 1, (height,)),
        (TAG_BITS_PER_SAMPLE, TYPE_SHORT, 1, (bits,)),
        (TAG_COMPRESSION, TYPE_SHORT, 1, (comp_tag,)),
        (TAG_PHOTOMETRIC, TYPE_SHORT, 1, (1,)),  # BlackIsZero
        (TAG_SAMPLES_PER_PIXEL, TYPE_SHORT, 1, (1,)),
        (TAG_ROWS_PER_STRIP, TYPE_LONG, 1, (rows_per_strip,)),
        (TAG_PLANAR_CONFIG, TYPE_SHORT, 1, (1,)),
        (TAG_SAMPLE_FORMAT, TYPE_SHORT, 1, (1,)),
    ]
    if desc_bytes:
        entries.append((TAG_IMAGE_DESCRIPTION, TYPE_ASCII, len(desc_bytes), desc_bytes))
    # Strip tables get placeholder values; patched once layout is known.
    entries.append((TAG_STRIP_OFFSETS, TYPE_LONG, n_strips, None))
    entries.append((TAG_STRIP_BYTE_COUNTS, TYPE_LONG, n_strips, tuple(strip_counts)))
    entries.sort(key=lambda e: e[0])

    header_size = 8
    ifd_size = 2 + 12 * len(entries) + 4
    # Out-of-line value area follows the IFD; strips follow that.
    overflow_at = header_size + ifd_size
    overflow: list[bytes] = []

    def place(values: bytes) -> int:
        nonlocal overflow_at
        off = overflow_at
        overflow.append(values)
        overflow_at += len(values)
        if overflow_at % 2:  # TIFF values must be word-aligned
            overflow.append(b"\x00")
            overflow_at += 1
        return off

    # First pass: compute where strip data starts (after all overflow values).
    # Strip offsets themselves live in the overflow area when n_strips > 1,
    # so lay everything out in two passes with a fixed entry order.
    pending: list[tuple[int, int, int, bytes]] = []
    strip_offsets_entry_index = None
    for idx, (tag, typ, count, values) in enumerate(entries):
        if tag == TAG_STRIP_OFFSETS:
            strip_offsets_entry_index = idx
            pending.append((tag, typ, count, b""))  # patched later
            continue
        if isinstance(values, bytes):
            payload = values
        else:
            fmt = {TYPE_SHORT: "H", TYPE_LONG: "I", TYPE_ASCII: "B", TYPE_BYTE: "B"}[typ]
            payload = struct.pack("<" + fmt * count, *values)
        pending.append((tag, typ, count, payload))

    # Account for overflow space of every oversized payload (and the strip
    # offsets table itself if oversized) before fixing strip data position.
    overflow_bytes = 0
    for tag, typ, count, payload in pending:
        n = len(payload) if tag != TAG_STRIP_OFFSETS else 4 * n_strips
        if n > 4:
            overflow_bytes += n + (n % 2)
    data_start = header_size + ifd_size + overflow_bytes

    strip_offsets = []
    pos = data_start
    for cnt in strip_counts:
        strip_offsets.append(pos)
        pos += cnt

    assert strip_offsets_entry_index is not None
    off_payload = struct.pack("<" + "I" * n_strips, *strip_offsets)
    pending[strip_offsets_entry_index] = (TAG_STRIP_OFFSETS, TYPE_LONG, n_strips, off_payload)

    # Serialize IFD with inline/overflow decision.
    ifd = struct.pack("<H", len(pending))
    for tag, typ, count, payload in pending:
        if len(payload) <= 4:
            inline = payload + b"\x00" * (4 - len(payload))
            ifd += struct.pack("<HHI", tag, typ, count) + inline
        else:
            off = place(payload)
            ifd += struct.pack("<HHII", tag, typ, count, off)
    ifd += struct.pack("<I", 0)  # no next IFD

    blob = struct.pack("<2sHI", b"II", 42, 8) + ifd + b"".join(overflow)
    if len(blob) != data_start:
        raise AssertionError(
            f"TIFF layout bug: header+IFD+overflow is {len(blob)} bytes, "
            f"expected {data_start}"
        )
    Path(path).write_bytes(blob + pixel_bytes)


class TiffStripWriter:
    """Incremental row-band TIFF/BigTIFF writer for images too large for RAM.

    The paper's mosaics reach 17k x 22k pixels (Fiji needs 1.5 h to
    compose *and save* one), and out-of-core composition pushes far past
    that.  Writing such an image must never require materializing it:
    the header, IFD and strip tables are fully determined up front
    (strip offsets are arithmetic for uncompressed data) and written
    first; callers then push row bands top to bottom, each flushed to
    the file as it completes, so peak memory is one band.

    ``bigtiff`` selects the header: ``True``/``False`` force the format,
    ``"auto"`` (default) emits BigTIFF exactly when the classic 32-bit
    offsets could not address the pixel data.  ``rows_per_strip`` sizes
    the strip table (default: the whole image as one strip descriptor,
    which windowed readers of uncompressed data handle exactly).

    ``skip_rows`` advances over all-zero rows without writing them --
    the file stays sparse where the filesystem supports it, which is how
    the >4 GiB-offset test fixtures stay cheap on disk.

    Usage::

        with TiffStripWriter(path, height, width, np.uint16) as w:
            for band in bands_top_to_bottom:   # 2-D, widths must match
                w.write_rows(band)

    ``close`` (or the context manager) validates that exactly ``height``
    rows arrived.
    """

    def __init__(
        self,
        path: str | Path,
        height: int,
        width: int,
        dtype,
        rows_per_strip: int | None = None,
        bigtiff: bool | str = "auto",
    ) -> None:
        if height < 1 or width < 1:
            raise ValueError(f"bad dimensions {height}x{width}")
        dtype = np.dtype(dtype)
        if dtype == np.uint8:
            self._bits = 8
        elif dtype == np.uint16:
            self._bits = 16
        else:
            raise ValueError(f"unsupported dtype {dtype} (uint8/uint16 only)")
        self.height = height
        self.width = width
        self.dtype = dtype
        self._bytes_per_row = width * (self._bits // 8)
        total_bytes = height * self._bytes_per_row
        if rows_per_strip is None:
            rows_per_strip = height
        rows_per_strip = max(1, min(int(rows_per_strip), height))
        self._rows_per_strip = rows_per_strip
        self._n_strips = (height + rows_per_strip - 1) // rows_per_strip
        if bigtiff == "auto":
            # Conservative: header + IFD + strip tables stay far below
            # 1 MiB, so the pixel payload decides the format.
            bigtiff = total_bytes + (1 << 20) > _CLASSIC_LIMIT
        self.bigtiff = bool(bigtiff)
        self._rows_written = 0
        self._closed = False
        self._file = open(path, "wb")
        try:
            self._write_header()
        except BaseException:
            self._file.close()
            raise

    # -- layout ------------------------------------------------------------

    def _strip_counts(self) -> list[int]:
        counts = []
        for s in range(self._n_strips):
            r0 = s * self._rows_per_strip
            r1 = min(self.height, r0 + self._rows_per_strip)
            counts.append((r1 - r0) * self._bytes_per_row)
        return counts

    def _write_header(self) -> None:
        big = self.bigtiff
        counts = self._strip_counts()
        table_typ = TYPE_LONG8 if big else TYPE_LONG
        entries: list[tuple[int, int, int, tuple | None]] = [
            (TAG_IMAGE_WIDTH, TYPE_LONG, 1, (self.width,)),
            (TAG_IMAGE_LENGTH, TYPE_LONG, 1, (self.height,)),
            (TAG_BITS_PER_SAMPLE, TYPE_SHORT, 1, (self._bits,)),
            (TAG_COMPRESSION, TYPE_SHORT, 1, (COMPRESSION_NONE,)),
            (TAG_PHOTOMETRIC, TYPE_SHORT, 1, (1,)),
            (TAG_STRIP_OFFSETS, table_typ, self._n_strips, None),  # patched
            (TAG_SAMPLES_PER_PIXEL, TYPE_SHORT, 1, (1,)),
            (TAG_ROWS_PER_STRIP, TYPE_LONG, 1, (self._rows_per_strip,)),
            (TAG_STRIP_BYTE_COUNTS, table_typ, self._n_strips, tuple(counts)),
            (TAG_PLANAR_CONFIG, TYPE_SHORT, 1, (1,)),
            (TAG_SAMPLE_FORMAT, TYPE_SHORT, 1, (1,)),
        ]
        header_size = 16 if big else 8
        entry_size = 20 if big else 12
        count_size = 8 if big else 2
        next_size = 8 if big else 4
        inline_max = 8 if big else 4
        ifd_size = count_size + entry_size * len(entries) + next_size

        # Overflow area: out-of-line payloads, each padded to word length.
        overflow_bytes = 0
        for tag, typ, count, _values in entries:
            n = _TYPE_SIZE[typ] * count
            if n > inline_max:
                overflow_bytes += n + (n % 2)
        data_start = header_size + ifd_size + overflow_bytes
        self._data_start = data_start

        offsets = []
        pos = data_start
        for cnt in counts:
            offsets.append(pos)
            pos += cnt
        end = pos
        if not big and end > _CLASSIC_LIMIT:
            raise TiffError(
                f"image needs BigTIFF: pixel data ends at byte {end}, past "
                f"the classic 32-bit limit (pass bigtiff=True)"
            )

        # Serialize: IFD entries in tag order, overflow payloads after.
        overflow: list[bytes] = []
        overflow_at = header_size + ifd_size
        if big:
            ifd = struct.pack("<Q", len(entries))
        else:
            ifd = struct.pack("<H", len(entries))
        for tag, typ, count, values in entries:
            if values is None:
                values = tuple(offsets)
            payload = struct.pack(
                "<" + _TYPE_FMT[typ] * count, *values
            )
            if len(payload) <= inline_max:
                inline = payload + b"\x00" * (inline_max - len(payload))
                if big:
                    ifd += struct.pack("<HHQ", tag, typ, count) + inline
                else:
                    ifd += struct.pack("<HHI", tag, typ, count) + inline
            else:
                off = overflow_at
                overflow.append(payload)
                overflow_at += len(payload)
                if overflow_at % 2:
                    overflow.append(b"\x00")
                    overflow_at += 1
                if big:
                    ifd += struct.pack("<HHQQ", tag, typ, count, off)
                else:
                    ifd += struct.pack("<HHII", tag, typ, count, off)
        ifd += struct.pack("<Q" if big else "<I", 0)  # no next IFD

        if big:
            head = struct.pack("<2sHHHQ", b"II", 43, 8, 0, 16)
        else:
            head = struct.pack("<2sHI", b"II", 42, 8)
        blob = head + ifd + b"".join(overflow)
        if len(blob) != data_start:
            raise AssertionError(
                f"TIFF layout bug: header+IFD+overflow is {len(blob)} bytes, "
                f"expected {data_start}"
            )
        self._file.write(blob)

    # -- streaming ---------------------------------------------------------

    def write_rows(self, band: np.ndarray) -> None:
        """Append a 2-D row band (must match width and dtype); flushed."""
        if self._closed:
            raise ValueError("writer already closed")
        band = np.asarray(band)
        if band.ndim != 2 or band.shape[1] != self.width:
            raise ValueError(
                f"band shape {band.shape} incompatible with width {self.width}"
            )
        if band.dtype != self.dtype:
            raise ValueError(f"band dtype {band.dtype} != {self.dtype}")
        if self._rows_written + band.shape[0] > self.height:
            raise ValueError(
                f"band overruns image: {self._rows_written} + {band.shape[0]} "
                f"> {self.height}"
            )
        self._file.write(band.astype("<" + ("u1" if self._bits == 8 else "u2"),
                                     copy=False).tobytes())
        self._file.flush()
        self._rows_written += band.shape[0]

    def skip_rows(self, n: int) -> None:
        """Advance over ``n`` all-zero rows without writing their bytes.

        The skipped region reads back as zeros; on filesystems with
        sparse-file support it occupies no disk blocks, which keeps
        >4 GiB-offset fixtures cheap.
        """
        if self._closed:
            raise ValueError("writer already closed")
        if n < 0:
            raise ValueError(f"cannot skip {n} rows")
        if self._rows_written + n > self.height:
            raise ValueError(
                f"band overruns image: {self._rows_written} + {n} "
                f"> {self.height}"
            )
        self._file.seek(n * self._bytes_per_row, 1)
        self._rows_written += n

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self._rows_written != self.height:
                raise ValueError(
                    f"image incomplete: {self._rows_written} of "
                    f"{self.height} rows written"
                )
            # A trailing skip_rows leaves the file short of its logical
            # size; extend it so every strip is addressable (zeros).
            end = self._data_start + self.height * self._bytes_per_row
            self._file.truncate(end)
            self._file.flush()
        finally:
            self._file.close()

    def __enter__(self) -> "TiffStripWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True
            self._file.close()
