"""Process-kill chaos harness for checkpoint/resume testing.

The journal's end-to-end guarantee -- *kill at any point, resume, get
bit-identical positions* -- can only be proven by actually killing a
process.  This harness launches a stitch as a subprocess, watches its
journal grow (each fsync'd record is one newline-terminated line, so the
file's newline count *is* the durable-record count), and delivers SIGKILL
once a chosen number of records has landed.  SIGKILL is deliberate: it
cannot be caught, so the child gets no chance to flush, close, or
otherwise tidy up -- exactly the crash the journal must survive,
including a torn final line.

Used by ``tests/recovery/test_kill_resume.py`` and the CI chaos-smoke
job (which drives the same flow from a shell script).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path


@dataclass
class KillResult:
    """Outcome of one :func:`run_until_killed` round."""

    #: True when the harness delivered SIGKILL; False when the child
    #: finished before reaching the kill threshold (still a valid round:
    #: resuming a *complete* journal must recompute nothing).
    killed: bool
    returncode: int | None
    #: Durable journal records observed when the round ended.
    journal_records: int
    stdout: str
    stderr: str


def count_journal_records(journal_path: str | Path) -> int:
    """Newline-terminated (= durably completed) records in the journal."""
    try:
        return Path(journal_path).read_bytes().count(b"\n")
    except FileNotFoundError:
        return 0


def run_until_killed(
    argv: list[str],
    journal_path: str | Path,
    kill_after_records: int,
    poll_interval: float = 0.002,
    timeout: float = 300.0,
    env: dict | None = None,
    cwd: str | Path | None = None,
) -> KillResult:
    """Run ``argv`` and SIGKILL it once the journal holds enough records.

    ``kill_after_records`` counts *all* journal lines (header included),
    so ``1`` kills as soon as the header lands and ``N+1`` kills after
    roughly ``N`` pair records.  The child is given no shutdown grace --
    see the module docstring for why.

    Raises :class:`TimeoutError` if the child neither reaches the
    threshold nor exits within ``timeout`` seconds (a hung child is a
    test failure, not something to wait out).
    """
    journal_path = Path(journal_path)
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=None if cwd is None else str(cwd),
    )
    deadline = time.monotonic() + timeout
    killed = False
    try:
        while True:
            rc = proc.poll()
            if rc is not None:
                break
            if count_journal_records(journal_path) >= kill_after_records:
                proc.send_signal(signal.SIGKILL)
                killed = True
                break
            if time.monotonic() > deadline:
                proc.kill()
                proc.wait(timeout=10)
                raise TimeoutError(
                    f"child neither produced {kill_after_records} journal "
                    f"records nor exited within {timeout}s"
                )
            time.sleep(poll_interval)
        stdout, stderr = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - defensive cleanup
            proc.kill()
            proc.wait(timeout=10)
    return KillResult(
        killed=killed,
        returncode=proc.returncode,
        journal_records=count_journal_records(journal_path),
        stdout=stdout,
        stderr=stderr,
    )


def stitch_argv(
    dataset_dir: str | Path,
    checkpoint_dir: str | Path,
    impl: str = "simple-cpu",
    extra: list[str] | None = None,
    python: str | None = None,
) -> list[str]:
    """Argv for a checkpointed CLI stitch, suitable for the harness."""
    argv = [
        python or sys.executable, "-m", "repro", "stitch",
        str(dataset_dir),
        "--impl", impl,
        "--checkpoint", str(checkpoint_dir),
    ]
    argv.extend(extra or [])
    return argv


def subprocess_env(src_dir: str | Path | None = None) -> dict:
    """Environment for harness children: parent env + ``PYTHONPATH=src``."""
    env = dict(os.environ)
    if src_dir is not None:
        prev = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{prev}" if prev else str(src_dir)
        )
    return env
